// FlightRecorder unit tests: the biased retention policy (pinned failures,
// p95-slow set, sampled healthy majority) and the in-flight registry that
// back GET /v1/debug/traces and GET /v1/debug/inflight.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "reason/flight_recorder.hpp"

namespace lar::reason {
namespace {

QueryTrace makeTrace(std::string id, Verdict verdict, double totalMs,
                     std::string traceId = "") {
    QueryTrace t;
    t.id = std::move(id);
    t.traceId = std::move(traceId);
    t.kind = QueryKind::Feasibility;
    t.verdict = verdict;
    t.totalMs = totalMs;
    return t;
}

TEST(FlightRecorder, RetainsEverythingBelowCapacity) {
    FlightRecorder rec(/*capacity=*/8);
    for (int i = 0; i < 5; ++i)
        rec.record(makeTrace("q" + std::to_string(i), Verdict::Sat, 1.0));
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.stats().recorded, 5u);
    EXPECT_EQ(rec.stats().sampledOut, 0u);
}

TEST(FlightRecorder, TracesComeBackNewestFirstWithFilters) {
    FlightRecorder rec(/*capacity=*/8);
    rec.record(makeTrace("old", Verdict::Sat, 1.0));
    rec.record(makeTrace("mid", Verdict::Unsat, 5.0));
    rec.record(makeTrace("new", Verdict::Sat, 10.0));

    const std::vector<QueryTrace> all = rec.traces();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].id, "new");
    EXPECT_EQ(all[2].id, "old");

    const std::vector<QueryTrace> unsat =
        rec.traces(0, 0.0, Verdict::Unsat);
    ASSERT_EQ(unsat.size(), 1u);
    EXPECT_EQ(unsat[0].id, "mid");

    const std::vector<QueryTrace> slow = rec.traces(0, 4.0);
    ASSERT_EQ(slow.size(), 2u);
    EXPECT_EQ(slow[0].id, "new");

    EXPECT_EQ(rec.traces(/*limit=*/1).size(), 1u);
}

TEST(FlightRecorder, FindMatchesTraceIdThenQueryIdNewestWins) {
    FlightRecorder rec(/*capacity=*/8);
    rec.record(makeTrace("q1", Verdict::Sat, 1.0, "aaaa1111"));
    rec.record(makeTrace("q2", Verdict::Unsat, 1.0, "aaaa1111"));
    rec.record(makeTrace("q3", Verdict::Sat, 1.0));

    const auto byTrace = rec.find("aaaa1111");
    ASSERT_TRUE(byTrace.has_value());
    EXPECT_EQ(byTrace->id, "q2"); // two matches: the most recent wins

    const auto byQueryId = rec.find("q3");
    ASSERT_TRUE(byQueryId.has_value());
    EXPECT_EQ(byQueryId->verdict, Verdict::Sat);

    EXPECT_FALSE(rec.find("nope").has_value());
}

TEST(FlightRecorder, FailuresEvictSamplesAndSurviveOverload) {
    FlightRecorder rec(/*capacity=*/8);
    for (int i = 0; i < 8; ++i)
        rec.record(makeTrace("ok" + std::to_string(i), Verdict::Sat, 1.0));
    ASSERT_EQ(rec.size(), 8u);
    for (int i = 0; i < 8; ++i)
        rec.record(makeTrace("err" + std::to_string(i), Verdict::Error, 1.0));

    EXPECT_EQ(rec.size(), 8u); // bounded throughout
    const FlightRecorder::Stats stats = rec.stats();
    EXPECT_EQ(stats.pinned, 8u); // every failure retained
    EXPECT_EQ(rec.traces(0, 0.0, Verdict::Sat).size(), 0u);
}

TEST(FlightRecorder, HealthyTracesNeverEvictPinnedOnes) {
    FlightRecorder rec(/*capacity=*/2);
    rec.record(makeTrace("e1", Verdict::TimedOut, 1.0));
    rec.record(makeTrace("e2", Verdict::Error, 1.0));
    for (int i = 0; i < 10; ++i)
        rec.record(makeTrace("ok" + std::to_string(i), Verdict::Sat, 1.0));

    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.stats().pinned, 2u);
    EXPECT_TRUE(rec.find("e1").has_value());
    EXPECT_TRUE(rec.find("e2").has_value());
    EXPECT_EQ(rec.traces(0, 0.0, Verdict::Sat).size(), 0u);
}

TEST(FlightRecorder, HealthyMajorityIsSampledOnceFull) {
    FlightRecorder rec(/*capacity=*/4, /*sampleEvery=*/4);
    for (int i = 0; i < 50; ++i)
        rec.record(makeTrace("q" + std::to_string(i), Verdict::Sat, 1.0));

    EXPECT_EQ(rec.size(), 4u);
    const FlightRecorder::Stats stats = rec.stats();
    EXPECT_EQ(stats.recorded, 50u);
    // 46 post-fill records at 1-in-4: most are sampled out, some land.
    EXPECT_GT(stats.sampledOut, 30u);
    EXPECT_LT(stats.sampledOut, 46u);
}

TEST(FlightRecorder, OutlierDurationsJoinTheSlowSet) {
    FlightRecorder rec(/*capacity=*/8);
    // Warm the duration window past the 20-sample confidence floor.
    for (int i = 0; i < 30; ++i)
        rec.record(makeTrace("base" + std::to_string(i), Verdict::Sat, 10.0));
    rec.record(makeTrace("spike", Verdict::Sat, 500.0));

    const FlightRecorder::Stats stats = rec.stats();
    EXPECT_GE(stats.slow, 1u);
    EXPECT_DOUBLE_EQ(stats.p95Ms, 10.0);
    ASSERT_TRUE(rec.find("spike").has_value());
    // A uniform workload is not "slow": the baseline traces stay normal.
    EXPECT_GT(stats.normal, 0u);
}

TEST(FlightRecorder, ShedTracesArePinnedButDoNotPoisonTheP95Window) {
    FlightRecorder rec(/*capacity=*/64);
    for (int i = 0; i < 20; ++i)
        rec.record(makeTrace("ok" + std::to_string(i), Verdict::Sat, 10.0));
    ASSERT_DOUBLE_EQ(rec.stats().p95Ms, 10.0);
    // An overload burst: shed queries report ~0ms. They must be retained
    // (pinned) without dragging the slow threshold to zero.
    for (int i = 0; i < 30; ++i)
        rec.record(makeTrace("shed" + std::to_string(i), Verdict::Shed, 0.0));
    EXPECT_DOUBLE_EQ(rec.stats().p95Ms, 10.0);
    EXPECT_EQ(rec.traces(0, 0.0, Verdict::Shed).size(), 30u);
}

TEST(FlightRecorder, CapacityZeroDisablesRetentionNotTheRegistry) {
    FlightRecorder rec(/*capacity=*/0);
    rec.record(makeTrace("q1", Verdict::Error, 1.0));
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_FALSE(rec.find("q1").has_value());

    const auto entry = rec.admit("q2", "tttt2222", "", QueryKind::Optimize);
    EXPECT_EQ(rec.inflight().size(), 1u);
    rec.finish(entry);
    EXPECT_EQ(rec.inflight().size(), 0u);
}

TEST(FlightRecorder, InflightSnapshotsCarryLiveFields) {
    FlightRecorder rec;
    const auto first = rec.admit("q1", "aaaa1111", "", QueryKind::Feasibility);
    const auto second = rec.admit("q2", "bbbb2222", "s-1", QueryKind::Optimize);
    second->phase.store(QueryPhase::Solve, std::memory_order_relaxed);
    second->workers.store(4, std::memory_order_relaxed);

    const std::vector<InflightSnapshot> snap = rec.inflight();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].id, "q1"); // oldest first
    EXPECT_EQ(snap[0].phase, QueryPhase::Queued);
    EXPECT_EQ(snap[1].id, "q2");
    EXPECT_EQ(snap[1].sessionId, "s-1");
    EXPECT_EQ(snap[1].phase, QueryPhase::Solve);
    EXPECT_EQ(snap[1].workers, 4);
    EXPECT_GE(snap[1].elapsedMs, 0.0);

    rec.finish(first);
    rec.finish(first); // idempotent
    EXPECT_EQ(rec.inflight().size(), 1u);
    rec.finish(second);
    EXPECT_EQ(rec.inflight().size(), 0u);
}

TEST(FlightRecorder, ConcurrentRecordAndReadStaysBounded) {
    // The serving reality: worker threads record while a debug endpoint
    // lists and an operator polls stats. Run it raced (the TSan variant of
    // this test is where the locking is actually proven).
    FlightRecorder rec(/*capacity=*/16);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&rec, t] {
            for (int i = 0; i < 500; ++i) {
                const Verdict verdict = i % 7 == 0 ? Verdict::Error
                                        : i % 11 == 0 ? Verdict::Shed
                                                      : Verdict::Sat;
                rec.record(makeTrace("w" + std::to_string(t) + "-" +
                                         std::to_string(i),
                                     verdict, static_cast<double>(i % 50)));
                const auto entry =
                    rec.admit("in" + std::to_string(i), "", "",
                              QueryKind::Feasibility);
                entry->phase.store(QueryPhase::Solve,
                                   std::memory_order_relaxed);
                rec.finish(entry);
            }
        });
    }
    std::thread reader([&rec, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            EXPECT_LE(rec.size(), 16u);
            (void)rec.traces(8);
            (void)rec.inflight();
            (void)rec.stats();
            (void)rec.find("w0-13");
        }
    });
    for (std::thread& w : writers) w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_LE(rec.size(), 16u);
    EXPECT_EQ(rec.inflight().size(), 0u);
    EXPECT_EQ(rec.stats().recorded, 2000u);
    // Errors were pinned: under sustained overload the ring ends up holding
    // failures, not the healthy majority.
    EXPECT_GT(rec.stats().pinned, 0u);
}

} // namespace
} // namespace lar::reason
