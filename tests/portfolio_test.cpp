// Portfolio solving: clause exchange, import soundness, verdict agreement.
//
// The portfolio must never change an answer — only how fast it arrives. The
// suites here pin that down at every layer:
//   * sat::ClauseExchange delivers exactly what was published (minus honest
//     lap losses), never torn or invented clauses;
//   * a solver importing another solver's learnt clauses still agrees with
//     the brute-force oracle on small random instances;
//   * Engine verdicts with portfolioWorkers > 1 match single-solver verdicts
//     on the shared fuzz corpus, including budget-starved and cancelled runs;
//   * the Service budgets portfolio width against its pool and records the
//     granted width plus race figures in the v4 trace.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "catalog/catalog.hpp"
#include "fuzzcorpus.hpp"
#include "json/write.hpp"
#include "kb/objectives.hpp"
#include "reason/service.hpp"
#include "sat/clause_exchange.hpp"
#include "sat/solver.hpp"
#include "smt/backend.hpp"
#include "testsupport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lar {
namespace {

using sat::ClauseExchange;
using sat::ImportedClause;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;

std::vector<Lit> lits(std::initializer_list<int> dimacs) {
    std::vector<Lit> out;
    for (const int d : dimacs)
        out.push_back(Lit(std::abs(d) - 1, d < 0));
    return out;
}

// ------------------------------------------------------------- ClauseExchange

TEST(ClauseExchangeTest, DeliversToEveryOtherWorkerExactlyOnce) {
    ClauseExchange ex(3);
    ex.publish(0, lits({1, -2}), 2);
    ex.publish(0, lits({3, 4, -5}), 3);

    std::vector<ImportedClause> got;
    ex.collect(1, got);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].lits, lits({1, -2}));
    EXPECT_EQ(got[0].lbd, 2);
    EXPECT_EQ(got[1].lits, lits({3, 4, -5}));

    // Worker 2 sees the same clauses through its own cursor…
    got.clear();
    ex.collect(2, got);
    EXPECT_EQ(got.size(), 2u);
    // …the producer never reads its own ring…
    got.clear();
    ex.collect(0, got);
    EXPECT_TRUE(got.empty());
    // …and a second collect returns nothing new.
    ex.collect(1, got);
    EXPECT_TRUE(got.empty());
}

TEST(ClauseExchangeTest, OverlongAndEmptyClausesAreRejected) {
    ClauseExchange ex(2);
    std::vector<Lit> tooLong;
    for (int v = 0; v < static_cast<int>(ClauseExchange::kMaxLits) + 1; ++v)
        tooLong.push_back(Lit(v, false));
    ex.publish(0, tooLong, 5);
    ex.publish(0, {}, 1);

    std::vector<ImportedClause> got;
    ex.collect(1, got);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(ex.stats().rejected, 2u);
    EXPECT_EQ(ex.stats().published, 0u);
}

TEST(ClauseExchangeTest, LappedReaderLosesOldClausesHonestly) {
    ClauseExchange ex(2, /*slotsPerWorker=*/4);
    for (int i = 0; i < 10; ++i)
        ex.publish(0, lits({i + 1}), 1);

    std::vector<ImportedClause> got;
    ex.collect(1, got);
    // Only the newest ring-full survives; the rest are counted, not silently
    // dropped.
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].lits, lits({7}));
    EXPECT_EQ(got[3].lits, lits({10}));
    EXPECT_EQ(ex.stats().lost, 6u);
    EXPECT_EQ(ex.stats().collected, 4u);
}

TEST(ClauseExchangeTest, CollectMergesAllForeignRings) {
    ClauseExchange ex(3);
    ex.publish(0, lits({1}), 1);
    ex.publish(2, lits({-2}), 1);
    std::vector<ImportedClause> got;
    ex.collect(1, got);
    ASSERT_EQ(got.size(), 2u);
}

// ------------------------------------------------------ import soundness

/// Loads `cnf` into a fresh solver (shared variable numbering).
void loadInstance(Solver& solver, const sat::Cnf& cnf) {
    for (int v = 0; v < cnf.numVars; ++v) (void)solver.newVar();
    for (const auto& clause : cnf.clauses) (void)solver.addClause(clause);
}

TEST(ClauseImportSoundnessTest, ImportingLearntClausesPreservesVerdicts) {
    // Teacher solves a random instance exporting everything it learns;
    // student imports the whole haul through a ClauseExchange before its
    // own search. The student's verdict must still match the brute-force
    // oracle — on SAT its model must actually satisfy the formula.
    util::Rng rng(7);
    int satSeen = 0;
    int unsatSeen = 0;
    std::uint64_t importsSeen = 0;
    for (int round = 0; round < 40; ++round) {
        const sat::Cnf cnf = test::randomKSat(rng, /*numVars=*/14,
                                              /*numClauses=*/60, /*k=*/3);
        const std::optional<std::vector<bool>> oracle = test::bruteForceSat(cnf);

        ClauseExchange exchange(2);
        Solver teacher;
        sat::SolverOptions teacherOpts;
        teacherOpts.exportClauseFn =
            [&exchange](std::span<const Lit> clause, int lbd) {
                exchange.publish(0, clause, lbd);
            };
        teacherOpts.shareLbdMax = 1000; // export every learnt
        // Inprocessing solves these small instances before search: turn it
        // off so clauses actually cross the exchange.
        teacherOpts.simplify.enable = false;
        teacher.setOptions(teacherOpts);
        loadInstance(teacher, cnf);
        const SolveResult teacherVerdict = teacher.solve();

        Solver student;
        sat::SolverOptions studentOpts;
        studentOpts.importClausesFn =
            [&exchange](std::vector<ImportedClause>& out) {
                exchange.collect(1, out);
            };
        studentOpts.simplify.enable = false;
        student.setOptions(studentOpts);
        loadInstance(student, cnf);
        const SolveResult studentVerdict = student.solve();

        EXPECT_EQ(studentVerdict == SolveResult::Sat, oracle.has_value())
            << "round " << round;
        EXPECT_EQ(studentVerdict, teacherVerdict) << "round " << round;
        if (studentVerdict == SolveResult::Sat) {
            ++satSeen;
            std::vector<bool> model;
            for (int v = 0; v < cnf.numVars; ++v)
                model.push_back(student.modelValue(v));
            EXPECT_TRUE(test::satisfies(cnf, model)) << "round " << round;
        } else {
            ++unsatSeen;
        }
        importsSeen += student.stats().importedClauses;
    }
    // The ratio is near the phase transition: both verdicts must show up or
    // the oracle comparison above proved nothing. Likewise, plenty of
    // clauses must actually have crossed (easy rounds may teach nothing).
    EXPECT_GT(satSeen, 0);
    EXPECT_GT(unsatSeen, 0);
    EXPECT_GT(importsSeen, 100u);
}

TEST(ClauseImportSoundnessTest, StaleUnitImportsCannotCorruptTheSolver) {
    // Importing a unit clause the level-0 assignment already falsifies must
    // flip the solver to Unsat — the clause database said so — not crash or
    // mis-answer.
    Solver solver;
    const sat::Var x = solver.newVar();
    (void)solver.addClause(Lit(x, false)); // x is true at level 0
    bool imported = false;
    sat::SolverOptions opts;
    opts.importClausesFn = [&](std::vector<ImportedClause>& out) {
        if (imported) return;
        imported = true;
        out.push_back({{Lit(x, true)}, 1}); // ¬x: contradicts level 0
    };
    solver.setOptions(opts);
    EXPECT_EQ(solver.solve(), SolveResult::Unsat);
}

TEST(SolverThreadingContractTest, ReentrantSolveIsRejected) {
    // The threading contract in SolverOptions: solve() never runs twice
    // concurrently on one instance. The cheapest violation is re-entering
    // from a callback on the same thread — the guard must reject it.
    util::Rng rng(3);
    const sat::Cnf cnf = test::randomKSat(rng, 12, 70, 3); // dense → conflicts
    Solver solver;
    sat::SolverOptions opts;
    opts.shareLbdMax = 1000;
    opts.simplify.enable = false; // keep the instance alive into search
    opts.exportClauseFn =
        [&solver](std::span<const Lit>, int) { (void)solver.solve(); };
    solver.setOptions(opts);
    loadInstance(solver, cnf);
    EXPECT_THROW((void)solver.solve(), LogicError);
}

// ------------------------------------------------- portfolio verdict parity

reason::QueryOptions portfolioOptions(int workers) {
    reason::QueryOptions options;
    options.portfolioWorkers = workers;
    return options;
}

TEST(PortfolioBackendTest, MakeBackendSelectsPortfolioPastWidthOne) {
    smt::FormulaStore store;
    smt::BackendConfig config;
    config.portfolioWorkers = 3;
    const auto portfolio = smt::makeBackend(smt::BackendKind::Cdcl, store, config);
    EXPECT_EQ(portfolio->name(), "cdcl-portfolio");
    config.portfolioWorkers = 1;
    const auto single = smt::makeBackend(smt::BackendKind::Cdcl, store, config);
    EXPECT_EQ(single->name(), "cdcl");
}

TEST(PortfolioVerdictAgreementTest, FuzzCorpusFeasibilityMatchesSingleSolver) {
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
        util::Rng rng(seed);
        for (int round = 0; round < 4; ++round) {
            const kb::KnowledgeBase kb = fuzz::randomKb(rng);
            const reason::Problem p = fuzz::randomProblem(rng, kb);

            reason::Engine single(p);
            const reason::FeasibilityReport expected = single.checkFeasible();

            reason::Engine raced(p, portfolioOptions(3));
            const reason::FeasibilityReport actual = raced.checkFeasible();

            EXPECT_EQ(actual.feasible, expected.feasible)
                << "seed " << seed << " round " << round;
            const auto& pstats = raced.lastPortfolioStats();
            ASSERT_TRUE(pstats.has_value());
            EXPECT_EQ(pstats->workers, 3);
            EXPECT_GE(pstats->winner, 0);
        }
    }
}

TEST(PortfolioVerdictAgreementTest, OptimalCostsMatchSingleSolver) {
    // Lexicographic optimization is where clause sharing would be unsound —
    // the portfolio must disable it and still land on the same optimum.
    for (const std::uint64_t seed : {11u, 33u, 55u}) {
        util::Rng rng(seed + 500);
        const kb::KnowledgeBase kb = fuzz::randomKb(rng);
        const reason::Problem p = fuzz::randomProblem(rng, kb);

        const auto expected = reason::Engine(p).optimize();
        const auto actual = reason::Engine(p, portfolioOptions(3)).optimize();

        ASSERT_EQ(actual.has_value(), expected.has_value()) << "seed " << seed;
        if (actual.has_value())
            EXPECT_EQ(actual->objectiveCosts, expected->objectiveCosts)
                << "seed " << seed;
    }
}

TEST(PortfolioVerdictAgreementTest, EnumerationAfterOptimizeUsesSoleWinner) {
    // After an optimize() race only the winner holds the locked bounds; the
    // enumeration that follows must come out of that sole worker and match
    // the single-solver equivalence class size.
    util::Rng rng(22);
    const kb::KnowledgeBase kb = fuzz::randomKb(rng);
    const reason::Problem p = fuzz::randomProblem(rng, kb);

    reason::Engine single(p);
    const auto expected = single.enumerateDesigns(4, /*optimizeFirst=*/true);
    reason::Engine raced(p, portfolioOptions(2));
    const auto actual = raced.enumerateDesigns(4, /*optimizeFirst=*/true);
    EXPECT_EQ(actual.size(), expected.size());
}

TEST(PortfolioVerdictAgreementTest, BudgetStarvedRaceStaysUnknown) {
    // Every worker starves on a zero conflict budget: the race must report
    // Unknown (timedOut), never invent a verdict.
    util::Rng rng(44);
    const kb::KnowledgeBase kb = fuzz::randomKb(rng);
    const reason::Problem p = fuzz::randomProblem(rng, kb);

    reason::QueryOptions options = portfolioOptions(3);
    options.conflictBudget = 0;
    reason::Engine engine(p, options);
    const reason::FeasibilityReport report = engine.checkFeasible();
    EXPECT_FALSE(report.feasible);
    EXPECT_TRUE(report.timedOut);
    EXPECT_TRUE(engine.lastQueryUnknown());
}

TEST(PortfolioVerdictAgreementTest, PreCancelledRaceReturnsUnknown) {
    // A pigeonhole instance (8 pigeons, 7 holes) takes every CDCL config
    // through many conflicts before the Unsat proof, and the cancel flag is
    // polled at each one — a pre-cancelled race must give up with Unknown on
    // every worker rather than answer.
    constexpr int kHoles = 7;
    smt::FormulaStore store;
    smt::NodeId p[kHoles + 1][kHoles];
    for (int i = 0; i <= kHoles; ++i)
        for (int j = 0; j < kHoles; ++j)
            p[i][j] = store.var("p" + std::to_string(i) + "_" + std::to_string(j));

    std::atomic<bool> cancel{true}; // cancelled before the race starts
    smt::BackendConfig config;
    config.portfolioWorkers = 3;
    config.cancelFlag = &cancel;
    const auto backend = smt::makeBackend(smt::BackendKind::Cdcl, store, config);
    for (int i = 0; i <= kHoles; ++i) {
        std::vector<smt::NodeId> holes(std::begin(p[i]), std::end(p[i]));
        backend->addHard(store.mkOr(std::move(holes)));
    }
    for (int j = 0; j < kHoles; ++j)
        for (int a = 0; a <= kHoles; ++a)
            for (int b = a + 1; b <= kHoles; ++b)
                backend->addHard(
                    store.mkOr(store.mkNot(p[a][j]), store.mkNot(p[b][j])));

    EXPECT_EQ(backend->check(), smt::CheckStatus::Unknown);
    // Un-cancelled, the same backend proves the instance infeasible.
    cancel.store(false);
    EXPECT_EQ(backend->check(), smt::CheckStatus::Unsat);
}

// --------------------------------------------- verdict-unified service API

TEST(VerdictTest, NamesCoverEveryValue) {
    using reason::Verdict;
    EXPECT_STREQ(reason::verdictName(Verdict::Sat), "sat");
    EXPECT_STREQ(reason::verdictName(Verdict::Unsat), "unsat");
    EXPECT_STREQ(reason::verdictName(Verdict::Unknown), "unknown");
    EXPECT_STREQ(reason::verdictName(Verdict::TimedOut), "timed_out");
    EXPECT_STREQ(reason::verdictName(Verdict::Cancelled), "cancelled");
    EXPECT_STREQ(reason::verdictName(Verdict::Shed), "shed");
    EXPECT_STREQ(reason::verdictName(Verdict::Error), "error");
}

TEST(VerdictTest, GaveUpCoversExactlyTheIndefiniteVerdicts) {
    // gaveUp() is the one shared definition of "no proven verdict" — it
    // backs the historic `timed_out` wire field, so its coverage is load-
    // bearing: deadline expiry, budget exhaustion, and cancellation only.
    for (const auto v : {reason::Verdict::TimedOut, reason::Verdict::Unknown,
                         reason::Verdict::Cancelled})
        EXPECT_TRUE(reason::gaveUp(v)) << reason::verdictName(v);
    for (const auto v : {reason::Verdict::Sat, reason::Verdict::Unsat,
                         reason::Verdict::Shed, reason::Verdict::Error})
        EXPECT_FALSE(reason::gaveUp(v)) << reason::verdictName(v);
}

class PortfolioServiceTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    reason::QueryRequest feasibilityRequest(const std::string& id) const {
        reason::QueryRequest r;
        r.id = id;
        r.kind = reason::QueryKind::Feasibility;
        r.problem = reason::makeDefaultProblem(*kb_);
        r.problem.hardware[kb::HardwareClass::Server].count = 60;
        r.problem.hardware[kb::HardwareClass::Switch].count = 8;
        r.problem.hardware[kb::HardwareClass::Nic].count = 60;
        r.problem.workloads = {catalog::makeInferenceWorkload()};
        r.problem.objectivePriority = {kb::kObjLatency};
        return r;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* PortfolioServiceTest::kb_ = nullptr;

TEST_F(PortfolioServiceTest, WidthIsBudgetedAgainstThePool) {
    // An idle 4-worker pool grants an 8-wide request exactly 4 threads: its
    // own plus three extras. The trace records the granted width, not the
    // requested one.
    reason::ServiceOptions options;
    options.workers = 4;
    reason::Service service(options);
    reason::QueryRequest r = feasibilityRequest("wide");
    r.options.portfolioWorkers = 8;
    const reason::QueryResult result = service.run(r);
    EXPECT_EQ(result.verdict, reason::Verdict::Sat);
    EXPECT_EQ(result.trace.portfolioWorkers, 4);
    EXPECT_FALSE(result.trace.portfolioWinner.empty());
}

TEST_F(PortfolioServiceTest, SingleWorkerPoolDegradesToPlainSolve) {
    reason::ServiceOptions options;
    options.workers = 1;
    reason::Service service(options);
    reason::QueryRequest r = feasibilityRequest("narrow");
    r.options.portfolioWorkers = 4;
    const reason::QueryResult result = service.run(r);
    EXPECT_EQ(result.verdict, reason::Verdict::Sat);
    // Budget exhausted by the query's own thread → no portfolio at all.
    EXPECT_EQ(result.trace.portfolioWorkers, 1);
    EXPECT_TRUE(result.trace.portfolioWinner.empty());
}

TEST_F(PortfolioServiceTest, TraceV5CarriesVerdictAndPortfolioFigures) {
    reason::ServiceOptions options;
    options.workers = 4;
    reason::Service service(options);
    reason::QueryRequest r = feasibilityRequest("traced");
    r.options.portfolioWorkers = 3;
    const reason::QueryResult result = service.run(r);
    ASSERT_EQ(result.verdict, reason::Verdict::Sat);

    const json::Value v = reason::toJson(result.trace);
    EXPECT_EQ(v.at("schema").asInt(), reason::kQueryTraceSchemaVersion);
    EXPECT_EQ(v.at("verdict").asString(), "sat");
    // Legacy booleans are still emitted, derived from the verdict.
    EXPECT_FALSE(v.at("timed_out").asBool());
    EXPECT_FALSE(v.at("shed").asBool());
    EXPECT_FALSE(v.at("cancelled").asBool());
    ASSERT_TRUE(v.asObject().contains("portfolio"));
    const json::Value& pf = v.at("portfolio");
    EXPECT_EQ(pf.at("workers").asInt(), 3);
    EXPECT_FALSE(pf.at("winner").asString().empty());
}

TEST_F(PortfolioServiceTest, BatchWithPortfolioAgreesWithSingleWidth) {
    reason::ServiceOptions options;
    options.workers = 4;
    reason::Service wide(options);
    reason::Service narrow; // defaults, queries run width 1

    std::vector<reason::QueryRequest> requests;
    for (int i = 0; i < 4; ++i) {
        reason::QueryRequest r = feasibilityRequest("q" + std::to_string(i));
        r.options.portfolioWorkers = 2;
        requests.push_back(std::move(r));
    }
    const auto raced = wide.runBatch(requests);
    for (reason::QueryRequest& r : requests) r.options.portfolioWorkers = 1;
    const auto plain = narrow.runBatch(requests);
    ASSERT_EQ(raced.size(), plain.size());
    for (std::size_t i = 0; i < raced.size(); ++i)
        EXPECT_EQ(raced[i].verdict, plain[i].verdict) << raced[i].id;
}

} // namespace
} // namespace lar
