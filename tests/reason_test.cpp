#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"

namespace lar::reason {
namespace {

using catalog::kCapDetectQueueLength;
using kb::Category;
using kb::HardwareClass;

class ReasonTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    /// The §2.3 case-study problem shape.
    Problem caseStudyProblem() const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[HardwareClass::Server].count = 60;
        p.hardware[HardwareClass::Switch].count = 8;
        p.hardware[HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                               kb::kObjMonitoring};
        p.requiredCapabilities = {kCapDetectQueueLength};
        return p;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ReasonTest::kb_ = nullptr;

TEST_F(ReasonTest, DefaultProblemIsFeasible) {
    Problem p = makeDefaultProblem(*kb_);
    Engine engine(p);
    EXPECT_TRUE(engine.checkFeasible().feasible);
}

TEST_F(ReasonTest, CaseStudyIsFeasibleAndValid) {
    const Problem p = caseStudyProblem();
    Engine engine(p);
    const auto design = engine.synthesize();
    ASSERT_TRUE(design.has_value());
    const auto violations = validateDesign(p, *design);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_F(ReasonTest, OptimizedDesignValidatesAndFillsRequiredRoles) {
    const Problem p = caseStudyProblem();
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_TRUE(design->chosen.count(Category::NetworkStack));
    EXPECT_TRUE(design->chosen.count(Category::CongestionControl));
    // Required capability forces a monitoring-capable system.
    const auto violations = validateDesign(p, *design);
    EXPECT_TRUE(violations.empty()) << violations.front();
    // Lexicographic costs reported for each level (+ implicit parsimony).
    EXPECT_EQ(design->objectiveCosts.size(), 4u);
}

TEST_F(ReasonTest, PerformanceBoundForcesCongaAndP4Switch) {
    // Listing 3's bound (beat PacketSpray on load balancing) can only be met
    // by CONGA in the catalog, which needs a P4 switch: the §2.3 ripple.
    const Problem p = caseStudyProblem();
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_EQ(design->chosen.at(Category::LoadBalancer), "CONGA");
    const kb::HardwareSpec& sw =
        kb_->hardware(design->hardwareModel.at(HardwareClass::Switch));
    EXPECT_TRUE(sw.boolAttr(kb::kAttrP4Supported).value_or(false));
}

TEST_F(ReasonTest, InfeasibilityExplainedWithRuleNames) {
    Problem p = caseStudyProblem();
    // Pin a non-P4 switch: the load-balancing bound (CONGA) now conflicts.
    p.hardware[HardwareClass::Switch].pinnedModel = "Cisco Catalyst 9500-40X";
    Engine engine(p);
    const FeasibilityReport report = engine.checkFeasible();
    ASSERT_FALSE(report.feasible);
    ASSERT_FALSE(report.conflictingRules.empty());
    const bool mentionsPin = std::any_of(
        report.conflictingRules.begin(), report.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("pinned hardware") != std::string::npos;
        });
    // The 10G fixed-function switch breaks the design in more than one way
    // (the CONGA bound needs P4; the queue-length goal needs SmartNICs that
    // outpace the 10G ports) — the core must surface at least one of them.
    const bool mentionsSubstance = std::any_of(
        report.conflictingRules.begin(), report.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("performance bound") != std::string::npos ||
                   rule.find("detect_queue_length") != std::string::npos;
        });
    EXPECT_TRUE(mentionsPin);
    EXPECT_TRUE(mentionsSubstance);
}

TEST_F(ReasonTest, MinimalConflictIsSmallAndIrreducible) {
    Problem p = caseStudyProblem();
    p.hardware[HardwareClass::Switch].pinnedModel = "Cisco Catalyst 9500-40X";
    Engine plain(p);
    const FeasibilityReport full = plain.checkFeasible();
    ASSERT_FALSE(full.feasible);

    Engine minimal(p);
    const FeasibilityReport shrunk = minimal.explainMinimalConflict();
    ASSERT_FALSE(shrunk.feasible);
    EXPECT_FALSE(shrunk.conflictingRules.empty());
    EXPECT_LE(shrunk.conflictingRules.size(), full.conflictingRules.size());
    // Each remaining rule must name a concrete entity; "minimal" can still
    // be a few dozen rules when the explanation has to exclude every
    // SmartNIC model one by one.
    for (const std::string& rule : shrunk.conflictingRules)
        EXPECT_FALSE(rule.empty());
}

TEST_F(ReasonTest, ResearchGradeExclusion) {
    Problem p = caseStudyProblem();
    p.forbidResearchGrade = true;
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    for (const auto& [category, name] : design->chosen)
        EXPECT_FALSE(kb_->system(name).researchGrade) << name;
}

TEST_F(ReasonTest, PinnedSystemIsKept) {
    Problem p = caseStudyProblem();
    p.pinnedSystems["Sonata"] = true;
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_TRUE(design->uses("Sonata"));
    // Sonata requires a P4 switch; the ripple must hold.
    const kb::HardwareSpec& sw =
        kb_->hardware(design->hardwareModel.at(HardwareClass::Switch));
    EXPECT_TRUE(sw.boolAttr(kb::kAttrP4Supported).value_or(false));
    EXPECT_TRUE(validateDesign(p, *design).empty());
}

TEST_F(ReasonTest, ForbiddenSystemIsAvoided) {
    Problem p = caseStudyProblem();
    p.pinnedSystems["CONGA"] = false;
    Engine engine(p);
    // Without CONGA nothing beats PacketSpray: infeasible.
    EXPECT_FALSE(engine.checkFeasible().feasible);
}

TEST_F(ReasonTest, FactPinReproducesPfcFloodingStory) {
    // §2.2: the environment already floods (e.g. a learning bridge is in
    // place); RoCEv2's expert rule must then exclude it.
    Problem p = makeDefaultProblem(*kb_);
    p.optionalCategories.insert(Category::TransportProtocol);
    p.pinnedFacts[catalog::kFactFlooding] = true;
    p.pinnedSystems["RoCEv2"] = true;
    Engine engine(p);
    const FeasibilityReport report = engine.checkFeasible();
    ASSERT_FALSE(report.feasible);
    const bool mentionsRoce = std::any_of(
        report.conflictingRules.begin(), report.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("RoCEv2") != std::string::npos;
        });
    EXPECT_TRUE(mentionsRoce);
    // Without the pinned flooding fact, RoCEv2 deploys fine.
    Problem ok = makeDefaultProblem(*kb_);
    ok.pinnedSystems["RoCEv2"] = true;
    EXPECT_TRUE(Engine(ok).checkFeasible().feasible);
}

TEST_F(ReasonTest, FloodingProviderConflictsWithRoce) {
    // Even unpinned: choosing Linux-Bridge (provides flooding) together with
    // RoCEv2 must be impossible.
    Problem p = makeDefaultProblem(*kb_);
    p.pinnedSystems["RoCEv2"] = true;
    p.pinnedSystems["Linux-Bridge"] = true;
    Engine engine(p);
    EXPECT_FALSE(engine.checkFeasible().feasible);
}

TEST_F(ReasonTest, ResourceCapacityBindsCores) {
    Problem p = caseStudyProblem();
    // 10 small servers cannot host 2800 workload cores.
    p.hardware[HardwareClass::Server].count = 10;
    p.hardware[HardwareClass::Server].pinnedModel = "Xeon Skylake-SP 16c 1U";
    Engine engine(p);
    const FeasibilityReport report = engine.checkFeasible();
    ASSERT_FALSE(report.feasible);
    const bool mentionsCores = std::any_of(
        report.conflictingRules.begin(), report.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("cores") != std::string::npos;
        });
    EXPECT_TRUE(mentionsCores);
}

TEST_F(ReasonTest, BudgetConstraintRespected) {
    Problem p = caseStudyProblem();
    p.maxHardwareCostUsd = 700000;
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_LE(design->hardwareCostUsd, 700000 + 1);
    EXPECT_TRUE(validateDesign(p, *design).empty());
}

TEST_F(ReasonTest, ImpossibleBudgetExplained) {
    Problem p = caseStudyProblem();
    p.maxHardwareCostUsd = 1000; // nothing fits
    Engine engine(p);
    const FeasibilityReport report = engine.checkFeasible();
    ASSERT_FALSE(report.feasible);
    const bool mentionsBudget = std::any_of(
        report.conflictingRules.begin(), report.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("budget") != std::string::npos;
        });
    EXPECT_TRUE(mentionsBudget);
}

TEST_F(ReasonTest, HardwareCostObjectiveReducesCost) {
    Problem cheap = caseStudyProblem();
    cheap.objectivePriority = {kb::kObjHardwareCost};
    const auto cheapDesign = Engine(cheap).optimize();
    Problem indifferent = caseStudyProblem();
    indifferent.objectivePriority = {};
    indifferent.preferMinimalDesign = false;
    const auto anyDesign = Engine(indifferent).synthesize();
    ASSERT_TRUE(cheapDesign.has_value());
    ASSERT_TRUE(anyDesign.has_value());
    EXPECT_LE(cheapDesign->hardwareCostUsd, anyDesign->hardwareCostUsd);
}

TEST_F(ReasonTest, ParsimonySkipsUselessCategories) {
    Problem p = makeDefaultProblem(*kb_);
    p.objectivePriority = {};
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    // Only the two required categories should be filled.
    EXPECT_EQ(design->chosen.size(), 2u);
}

TEST_F(ReasonTest, EnumerateDistinctDesigns) {
    Problem p = makeDefaultProblem(*kb_);
    Engine engine(p);
    const auto designs = engine.enumerateDesigns(5);
    ASSERT_GE(designs.size(), 2u);
    for (std::size_t i = 0; i < designs.size(); ++i) {
        EXPECT_TRUE(validateDesign(p, designs[i]).empty());
        for (std::size_t j = i + 1; j < designs.size(); ++j)
            EXPECT_FALSE(designs[i].diff(designs[j]).empty())
                << "designs " << i << " and " << j << " identical";
    }
}

TEST_F(ReasonTest, EnumerateWithinOptimalClass) {
    Problem p = caseStudyProblem();
    Engine engine(p);
    const auto designs = engine.enumerateDesigns(3, /*optimizeFirst=*/true);
    ASSERT_GE(designs.size(), 1u);
    // Every member of the optimal class must still satisfy the bound.
    for (const Design& d : designs)
        EXPECT_EQ(d.chosen.at(Category::LoadBalancer), "CONGA");
}

TEST_F(ReasonTest, WorkloadPropertyUnlocksAnnulus) {
    // Annulus is only deployable when WAN and DC traffic compete (§4.1).
    Problem without = makeDefaultProblem(*kb_);
    without.hardware[HardwareClass::Server].count = 40;
    without.hardware[HardwareClass::Nic].count = 40;
    without.pinnedSystems["Annulus"] = true;
    EXPECT_FALSE(Engine(without).checkFeasible().feasible);

    Problem with = without;
    with.workloads = {catalog::makeVideoWorkload()}; // wan_dc_traffic_compete
    EXPECT_TRUE(Engine(with).checkFeasible().feasible);
}

TEST_F(ReasonTest, CompareScenariosShowsCxlRipple) {
    // §5.1 query 3: is CXL memory pooling worthwhile? Compare a problem
    // restricted to non-CXL servers vs one allowing CXL under a
    // memory-intensive workload mix.
    Problem base = caseStudyProblem();
    base.workloads.push_back(catalog::makeStorageWorkload());
    Problem noCxl = base;
    for (const kb::HardwareSpec* h : kb_->byClass(HardwareClass::Server))
        if (!h->boolAttr(kb::kAttrCxlSupported).value_or(false))
            noCxl.hardware[HardwareClass::Server].candidateModels.push_back(
                h->model);
    const ScenarioComparison cmp = compareScenarios(noCxl, base);
    ASSERT_TRUE(cmp.a.has_value());
    ASSERT_TRUE(cmp.b.has_value());
    // Both feasible; the comparison lists any ripple as concrete changes.
    for (const std::string& change : cmp.changes) EXPECT_FALSE(change.empty());
}

TEST_F(ReasonTest, RetentionAnalysisSonata) {
    // §5.1 query 2: keep Sonata unless there are huge benefits.
    Problem p = caseStudyProblem();
    const RetentionReport report = analyzeRetention(p, "Sonata");
    ASSERT_TRUE(report.keeping.has_value());
    ASSERT_TRUE(report.unpinned.has_value());
    EXPECT_TRUE(report.keeping->uses("Sonata"));
    ASSERT_FALSE(report.extraCostPerObjective.empty());
    // Keeping a feasible system can never *improve* the free optimum.
    for (std::size_t i = 0; i < report.extraCostPerObjective.size(); ++i) {
        if (report.extraCostPerObjective[i] != 0) {
            EXPECT_GT(report.extraCostPerObjective[i], 0);
            break;
        }
    }
}

TEST_F(ReasonTest, ValueOfInformationShenangoDemikernel) {
    // §3.1: is measuring Shenango vs Demikernel isolation worth it? Only if
    // the answer would change the design.
    Problem p = makeDefaultProblem(*kb_);
    p.objectivePriority = {kb::kObjIsolation};
    const InformationValue value =
        valueOfInformation(p, kb::kObjIsolation, "Shenango", "Demikernel");
    ASSERT_TRUE(value.ifABetter.has_value());
    ASSERT_TRUE(value.ifBBetter.has_value());
    // The engine answers decisively either way; the flag tells the architect
    // whether running the measurement pays off.
    if (value.changesDesign) {
        EXPECT_FALSE(value.ifABetter->diff(*value.ifBBetter).empty());
    } else {
        EXPECT_TRUE(value.ifABetter->diff(*value.ifBBetter).empty());
    }
}

TEST_F(ReasonTest, DesignDiffListsChanges) {
    Design a;
    a.chosen[Category::NetworkStack] = "Linux";
    a.hardwareModel[HardwareClass::Nic] = "N1";
    Design b;
    b.chosen[Category::NetworkStack] = "Snap";
    b.hardwareModel[HardwareClass::Nic] = "N1";
    b.enabledOptions.insert("pony_enabled");
    const auto changes = a.diff(b);
    ASSERT_EQ(changes.size(), 2u);
    EXPECT_NE(changes[0].find("Linux -> Snap"), std::string::npos);
    EXPECT_NE(changes[1].find("pony_enabled"), std::string::npos);
    EXPECT_TRUE(a.diff(a).empty());
}

TEST_F(ReasonTest, ValidatorCatchesBrokenDesigns) {
    const Problem p = caseStudyProblem();
    Engine engine(p);
    auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    // Sabotage: swap the load balancer to ECMP (violates the bound).
    Design broken = *design;
    broken.chosen[Category::LoadBalancer] = "ECMP";
    const auto violations = validateDesign(p, broken);
    EXPECT_FALSE(violations.empty());
}

TEST_F(ReasonTest, CommonSenseOffAllowsIncoherentDesigns) {
    // §3.4: without common-sense rules the engine may return designs with
    // no network stack at all.
    Problem p = makeDefaultProblem(*kb_);
    p.commonSenseRules = false;
    p.preferMinimalDesign = true;
    p.objectivePriority = {};
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_TRUE(design->chosen.empty()); // nothing forces anything
}

// Property suite across both backends.
class ReasonBackendTest : public ::testing::TestWithParam<smt::BackendKind> {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }
    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ReasonBackendTest::kb_ = nullptr;

TEST_P(ReasonBackendTest, OptimalCostsAgreeAcrossBackends) {
    Problem p = makeDefaultProblem(*kb_);
    p.hardware[HardwareClass::Server].count = 40;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjMonitoring};
    Engine engine(p, withBackend(GetParam()));
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    EXPECT_TRUE(validateDesign(p, *design).empty());
    // The cdcl backend's result is the reference; both must agree on costs.
    Engine reference(p, withBackend(smt::BackendKind::Cdcl));
    const auto refDesign = reference.optimize();
    ASSERT_TRUE(refDesign.has_value());
    EXPECT_EQ(design->objectiveCosts, refDesign->objectiveCosts);
}

std::vector<smt::BackendKind> reasonBackends() {
    std::vector<smt::BackendKind> kinds{smt::BackendKind::Cdcl};
    if (smt::haveZ3()) kinds.push_back(smt::BackendKind::Z3);
    return kinds;
}

INSTANTIATE_TEST_SUITE_P(Backends, ReasonBackendTest,
                         ::testing::ValuesIn(reasonBackends()),
                         [](const ::testing::TestParamInfo<smt::BackendKind>& info) {
                             return info.param == smt::BackendKind::Cdcl ? "cdcl"
                                                                         : "z3";
                         });

} // namespace
} // namespace lar::reason
