// SessionManager lifecycle: leases, eviction, shedding, drain, and the
// expiry-vs-in-flight-ask race. Pure library tests (no HTTP) so the same
// file runs under ThreadSanitizer as session_tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "catalog/catalog.hpp"
#include "reason/service.hpp"
#include "reason/session.hpp"

namespace lar::reason {
namespace {

class SessionTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    Problem caseStudy(int servers = 60) const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[kb::HardwareClass::Server].count = servers;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        return p;
    }

    static ServiceOptions lightService() {
        ServiceOptions options;
        options.workers = 1;
        return options;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* SessionTest::kb_ = nullptr;

TEST_F(SessionTest, CreateAskRenewCloseLifecycle) {
    Service service(lightService());
    SessionManager manager(service);

    const auto created = manager.create(caseStudy());
    ASSERT_FALSE(created.shed);
    ASSERT_FALSE(created.id.empty());
    EXPECT_EQ(created.leaseTtlMs, 60'000);
    EXPECT_EQ(manager.activeSessions(), 1U);

    const auto outcome = manager.ask(created.id, {});
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->answer.verdict, Verdict::Sat);
    EXPECT_TRUE(outcome->answer.verdict == Verdict::Sat);
    EXPECT_EQ(outcome->trace.kind, QueryKind::Feasibility);
    EXPECT_EQ(outcome->trace.verdict, Verdict::Sat);
    EXPECT_EQ(outcome->trace.id, created.id + "#1");

    EXPECT_TRUE(manager.renew(created.id));
    EXPECT_TRUE(manager.close(created.id));
    EXPECT_EQ(manager.activeSessions(), 0U);
    EXPECT_FALSE(manager.close(created.id)); // idempotence: already gone
}

TEST_F(SessionTest, UnknownIdAnswersNullopt) {
    Service service(lightService());
    SessionManager manager(service);
    EXPECT_FALSE(manager.ask("s-nope", {}).has_value());
    EXPECT_FALSE(manager.renew("s-nope"));
    EXPECT_FALSE(manager.close("s-nope"));
}

TEST_F(SessionTest, UnknownVariationNamesAreStructuredErrors) {
    Service service(lightService());
    SessionManager manager(service);
    const auto created = manager.create(caseStudy());
    ASSERT_FALSE(created.shed);

    Variation bad;
    bad.systems["Ghost"] = true;
    const auto outcome = manager.ask(created.id, bad);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->answer.verdict, Verdict::Error);
    ASSERT_EQ(outcome->answer.unknownNames.size(), 1U);
    EXPECT_EQ(outcome->answer.unknownNames[0], "system/Ghost");
    // The session stays usable after a client mistake.
    EXPECT_TRUE(manager.ask(created.id, {})->answer.verdict == Verdict::Sat);
}

TEST_F(SessionTest, LeaseExpiryEvicts) {
    Service service(lightService());
    SessionOptions options;
    options.leaseTtl = std::chrono::milliseconds(40);
    options.sweepInterval = std::chrono::milliseconds(10);
    SessionManager manager(service, options);

    const auto created = manager.create(caseStudy());
    ASSERT_FALSE(created.shed);
    for (int i = 0; i < 100 && manager.activeSessions() > 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(manager.activeSessions(), 0U);
    EXPECT_FALSE(manager.ask(created.id, {}).has_value());
}

TEST_F(SessionTest, AsksKeepTheLeaseAlive) {
    Service service(lightService());
    SessionOptions options;
    options.leaseTtl = std::chrono::milliseconds(300);
    options.sweepInterval = std::chrono::milliseconds(20);
    // This test times asks against the lease; keep each ask cheap and
    // predictable by skipping the solver's inprocessing round (which under
    // ThreadSanitizer can alone outlast the deliberately short TTL).
    options.query.simplify = false;
    SessionManager manager(service, options);

    const auto created = manager.create(caseStudy());
    ASSERT_FALSE(created.shed);
    // 10 asks ~50ms apart span more than a lease lifetime; each renews.
    // The lease is deliberately several times the ask cadence: under
    // ThreadSanitizer on a loaded single-CPU runner one slow ask must not
    // eat the whole TTL.
    for (int i = 0; i < 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ASSERT_TRUE(manager.ask(created.id, {}).has_value()) << "ask " << i;
    }
    EXPECT_EQ(manager.activeSessions(), 1U);
}

TEST_F(SessionTest, SessionCapSheds) {
    Service service(lightService());
    SessionOptions options;
    options.maxSessions = 2;
    SessionManager manager(service, options);

    const auto first = manager.create(caseStudy(60));
    const auto second = manager.create(caseStudy(61));
    ASSERT_FALSE(first.shed);
    ASSERT_FALSE(second.shed);
    const auto third = manager.create(caseStudy(62));
    EXPECT_TRUE(third.shed);
    EXPECT_TRUE(third.id.empty());

    ASSERT_TRUE(manager.close(first.id));
    const auto fourth = manager.create(caseStudy(62));
    EXPECT_FALSE(fourth.shed);
}

TEST_F(SessionTest, DrainEvictsEverythingAndServiceDrainSheds) {
    Service service(lightService());
    SessionManager manager(service);
    const auto a = manager.create(caseStudy(60));
    const auto b = manager.create(caseStudy(61));
    ASSERT_FALSE(a.shed);
    ASSERT_FALSE(b.shed);

    manager.drain();
    EXPECT_EQ(manager.activeSessions(), 0U);
    EXPECT_FALSE(manager.ask(a.id, {}).has_value());
    EXPECT_FALSE(manager.ask(b.id, {}).has_value());

    // drain() alone does not close the door — the Service does.
    EXPECT_FALSE(manager.create(caseStudy()).shed);
    service.beginDrain();
    EXPECT_TRUE(manager.create(caseStudy()).shed);
}

TEST_F(SessionTest, CloseChainsWarmStartToNextSession) {
    ServiceOptions serviceOptions = lightService();
    serviceOptions.warmStartCapacity = 4;
    Service service(serviceOptions);
    SessionManager manager(service);

    const Problem problem = caseStudy();
    const auto first = manager.create(problem);
    ASSERT_FALSE(first.shed);
    EXPECT_FALSE(first.warmStarted); // nothing cached yet
    ASSERT_TRUE(manager.ask(first.id, {}).has_value());
    ASSERT_TRUE(manager.close(first.id));

    const auto second = manager.create(problem);
    ASSERT_FALSE(second.shed);
    EXPECT_TRUE(second.warmStarted);
    EXPECT_GT(second.warmStartClauses, 0U);
    EXPECT_TRUE(second.cacheHit); // compilation cache also hits
    ASSERT_TRUE(manager.ask(second.id, {}).has_value());
}

// The race this pins down: the sweeper evicts a session while an ask is
// in flight on it. The shared_ptr keeps the Session alive, the ask
// completes normally (or the id is already gone and ask reports nullopt);
// nothing crashes, deadlocks, or races (session_tsan runs this file under
// ThreadSanitizer).
TEST_F(SessionTest, ExpiryRacesInFlightAsksSafely) {
    Service service(lightService());
    SessionOptions options;
    options.leaseTtl = std::chrono::milliseconds(2);
    options.sweepInterval = std::chrono::milliseconds(1);
    SessionManager manager(service, options);

    std::atomic<int> answered{0};
    std::atomic<int> evicted{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(400);
            while (std::chrono::steady_clock::now() < deadline) {
                const auto created = manager.create(caseStudy(60 + t));
                if (created.shed) continue;
                // Ask until the sweeper takes the session away.
                while (true) {
                    const auto outcome = manager.ask(created.id, {});
                    if (!outcome.has_value()) {
                        evicted.fetch_add(1, std::memory_order_relaxed);
                        break;
                    }
                    EXPECT_NE(outcome->answer.verdict, Verdict::Error);
                    answered.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& worker : workers) worker.join();
    EXPECT_GT(answered.load(), 0);
    EXPECT_GT(evicted.load(), 0);
    manager.drain();
    EXPECT_EQ(manager.activeSessions(), 0U);
}

} // namespace
} // namespace lar::reason
