// Robustness suite: resource budgets, cooperative cancellation, failure
// isolation, admission control (shedding), bounded retry, and backend
// fallback — driven deterministically through util::FaultInjector.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "obs/metrics.hpp"
#include "reason/service.hpp"
#include "sat/solver.hpp"
#include "testsupport.hpp"
#include "util/fault_injector.hpp"
#include "util/rng.hpp"

namespace lar::reason {
namespace {

using kb::HardwareClass;
using Clock = std::chrono::steady_clock;

double msSince(const Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

using sat::loadCnf;

class ServiceFaultTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }
    void SetUp() override { util::FaultInjector::global().reset(); }
    void TearDown() override { util::FaultInjector::global().reset(); }

    Problem caseStudyProblem() const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[HardwareClass::Server].count = 60;
        p.hardware[HardwareClass::Switch].count = 8;
        p.hardware[HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                               kb::kObjMonitoring};
        return p;
    }

    QueryRequest request(QueryKind kind, Problem problem,
                         const std::string& id = "") const {
        QueryRequest r;
        r.id = id;
        r.kind = kind;
        r.problem = std::move(problem);
        return r;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ServiceFaultTest::kb_ = nullptr;

// ---------------------------------------------------------------- budgets

TEST(SolverBudgets, ConflictBudgetStopsWithUnknown) {
    // A near-phase-transition instance conflicts early; a 2-conflict budget
    // must stop the search with the right StopReason, never a verdict.
    util::Rng rng(7);
    const sat::Cnf cnf = test::randomKSat(rng, 120, 516, 3);
    sat::SolverOptions opts;
    opts.conflictBudget = 2;
    sat::Solver s(opts);
    loadCnf(s, cnf);
    const sat::SolveResult result = s.solve();
    ASSERT_EQ(result, sat::SolveResult::Unknown);
    EXPECT_EQ(s.stopReason(), sat::StopReason::ConflictBudget);
    EXPECT_LE(s.stats().conflicts, 3u);

    // The solver stays usable: lifting the budget finishes the instance.
    opts.conflictBudget = -1;
    s.setOptions(opts);
    EXPECT_NE(s.solve(), sat::SolveResult::Unknown);
    EXPECT_EQ(s.stopReason(), sat::StopReason::None);
}

TEST(SolverBudgets, PropagationBudgetStopsWithUnknown) {
    util::Rng rng(11);
    const sat::Cnf cnf = test::randomKSat(rng, 150, 645, 3);
    sat::SolverOptions opts;
    opts.propagationBudget = 40;
    sat::Solver s(opts);
    loadCnf(s, cnf);
    ASSERT_EQ(s.solve(), sat::SolveResult::Unknown);
    EXPECT_EQ(s.stopReason(), sat::StopReason::PropagationBudget);
    EXPECT_GE(s.stats().propagations, 40u);
}

TEST(SolverBudgets, MemoryBudgetForcesReductionThenStops) {
    // A 0 MiB learnt-clause cap: the first learnt clause exceeds it, the
    // forced reduction cannot get under it (recent learnts are protected),
    // so the solver stops with MemoryBudget rather than thrash.
    util::Rng rng(13);
    const sat::Cnf cnf = test::randomKSat(rng, 120, 516, 3);
    sat::SolverOptions opts;
    opts.memoryBudgetMb = 0;
    sat::Solver s(opts);
    loadCnf(s, cnf);
    const sat::SolveResult result = s.solve();
    if (result == sat::SolveResult::Unknown)
        EXPECT_EQ(s.stopReason(), sat::StopReason::MemoryBudget);
    else // solved before the first learnt clause mattered
        EXPECT_EQ(s.stopReason(), sat::StopReason::None);
}

TEST(SolverBudgets, BudgetsOffByDefault) {
    util::Rng rng(17);
    const sat::Cnf cnf = test::randomKSat(rng, 80, 340, 3);
    sat::Solver s;
    loadCnf(s, cnf);
    EXPECT_NE(s.solve(), sat::SolveResult::Unknown);
}

// ----------------------------------------------------------- cancellation

TEST(SolverCancellation, FlagStopsSolveWithinPollingLatency) {
    // The acceptance bar: once the flag flips, the solver must return
    // within 50 ms (it polls every conflict, every 256 decisions, and every
    // 1024 propagations). Solve hard instances in a loop so the worker is
    // guaranteed to be mid-search whenever the flip lands.
    std::atomic<bool> cancel{false};
    std::atomic<bool> sawCancelled{false};
    std::atomic<double> returnDelayMs{-1.0};
    Clock::time_point flippedAt{};

    std::thread worker([&] {
        util::Rng rng(23);
        sat::SolverOptions opts;
        opts.cancelFlag = &cancel;
        for (int round = 0; round < 1000000; ++round) {
            const sat::Cnf cnf = test::randomKSat(rng, 220, 946, 3);
            sat::Solver s(opts);
            loadCnf(s, cnf);
            const sat::SolveResult result = s.solve();
            if (result == sat::SolveResult::Unknown &&
                s.stopReason() == sat::StopReason::Cancelled) {
                sawCancelled.store(true);
                return;
            }
            if (cancel.load()) return; // flipped between solves
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    flippedAt = Clock::now();
    cancel.store(true);
    worker.join();
    returnDelayMs.store(msSince(flippedAt));

    EXPECT_TRUE(sawCancelled.load())
        << "worker never observed the cancellation mid-solve";
    EXPECT_LT(returnDelayMs.load(), 50.0)
        << "cancellation latency exceeded the 50 ms budget";
}

TEST_F(ServiceFaultTest, CancelledBeforeStartSkipsSolving) {
    std::atomic<bool> cancel{true}; // already cancelled at submission
    Service service;
    QueryRequest r = request(QueryKind::Optimize, caseStudyProblem(), "c");
    r.options.cancelFlag = &cancel;
    const QueryResult result = service.run(r);
    EXPECT_TRUE(result.verdict == Verdict::Cancelled);
    EXPECT_TRUE(gaveUp(result.verdict));
    EXPECT_FALSE(result.verdict == Verdict::Sat);
    EXPECT_TRUE(result.verdict != Verdict::Error);
    EXPECT_EQ(result.trace.verdict, Verdict::Cancelled);
    EXPECT_EQ(result.trace.solveMs, 0.0); // never reached a backend
    EXPECT_EQ(result.trace.stats.decisions, 0u);
}

// ------------------------------------------------------ failure isolation

TEST_F(ServiceFaultTest, OneInjectedFaultDoesNotPoisonTheBatch) {
    // 1-of-N determinism: with a single worker the Nth consultation of the
    // solve site is exactly the 3rd query. N results must come back,
    // N−1 answered and 1 carrying the error.
    util::FaultInjector::global().armNthHit("service.solve", 3);
    ServiceOptions options;
    options.workers = 1;
    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 6; ++i)
        requests.push_back(request(QueryKind::Feasibility, p,
                                   "q" + std::to_string(i)));
    const std::vector<QueryResult> results = service.runBatch(requests);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_FALSE(results[i].verdict != Verdict::Error);
            EXPECT_EQ(results[i].error.errorKind, "fault_injected");
            EXPECT_FALSE(results[i].error.message.empty());
            EXPECT_EQ(results[i].trace.verdict, Verdict::Error);
            EXPECT_EQ(results[i].trace.errorKind, "fault_injected");
        } else {
            EXPECT_TRUE(results[i].verdict != Verdict::Error) << results[i].error.message;
            EXPECT_TRUE(results[i].verdict == Verdict::Sat) << results[i].id;
        }
    }
}

TEST_F(ServiceFaultTest, CompileFaultIsIsolatedAndServiceRecovers) {
    util::FaultInjector::global().armNthHit("service.compile", 1);
    Service service;
    const Problem p = caseStudyProblem();
    const QueryResult broken = service.run(request(QueryKind::Feasibility, p));
    EXPECT_FALSE(broken.verdict != Verdict::Error);
    EXPECT_EQ(broken.error.errorKind, "fault_injected");
    // The site disarmed itself after firing: the same service answers now.
    const QueryResult healthy = service.run(request(QueryKind::Feasibility, p));
    EXPECT_TRUE(healthy.verdict != Verdict::Error);
    EXPECT_TRUE(healthy.verdict == Verdict::Sat);
}

TEST_F(ServiceFaultTest, ErrorTraceJsonCarriesTheErrorObject) {
    util::FaultInjector::global().armNthHit("service.compile", 1);
    Service service;
    const QueryResult broken =
        service.run(request(QueryKind::Feasibility, caseStudyProblem(), "e"));
    ASSERT_FALSE(broken.verdict != Verdict::Error);
    const json::Value v = toJson(broken.trace);
    EXPECT_EQ(v.at("schema").asInt(), kQueryTraceSchemaVersion);
    EXPECT_EQ(v.at("verdict").asString(), "error");
    EXPECT_EQ(v.at("error").at("kind").asString(), "fault_injected");
    EXPECT_FALSE(v.at("error").at("message").asString().empty());
}

// ------------------------------------------------------ admission control

TEST_F(ServiceFaultTest, RejectNewShedsExcessQueriesDeterministically) {
    // One worker asleep at task start (latency injection) while all six
    // requests are submitted: the first two fill the queue, the rest are
    // rejected at submission. Every shed query is reported, never dropped.
    util::FaultInjector::global().armDelayMs("service.task_start", 60);
    ServiceOptions options;
    options.workers = 1;
    options.maxQueueDepth = 2;
    options.shedPolicy = ShedPolicy::RejectNew;
    obs::Counter& shedCounter = obs::Registry::global().counter(
        "lar_queries_shed_total",
        "Queries rejected or dropped by admission control");
    const std::uint64_t shedBefore = shedCounter.value();

    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 6; ++i)
        requests.push_back(request(QueryKind::Feasibility, p,
                                   "q" + std::to_string(i)));
    const std::vector<QueryResult> results = service.runBatch(requests);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i < 2) {
            EXPECT_FALSE(results[i].verdict == Verdict::Shed) << results[i].id;
            EXPECT_TRUE(results[i].verdict == Verdict::Sat) << results[i].id;
        } else {
            EXPECT_TRUE(results[i].verdict == Verdict::Shed) << results[i].id;
            EXPECT_FALSE(results[i].verdict == Verdict::Sat);
            EXPECT_TRUE(results[i].verdict != Verdict::Error); // shed is not an error
            EXPECT_EQ(results[i].trace.verdict, Verdict::Shed);
        }
    }
    EXPECT_EQ(shedCounter.value() - shedBefore, 4u);
}

TEST_F(ServiceFaultTest, DropOldestShedsLongestQueuedQueries) {
    // Same saturation, DropOldest: each arrival past the depth sheds the
    // longest-queued not-yet-started request, so the *latest* two answer.
    util::FaultInjector::global().armDelayMs("service.task_start", 60);
    ServiceOptions options;
    options.workers = 1;
    options.maxQueueDepth = 2;
    options.shedPolicy = ShedPolicy::DropOldest;
    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 6; ++i)
        requests.push_back(request(QueryKind::Feasibility, p,
                                   "q" + std::to_string(i)));
    const std::vector<QueryResult> results = service.runBatch(requests);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i < 4) {
            EXPECT_TRUE(results[i].verdict == Verdict::Shed) << results[i].id;
        } else {
            EXPECT_FALSE(results[i].verdict == Verdict::Shed) << results[i].id;
            EXPECT_TRUE(results[i].verdict == Verdict::Sat) << results[i].id;
        }
    }
}

TEST_F(ServiceFaultTest, QueueBoundIsSharedAcrossConcurrentBatches) {
    // maxQueueDepth is a service-wide bound (Service::queuedDepth_), not a
    // per-runBatch one: saturate it from a first batch (worker parked 200 ms
    // at task start), then submit a second batch while the first still holds
    // both slots — every request of the second batch must be shed. With a
    // per-batch counter the second batch would admit two more, exceeding
    // the documented bound.
    util::FaultInjector::global().armDelayMs("service.task_start", 200);
    ServiceOptions options;
    options.workers = 1;
    options.maxQueueDepth = 2;
    options.shedPolicy = ShedPolicy::RejectNew;
    Service service(options);
    const Problem p = caseStudyProblem();

    std::vector<QueryRequest> first, second;
    for (int i = 0; i < 4; ++i) {
        first.push_back(request(QueryKind::Feasibility, p,
                                "a" + std::to_string(i)));
        second.push_back(request(QueryKind::Feasibility, p,
                                 "b" + std::to_string(i)));
    }
    std::vector<QueryResult> firstResults;
    std::thread submitter(
        [&] { firstResults = service.runBatch(first); });
    // The first batch's submission loop finishes in microseconds; by 50 ms
    // its two admitted requests are parked at the injected delay and keep
    // the shared depth at the bound for another ~150 ms.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::vector<QueryResult> secondResults = service.runBatch(second);
    submitter.join();

    ASSERT_EQ(firstResults.size(), 4u);
    ASSERT_EQ(secondResults.size(), 4u);
    for (const QueryResult& r : secondResults) {
        EXPECT_TRUE(r.verdict == Verdict::Shed) << r.id;
        EXPECT_EQ(r.trace.verdict, Verdict::Shed) << r.id;
    }
    int answered = 0;
    for (const QueryResult& r : firstResults)
        if (r.verdict != Verdict::Shed) {
            ++answered;
            EXPECT_TRUE(r.verdict == Verdict::Sat) << r.id;
        }
    EXPECT_EQ(answered, 2) << "first batch should admit exactly the bound";
}

TEST_F(ServiceFaultTest, DeadlineExpiredInQueueReturnsWithoutSolving) {
    // The end-to-end deadline covers queue wait: a query stuck behind the
    // injected latency longer than its budget comes back timedOut with no
    // solver work at all.
    util::FaultInjector::global().armDelayMs("service.task_start", 80);
    ServiceOptions options;
    options.workers = 1;
    Service service(options);
    QueryRequest r = request(QueryKind::Feasibility, caseStudyProblem(), "d");
    r.options.timeoutMs = 20;
    const std::vector<QueryResult> results = service.runBatch({r});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(gaveUp(results[0].verdict));
    EXPECT_FALSE(results[0].verdict == Verdict::Sat);
    EXPECT_TRUE(results[0].verdict != Verdict::Error);
    // v4 traces distinguish deadline expiry from budget exhaustion.
    EXPECT_EQ(results[0].trace.verdict, Verdict::TimedOut);
    EXPECT_EQ(results[0].trace.solveMs, 0.0);
    EXPECT_GE(results[0].trace.queueWaitMs, 20.0);
}

// --------------------------------------------------------- graceful drain

TEST_F(ServiceFaultTest, DrainLetsInFlightQueriesFinishAndShedsQueued) {
    // Drain begins while the first query is parked mid-solve (injected
    // latency at service.solve — past admission, past registerActive): the
    // in-flight query must still complete with a real verdict, while the
    // two queued behind the single worker observe the drain at start and
    // come back Shed — never Error, never silently dropped.
    util::FaultInjector::global().armDelayMs("service.solve", 100);
    ServiceOptions options;
    options.workers = 1;
    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 3; ++i)
        requests.push_back(request(QueryKind::Feasibility, p,
                                   "q" + std::to_string(i)));

    std::vector<QueryResult> results;
    std::thread submitter([&] { results = service.runBatch(requests); });
    const Clock::time_point start = Clock::now();
    while (service.activeQueries() == 0 && msSince(start) < 5000.0)
        std::this_thread::yield();
    ASSERT_EQ(service.activeQueries(), 1u) << "first query never went active";
    service.beginDrain();
    submitter.join();

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].trace.verdict, Verdict::Sat) << results[0].id;
    EXPECT_TRUE(results[0].verdict != Verdict::Error);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].trace.verdict, Verdict::Shed) << results[i].id;
        EXPECT_TRUE(results[i].verdict != Verdict::Error); // shed is not an error
    }
    EXPECT_EQ(service.activeQueries(), 0u);
    EXPECT_TRUE(service.draining());
}

TEST_F(ServiceFaultTest, CancelActiveDuringDrainReportsCancelledNeverError) {
    // The grace-expired path: drain, then cancelActive() while a query is
    // parked mid-solve. The query must come back Verdict::Cancelled — a
    // clean, non-error outcome — within the solver's polling latency.
    util::FaultInjector::global().armDelayMs("service.solve", 100);
    ServiceOptions options;
    options.workers = 1;
    Service service(options);

    QueryResult result;
    std::thread caller([&] {
        result = service.run(
            request(QueryKind::Feasibility, caseStudyProblem(), "c"));
    });
    const Clock::time_point start = Clock::now();
    while (service.activeQueries() == 0 && msSince(start) < 5000.0)
        std::this_thread::yield();
    ASSERT_EQ(service.activeQueries(), 1u);
    service.beginDrain();
    service.cancelActive();
    caller.join();

    EXPECT_EQ(result.trace.verdict, Verdict::Cancelled);
    EXPECT_TRUE(result.verdict != Verdict::Error) << result.error.message;
    EXPECT_TRUE(result.verdict == Verdict::Cancelled);
    EXPECT_EQ(service.activeQueries(), 0u);
}

TEST_F(ServiceFaultTest, SubmissionsAfterDrainAreShed) {
    // Once draining, both entry points refuse new work with Shed: run() on
    // the calling thread and runBatch() through the pool.
    Service service;
    service.beginDrain();
    const QueryResult single =
        service.run(request(QueryKind::Feasibility, caseStudyProblem(), "s"));
    EXPECT_EQ(single.trace.verdict, Verdict::Shed);
    EXPECT_TRUE(single.verdict != Verdict::Error);

    const std::vector<QueryResult> batch = service.runBatch(
        {request(QueryKind::Feasibility, caseStudyProblem(), "b")});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].trace.verdict, Verdict::Shed);
    EXPECT_TRUE(batch[0].verdict != Verdict::Error);
}

// -------------------------------------------------- retry and degradation

TEST_F(ServiceFaultTest, UnknownVerdictIsRetriedWithFreshSeeds) {
    // A 0-conflict budget keeps every attempt Unknown on the case study, so
    // a 3-attempt policy performs exactly 2 reseeded retries and reports
    // honestly that it still has no answer.
    ServiceOptions options;
    options.retry.maxAttempts = 3;
    Service service(options);
    QueryRequest r = request(QueryKind::Feasibility, caseStudyProblem(), "r");
    r.options.conflictBudget = 0;
    const QueryResult result = service.run(r);
    EXPECT_TRUE(gaveUp(result.verdict));
    EXPECT_FALSE(result.verdict == Verdict::Sat);
    EXPECT_EQ(result.retries, 2);
    EXPECT_EQ(result.trace.verdict, Verdict::Unknown);
    EXPECT_TRUE(result.verdict != Verdict::Error);
}

TEST_F(ServiceFaultTest, RetryDisabledKeepsSingleAttempt) {
    ServiceOptions options;
    options.retry.maxAttempts = 3;
    options.retry.reseedOnUnknown = false;
    Service service(options);
    QueryRequest r = request(QueryKind::Feasibility, caseStudyProblem());
    r.options.conflictBudget = 0;
    const QueryResult result = service.run(r);
    EXPECT_TRUE(gaveUp(result.verdict));
    EXPECT_EQ(result.retries, 0);
}

TEST_F(ServiceFaultTest, BackendFailureFallsBackToCdcl) {
    // The Z3 construction path fails (injected — which also covers builds
    // without libz3, where construction throws organically): the query is
    // re-answered by the CDCL backend instead of erroring out.
    util::FaultInjector::global().armNthHit("backend.construct", 1);
    Service service;
    QueryRequest r = request(QueryKind::Optimize, caseStudyProblem(), "fb");
    r.options.backend = smt::BackendKind::Z3;
    const QueryResult result = service.run(r);
    EXPECT_TRUE(result.verdict != Verdict::Error) << result.error.message;
    EXPECT_TRUE(result.verdict == Verdict::Sat);
    EXPECT_TRUE(result.backendFellBack);
    EXPECT_EQ(result.trace.verdict, Verdict::Sat);
}

TEST_F(ServiceFaultTest, FallbackDisabledSurfacesTheBackendError) {
    util::FaultInjector::global().armNthHit("backend.construct", 1);
    ServiceOptions options;
    options.retry.fallbackToCdcl = false;
    Service service(options);
    QueryRequest r = request(QueryKind::Optimize, caseStudyProblem());
    r.options.backend = smt::BackendKind::Z3;
    const QueryResult result = service.run(r);
    EXPECT_FALSE(result.verdict != Verdict::Error);
    EXPECT_EQ(result.error.errorKind, "fault_injected");
}

// --------------------------------------------------------------- metrics

TEST_F(ServiceFaultTest, CacheEvictionsAreCounted) {
    obs::Counter& evictions = obs::Registry::global().counter(
        "lar_service_cache_evictions_total",
        "Compilations evicted from the Service LRU cache");
    const std::uint64_t before = evictions.value();
    ServiceOptions options;
    options.cacheCapacity = 1;
    Service service(options);
    Problem a = caseStudyProblem();
    Problem b = a;
    b.maxHardwareCostUsd = 800000;
    (void)service.run(request(QueryKind::Feasibility, a));
    (void)service.run(request(QueryKind::Feasibility, b)); // evicts a
    EXPECT_EQ(evictions.value() - before, 1u);
}

// ------------------------------------------------------- injector itself

TEST(FaultInjector, ProbabilityStreamIsDeterministic) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    const auto firesAt = [&](std::uint64_t seed) {
        injector.armProbability("test.site", 0.3, seed);
        std::vector<int> fired;
        for (int i = 0; i < 64; ++i) {
            try {
                injector.maybeFault("test.site");
            } catch (const util::FaultInjectedError&) {
                fired.push_back(i);
            }
        }
        injector.reset();
        return fired;
    };
    const std::vector<int> a = firesAt(42);
    const std::vector<int> b = firesAt(42);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "same seed must fire at the same hits";
    EXPECT_NE(firesAt(43), a) << "different seed should differ";
}

TEST(FaultInjector, NthHitFiresExactlyOnce) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    injector.armNthHit("test.once", 3);
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        try {
            injector.maybeFault("test.once");
        } catch (const util::FaultInjectedError& e) {
            ++fired;
            EXPECT_NE(std::string(e.what()).find("test.once"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(injector.hits("test.once"), 3u); // disarmed after firing
    injector.reset();
}

TEST(FaultInjector, UnarmedSitesAreFreeAndSilent) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    EXPECT_FALSE(injector.anyArmed());
    EXPECT_NO_THROW(injector.maybeFault("test.unarmed"));
    EXPECT_EQ(injector.hits("test.unarmed"), 0u); // fast path: not counted
}

TEST(FaultInjector, FiresMirrorsNthHitWithoutThrowing) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    EXPECT_FALSE(injector.fires("test.fires")); // unarmed: free and silent
    EXPECT_EQ(injector.hits("test.fires"), 0u);

    injector.armNthHit("test.fires", 3);
    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        if (injector.fires("test.fires")) {
            ++fired;
            EXPECT_EQ(i, 2) << "must fire on the 3rd consultation";
        }
    }
    EXPECT_EQ(fired, 1) << "nth-hit self-disarms after firing";
    EXPECT_EQ(injector.hits("test.fires"), 3u);
    injector.reset();
}

TEST(FaultInjector, FiresProbabilityMatchesMaybeFaultStream) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    // Both entry points must consume the same per-site RNG stream: arming
    // the same (probability, seed) twice and consulting once via maybeFault
    // and once via fires must fault at the same hit indices.
    injector.armProbability("test.stream", 0.25, 7);
    std::vector<int> viaThrow;
    for (int i = 0; i < 64; ++i) {
        try {
            injector.maybeFault("test.stream");
        } catch (const util::FaultInjectedError&) {
            viaThrow.push_back(i);
        }
    }
    injector.reset();
    injector.armProbability("test.stream", 0.25, 7);
    std::vector<int> viaBool;
    for (int i = 0; i < 64; ++i) {
        if (injector.fires("test.stream")) viaBool.push_back(i);
    }
    injector.reset();
    EXPECT_FALSE(viaThrow.empty());
    EXPECT_EQ(viaThrow, viaBool);
}

TEST(FaultInjector, SnapshotReportsModesHitsAndOrdering) {
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();
    EXPECT_TRUE(injector.snapshot().empty());

    injector.armProbability("test.prob", 0.5, 11);
    injector.armNthHit("test.nth", 5);
    injector.armDelayMs("test.delay", 1);
    injector.armNthHit("test.dead", 1);
    (void)injector.fires("test.dead"); // fires and self-disarms
    (void)injector.fires("test.nth"); // one consultation, does not fire

    const auto snap = injector.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Armed sites sort before disarmed; ties break by name.
    EXPECT_EQ(snap[0].site, "test.delay");
    EXPECT_EQ(snap[1].site, "test.nth");
    EXPECT_EQ(snap[2].site, "test.prob");
    EXPECT_EQ(snap[3].site, "test.dead");
    EXPECT_FALSE(snap[3].armed);
    EXPECT_EQ(snap[3].hits, 1u) << "disarmed site keeps its tally";

    for (const auto& s : snap) {
        if (s.site == "test.prob") {
            EXPECT_TRUE(s.armed);
            EXPECT_EQ(s.mode, "probability");
            EXPECT_DOUBLE_EQ(s.probability, 0.5);
        } else if (s.site == "test.nth") {
            EXPECT_TRUE(s.armed);
            EXPECT_EQ(s.mode, "nth_hit");
            EXPECT_EQ(s.nth, 5u);
            EXPECT_EQ(s.hits, 1u);
        } else if (s.site == "test.delay") {
            EXPECT_TRUE(s.armed);
            EXPECT_EQ(s.mode, "delay");
            EXPECT_EQ(s.delayMs, 1);
        } else if (s.site == "test.dead") {
            EXPECT_EQ(s.mode, "disarmed");
        }
    }
    injector.reset();
    EXPECT_TRUE(injector.snapshot().empty()) << "reset clears the ledger";
}

} // namespace
} // namespace lar::reason
