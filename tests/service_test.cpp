#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/service.hpp"
#include "reason/whatif.hpp"

namespace lar::reason {
namespace {

using kb::HardwareClass;

class ServiceTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    Problem caseStudyProblem() const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[HardwareClass::Server].count = 60;
        p.hardware[HardwareClass::Switch].count = 8;
        p.hardware[HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                               kb::kObjMonitoring};
        return p;
    }

    QueryRequest request(QueryKind kind, Problem problem,
                         const std::string& id = "") const {
        QueryRequest r;
        r.id = id;
        r.kind = kind;
        r.problem = std::move(problem);
        return r;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ServiceTest::kb_ = nullptr;

std::string designKey(const std::optional<Design>& d) {
    if (!d.has_value()) return "(infeasible)";
    std::ostringstream out;
    out << d->toString();
    for (const std::int64_t c : d->objectiveCosts) out << ' ' << c;
    return out.str();
}

TEST_F(ServiceTest, RepeatedQueryHitsCache) {
    Service service;
    const Problem p = caseStudyProblem();

    const QueryResult first = service.run(request(QueryKind::Optimize, p, "a"));
    ASSERT_TRUE(first.verdict == Verdict::Sat);
    EXPECT_FALSE(first.trace.cacheHit);
    EXPECT_GT(first.trace.compileMs, 0.0);

    const QueryResult second = service.run(request(QueryKind::Optimize, p, "b"));
    ASSERT_TRUE(second.verdict == Verdict::Sat);
    EXPECT_TRUE(second.trace.cacheHit);
    EXPECT_EQ(second.trace.compileMs, 0.0);
    // Same problem, same defaults → identical design and costs.
    EXPECT_EQ(designKey(first.design), designKey(second.design));

    const CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ServiceTest, CacheHitsAcrossQueryKinds) {
    // Different kinds on the same problem share one compilation.
    Service service;
    const Problem p = caseStudyProblem();
    (void)service.run(request(QueryKind::Feasibility, p));
    (void)service.run(request(QueryKind::Synthesize, p));
    (void)service.run(request(QueryKind::Optimize, p));
    const CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 2u);
}

TEST_F(ServiceTest, ProblemEditInvalidatesFingerprint) {
    Service service;
    Problem p = caseStudyProblem();
    (void)service.run(request(QueryKind::Optimize, p));
    p.maxHardwareCostUsd = 900000; // a different problem now
    const QueryResult edited = service.run(request(QueryKind::Optimize, p));
    EXPECT_FALSE(edited.trace.cacheHit);
    EXPECT_EQ(service.cacheStats().misses, 2u);
}

TEST_F(ServiceTest, KbMutationInvalidatesFingerprint) {
    // Same problem text, but the KB changed underneath: revision token must
    // force a recompile.
    kb::KnowledgeBase localKb = catalog::buildKnowledgeBase();
    Service service;
    Problem p = makeDefaultProblem(localKb);
    (void)service.run(request(QueryKind::Feasibility, p));
    localKb.addOrdering({"Snap", "Linux", kb::kObjLatency,
                         kb::Requirement::alwaysTrue(), "test edit", {}});
    const QueryResult after = service.run(request(QueryKind::Feasibility, p));
    EXPECT_FALSE(after.trace.cacheHit);
    EXPECT_EQ(service.cacheStats().hits, 0u);
    EXPECT_EQ(service.cacheStats().misses, 2u);
}

TEST_F(ServiceTest, KbCopyGetsOwnFingerprint) {
    // Copies are distinct KBs (fresh instance id): a cached compilation for
    // the original must not be served for the copy even though the problem
    // text is identical.
    kb::KnowledgeBase original = catalog::buildKnowledgeBase();
    const kb::KnowledgeBase copy = original;
    EXPECT_FALSE(original.revision() == copy.revision());

    Service service;
    Problem p1 = makeDefaultProblem(original);
    Problem p2 = makeDefaultProblem(copy);
    (void)service.run(request(QueryKind::Feasibility, p1));
    (void)service.run(request(QueryKind::Feasibility, p2));
    EXPECT_EQ(service.cacheStats().misses, 2u);
}

TEST_F(ServiceTest, LruEvictsLeastRecentlyUsed) {
    ServiceOptions options;
    options.cacheCapacity = 2;
    Service service(options);
    Problem p = caseStudyProblem();

    Problem a = p;
    Problem b = p;
    b.maxHardwareCostUsd = 800000;
    Problem c = p;
    c.maxHardwareCostUsd = 900000;

    (void)service.run(request(QueryKind::Feasibility, a));
    (void)service.run(request(QueryKind::Feasibility, b));
    (void)service.run(request(QueryKind::Feasibility, c)); // evicts a
    EXPECT_EQ(service.cacheStats().entries, 2u);
    const QueryResult again = service.run(request(QueryKind::Feasibility, a));
    EXPECT_FALSE(again.trace.cacheHit); // a was evicted
    const QueryResult cHit = service.run(request(QueryKind::Feasibility, c));
    EXPECT_TRUE(cHit.trace.cacheHit);
}

TEST_F(ServiceTest, BatchMatchesSequentialBitForBit) {
    // The acceptance bar for the concurrent path: a multi-thread batch must
    // produce exactly the results of running each query alone.
    std::vector<QueryRequest> requests;
    Problem base = caseStudyProblem();
    requests.push_back(request(QueryKind::Optimize, base, "opt"));
    requests.push_back(request(QueryKind::Feasibility, base, "feas"));
    Problem budget = base;
    budget.maxHardwareCostUsd = 700000;
    requests.push_back(request(QueryKind::Optimize, budget, "budget"));
    Problem impossible = base;
    impossible.maxHardwareCostUsd = 1; // nothing fits
    requests.push_back(request(QueryKind::Explain, impossible, "conflict"));
    QueryRequest enumerate = request(QueryKind::Enumerate, base, "enum");
    enumerate.maxDesigns = 3;
    requests.push_back(enumerate);

    // Sequential reference: fresh single-worker service.
    ServiceOptions seqOptions;
    seqOptions.workers = 1;
    Service sequential(seqOptions);
    std::vector<QueryResult> expected;
    expected.reserve(requests.size());
    for (const QueryRequest& r : requests) expected.push_back(sequential.run(r));

    ServiceOptions parOptions;
    parOptions.workers = 4;
    Service parallel(parOptions);
    const std::vector<QueryResult> actual = parallel.runBatch(requests);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].id, expected[i].id);
        EXPECT_EQ(actual[i].verdict == Verdict::Sat, expected[i].verdict == Verdict::Sat) << actual[i].id;
        EXPECT_EQ(designKey(actual[i].design), designKey(expected[i].design))
            << actual[i].id;
        EXPECT_EQ(actual[i].designs.size(), expected[i].designs.size())
            << actual[i].id;
        EXPECT_EQ(actual[i].conflictingRules, expected[i].conflictingRules)
            << actual[i].id;
    }
}

TEST_F(ServiceTest, ConcurrentBatchSharesOneCompilation) {
    // Many queries on one problem: exactly one compile, everything else hits.
    ServiceOptions options;
    options.workers = 4;
    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 12; ++i)
        requests.push_back(request(QueryKind::Feasibility, p));
    const std::vector<QueryResult> results = service.runBatch(requests);
    for (const QueryResult& r : results) EXPECT_TRUE(r.verdict == Verdict::Sat);
    const CacheStats stats = service.cacheStats();
    EXPECT_EQ(stats.entries, 1u);
    // Concurrent first-misses may compile the duplicate entry more than
    // once (by design — the cache keeps one), but hits must dominate.
    EXPECT_GE(stats.hits, 1u);
    EXPECT_EQ(stats.hits + stats.misses, 12u);
}

TEST_F(ServiceTest, EngineIsReentrantAcrossQueries) {
    // Regression for the old "one Engine per query" footgun: optimize()
    // used to lock MaxSAT bounds into the shared backend, so a later
    // synthesize() could only see optimal designs. Sessions fixed that.
    Engine engine(caseStudyProblem());
    const auto optimal = engine.optimize();
    ASSERT_TRUE(optimal.has_value());
    const auto anyDesign = engine.synthesize();
    ASSERT_TRUE(anyDesign.has_value());
    const auto report = engine.checkFeasible();
    EXPECT_TRUE(report.feasible);
    // And optimize() twice agrees with itself.
    const auto optimal2 = engine.optimize();
    ASSERT_TRUE(optimal2.has_value());
    EXPECT_EQ(optimal->objectiveCosts, optimal2->objectiveCosts);
}

TEST_F(ServiceTest, SharedCompilationServesEngineAndWhatIf) {
    Service service;
    const Problem p = caseStudyProblem();
    const std::shared_ptr<const Compilation> compilation =
        service.compilationFor(p);

    Engine engine(compilation);
    ASSERT_TRUE(engine.checkFeasible().feasible);

    WhatIfSession whatIf(compilation);
    Variation variation;
    variation.systems["Sonata"] = true;
    const WhatIfAnswer answer = whatIf.ask(variation);
    EXPECT_TRUE(answer.verdict == Verdict::Sat);
    ASSERT_TRUE(answer.design.has_value());
    EXPECT_TRUE(answer.design->uses("Sonata"));
}

TEST_F(ServiceTest, SeededQueriesAreReproducible) {
    Service service;
    QueryRequest r = request(QueryKind::Optimize, caseStudyProblem());
    r.options.seed = 12345;
    const QueryResult a = service.run(r);
    const QueryResult b = service.run(r);
    ASSERT_TRUE(a.verdict == Verdict::Sat);
    EXPECT_EQ(designKey(a.design), designKey(b.design));
}

TEST_F(ServiceTest, TraceRecordsVerdictAndStats) {
    Service service;
    const QueryResult r =
        service.run(request(QueryKind::Optimize, caseStudyProblem(), "traced"));
    EXPECT_EQ(r.trace.id, "traced");
    EXPECT_EQ(r.trace.kind, QueryKind::Optimize);
    EXPECT_EQ(r.trace.verdict, Verdict::Sat);
    EXPECT_GT(r.trace.totalMs, 0.0);
    EXPECT_GT(r.trace.stats.decisions, 0u);
    // JSON export carries the same fields.
    const json::Value v = toJson(r.trace);
    EXPECT_EQ(v.at("id").asString(), "traced");
    EXPECT_EQ(v.at("verdict").asString(), "sat");
    EXPECT_FALSE(v.at("cache_hit").asBool());
}

TEST_F(ServiceTest, CollectTraceOffLeavesTraceEmpty) {
    Service service;
    QueryRequest r = request(QueryKind::Feasibility, caseStudyProblem());
    r.options.collectTrace = false;
    const QueryResult result = service.run(r);
    EXPECT_TRUE(result.verdict == Verdict::Sat);
    EXPECT_EQ(result.trace.totalMs, 0.0);
    EXPECT_EQ(result.trace.verdict, Verdict::Unknown); // trace untouched
}

TEST_F(ServiceTest, ColdQuerySpanTreeHasCompileAndSolve) {
    Service service;
    QueryRequest r = request(QueryKind::Optimize, caseStudyProblem(), "cold");
    r.options.progressEveryConflicts = 1; // sample at every conflict
    const QueryResult result = service.run(r);
    ASSERT_TRUE(result.verdict == Verdict::Sat);

    ASSERT_NE(result.trace.spans, nullptr);
    const obs::SpanNode* root = result.trace.spans->root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "query");
    EXPECT_NE(root->child("compile"), nullptr); // cold → compiled in-query
    const obs::SpanNode* solve = root->child("solve");
    ASSERT_NE(solve, nullptr);
    // The backend's optimize runs under "solve"; with per-conflict probes
    // any search that conflicts at all leaves samples in the solve subtree.
    const obs::SpanNode* optimize = solve->child("optimize");
    ASSERT_NE(optimize, nullptr);
    if (result.trace.stats.conflicts > 0) {
        std::size_t samples = 0;
        const std::function<void(const obs::SpanNode&)> count =
            [&](const obs::SpanNode& node) {
                samples += node.samples.size();
                for (const auto& c : node.children) count(*c);
            };
        count(*solve);
        EXPECT_GT(samples, 0u);
    }

    // The JSON export is versioned and carries the span tree.
    const json::Value v = toJson(result.trace);
    EXPECT_EQ(v.at("schema").asInt(), kQueryTraceSchemaVersion);
    EXPECT_FALSE(v.at("spans").asArray().empty());
    EXPECT_GE(v.at("stats").at("max_decision_level").asInt(), 0);
}

TEST_F(ServiceTest, CachedQuerySpanTreeHasNoCompileSpan) {
    Service service;
    const Problem p = caseStudyProblem();
    (void)service.run(request(QueryKind::Feasibility, p, "warm-up"));
    const QueryResult cached =
        service.run(request(QueryKind::Feasibility, p, "cached"));
    ASSERT_TRUE(cached.trace.cacheHit);
    ASSERT_NE(cached.trace.spans, nullptr);
    const obs::SpanNode* root = cached.trace.spans->root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->child("compile"), nullptr); // served from cache
    EXPECT_NE(root->child("solve"), nullptr);
}

TEST_F(ServiceTest, BatchQueriesGetTheirOwnSpanTrees) {
    ServiceOptions options;
    options.workers = 4;
    Service service(options);
    const Problem p = caseStudyProblem();
    std::vector<QueryRequest> requests;
    for (int i = 0; i < 4; ++i)
        requests.push_back(request(QueryKind::Feasibility, p));
    const std::vector<QueryResult> results = service.runBatch(requests);
    for (const QueryResult& r : results) {
        ASSERT_NE(r.trace.spans, nullptr);
        const obs::SpanNode* root = r.trace.spans->root();
        ASSERT_NE(root, nullptr);
        EXPECT_EQ(root->name, "query");
        EXPECT_NE(root->child("solve"), nullptr);
    }
}

TEST_F(ServiceTest, TimeoutReportsUnknownNotWrongAnswer) {
    // A 0ms-deadline CDCL query must come back timedOut, never a bogus
    // sat/unsat verdict. (The deadline is checked after the first conflict,
    // so trivially-propagation-solvable problems may still finish — use the
    // big case study.)
    Service service;
    QueryRequest r = request(QueryKind::Feasibility, caseStudyProblem());
    r.options.timeoutMs = 1;
    const QueryResult result = service.run(r);
    if (gaveUp(result.verdict)) {
        EXPECT_FALSE(result.verdict == Verdict::Sat);
        // Deadline expiry reports TimedOut; a solver that gave up a hair
        // before the deadline reports Unknown. Either way, no bogus verdict.
        EXPECT_TRUE(result.trace.verdict == Verdict::TimedOut ||
                    result.trace.verdict == Verdict::Unknown);
    } else {
        EXPECT_TRUE(result.verdict == Verdict::Sat); // fast machine: solved inside 1ms
    }
}

} // namespace
} // namespace lar::reason
