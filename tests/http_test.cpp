// HTTP/1.1 parser tests: the malformed-input table, incremental feeding,
// pipelining, and limit enforcement. The parser is larserved's security
// boundary, so every rejection must map to the right 4xx/5xx and no input —
// truncated, oversized, or adversarial — may hang or overrun a limit.
#include "net/http.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

using namespace lar;
using net::HttpParser;
using net::HttpRequest;

namespace {

/// Feeds the whole string at once; returns the final status.
HttpParser::Status feed(HttpParser& parser, const std::string& data,
                        std::size_t* used = nullptr) {
    std::size_t n = 0;
    const HttpParser::Status status = parser.consume(data, n);
    if (used != nullptr) *used = n;
    return status;
}

TEST(HttpParser, ParsesSimpleGet) {
    HttpParser parser;
    EXPECT_EQ(feed(parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
              HttpParser::Status::Complete);
    const HttpRequest& req = parser.request();
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_EQ(req.path(), "/healthz");
    EXPECT_EQ(req.versionMinor, 1);
    EXPECT_TRUE(req.keepAlive);
    ASSERT_NE(req.header("host"), nullptr); // case-insensitive
    EXPECT_EQ(*req.header("HOST"), "x");
    EXPECT_TRUE(req.body.empty());
}

TEST(HttpParser, ParsesPostWithContentLength) {
    HttpParser parser;
    EXPECT_EQ(feed(parser,
                   "POST /v1/query HTTP/1.1\r\nContent-Length: 11\r\n\r\n"
                   "{\"id\":\"q\"}\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().body, "{\"id\":\"q\"}\n");
}

TEST(HttpParser, ParsesChunkedBody) {
    HttpParser parser;
    EXPECT_EQ(feed(parser,
                   "POST /v1/query HTTP/1.1\r\n"
                   "Transfer-Encoding: chunked\r\n\r\n"
                   "5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParser, ChunkedWithTrailersIsConsumed) {
    HttpParser parser;
    EXPECT_EQ(feed(parser,
                   "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                   "3\r\nabc\r\n0\r\nX-Checksum: 9\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().body, "abc");
}

TEST(HttpParser, PathStripsQueryString) {
    HttpParser parser;
    ASSERT_EQ(feed(parser, "GET /metrics?format=prom HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().target, "/metrics?format=prom");
    EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(HttpParser, Http10DefaultsToClose) {
    HttpParser parser;
    ASSERT_EQ(feed(parser, "GET / HTTP/1.0\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_FALSE(parser.request().keepAlive);

    parser.reset();
    ASSERT_EQ(feed(parser, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_TRUE(parser.request().keepAlive);
}

TEST(HttpParser, ConnectionCloseNegotiated) {
    HttpParser parser;
    ASSERT_EQ(feed(parser, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_FALSE(parser.request().keepAlive);
}

TEST(HttpParser, ExpectContinueDetected) {
    HttpParser parser;
    ASSERT_EQ(feed(parser,
                   "POST / HTTP/1.1\r\nExpect: 100-continue\r\n"
                   "Content-Length: 2\r\n\r\nok"),
              HttpParser::Status::Complete);
    EXPECT_TRUE(parser.request().expectContinue);
}

TEST(HttpParser, BareLfLineEndingsAccepted) {
    HttpParser parser;
    EXPECT_EQ(feed(parser, "GET / HTTP/1.1\nHost: x\n\n"),
              HttpParser::Status::Complete);
}

// --- incremental feeding ---------------------------------------------------

TEST(HttpParser, ByteAtATimeProducesSameRequest) {
    const std::string wire =
        "POST /v1/batch HTTP/1.1\r\nContent-Length: 5\r\n"
        "X-Trace: yes\r\n\r\nhello";
    HttpParser parser;
    HttpParser::Status status = HttpParser::Status::NeedMore;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        std::size_t used = 0;
        status = parser.consume(std::string_view(&wire[i], 1), used);
        if (i + 1 < wire.size()) {
            ASSERT_EQ(status, HttpParser::Status::NeedMore) << "at byte " << i;
            ASSERT_EQ(used, 1u);
        }
    }
    ASSERT_EQ(status, HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().body, "hello");
    EXPECT_EQ(*parser.request().header("x-trace"), "yes");
}

TEST(HttpParser, CrlfSplitAcrossFeeds) {
    HttpParser parser;
    std::size_t used = 0;
    ASSERT_EQ(parser.consume("GET / HTTP/1.1\r", used),
              HttpParser::Status::NeedMore);
    ASSERT_EQ(parser.consume("\nHost: x\r", used), HttpParser::Status::NeedMore);
    ASSERT_EQ(parser.consume("\n\r", used), HttpParser::Status::NeedMore);
    ASSERT_EQ(parser.consume("\n", used), HttpParser::Status::Complete);
}

TEST(HttpParser, PipelinedRequestsReportUsedBytes) {
    const std::string two =
        "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    HttpParser parser;
    std::size_t used = 0;
    ASSERT_EQ(parser.consume(two, used), HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().target, "/a");
    EXPECT_LT(used, two.size()); // second request untouched

    parser.reset();
    std::size_t used2 = 0;
    ASSERT_EQ(parser.consume(std::string_view(two).substr(used), used2),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().target, "/b");
    EXPECT_EQ(used + used2, two.size());
}

TEST(HttpParser, ConsumeAfterCompleteThrows) {
    HttpParser parser;
    ASSERT_EQ(feed(parser, "GET / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Complete);
    std::size_t used = 0;
    EXPECT_THROW((void)parser.consume("GET", used), LogicError);
}

TEST(HttpParser, ResetReusesParser) {
    HttpParser parser;
    ASSERT_EQ(feed(parser, "GET /a HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Complete);
    parser.reset();
    EXPECT_FALSE(parser.begun());
    ASSERT_EQ(feed(parser, "POST /b HTTP/1.1\r\nContent-Length: 1\r\n\r\nZ"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().body, "Z");
    EXPECT_EQ(parser.request().headers.size(), 1u); // old headers cleared
}

// --- malformed-input table -------------------------------------------------

struct MalformedCase {
    const char* name;
    std::string wire;
    int wantStatus;
};

class HttpParserMalformed : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(HttpParserMalformed, RejectsWithExpectedStatus) {
    const MalformedCase& c = GetParam();
    HttpParser parser;
    std::size_t used = 0;
    const HttpParser::Status status = parser.consume(c.wire, used);
    ASSERT_EQ(status, HttpParser::Status::Failed) << c.name;
    EXPECT_EQ(parser.errorStatus(), c.wantStatus) << c.name;
    EXPECT_FALSE(parser.errorReason().empty()) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table, HttpParserMalformed,
    ::testing::Values(
        MalformedCase{"missing_version", "GET /\r\n\r\n", 400},
        MalformedCase{"three_spaces", "GET / index HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"bad_method_char", "G@T / HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"lowercase_proto", "GET / http/1.1\r\n\r\n", 505},
        MalformedCase{"http2", "GET / HTTP/2.0\r\n\r\n", 505},
        MalformedCase{"http09", "GET / HTTP/0.9\r\n\r\n", 505},
        MalformedCase{"header_no_colon", "GET / HTTP/1.1\r\nHostx\r\n\r\n",
                      400},
        MalformedCase{"header_space_before_colon",
                      "GET / HTTP/1.1\r\nHost : x\r\n\r\n", 400},
        MalformedCase{"header_folding",
                      "GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n", 400},
        MalformedCase{"ctl_in_header_value",
                      std::string("GET / HTTP/1.1\r\nA: b\x01") + "c\r\n\r\n",
                      400},
        MalformedCase{"bare_cr_in_line", "GET / HTTP/1.1\r\nA: b\rc\r\n\r\n",
                      400},
        MalformedCase{"negative_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400},
        MalformedCase{"non_numeric_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
        MalformedCase{"dual_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                      "Content-Length: 3\r\n\r\n",
                      400},
        MalformedCase{"te_plus_content_length",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                      "Content-Length: 5\r\n\r\n",
                      400},
        MalformedCase{"unsupported_te",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
                      501},
        MalformedCase{"bad_chunk_size",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "zz\r\n",
                      400},
        MalformedCase{"chunk_data_missing_crlf",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                      "3\r\nabcXX\r\n",
                      400}));

TEST(HttpParserLimits, OversizedRequestLineIs431) {
    net::HttpLimits limits;
    limits.maxRequestLineBytes = 64;
    HttpParser parser(limits);
    const std::string wire =
        "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
    ASSERT_EQ(feed(parser, wire), HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserLimits, OversizedHeaderBlockIs431) {
    net::HttpLimits limits;
    limits.maxHeaderBytes = 128;
    HttpParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 16; ++i) {
        wire += "X-Pad-" + std::to_string(i) + ": " + std::string(32, 'p') +
                "\r\n";
    }
    wire += "\r\n";
    ASSERT_EQ(feed(parser, wire), HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserLimits, TooManyHeadersIs431) {
    net::HttpLimits limits;
    limits.maxHeaders = 4;
    HttpParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 8; ++i) wire += "H" + std::to_string(i) + ": v\r\n";
    wire += "\r\n";
    ASSERT_EQ(feed(parser, wire), HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserLimits, ContentLengthOverBodyLimitIs413) {
    net::HttpLimits limits;
    limits.maxBodyBytes = 100;
    HttpParser parser(limits);
    ASSERT_EQ(feed(parser, "POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParserLimits, ChunkedBodyOverLimitIs413) {
    net::HttpLimits limits;
    limits.maxBodyBytes = 8;
    HttpParser parser(limits);
    ASSERT_EQ(feed(parser,
                   "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                   "6\r\nabcdef\r\n6\r\nghijkl\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 413);
}

// A truncated request must stay NeedMore forever (the server's idle timeout
// reaps it) — never Complete, never a hang inside consume().
TEST(HttpParser, TruncatedInputsStayIncomplete) {
    const std::vector<std::string> prefixes = {
        "G", "GET ", "GET /x", "GET /x HTTP/1.1", "GET /x HTTP/1.1\r",
        "GET /x HTTP/1.1\r\n", "GET /x HTTP/1.1\r\nHost: a",
        "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf",
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab"};
    for (const std::string& prefix : prefixes) {
        HttpParser parser;
        std::size_t used = 0;
        EXPECT_EQ(parser.consume(prefix, used), HttpParser::Status::NeedMore)
            << "prefix: " << prefix;
        EXPECT_EQ(used, prefix.size());
    }
}

// --- response serialization ------------------------------------------------

TEST(HttpResponse, SerializesWithLengthAndConnection) {
    net::HttpResponse resp;
    resp.status = 200;
    resp.body = "{}";
    std::string out;
    net::serializeResponse(resp, /*keepAlive=*/true, out);
    EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(out.find("Content-Length: 2\r\n"), std::string::npos);
    EXPECT_NE(out.find("Connection: keep-alive\r\n"), std::string::npos);
    EXPECT_EQ(out.substr(out.size() - 6), "\r\n\r\n{}");

    out.clear();
    net::serializeResponse(resp, /*keepAlive=*/false, out);
    EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponse, ErrorJsonEscapesMessage) {
    const net::HttpResponse resp =
        net::HttpResponse::errorJson(400, "bad_request", "tab\there \"quoted\"");
    EXPECT_NE(resp.body.find("tab\\there \\\"quoted\\\""), std::string::npos);
}

TEST(HttpMisc, ReasonPhrases) {
    EXPECT_STREQ(net::reasonPhrase(200), "OK");
    EXPECT_STREQ(net::reasonPhrase(429), "Too Many Requests");
    EXPECT_STREQ(net::reasonPhrase(431),
                 "Request Header Fields Too Large");
    EXPECT_STREQ(net::reasonPhrase(503), "Service Unavailable");
}

} // namespace
