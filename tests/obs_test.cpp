#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json/write.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_id.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace lar::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
    Histogram h({1.0, 2.0, 5.0});
    for (const double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) h.observe(v);
    EXPECT_EQ(h.bucketCount(0), 2u); // 0.5, 1.0 (le=1 inclusive)
    EXPECT_EQ(h.bucketCount(1), 2u); // 1.5, 2.0
    EXPECT_EQ(h.bucketCount(2), 1u); // 5.0
    EXPECT_EQ(h.bucketCount(3), 1u); // 7.0 → +Inf
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 17.0);
}

TEST(Histogram, BoundsAreSortedAndDeduplicated) {
    Histogram h({5.0, 1.0, 5.0, 2.0});
    ASSERT_EQ(h.bounds().size(), 3u);
    EXPECT_TRUE(std::is_sorted(h.bounds().begin(), h.bounds().end()));
}

TEST(Registry, InterningReturnsTheSameSeries) {
    Registry reg;
    Counter& a = reg.counter("lar_test_total", "help", {{"kind", "x"}});
    Counter& b = reg.counter("lar_test_total", "help", {{"kind", "x"}});
    Counter& other = reg.counter("lar_test_total", "help", {{"kind", "y"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, TypeMismatchThrows) {
    Registry reg;
    (void)reg.counter("lar_mismatch", "help");
    EXPECT_THROW((void)reg.gauge("lar_mismatch", "help"), LogicError);
    (void)reg.histogram("lar_hist", "help", {1.0});
    EXPECT_THROW((void)reg.histogram("lar_hist", "help", {2.0}), LogicError);
}

TEST(Registry, InvalidNamesThrow) {
    Registry reg;
    EXPECT_THROW((void)reg.counter("2bad", "help"), LogicError);
    EXPECT_THROW((void)reg.counter("ok", "help", {{"bad-label", "v"}}),
                 LogicError);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
    Registry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    Counter& counter = reg.counter("lar_conc_total", "help");
    Histogram& hist = reg.histogram("lar_conc_ms", "help", {10.0, 100.0});
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter, &hist, &reg, t] {
            // Interning from several threads concurrently must be safe too.
            Counter& mine =
                reg.counter("lar_conc_total_by_thread", "help",
                            {{"thread", std::to_string(t)}});
            for (int i = 0; i < kIters; ++i) {
                counter.inc();
                mine.inc();
                hist.observe(static_cast<double>(i % 3));
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(hist.bucketCount(0), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Registry, PrometheusExpositionShape) {
    Registry reg;
    reg.counter("lar_q_total", "queries", {{"kind", "optimize"}}).inc(2);
    reg.counter("lar_q_total", "queries", {{"kind", "feasible"}}).inc();
    reg.gauge("lar_depth", "queue depth").set(1.5);
    Histogram& h = reg.histogram("lar_lat_ms", "latency", {1.0, 10.0});
    h.observe(0.5);
    h.observe(4.0);
    h.observe(40.0);
    const std::string text = reg.renderPrometheus();

    EXPECT_NE(text.find("# TYPE lar_q_total counter\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lar_depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lar_lat_ms histogram\n"), std::string::npos);
    EXPECT_NE(text.find("lar_q_total{kind=\"optimize\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("lar_q_total{kind=\"feasible\"} 1\n"), std::string::npos);
    // Buckets are cumulative and end in +Inf, with _sum and _count.
    EXPECT_NE(text.find("lar_lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("lar_lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("lar_lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("lar_lat_ms_sum 44.5\n"), std::string::npos);
    EXPECT_NE(text.find("lar_lat_ms_count 3\n"), std::string::npos);

    // No duplicate series lines (same name + label set twice).
    std::set<std::string> seen;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#') continue;
        const std::string series = line.substr(0, line.rfind(' '));
        EXPECT_TRUE(seen.insert(series).second) << "duplicate series: " << series;
    }
}

TEST(Registry, JsonExport) {
    Registry reg;
    reg.counter("lar_j_total", "help", {{"kind", "a"}}).inc(5);
    reg.histogram("lar_j_ms", "help", {1.0}).observe(0.5);
    const json::Value v = reg.toJson();
    EXPECT_EQ(v.at("lar_j_total").at("type").asString(), "counter");
    const json::Value& series = v.at("lar_j_total").at("series").asArray().at(0);
    EXPECT_EQ(series.at("labels").at("kind").asString(), "a");
    EXPECT_EQ(series.at("value").asInt(), 5);
    const json::Value& hist = v.at("lar_j_ms").at("series").asArray().at(0);
    EXPECT_EQ(hist.at("count").asInt(), 1);
    EXPECT_EQ(hist.at("buckets").asArray().size(), 2u); // le=1 and +Inf
}

TEST(Registry, ZeroObservationHistogramExpositionIsWellFormed) {
    // A histogram that never observed anything must still render a complete,
    // parseable family: every bucket at 0 including +Inf, _sum 0, _count 0.
    // (Scrapers interpolate rates from bucket deltas; a missing +Inf line
    // breaks them on freshly started servers.)
    Registry reg;
    (void)reg.histogram("lar_empty_ms", "never observed", {1.0, 10.0});
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# TYPE lar_empty_ms histogram\n"), std::string::npos);
    EXPECT_NE(text.find("lar_empty_ms_bucket{le=\"1\"} 0\n"), std::string::npos);
    EXPECT_NE(text.find("lar_empty_ms_bucket{le=\"10\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("lar_empty_ms_bucket{le=\"+Inf\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("lar_empty_ms_sum 0\n"), std::string::npos);
    EXPECT_NE(text.find("lar_empty_ms_count 0\n"), std::string::npos);
}

TEST(Registry, DisabledDropsUpdates) {
    Registry reg;
    Counter& c = reg.counter("lar_off_total", "help");
    Histogram& h = reg.histogram("lar_off_ms", "help", {1.0});
    setEnabled(false);
    c.inc();
    h.observe(0.5);
    setEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
    Registry reg;
    Counter& c = reg.counter("lar_r_total", "help");
    c.inc(7);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(Span, NestingBuildsATree) {
    Trace trace;
    {
        const ScopedTrace scoped(trace);
        const Span query("query");
        {
            const Span compile("compile");
        }
        {
            const Span solve("solve");
            const Span check("check");
            sample("solver_progress", {{"conflicts", 12.0}});
        }
    }
    const SpanNode* root = trace.root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "query");
    ASSERT_EQ(root->children.size(), 2u);
    EXPECT_NE(root->child("compile"), nullptr);
    const SpanNode* solve = root->child("solve");
    ASSERT_NE(solve, nullptr);
    const SpanNode* check = solve->child("check");
    ASSERT_NE(check, nullptr);
    ASSERT_EQ(check->samples.size(), 1u);
    EXPECT_EQ(check->samples[0].name, "solver_progress");
    ASSERT_EQ(check->samples[0].values.size(), 1u);
    EXPECT_EQ(check->samples[0].values[0].first, "conflicts");
    EXPECT_DOUBLE_EQ(check->samples[0].values[0].second, 12.0);
    EXPECT_GE(root->durationMs(), solve->durationMs());
    EXPECT_GE(solve->startMs, root->startMs);
}

TEST(Span, InertWithoutATrace) {
    const Span span("orphan"); // must not crash or leak
    sample("orphan_sample", {{"x", 1.0}});
}

TEST(Span, DisabledCollectsNothing) {
    Trace trace;
    setEnabled(false);
    {
        const ScopedTrace scoped(trace);
        const Span span("query");
    }
    setEnabled(true);
    EXPECT_EQ(trace.root(), nullptr);
}

TEST(Span, CrossesThreadPoolBoundaryViaContext) {
    Trace trace;
    util::ThreadPool pool(4);
    {
        const ScopedTrace scoped(trace);
        const Span root("query");
        const Context context = currentContext();
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 8; ++i) {
            futures.push_back(pool.submit([context, i] {
                const ScopedContext scopedContext(context);
                const Span task("task" + std::to_string(i % 2));
                sample("tick", {{"i", static_cast<double>(i)}});
            }));
        }
        for (auto& f : futures) f.get();
    }
    const SpanNode* root = trace.root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->children.size(), 8u); // all tasks nested under "query"
    for (const auto& child : root->children) {
        EXPECT_TRUE(child->name == "task0" || child->name == "task1");
        EXPECT_EQ(child->samples.size(), 1u);
    }
}

TEST(Span, ChromeTraceDocumentShape) {
    Trace trace;
    {
        const ScopedTrace scoped(trace);
        const Span query("query");
        const Span solve("solve");
        sample("solver_progress", {{"conflicts", 1.0}});
    }
    const json::Value doc = chromeTraceDocument({{"q1", &trace}});
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const json::Array& events = doc.at("traceEvents").asArray();
    // thread_name metadata + 2 "X" spans + 1 "i" instant.
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].at("ph").asString(), "M");
    EXPECT_EQ(events[0].at("args").at("name").asString(), "q1");
    int durations = 0;
    int instants = 0;
    for (const json::Value& e : events) {
        const std::string ph = e.at("ph").asString();
        if (ph == "X") {
            ++durations;
            EXPECT_GE(e.at("dur").asDouble(), 0.0);
        } else if (ph == "i") {
            ++instants;
            EXPECT_DOUBLE_EQ(e.at("args").at("conflicts").asDouble(), 1.0);
        }
    }
    EXPECT_EQ(durations, 2);
    EXPECT_EQ(instants, 1);
}

TEST(Span, CapDropsSpansButFlagsTruncation) {
    // A runaway span producer (a solver sampling every conflict, a retry
    // loop) must not grow a trace without bound — and the cap must be
    // visible, not a silent hole in the timeline.
    Trace trace(/*maxSpans=*/3);
    {
        const ScopedTrace scoped(trace);
        for (int i = 0; i < 10; ++i) {
            const Span span("burst" + std::to_string(i));
        }
    }
    EXPECT_TRUE(trace.truncated());
    EXPECT_EQ(trace.spanCount(), 3u);
    const SpanNode* root = trace.root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "burst0");
}

TEST(Span, DroppedSpanDropsItsDescendantsToo) {
    // A span rejected at the cap must not adopt grandchildren into the
    // wrong parent: its descendants are dropped with it.
    Trace trace(/*maxSpans=*/1);
    {
        const ScopedTrace scoped(trace);
        const Span kept("kept");
        {
            const Span over("over-cap");
            const Span child("child-of-over");
        }
    }
    EXPECT_TRUE(trace.truncated());
    const SpanNode* root = trace.root();
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "kept");
    EXPECT_TRUE(root->children.empty());
}

TEST(Span, CappedTraceStillBelowLimitIsNotTruncated) {
    Trace trace(/*maxSpans=*/8);
    {
        const ScopedTrace scoped(trace);
        const Span a("a");
        const Span b("b");
    }
    EXPECT_FALSE(trace.truncated());
    EXPECT_EQ(trace.spanCount(), 2u);
}

TEST(Span, TraceJsonShape) {
    Trace trace;
    {
        const ScopedTrace scoped(trace);
        const Span query("query");
        const Span solve("solve");
    }
    const json::Value v = trace.toJson();
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.asArray().size(), 1u);
    const json::Value& root = v.asArray()[0];
    EXPECT_EQ(root.at("name").asString(), "query");
    EXPECT_EQ(root.at("children").asArray().at(0).at("name").asString(), "solve");
}

// ---------------------------------------------------------------------------
// Trace identity
// ---------------------------------------------------------------------------

TEST(TraceId, MintedIdsAreValidAndDistinct) {
    std::set<std::string> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::string id = mintTraceId();
        EXPECT_EQ(id.size(), 32u);
        EXPECT_TRUE(validTraceId(id)) << id;
        EXPECT_TRUE(seen.insert(id).second) << "duplicate: " << id;
    }
}

TEST(TraceId, ValidationRejectsJunk) {
    EXPECT_TRUE(validTraceId("deadbeef"));
    EXPECT_TRUE(validTraceId("client-chosen.id_01"));
    EXPECT_FALSE(validTraceId(""));
    EXPECT_FALSE(validTraceId("short"));             // < 8 chars
    EXPECT_FALSE(validTraceId(std::string(65, 'a'))); // > 64 chars
    EXPECT_FALSE(validTraceId("has space"));
    EXPECT_FALSE(validTraceId("quote\"inject"));
    EXPECT_FALSE(validTraceId("new\nline"));
}

} // namespace
} // namespace lar::obs
