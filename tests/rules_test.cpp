#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "rules/datalog.hpp"
#include "rules/deployment.hpp"
#include "util/error.hpp"

namespace lar::rules {
namespace {

// --- core Datalog engine ------------------------------------------------------

TEST(Datalog, FactsOnly) {
    Program p;
    p.addFact("edge", {"a", "b"});
    p.addFact("edge", {"b", "c"});
    const Database db = p.evaluate();
    EXPECT_TRUE(db.contains("edge", {"a", "b"}));
    EXPECT_FALSE(db.contains("edge", {"c", "a"}));
    EXPECT_EQ(db.totalFacts(), 2u);
}

TEST(Datalog, TransitiveClosure) {
    Program p;
    for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
             {"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}})
        p.addFact("edge", {a, b});
    Rule base;
    base.head = {"path", {var("X"), var("Y")}};
    base.body = {{"edge", {var("X"), var("Y")}}};
    p.addRule(std::move(base));
    Rule step;
    step.head = {"path", {var("X"), var("Z")}};
    step.body = {{"edge", {var("X"), var("Y")}}, {"path", {var("Y"), var("Z")}}};
    p.addRule(std::move(step));
    const Database db = p.evaluate();
    EXPECT_TRUE(db.contains("path", {"a", "d"}));
    EXPECT_TRUE(db.contains("path", {"b", "d"}));
    EXPECT_FALSE(db.contains("path", {"d", "a"}));
    EXPECT_FALSE(db.contains("path", {"a", "y"}));
    EXPECT_EQ(db.relation("path").size(), 7u); // 6 in the chain + x→y
}

TEST(Datalog, JoinSharedVariables) {
    Program p;
    p.addFact("parent", {"ann", "bob"});
    p.addFact("parent", {"bob", "cid"});
    p.addFact("parent", {"ann", "dee"});
    Rule grand;
    grand.head = {"grandparent", {var("G"), var("C")}};
    grand.body = {{"parent", {var("G"), var("P")}},
                  {"parent", {var("P"), var("C")}}};
    p.addRule(std::move(grand));
    const Database db = p.evaluate();
    EXPECT_TRUE(db.contains("grandparent", {"ann", "cid"}));
    EXPECT_EQ(db.relation("grandparent").size(), 1u);
}

TEST(Datalog, StratifiedNegation) {
    Program p;
    p.addFact("node", {"a"});
    p.addFact("node", {"b"});
    p.addFact("covered", {"a"});
    Rule uncovered;
    uncovered.head = {"uncovered", {var("X")}};
    uncovered.body = {{"node", {var("X")}}};
    uncovered.negated = {{"covered", {var("X")}}};
    p.addRule(std::move(uncovered));
    const Database db = p.evaluate();
    EXPECT_FALSE(db.contains("uncovered", {"a"}));
    EXPECT_TRUE(db.contains("uncovered", {"b"}));
}

TEST(Datalog, NegationSeesDerivedLowerStratum) {
    // covered is itself derived; negation must wait for its stratum.
    Program p;
    p.addFact("node", {"a"});
    p.addFact("node", {"b"});
    p.addFact("tag", {"a"});
    Rule covered;
    covered.head = {"covered", {var("X")}};
    covered.body = {{"tag", {var("X")}}};
    p.addRule(std::move(covered));
    Rule uncovered;
    uncovered.head = {"uncovered", {var("X")}};
    uncovered.body = {{"node", {var("X")}}};
    uncovered.negated = {{"covered", {var("X")}}};
    p.addRule(std::move(uncovered));
    const Database db = p.evaluate();
    EXPECT_FALSE(db.contains("uncovered", {"a"}));
    EXPECT_TRUE(db.contains("uncovered", {"b"}));
}

TEST(Datalog, UnstratifiableProgramRejected) {
    Program p;
    p.addFact("n", {"x"});
    Rule a;
    a.head = {"p", {var("X")}};
    a.body = {{"n", {var("X")}}};
    a.negated = {{"q", {var("X")}}};
    p.addRule(std::move(a));
    Rule b;
    b.head = {"q", {var("X")}};
    b.body = {{"n", {var("X")}}};
    b.negated = {{"p", {var("X")}}};
    p.addRule(std::move(b));
    EXPECT_THROW((void)p.evaluate(), EncodingError);
}

TEST(Datalog, RangeRestrictionEnforced) {
    Program p;
    Rule bad;
    bad.head = {"out", {var("X")}};
    bad.body = {}; // X unbound
    EXPECT_THROW(p.addRule(std::move(bad)), EncodingError);

    Rule badNeg;
    badNeg.head = {"out", {cst("a")}};
    badNeg.negated = {{"q", {var("Y")}}}; // Y only under negation
    EXPECT_THROW(p.addRule(std::move(badNeg)), EncodingError);
}

TEST(Datalog, GroundRuleWithNegationOnly) {
    Program p;
    Rule r;
    r.head = {"ok", {cst("yes")}};
    r.negated = {{"blocked", {cst("x")}}};
    p.addRule(std::move(r));
    EXPECT_TRUE(p.evaluate().contains("ok", {"yes"}));

    Program p2;
    p2.addFact("blocked", {"x"});
    Rule r2;
    r2.head = {"ok", {cst("yes")}};
    r2.negated = {{"blocked", {cst("x")}}};
    p2.addRule(std::move(r2));
    EXPECT_FALSE(p2.evaluate().contains("ok", {"yes"}));
}

TEST(Datalog, ConstantsInBodyFilter) {
    Program p;
    p.addFact("edge", {"a", "b"});
    p.addFact("edge", {"a", "c"});
    Rule fromA;
    fromA.head = {"reach_from_a", {var("Y")}};
    fromA.body = {{"edge", {cst("a"), var("Y")}}};
    p.addRule(std::move(fromA));
    const Database db = p.evaluate();
    EXPECT_EQ(db.relation("reach_from_a").size(), 2u);
}

// --- the deployment-check program ---------------------------------------------

class DeploymentRulesTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    reason::Problem caseStudy() const {
        reason::Problem p = reason::makeDefaultProblem(*kb_);
        p.hardware[kb::HardwareClass::Server].count = 60;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.requiredCapabilities = {catalog::kCapDetectQueueLength};
        return p;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* DeploymentRulesTest::kb_ = nullptr;

TEST_F(DeploymentRulesTest, EngineDesignChecksCompliant) {
    const reason::Problem p = caseStudy();
    const auto design = reason::Engine(p).optimize();
    ASSERT_TRUE(design.has_value());
    const DatalogCheck check = checkDesignWithRules(p, *design);
    EXPECT_TRUE(check.compliant) << check.violations.front();
    EXPECT_GT(check.programFacts, 100u);
    EXPECT_GE(check.programRules, 10u);
}

TEST_F(DeploymentRulesTest, SabotagedLoadBalancerTripsRequirementRule) {
    const reason::Problem p = caseStudy();
    auto design = reason::Engine(p).optimize();
    ASSERT_TRUE(design.has_value());
    // PacketSpray needs big NIC reorder buffers; pair it with a NIC that
    // lacks them by swapping only the system.
    design->chosen[kb::Category::LoadBalancer] = "PacketSpray";
    design->hardwareModel[kb::HardwareClass::Nic] = "Intel X520 10G";
    const DatalogCheck check = checkDesignWithRules(p, *design);
    EXPECT_FALSE(check.compliant);
    const bool blamesPacketSpray = std::any_of(
        check.violations.begin(), check.violations.end(),
        [](const std::string& v) {
            return v.find("PacketSpray") != std::string::npos;
        });
    EXPECT_TRUE(blamesPacketSpray);
}

TEST_F(DeploymentRulesTest, PfcFloodingRuleFiresInDatalog) {
    // RoCEv2 + Linux-Bridge: the flooding fact derives via env_fact(F) :-
    // chosen(S), provides(S, F), and RoCEv2's !fact(flooding) leaf fails.
    reason::Problem p = reason::makeDefaultProblem(*kb_);
    reason::Design design;
    design.chosen[kb::Category::NetworkStack] = "Linux";
    design.chosen[kb::Category::CongestionControl] = "Cubic";
    design.chosen[kb::Category::TransportProtocol] = "RoCEv2";
    design.chosen[kb::Category::VirtualSwitch] = "Linux-Bridge";
    design.hardwareModel[kb::HardwareClass::Switch] =
        "NVIDIA Spectrum-2 32x100G";
    design.hardwareModel[kb::HardwareClass::Nic] = "Mellanox ConnectX-5 100G";
    design.hardwareModel[kb::HardwareClass::Server] = "EPYC Milan 64c 2U";
    const DatalogCheck check = checkDesignWithRules(p, design);
    EXPECT_FALSE(check.compliant);
    const bool blamesRoce = std::any_of(
        check.violations.begin(), check.violations.end(),
        [](const std::string& v) { return v.find("RoCEv2") != std::string::npos; });
    EXPECT_TRUE(blamesRoce);
    // Dropping the bridge clears the violation.
    design.chosen.erase(kb::Category::VirtualSwitch);
    EXPECT_TRUE(checkDesignWithRules(p, design).compliant);
}

TEST_F(DeploymentRulesTest, MissingCapabilityDetected) {
    reason::Problem p = caseStudy();
    auto design = reason::Engine(p).optimize();
    ASSERT_TRUE(design.has_value());
    design->chosen.erase(kb::Category::Monitoring); // drop the queue-length solver
    const DatalogCheck check = checkDesignWithRules(p, *design);
    // Unless another chosen system solves it, the capability rule fires.
    const bool covered = std::any_of(
        design->chosen.begin(), design->chosen.end(), [this](const auto& entry) {
            return kb_->system(entry.second)
                .solvesCapability(catalog::kCapDetectQueueLength);
        });
    EXPECT_EQ(check.compliant, covered);
}

TEST_F(DeploymentRulesTest, AgreesWithValidatorOnPredicateRules) {
    // Property: on engine-produced designs and single-system corruptions,
    // the Datalog check and the native validator agree about predicate-level
    // compliance (the Datalog side does not model quantities/budgets, so we
    // restrict to corruptions of requirement/conflict/capability kind).
    const reason::Problem p = caseStudy();
    reason::Engine engine(p);
    const auto designs = engine.enumerateDesigns(4);
    ASSERT_FALSE(designs.empty());
    for (const reason::Design& good : designs) {
        const DatalogCheck check = checkDesignWithRules(p, good);
        const auto violations = reason::validateDesign(p, good);
        EXPECT_EQ(check.compliant, violations.empty());
    }
}

} // namespace
} // namespace lar::rules
