#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "kb/serialize.hpp"

namespace lar::catalog {
namespace {

class CatalogTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() { kb_ = new kb::KnowledgeBase(buildKnowledgeBase()); }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }
    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* CatalogTest::kb_ = nullptr;

TEST_F(CatalogTest, PaperScaleCounts) {
    // §5.1: "over fifty systems" across seven categories, "about 200
    // hardware specs".
    EXPECT_GE(kb_->systems().size(), 50u);
    EXPECT_EQ(kb_->systems().size(), 56u);
    EXPECT_EQ(kb_->hardwareSpecs().size(), 208u);
    EXPECT_GE(kb_->orderings().size(), 50u);
}

TEST_F(CatalogTest, AllSevenCategoriesPopulated) {
    for (const kb::Category c : kb::kAllCategories)
        EXPECT_GE(kb_->byCategory(c).size(), 6u) << toString(c);
}

TEST_F(CatalogTest, AllThreeHardwareClassesPopulated) {
    EXPECT_GE(kb_->byClass(kb::HardwareClass::Switch).size(), 70u);
    EXPECT_GE(kb_->byClass(kb::HardwareClass::Nic).size(), 70u);
    EXPECT_GE(kb_->byClass(kb::HardwareClass::Server).size(), 40u);
}

TEST_F(CatalogTest, ValidatesWithoutErrors) {
    const auto issues = kb_->validate();
    for (const auto& issue : issues) {
        EXPECT_NE(issue.severity, kb::ValidationIssue::Severity::Error)
            << issue.message;
    }
}

TEST_F(CatalogTest, Listing1CiscoCatalystIsExact) {
    const kb::HardwareSpec& spec = kb_->hardware("Cisco Catalyst 9500-40X");
    EXPECT_EQ(spec.cls, kb::HardwareClass::Switch);
    EXPECT_EQ(spec.numAttr(kb::kAttrPortBandwidthGbps), 10.0); // "10 Gbps"
    EXPECT_DOUBLE_EQ(spec.maxPowerW, 950.0);                   // "950W"
    EXPECT_EQ(spec.numAttr(kb::kAttrNumPorts), 40.0);          // "40x 10GE"
    EXPECT_EQ(spec.numAttr(kb::kAttrMemoryGb), 16.0);          // "16 GB"
    EXPECT_EQ(spec.boolAttr(kb::kAttrP4Supported), false);     // "No" / "N/A"
    EXPECT_EQ(spec.boolAttr(kb::kAttrEcnSupported), true);     // "Yes"
    EXPECT_EQ(spec.numAttr(kb::kAttrMacTableSize), 64000.0);   // "64,000"
}

TEST_F(CatalogTest, Listing2SimonEncoding) {
    const kb::System& simon = kb_->system("SIMON");
    EXPECT_EQ(simon.category, kb::Category::Monitoring);
    // solves = [capture_delays, detect_queue_length]
    EXPECT_TRUE(simon.solvesCapability(kCapCaptureDelays));
    EXPECT_TRUE(simon.solvesCapability(kCapDetectQueueLength));
    // constraints include NICs.have("NIC_TIMESTAMPS")
    EXPECT_NE(simon.constraints.toString().find("nic_timestamps"),
              std::string::npos);
    // cores_needed(CPU_FACTOR * num_flows): per-kiloflow scaling present.
    const bool hasScaledCores = std::any_of(
        simon.demands.begin(), simon.demands.end(),
        [](const kb::ResourceDemand& d) {
            return d.resource == kb::kResCores && d.perKiloFlows > 0;
        });
    EXPECT_TRUE(hasScaledCores);
}

TEST_F(CatalogTest, PaperRulesOfThumbEncoded) {
    // §3.1: HPCC needs INT-enabled switches.
    EXPECT_NE(kb_->system("HPCC").constraints.toString().find("int_supported"),
              std::string::npos);
    // §3.1: Timely/Swift depend on NIC timestamps.
    EXPECT_NE(kb_->system("Timely").constraints.toString().find("nic_timestamps"),
              std::string::npos);
    EXPECT_NE(kb_->system("Swift").constraints.toString().find("nic_timestamps"),
              std::string::npos);
    // §4.1: Annulus required only when WAN and DC traffic compete.
    EXPECT_NE(kb_->system("Annulus").constraints.toString().find(
                  "wan_dc_traffic_compete"),
              std::string::npos);
    // §2.3: packet spraying needs larger NIC reorder buffers.
    EXPECT_NE(
        kb_->system("PacketSpray").constraints.toString().find("reorder_buffer"),
        std::string::npos);
    // §3.4: PFC (RoCEv2) cannot be used with flooding.
    EXPECT_NE(kb_->system("RoCEv2").constraints.toString().find("!fact(flooding)"),
              std::string::npos);
    // §4.2: Shenango requires NICs that support interrupt polling.
    EXPECT_NE(
        kb_->system("Shenango").constraints.toString().find("interrupt_polling"),
        std::string::npos);
}

TEST_F(CatalogTest, FloodingProvidedByLearningBridge) {
    EXPECT_TRUE(kb_->system("Linux-Bridge").providesFact(kFactFlooding));
}

TEST_F(CatalogTest, ResearchGradeFlags) {
    EXPECT_TRUE(kb_->system("Shenango").researchGrade);
    EXPECT_TRUE(kb_->system("Fastpass").researchGrade);
    EXPECT_FALSE(kb_->system("Linux").researchGrade);
    EXPECT_FALSE(kb_->system("Cubic").researchGrade);
}

TEST_F(CatalogTest, EverySystemCitesASource) {
    for (const kb::System& s : kb_->systems())
        EXPECT_FALSE(s.source.empty()) << s.name;
}

TEST_F(CatalogTest, EveryOrderingCitesASource) {
    for (const kb::Ordering& o : kb_->orderings())
        EXPECT_FALSE(o.source.empty()) << o.better << ">" << o.worse;
}

TEST_F(CatalogTest, HardwareAttrsArePlausible) {
    for (const kb::HardwareSpec& h : kb_->hardwareSpecs()) {
        EXPECT_GT(h.unitCostUsd, 0) << h.model;
        EXPECT_GT(h.maxPowerW, 0) << h.model;
        switch (h.cls) {
            case kb::HardwareClass::Switch:
                EXPECT_TRUE(h.numAttr(kb::kAttrPortBandwidthGbps).has_value());
                EXPECT_TRUE(h.boolAttr(kb::kAttrP4Supported).has_value());
                break;
            case kb::HardwareClass::Nic:
                EXPECT_TRUE(h.numAttr(kb::kAttrPortBandwidthGbps).has_value());
                EXPECT_TRUE(h.boolAttr(kb::kAttrSmartNic).has_value());
                break;
            case kb::HardwareClass::Server:
                EXPECT_TRUE(h.numAttr(kb::kAttrCores).has_value());
                EXPECT_TRUE(h.boolAttr(kb::kAttrCxlSupported).has_value());
                break;
        }
    }
}

TEST_F(CatalogTest, P4StagesOnlyOnP4Switches) {
    for (const kb::HardwareSpec* h : kb_->byClass(kb::HardwareClass::Switch)) {
        const bool p4 = h->boolAttr(kb::kAttrP4Supported).value_or(false);
        const bool hasStages = h->numAttr(kb::kAttrP4Stages).has_value();
        EXPECT_EQ(p4, hasStages) << h->model;
        if (p4) EXPECT_GE(*h->numAttr(kb::kAttrP4Stages), 10.0) << h->model;
    }
}

TEST_F(CatalogTest, CxlServersExist) {
    int cxl = 0;
    for (const kb::HardwareSpec* h : kb_->byClass(kb::HardwareClass::Server))
        if (h->boolAttr(kb::kAttrCxlSupported).value_or(false)) ++cxl;
    EXPECT_GE(cxl, 8);
}

TEST_F(CatalogTest, SmartNicKindsCoverFpgaAndCpu) {
    std::set<std::string> kinds;
    for (const kb::HardwareSpec* h : kb_->byClass(kb::HardwareClass::Nic))
        if (const auto kind = h->strAttr(kb::kAttrSmartNicKind)) kinds.insert(*kind);
    EXPECT_TRUE(kinds.count("fpga"));
    EXPECT_TRUE(kinds.count("cpu"));
    EXPECT_TRUE(kinds.count("none"));
}

TEST_F(CatalogTest, SerializationRoundTripsWholeCatalog) {
    const kb::KnowledgeBase restored = kb::kbFromText(kb::kbToText(*kb_));
    EXPECT_EQ(restored.systems().size(), kb_->systems().size());
    EXPECT_EQ(restored.hardwareSpecs().size(), kb_->hardwareSpecs().size());
    EXPECT_EQ(restored.orderings().size(), kb_->orderings().size());
    // Spot-check deep equality through re-rendering.
    EXPECT_EQ(kb::kbToText(restored), kb::kbToText(*kb_));
}

TEST_F(CatalogTest, EncodingLengthLinearInSystems) {
    // §3.1 success measure: KB length grows roughly linearly as systems are
    // added (no quadratic cross-products in the encoding).
    kb::KnowledgeBase incremental;
    std::vector<std::size_t> lengths;
    for (const kb::System& s : kb_->systems()) {
        incremental.addSystem(s);
        lengths.push_back(incremental.encodingLength());
    }
    // Average per-system increment over the second half must not exceed
    // twice that of the first half (linearity up to encoding-size noise).
    const std::size_t half = lengths.size() / 2;
    const double firstHalf = static_cast<double>(lengths[half]) / half;
    const double secondHalf =
        static_cast<double>(lengths.back() - lengths[half]) /
        static_cast<double>(lengths.size() - half);
    EXPECT_LT(secondHalf, 2.0 * firstHalf);
}

TEST_F(CatalogTest, WorkloadsMatchListing3) {
    const kb::Workload inference = makeInferenceWorkload();
    EXPECT_EQ(inference.name, "inference_app");
    EXPECT_EQ(inference.peakCores, 2800);
    EXPECT_DOUBLE_EQ(inference.peakBandwidthGbps, 30.0);
    EXPECT_TRUE(inference.hasProperty(kb::kPropDcFlows));
    EXPECT_TRUE(inference.hasProperty(kb::kPropShortFlows));
    EXPECT_TRUE(inference.hasProperty(kb::kPropHighPriority));
    ASSERT_EQ(inference.bounds.size(), 1u);
    EXPECT_EQ(inference.bounds[0].objective, kb::kObjLoadBalancing);
    EXPECT_EQ(inference.bounds[0].betterThanSystem, "PacketSpray");

    EXPECT_TRUE(makeVideoWorkload().hasProperty(kb::kPropWanDcCompete));
    EXPECT_TRUE(makeStorageWorkload().hasProperty(kb::kPropMemoryIntensive));
    EXPECT_TRUE(makeBatchWorkload().hasProperty(kb::kPropUnmodifiableApp));
}

} // namespace
} // namespace lar::catalog
