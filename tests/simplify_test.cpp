// Inprocessing verdict-agreement oracle.
//
// The property under test: inprocessing (subsumption, vivification,
// probing, equivalence reduction, bounded variable elimination) is purely a
// performance feature. For every instance — random CNF at the solver layer,
// fuzz-corpus knowledge bases at the engine layer — a simplifying solver
// and a plain solver must agree on every verdict, models must satisfy the
// ORIGINAL formula (exercising model reconstruction after elimination), and
// optimal costs must match. Runs under ASan/UBSan in the verify solver leg.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fuzzcorpus.hpp"
#include "json/value.hpp"
#include "reason/engine.hpp"
#include "reason/service.hpp"
#include "reason/trace.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "testsupport.hpp"
#include "util/rng.hpp"

namespace lar {
namespace {

using sat::Lit;
using sat::mkLit;
using sat::Solver;
using sat::SolveResult;

void loadRandomCnf(Solver& solver, const sat::Cnf& cnf) {
    while (solver.numVars() < cnf.numVars) (void)solver.newVar();
    for (const auto& clause : cnf.clauses) (void)solver.addClause(clause);
}

TEST(SimplifyOracle, RandomCnfVerdictsAndModelsAgreeOnVsOff) {
    util::Rng rng(9001);
    for (int round = 0; round < 40; ++round) {
        const sat::Cnf cnf =
            test::randomKSat(rng, /*numVars=*/25, /*numClauses=*/105, /*k=*/3);

        Solver on;
        sat::SolverOptions onOpts;
        onOpts.simplify.conflictInterval = 0; // simplify before every solve
        on.setOptions(onOpts);
        loadRandomCnf(on, cnf);

        Solver off;
        sat::SolverOptions offOpts;
        offOpts.simplify.enable = false;
        off.setOptions(offOpts);
        loadRandomCnf(off, cnf);

        for (int trial = 0; trial < 3; ++trial) {
            std::vector<Lit> assumptions;
            for (int v = 0; v < cnf.numVars; ++v)
                if (rng.chance(0.15))
                    assumptions.push_back(mkLit(v, rng.chance(0.5)));
            const SolveResult a = on.solve(assumptions);
            const SolveResult b = off.solve(assumptions);
            ASSERT_EQ(a, b) << "round " << round << " trial " << trial;
            if (a != SolveResult::Sat) continue;
            // The reconstructed model must satisfy the original formula
            // and honour every assumption.
            std::vector<bool> model;
            for (int v = 0; v < cnf.numVars; ++v)
                model.push_back(on.modelValue(v));
            EXPECT_TRUE(test::satisfies(cnf, model))
                << "round " << round << " trial " << trial;
            for (const Lit l : assumptions)
                EXPECT_EQ(model[static_cast<std::size_t>(l.var())], !l.sign())
                    << "round " << round << " trial " << trial;
        }
    }
}

reason::QueryOptions simplifyOff() {
    reason::QueryOptions options;
    options.simplify = false;
    return options;
}

TEST(SimplifyOracle, FuzzCorpusFeasibilityAgreesOnVsOff) {
    for (const std::uint64_t seed : {7u, 17u, 27u, 37u}) {
        util::Rng rng(seed);
        for (int round = 0; round < 4; ++round) {
            const kb::KnowledgeBase kb = fuzz::randomKb(rng);
            const reason::Problem p = fuzz::randomProblem(rng, kb);

            reason::Engine plain(p, simplifyOff());
            const reason::FeasibilityReport expected = plain.checkFeasible();
            reason::Engine simplifying(p); // default options: simplify on
            const reason::FeasibilityReport actual =
                simplifying.checkFeasible();
            EXPECT_EQ(actual.feasible, expected.feasible)
                << "seed " << seed << " round " << round;
        }
    }
}

TEST(SimplifyOracle, FuzzCorpusOptimalCostsAgreeOnVsOff) {
    // Lexicographic optimization is the most state-sensitive query:
    // inprocessing runs between the per-objective descents and must never
    // move an optimum.
    for (const std::uint64_t seed : {7u, 27u, 47u}) {
        util::Rng rng(seed + 900);
        const kb::KnowledgeBase kb = fuzz::randomKb(rng);
        const reason::Problem p = fuzz::randomProblem(rng, kb);

        const auto expected = reason::Engine(p, simplifyOff()).optimize();
        const auto actual = reason::Engine(p).optimize();
        ASSERT_EQ(actual.has_value(), expected.has_value()) << "seed " << seed;
        if (actual.has_value())
            EXPECT_EQ(actual->objectiveCosts, expected->objectiveCosts)
                << "seed " << seed;
    }
}

TEST(SimplifyOracle, TraceCarriesSimplifyBlock) {
    util::Rng rng(42);
    const kb::KnowledgeBase kb = fuzz::randomKb(rng);
    reason::ServiceOptions serviceOptions;
    serviceOptions.workers = 1;
    reason::Service service(serviceOptions);
    reason::QueryRequest request;
    request.kind = reason::QueryKind::Feasibility;
    request.problem = fuzz::randomProblem(rng, kb);
    const reason::QueryResult result = service.run(request);

    ASSERT_GE(result.trace.stats.simplifyRounds, 1u);
    const json::Value v = reason::toJson(result.trace);
    EXPECT_EQ(v.at("schema").asInt(), reason::kQueryTraceSchemaVersion);
    ASSERT_TRUE(v.asObject().contains("simplify"));
    const json::Value& s = v.at("simplify");
    EXPECT_GE(s.at("rounds").asInt(), 1);
    EXPECT_TRUE(s.asObject().contains("eliminated_vars"));
    EXPECT_TRUE(s.asObject().contains("probes"));
    EXPECT_TRUE(s.asObject().contains("time_ms"));
}

} // namespace
} // namespace lar
