#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "json/parse.hpp"
#include "kb/objectives.hpp"
#include "reason/problem_io.hpp"
#include "util/error.hpp"

namespace lar::reason {
namespace {

class ProblemIoTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }
    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ProblemIoTest::kb_ = nullptr;

Problem fullySpecifiedProblem(const kb::KnowledgeBase& kb) {
    Problem p = makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server] = {{}, "EPYC Milan 64c 2U", 60};
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].candidateModels = {
        "Mellanox ConnectX-5 100G", "Intel E810 100G"};
    p.workloads = {catalog::makeInferenceWorkload(), catalog::makeVideoWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    p.pinnedSystems = {{"Sonata", true}, {"Hedera", false}};
    p.pinnedFacts = {{"flooding", false}};
    p.pinnedOptions = {{"pony_enabled", true}};
    p.extraConstraint = kb::Requirement::hardwareCmp(
        kb::HardwareClass::Server, kb::kAttrRamGb, kb::CmpOp::Ge, 256.0);
    p.maxHardwareCostUsd = 900000;
    p.maxPowerW = 50000;
    p.forbidResearchGrade = true;
    p.preferMinimalDesign = false;
    return p;
}

TEST_F(ProblemIoTest, RoundTripPreservesEverything) {
    const Problem original = fullySpecifiedProblem(*kb_);
    const Problem restored = problemFromText(problemToText(original), *kb_);

    EXPECT_EQ(restored.hardware.at(kb::HardwareClass::Server).pinnedModel,
              original.hardware.at(kb::HardwareClass::Server).pinnedModel);
    EXPECT_EQ(restored.hardware.at(kb::HardwareClass::Server).count, 60);
    EXPECT_EQ(restored.hardware.at(kb::HardwareClass::Nic).candidateModels,
              original.hardware.at(kb::HardwareClass::Nic).candidateModels);
    ASSERT_EQ(restored.workloads.size(), 2u);
    EXPECT_EQ(restored.workloads[0].name, "inference_app");
    EXPECT_EQ(restored.workloads[0].bounds.size(), 1u);
    EXPECT_EQ(restored.objectivePriority, original.objectivePriority);
    EXPECT_EQ(restored.requiredCapabilities, original.requiredCapabilities);
    EXPECT_EQ(restored.requiredCategories, original.requiredCategories);
    EXPECT_EQ(restored.optionalCategories, original.optionalCategories);
    EXPECT_EQ(restored.pinnedSystems, original.pinnedSystems);
    EXPECT_EQ(restored.pinnedFacts, original.pinnedFacts);
    EXPECT_EQ(restored.pinnedOptions, original.pinnedOptions);
    EXPECT_EQ(restored.extraConstraint.toString(),
              original.extraConstraint.toString());
    EXPECT_EQ(restored.maxHardwareCostUsd, original.maxHardwareCostUsd);
    EXPECT_EQ(restored.maxPowerW, original.maxPowerW);
    EXPECT_EQ(restored.forbidResearchGrade, true);
    EXPECT_EQ(restored.preferMinimalDesign, false);
    EXPECT_EQ(restored.kb, kb_);
}

TEST_F(ProblemIoTest, EmptySpecYieldsDefaults) {
    const Problem defaults = makeDefaultProblem(*kb_);
    const Problem restored = problemFromText("{}", *kb_);
    EXPECT_EQ(restored.requiredCategories, defaults.requiredCategories);
    EXPECT_EQ(restored.optionalCategories, defaults.optionalCategories);
    EXPECT_EQ(restored.hardware.size(), 3u);
    EXPECT_TRUE(restored.commonSenseRules);
    EXPECT_TRUE(restored.preferMinimalDesign);
    EXPECT_FALSE(restored.maxHardwareCostUsd.has_value());
}

TEST_F(ProblemIoTest, UnknownReferencesRejected) {
    EXPECT_THROW((void)problemFromText(
                     R"({"pinned_systems": {"NoSuchSystem": true}})", *kb_),
                 EncodingError);
    EXPECT_THROW((void)problemFromText(
                     R"({"hardware": {"server": {"pinned_model": "Ghost"}}})",
                     *kb_),
                 EncodingError);
    EXPECT_THROW((void)problemFromText(
                     R"({"hardware": {"blimp": {"count": 1}}})", *kb_),
                 ParseError);
    EXPECT_THROW((void)problemFromText(
                     R"({"required_categories": ["sorcery"]})", *kb_),
                 ParseError);
}

TEST_F(ProblemIoTest, PartialHardwareSpecReplacesDefaults) {
    const Problem restored = problemFromText(
        R"({"hardware": {"server": {"count": 10}}})", *kb_);
    // Only the classes listed in the spec exist afterwards.
    EXPECT_EQ(restored.hardware.size(), 1u);
    EXPECT_EQ(restored.hardware.at(kb::HardwareClass::Server).count, 10);
}

TEST_F(ProblemIoTest, SerializedSpecIsValidJson) {
    const Problem original = fullySpecifiedProblem(*kb_);
    EXPECT_NO_THROW((void)json::parse(problemToText(original)));
}

} // namespace
} // namespace lar::reason
