#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "llmsim/greedy.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"

namespace lar::llmsim {
namespace {

using kb::Category;
using kb::HardwareClass;

class LlmSimTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    reason::Problem caseStudy() const {
        reason::Problem p = reason::makeDefaultProblem(*kb_);
        p.hardware[HardwareClass::Server].count = 60;
        p.hardware[HardwareClass::Switch].count = 8;
        p.hardware[HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                               kb::kObjMonitoring};
        p.requiredCapabilities = {catalog::kCapDetectQueueLength};
        return p;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* LlmSimTest::kb_ = nullptr;

TEST_F(LlmSimTest, SimpleAggregateQueriesAreCorrect) {
    // §5.2: "it accurately determined straightforward requirements such as
    // the minimum number of cores needed".
    const reason::Problem p = caseStudy();
    const GreedyReasoner llm(p);
    // Ground truth: workload cores + SIMON's fixed+scaled cores.
    const reason::WorkloadAggregates agg = reason::aggregateWorkloads(p.workloads);
    std::int64_t expected = agg.totalPeakCores;
    for (const kb::ResourceDemand& d : kb_->system("SIMON").demands)
        if (d.resource == kb::kResCores)
            expected += d.amountFor(agg.totalKiloFlows, agg.totalGbps);
    EXPECT_EQ(llm.minCoresNeeded({"SIMON"}), expected);
    EXPECT_EQ(llm.minCoresNeeded({}), agg.totalPeakCores);
    EXPECT_EQ(llm.minCoresNeeded({"NoSuchSystem"}), agg.totalPeakCores);
}

TEST_F(LlmSimTest, GreedyProposalLooksPlausible) {
    const reason::Problem p = caseStudy();
    const GreedyReasoner llm(p);
    const reason::Design design = llm.proposeDesign();
    // It fills the required categories with real systems.
    EXPECT_TRUE(design.chosen.count(Category::NetworkStack));
    EXPECT_TRUE(design.chosen.count(Category::CongestionControl));
    EXPECT_TRUE(design.hardwareModel.count(HardwareClass::Switch));
}

TEST_F(LlmSimTest, GreedyMissesNuancesTheSatEngineCatches) {
    // §5.2: the LLM "failed to return correct results when faced with
    // nuances". The greedy proposal must violate at least one rule the
    // validator knows about, while the SAT engine's design is clean.
    const reason::Problem p = caseStudy();
    const GreedyReasoner llm(p);
    const reason::Design greedy = llm.proposeDesign();
    const auto greedyViolations = reason::validateDesign(p, greedy);
    EXPECT_FALSE(greedyViolations.empty());

    reason::Engine engine(p);
    const auto sat = engine.optimize();
    ASSERT_TRUE(sat.has_value());
    EXPECT_TRUE(reason::validateDesign(p, *sat).empty());
}

TEST_F(LlmSimTest, GreedyIgnoresBudgets) {
    reason::Problem p = caseStudy();
    p.maxHardwareCostUsd = 500000;
    const GreedyReasoner llm(p);
    const reason::Design greedy = llm.proposeDesign();
    // "Bigger is better" hardware blows the budget; the validator notices.
    const auto violations = reason::validateDesign(p, greedy);
    const bool budgetViolated = std::any_of(
        violations.begin(), violations.end(), [](const std::string& violation) {
            return violation.find("budget") != std::string::npos;
        });
    EXPECT_TRUE(budgetViolated);
}

TEST_F(LlmSimTest, GreedyHonorsPins) {
    reason::Problem p = caseStudy();
    p.pinnedSystems["Sonata"] = true;
    p.hardware[HardwareClass::Server].pinnedModel = "EPYC Milan 64c 2U";
    const GreedyReasoner llm(p);
    const reason::Design design = llm.proposeDesign();
    EXPECT_TRUE(design.uses("Sonata"));
    EXPECT_EQ(design.hardwareModel.at(HardwareClass::Server), "EPYC Milan 64c 2U");
}

} // namespace
} // namespace lar::llmsim
