// Tests for the §6 "future work" features the library implements:
// disambiguation suggestions, modular knowledge evolution, and the
// track-subset checking that powers minimal conflict explanations.
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "smt/backend.hpp"

namespace lar::reason {
namespace {

class EngineFeaturesTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    Problem caseStudy() const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[kb::HardwareClass::Server].count = 60;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                               kb::kObjMonitoring};
        p.requiredCapabilities = {catalog::kCapDetectQueueLength};
        return p;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* EngineFeaturesTest::kb_ = nullptr;

// --- disambiguation (§6: make the solution unique) ---------------------------

TEST_F(EngineFeaturesTest, SuggestsDisambiguationWhenOptimumIsNotUnique) {
    const Problem p = caseStudy();
    const auto suggestions = suggestDisambiguation(p, /*sampleDesigns=*/6);
    // The case study has several equally-optimal designs (seen in the
    // ml_inference example), so at least one category needs input.
    ASSERT_FALSE(suggestions.empty());
    for (const auto& s : suggestions) {
        EXPECT_GE(s.contenders.size(), 2u);
        EXPECT_NE(s.suggestion.find(toString(s.category)), std::string::npos);
    }
}

TEST_F(EngineFeaturesTest, PinningContendersRemovesSuggestions) {
    Problem p = caseStudy();
    auto suggestions = suggestDisambiguation(p, 6);
    ASSERT_FALSE(suggestions.empty());
    // Apply the advice: pin one contender per suggested category.
    for (const auto& s : suggestions) {
        for (const std::string& contender : s.contenders) {
            if (contender != "(none)") {
                p.pinnedSystems[contender] = true;
                break;
            }
        }
    }
    const auto after = suggestDisambiguation(p, 6);
    EXPECT_LT(after.size(), suggestions.size() + 1); // strictly fewer or zero
    // The pinned problem must still be solvable.
    EXPECT_TRUE(Engine(p).checkFeasible().feasible);
}

TEST_F(EngineFeaturesTest, UniqueOptimumYieldsNoSuggestions) {
    Problem p = caseStudy();
    // Over-pin everything: one system per category, one model per class.
    Engine engine(p);
    const auto design = engine.optimize();
    ASSERT_TRUE(design.has_value());
    for (const auto& [category, name] : design->chosen)
        p.pinnedSystems[name] = true;
    for (const kb::Category c : kb::kAllCategories) {
        if (design->chosen.count(c) == 0)
            for (const kb::System* s : kb_->byCategory(c))
                p.pinnedSystems[s->name] = false;
    }
    for (const auto& [cls, model] : design->hardwareModel)
        p.hardware[cls].pinnedModel = model;
    const auto suggestions = suggestDisambiguation(p, 6);
    EXPECT_TRUE(suggestions.empty());
}

// --- modular knowledge evolution (§6 proof modularity) ------------------------

TEST_F(EngineFeaturesTest, ReplaceSystemChangesReasoningOutcome) {
    kb::KnowledgeBase evolved = *kb_;
    // v2 of Sonata no longer needs a P4 switch (say it gained an eBPF
    // backend); nothing else in the KB changes.
    kb::System sonataV2 = evolved.system("Sonata");
    sonataV2.constraints = kb::Requirement::alwaysTrue();
    sonataV2.demands = {{kb::kResCores, 8.0, 0.0, 0.2}};
    evolved.replaceSystem(std::move(sonataV2));

    Problem p = makeDefaultProblem(evolved);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.pinnedSystems["Sonata"] = true;
    // Pin a non-P4 switch: impossible with v1, fine with v2.
    p.hardware[kb::HardwareClass::Switch].pinnedModel = "Cisco Catalyst 9500-40X";
    // (no workloads: the Catalyst's 10G ports are fine for an empty load)
    EXPECT_TRUE(Engine(p).checkFeasible().feasible);

    Problem v1 = p;
    v1.kb = kb_;
    EXPECT_FALSE(Engine(v1).checkFeasible().feasible);
}

TEST_F(EngineFeaturesTest, ReplaceUnknownSystemThrows) {
    kb::KnowledgeBase copy = *kb_;
    kb::System ghost;
    ghost.name = "Ghost";
    EXPECT_THROW(copy.replaceSystem(std::move(ghost)), EncodingError);
}

TEST_F(EngineFeaturesTest, RemoveSystemDropsItsOrderings) {
    kb::KnowledgeBase copy = *kb_;
    const std::size_t orderingsBefore = copy.orderings().size();
    const std::size_t dropped = copy.removeSystem("SIMON");
    EXPECT_GE(dropped, 2u); // Listing 2's two ordering lines at minimum
    EXPECT_EQ(copy.orderings().size(), orderingsBefore - dropped);
    EXPECT_EQ(copy.findSystem("SIMON"), nullptr);
    // Index integrity: every other system still resolvable.
    for (const kb::System& s : copy.systems())
        EXPECT_EQ(&copy.system(s.name), &s);
    // Validation stays clean (no dangling ordering refs).
    for (const auto& issue : copy.validate())
        EXPECT_NE(issue.severity, kb::ValidationIssue::Severity::Error)
            << issue.message;
}

TEST_F(EngineFeaturesTest, RemoveUnknownSystemThrows) {
    kb::KnowledgeBase copy = *kb_;
    EXPECT_THROW((void)copy.removeSystem("Ghost"), EncodingError);
}

// --- §3.1 breadth-first granularity refinement ---------------------------------

TEST_F(EngineFeaturesTest, RefinementHintsFlagCoarseEncodings) {
    // Plant a coarse system that the design must rely on.
    kb::KnowledgeBase coarseKb = *kb_;
    kb::System coarse;
    coarse.name = "CoarseMon";
    coarse.category = kb::Category::Monitoring;
    coarse.solves = {catalog::kCapDetectQueueLength};
    coarse.source = "napkin";
    coarseKb.addSystem(std::move(coarse));

    Problem p = caseStudy();
    p.kb = &coarseKb;
    p.pinnedSystems["CoarseMon"] = true;
    const auto design = Engine(p).optimize();
    ASSERT_TRUE(design.has_value());
    const auto hints = suggestRefinements(p, *design);
    const auto it = std::find_if(hints.begin(), hints.end(),
                                 [](const RefinementHint& h) {
                                     return h.system == "CoarseMon";
                                 });
    ASSERT_NE(it, hints.end());
    EXPECT_GE(it->gaps.size(), 3u); // no reqs, no demands, no orderings
}

TEST_F(EngineFeaturesTest, WellEncodedSystemsGetNoHints) {
    const Problem p = caseStudy();
    const auto design = Engine(p).optimize();
    ASSERT_TRUE(design.has_value());
    for (const auto& hint : suggestRefinements(p, *design)) {
        // Fully-encoded catalog systems (SIMON, CONGA, ...) must not be
        // flagged for missing requirements AND demands AND orderings.
        EXPECT_LT(hint.gaps.size(), 3u) << hint.system;
    }
}

// --- §2.3 marginal-cost sharing -----------------------------------------------

TEST_F(EngineFeaturesTest, SmartNicSystemsShareTheProvisionedHardware) {
    // "if the architect deploys these SmartNICs, then the marginal cost of
    //  deploying other systems using SmartNICs decreases since the systems
    //  can share SmartNIC resources" (§2.3). With SIMON already forcing a
    //  SmartNIC fleet, adding the SmartNIC firewall changes nothing about
    //  the hardware bill.
    Problem withSimon = caseStudy();
    withSimon.pinnedSystems["SIMON"] = true;
    const auto base = Engine(withSimon).optimize();
    ASSERT_TRUE(base.has_value());
    const kb::HardwareSpec& nic =
        kb_->hardware(base->hardwareModel.at(kb::HardwareClass::Nic));
    ASSERT_TRUE(nic.boolAttr(kb::kAttrSmartNic).value_or(false));

    Problem withFirewall = withSimon;
    withFirewall.pinnedSystems["SmartNIC-Firewall"] = true;
    const auto shared = Engine(withFirewall).optimize();
    ASSERT_TRUE(shared.has_value());
    // The firewall rides on the already-provisioned SmartNICs: zero (or
    // negligible) extra hardware cost.
    EXPECT_NEAR(shared->hardwareCostUsd, base->hardwareCostUsd,
                base->hardwareCostUsd * 0.05);
    // Both SmartNIC consumers fit within the NIC's core budget.
    EXPECT_LE(shared->resourceUsage.at(kb::kResSmartNicCores),
              shared->resourceCapacity.at(kb::kResSmartNicCores));
}

// --- checkWithTracks (the mechanism behind minimal conflicts) -----------------

TEST_F(EngineFeaturesTest, CheckWithTracksEnforcesOnlyTheSubset) {
    smt::FormulaStore store;
    const smt::NodeId x = store.var("x");
    auto backend = smt::makeBackend(smt::BackendKind::Cdcl, store);
    backend->addHard(x, /*track=*/1);
    backend->addHard(store.mkNot(x), /*track=*/2);
    // Both tracks: contradiction. Either alone: fine.
    const std::vector<int> both{1, 2};
    EXPECT_EQ(backend->checkWithTracks(both), smt::CheckStatus::Unsat);
    const std::vector<int> onlyFirst{1};
    EXPECT_EQ(backend->checkWithTracks(onlyFirst), smt::CheckStatus::Sat);
    EXPECT_TRUE(backend->modelValue(x));
    const std::vector<int> onlySecond{2};
    EXPECT_EQ(backend->checkWithTracks(onlySecond), smt::CheckStatus::Sat);
    EXPECT_FALSE(backend->modelValue(x));
}

TEST_F(EngineFeaturesTest, MinimalConflictSubsetOfFullConflictRules) {
    Problem p = caseStudy();
    p.maxHardwareCostUsd = 100000; // far too tight
    Engine engine(p);
    const auto minimal = engine.explainMinimalConflict();
    ASSERT_FALSE(minimal.feasible);
    // The budget rule must be part of any minimal explanation here.
    const bool mentionsBudget = std::any_of(
        minimal.conflictingRules.begin(), minimal.conflictingRules.end(),
        [](const std::string& rule) {
            return rule.find("budget") != std::string::npos;
        });
    EXPECT_TRUE(mentionsBudget);
}

} // namespace
} // namespace lar::reason
