// Warm-start snapshot soundness, bottom to top.
//
// The soundness argument being tested: a snapshot's clauses are learnt by
// resolution over the baseline clause database alone, so importing them
// into a solver holding the *identical* baseline (same compilation replay,
// same variable numbering) adds only implied clauses — verdicts cannot
// change, only the search path. The sat-level tests check the export/import
// guards that keep "identical baseline" honest; the fuzz oracle checks the
// end-to-end property on random problems: warm and cold runs agree on
// every verdict.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catalog/catalog.hpp"
#include "fuzzcorpus.hpp"
#include "reason/engine.hpp"
#include "reason/service.hpp"
#include "reason/whatif.hpp"
#include "sat/solver.hpp"
#include "testsupport.hpp"
#include "util/rng.hpp"

namespace lar {
namespace {

using sat::Lit;
using sat::mkLit;
using sat::Solver;
using sat::SolverSnapshot;
using sat::SolveResult;

/// Loads `cnf` into `solver` and marks the snapshot baseline.
void loadBaseline(Solver& solver, const sat::Cnf& cnf) {
    while (solver.numVars() < cnf.numVars) (void)solver.newVar();
    for (const std::vector<Lit>& clause : cnf.clauses) {
        (void)solver.addClause(clause);
    }
    solver.markSnapshotBaseline();
}

TEST(SolverSnapshot, ExportWithoutBaselineIsEmpty) {
    util::Rng rng(7);
    const sat::Cnf cnf = test::randomKSat(rng, 30, 120, 3);
    Solver solver;
    while (solver.numVars() < cnf.numVars) (void)solver.newVar();
    for (const auto& clause : cnf.clauses) (void)solver.addClause(clause);
    (void)solver.solve();
    EXPECT_TRUE(solver.exportSnapshot().empty());
}

TEST(SolverSnapshot, ExportRefusedAfterClausesGrewPastBaseline) {
    util::Rng rng(11);
    const sat::Cnf cnf = test::randomKSat(rng, 30, 120, 3);
    Solver solver;
    loadBaseline(solver, cnf);
    (void)solver.solve();
    EXPECT_FALSE(solver.exportSnapshot().empty());

    // Any addClause after the baseline — even one that never reaches the
    // clause database, like a satisfied or unit clause — must poison the
    // export: the importer's "identical formula" assumption no longer holds.
    (void)solver.addClause(mkLit(0), ~mkLit(0));
    EXPECT_TRUE(solver.exportSnapshot().empty());
}

TEST(SolverSnapshot, ImportRejectsVariableCountMismatch) {
    util::Rng rng(13);
    const sat::Cnf cnf = test::randomKSat(rng, 30, 120, 3);
    Solver exporter;
    loadBaseline(exporter, cnf);
    (void)exporter.solve();
    const SolverSnapshot snap = exporter.exportSnapshot();
    ASSERT_FALSE(snap.empty());

    Solver importer;
    loadBaseline(importer, cnf);
    (void)importer.newVar(); // one extra variable: not the same formula
    EXPECT_EQ(importer.importSnapshot(snap), 0U);
}

TEST(SolverSnapshot, RoundTripPreservesVerdictAndIntegratesClauses) {
    util::Rng rng(17);
    for (int round = 0; round < 20; ++round) {
        const sat::Cnf cnf =
            test::randomKSat(rng, 25, static_cast<int>(rng.range(80, 140)), 3);
        Solver cold;
        loadBaseline(cold, cnf);
        const SolveResult coldResult = cold.solve();
        const SolverSnapshot snap = cold.exportSnapshot();

        Solver warm;
        loadBaseline(warm, cnf);
        if (!snap.empty()) (void)warm.importSnapshot(snap);
        EXPECT_EQ(warm.solve(), coldResult) << "round " << round;
        if (coldResult == SolveResult::Sat) {
            std::vector<bool> model(static_cast<std::size_t>(cnf.numVars));
            for (int v = 0; v < cnf.numVars; ++v) model[v] = warm.modelValue(v);
            EXPECT_TRUE(test::satisfies(cnf, model)) << "round " << round;
        }
    }
}

TEST(SolverSnapshot, ActivityIsNormalizedOnExport) {
    // Export refuses on unsat solvers, so scan seeds until one instance
    // solves Sat with learnt state to export.
    bool exported = false;
    for (std::uint64_t seed = 19; seed < 40 && !exported; ++seed) {
        util::Rng rng(seed);
        const sat::Cnf cnf = test::randomKSat(rng, 30, 120, 3);
        Solver solver;
        loadBaseline(solver, cnf);
        if (solver.solve() != SolveResult::Sat) continue;
        const SolverSnapshot snap = solver.exportSnapshot();
        if (snap.empty()) continue;
        exported = true;
        for (const double a : snap.activity) {
            EXPECT_GE(a, 0.0);
            EXPECT_LE(a, 1.0);
        }
    }
    EXPECT_TRUE(exported);
}

// ---------------------------------------------------------------------------
// Fuzz oracle: warm and cold service runs agree on every verdict.
// ---------------------------------------------------------------------------

TEST(WarmStartOracle, ServiceVerdictsAgreeWarmVsCold) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        util::Rng rng(seed);
        const kb::KnowledgeBase kb = fuzz::randomKb(rng);
        const reason::Problem problem = fuzz::randomProblem(rng, kb);

        reason::ServiceOptions coldOptions;
        coldOptions.workers = 1;
        reason::Service coldService(coldOptions);
        reason::QueryRequest request;
        request.id = "oracle";
        request.kind = reason::QueryKind::Feasibility;
        request.problem = problem;
        const reason::Verdict coldVerdict = coldService.run(request).verdict;

        reason::ServiceOptions warmOptions;
        warmOptions.workers = 1;
        warmOptions.warmStartCapacity = 4;
        reason::Service warmService(warmOptions);
        // First run seeds the snapshot cache; the second starts warm.
        const reason::Verdict seedVerdict = warmService.run(request).verdict;
        const reason::QueryResult warmResult = warmService.run(request);
        EXPECT_EQ(seedVerdict, coldVerdict) << "seed " << seed;
        EXPECT_EQ(warmResult.verdict, coldVerdict) << "seed " << seed;
    }
}

TEST(WarmStartOracle, WhatIfSessionVerdictsAgreeWarmVsCold) {
    int warmStartedSessions = 0;
    for (std::uint64_t seed = 30; seed <= 45; ++seed) {
        util::Rng rng(seed);
        const kb::KnowledgeBase kb = fuzz::randomKb(rng);
        const reason::Problem problem = fuzz::randomProblem(rng, kb);

        reason::WhatIfSession cold(problem);
        const sat::SolverSnapshot snap = [&] {
            reason::WhatIfSession seeder(problem);
            (void)seeder.ask({});
            return seeder.exportSnapshot();
        }();

        reason::QueryOptions warmOptions;
        const auto shared =
            std::make_shared<const sat::SolverSnapshot>(snap);
        if (!snap.empty()) warmOptions.warmStart = shared;
        reason::WhatIfSession warm(problem, warmOptions);
        // warmStarted() means "clauses integrated", which a single seed may
        // legitimately miss (trivial problem, or every exported unit already
        // on the fresh solver's level-0 trail) — count across seeds instead.
        if (warm.warmStarted()) ++warmStartedSessions;

        // The base problem plus a few random pin variations must agree.
        util::Rng vary(seed * 977);
        for (int round = 0; round < 4; ++round) {
            reason::Variation variation;
            if (round > 0) {
                const auto& systems = kb.systems();
                const auto& pick =
                    systems[vary.below(systems.size())];
                variation.systems[pick.name] = vary.chance(0.5);
            }
            const reason::WhatIfAnswer a = cold.ask(variation);
            const reason::WhatIfAnswer b = warm.ask(variation);
            EXPECT_EQ(a.verdict, b.verdict)
                << "seed " << seed << " round " << round;
        }
    }
    // The oracle is vacuous if no session ever actually warm-started.
    EXPECT_GT(warmStartedSessions, 0);
}

TEST(WarmStartService, SnapshotLruEvictsBeyondCapacity) {
    reason::ServiceOptions options;
    options.workers = 1;
    options.warmStartCapacity = 1;
    reason::Service service(options);

    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    reason::Problem a = reason::makeDefaultProblem(kb);
    a.hardware[kb::HardwareClass::Server].count = 10;
    reason::Problem b = a;
    b.hardware[kb::HardwareClass::Server].count = 11;

    reason::QueryRequest req;
    req.kind = reason::QueryKind::Feasibility;
    req.problem = a;
    (void)service.run(req); // stores snapshot(a)
    EXPECT_NE(service.snapshotFor(a), nullptr);
    req.problem = b;
    (void)service.run(req); // capacity 1: snapshot(b) evicts snapshot(a)
    EXPECT_EQ(service.snapshotFor(a), nullptr);
    EXPECT_NE(service.snapshotFor(b), nullptr);
}

} // namespace
} // namespace lar
