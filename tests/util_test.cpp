#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lar::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
    const auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
    const auto parts = splitWhitespace("  a \t b\n c  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("z"), "z");
}

TEST(Strings, ToLower) { EXPECT_EQ(toLower("AbC-42"), "abc-42"); }

TEST(Logging, LogFieldRendersJsonScalars) {
    EXPECT_EQ(LogField("k", "plain").rendered, "\"plain\"");
    EXPECT_EQ(LogField("k", "quo\"te\n").rendered, "\"quo\\\"te\\n\"");
    EXPECT_EQ(LogField("k", std::int64_t{-7}).rendered, "-7");
    EXPECT_EQ(LogField("k", 3.5).rendered, "3.5");
    EXPECT_EQ(LogField("k", true).rendered, "true");
    EXPECT_EQ(LogField("k", false).rendered, "false");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(startsWith("hello world", "hello"));
    EXPECT_FALSE(startsWith("hello", "hello world"));
    EXPECT_TRUE(endsWith("spec.json", ".json"));
    EXPECT_FALSE(endsWith("spec", ".json"));
}

TEST(Strings, ContainsIgnoreCase) {
    EXPECT_TRUE(containsIgnoreCase("Cisco Catalyst 9500-40X", "catalyst"));
    EXPECT_FALSE(containsIgnoreCase("Cisco", "juniper"));
    EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Strings, ReplaceAll) {
    EXPECT_EQ(replaceAll("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replaceAll("none", "x", "y"), "none");
}

TEST(Strings, ParseFirstIntPlain) {
    long long v = 0;
    ASSERT_TRUE(parseFirstInt("40x 10 Gigabit", v));
    EXPECT_EQ(v, 40);
}

TEST(Strings, ParseFirstIntThousandsSeparators) {
    long long v = 0;
    ASSERT_TRUE(parseFirstInt("64,000 entries", v));
    EXPECT_EQ(v, 64000);
}

TEST(Strings, ParseFirstIntStopsAtNonNumericComma) {
    long long v = 0;
    ASSERT_TRUE(parseFirstInt("16, then more", v));
    EXPECT_EQ(v, 16);
}

TEST(Strings, ParseFirstIntNoDigits) {
    long long v = 0;
    EXPECT_FALSE(parseFirstInt("N/A", v));
}

TEST(Strings, FormatDouble) {
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 1), "2.0");
}

TEST(Errors, ExpectsThrowsLogicError) {
    EXPECT_NO_THROW(expects(true, "fine"));
    EXPECT_THROW(expects(false, "boom"), LogicError);
}

TEST(Errors, HierarchyIsCatchableAsError) {
    try {
        throw ParseError("bad file");
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "bad file");
        return;
    }
    FAIL() << "ParseError not caught as Error";
}

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
    EXPECT_THROW(rng.below(0), LogicError);
}

TEST(Rng, RangeInclusive) {
    Rng rng(9);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIsInUnitInterval) {
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.chance(0.25)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

} // namespace
} // namespace lar::util
