#include "testsupport.hpp"

#include "util/error.hpp"

namespace lar::test {

sat::Cnf randomKSat(util::Rng& rng, int numVars, int numClauses, int k) {
    expects(k <= numVars, "randomKSat: k exceeds variable count");
    sat::Cnf cnf;
    cnf.numVars = numVars;
    cnf.clauses.reserve(static_cast<std::size_t>(numClauses));
    for (int c = 0; c < numClauses; ++c) {
        std::vector<sat::Lit> clause;
        std::vector<char> used(static_cast<std::size_t>(numVars), 0);
        while (static_cast<int>(clause.size()) < k) {
            const auto v = static_cast<sat::Var>(rng.below(static_cast<std::uint64_t>(numVars)));
            if (used[static_cast<std::size_t>(v)]) continue;
            used[static_cast<std::size_t>(v)] = 1;
            clause.push_back(sat::mkLit(v, rng.chance(0.5)));
        }
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

bool satisfies(const sat::Cnf& cnf, const std::vector<bool>& assignment) {
    for (const auto& clause : cnf.clauses) {
        bool sat = false;
        for (const sat::Lit l : clause) {
            if (assignment[static_cast<std::size_t>(l.var())] != l.sign()) {
                sat = true;
                break;
            }
        }
        if (!sat) return false;
    }
    return true;
}

std::optional<std::vector<bool>> bruteForceSat(const sat::Cnf& cnf) {
    expects(cnf.numVars <= 24, "bruteForceSat: too many variables");
    const std::uint64_t limit = 1ULL << cnf.numVars;
    std::vector<bool> assignment(static_cast<std::size_t>(cnf.numVars));
    for (std::uint64_t bits = 0; bits < limit; ++bits) {
        for (int v = 0; v < cnf.numVars; ++v)
            assignment[static_cast<std::size_t>(v)] = ((bits >> v) & 1) != 0;
        if (satisfies(cnf, assignment)) return assignment;
    }
    return std::nullopt;
}

} // namespace lar::test
