// Chaos suite: armed net.* fault sites against a live in-process server,
// exercised through the resilient HttpClient.
//
// Covers the availability contract end to end: transient connect faults are
// retried within the attempt budget, a transparent re-dial never
// double-spends the end-to-end deadline (regression), hedged GETs win
// against a stalled primary while non-idempotent requests are never hedged
// or double-executed, 429/503 shed responses are retried honoring
// Retry-After, the armed-site ledger is visible via /v1/debug/faults and
// /statusz, and a fleet of retrying clients survives 5% read/write/accept
// chaos with zero crashes and full connection drain after disarm.
//
// The FaultInjector is process-global, so every test resets it on entry and
// exit, and the servers here run in-process (the sites would be invisible
// across a fork).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/http_client.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "serve/routes.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"

using namespace lar;
using net::HttpClient;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::ServerOptions;

namespace {

using Clock = std::chrono::steady_clock;

double elapsedMs(Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
}

class ChaosTest : public ::testing::Test {
protected:
    void SetUp() override { util::FaultInjector::global().reset(); }
    void TearDown() override { util::FaultInjector::global().reset(); }
};

/// A loopback server with the routes the chaos cases drive.
struct ChaosServer {
    ChaosServer(ServerOptions options = {}) : server([&options] {
        options.bindAddress = "127.0.0.1";
        options.port = 0;
        options.accessLog = false;
        return options;
    }()) {
        server.route("GET", "/ping", [](const HttpRequest&) {
            return HttpResponse::text(200, "pong");
        });
        server.route("GET", "/healthz", [](const HttpRequest&) {
            return HttpResponse::text(200, "ok");
        });
        server.route("POST", "/count", [this](const HttpRequest& req) {
            posted.fetch_add(1);
            return HttpResponse::text(200, req.body);
        });
        // First hit stalls ~600 ms, later hits answer immediately — the
        // shape a hedged GET is designed to beat.
        server.route("GET", "/sometimes-slow", [this](const HttpRequest&) {
            if (slowHits.fetch_add(1) == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(600));
            return HttpResponse::text(200, "eventually");
        });
        // First hit sheds with Retry-After: 1, later hits answer.
        server.route("GET", "/shed-once", [this](const HttpRequest&) {
            if (shedHits.fetch_add(1) == 0) {
                HttpResponse resp =
                    HttpResponse::errorJson(503, "overloaded", "try later");
                resp.extraHeaders.push_back({"Retry-After", "1"});
                return resp;
            }
            return HttpResponse::text(200, "recovered");
        });
        server.start();
    }
    ~ChaosServer() { server.stop(); }

    [[nodiscard]] std::uint16_t port() const { return server.port(); }

    HttpServer server;
    std::atomic<int> posted{0};
    std::atomic<int> slowHits{0};
    std::atomic<int> shedHits{0};
};

TEST_F(ChaosTest, TransientConnectFaultIsRetriedEvenForPost) {
    ChaosServer ts;
    // The injected connect failure happens before any bytes are sent, so
    // even a non-idempotent POST is safe to retry.
    util::FaultInjector::global().armNthHit(net::kSiteConnect, 1);

    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/5'000);
    net::RetryOptions retry;
    retry.maxAttempts = 3;
    retry.baseBackoffMs = 5;
    retry.maxBackoffMs = 20;
    client.setRetryOptions(retry);

    const net::ClientResponse resp = client.post("/count", "x");
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(ts.posted.load(), 1) << "retried request must execute once";
    EXPECT_EQ(client.stats().retries, 1u);
    EXPECT_GE(util::FaultInjector::global().hits(net::kSiteConnect), 1u);
}

TEST_F(ChaosTest, WithoutRetriesConnectFaultSurfaces) {
    ChaosServer ts;
    util::FaultInjector::global().armNthHit(net::kSiteConnect, 1);
    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/5'000);
    EXPECT_THROW((void)client.get("/ping"), Error);
    EXPECT_EQ(client.stats().retries, 0u);
    // The connection works again once the one-shot fault is spent.
    EXPECT_EQ(client.get("/ping").status, 200);
}

// Regression: a transparent re-dial of a stale keep-alive connection used
// to restart the timeout clock, so a request could block ~2x its deadline.
// Serve one request from a raw listener, close the connection, then
// black-hole the re-dialed one: the second request must time out in ~1x
// the deadline, not 2x.
TEST_F(ChaosTest, RedialSharesTheEndToEndDeadline) {
    const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listenFd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    ASSERT_EQ(::listen(listenFd, 4), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::atomic<bool> done{false};
    std::thread listener([&] {
        // Serve request A completely, then close (stale keep-alive).
        int a = ::accept(listenFd, nullptr, nullptr);
        if (a >= 0) {
            char buf[1024];
            (void)::recv(a, buf, sizeof buf, 0);
            const char resp[] =
                "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
            (void)::send(a, resp, sizeof resp - 1, MSG_NOSIGNAL);
            ::close(a);
        }
        // Accept the re-dial and never answer it.
        int b = ::accept(listenFd, nullptr, nullptr);
        while (!done.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (b >= 0) ::close(b);
    });

    const int timeoutMs = 600;
    HttpClient client("127.0.0.1", port, timeoutMs);
    EXPECT_EQ(client.get("/a").status, 200);

    // Give the listener's close a moment to reach our socket so the second
    // request reliably takes the stale-connection path.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const Clock::time_point start = Clock::now();
    EXPECT_THROW((void)client.get("/b"), net::TimeoutError);
    const double took = elapsedMs(start);
    EXPECT_LT(took, 1.75 * timeoutMs)
        << "re-dial must not restart the deadline clock";
    EXPECT_GE(took, 0.5 * timeoutMs);
    EXPECT_EQ(client.stats().redials, 1u);

    done.store(true);
    listener.join();
    ::close(listenFd);
}

TEST_F(ChaosTest, HedgedGetBeatsAStalledPrimary) {
    // The hedge only helps if a second handler can run while the primary's
    // sleeps — on a 1-core machine the default pool is one thread wide.
    ServerOptions options;
    options.handlerThreads = 4;
    ChaosServer ts(options);
    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/5'000);
    net::RetryOptions retry;
    retry.hedgeDelayMs = 50;
    client.setRetryOptions(retry);

    const Clock::time_point start = Clock::now();
    const net::ClientResponse resp = client.get("/sometimes-slow");
    const double took = elapsedMs(start);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "eventually");
    EXPECT_LT(took, 450.0) << "the hedge should answer before the 600 ms "
                              "primary stall";
    EXPECT_EQ(client.stats().hedges, 1u);
    EXPECT_EQ(client.stats().hedgeWins, 1u);

    // The winner's connection was adopted: client still works keep-alive.
    EXPECT_EQ(client.get("/ping").status, 200);
}

TEST_F(ChaosTest, HedgingNeverDoubleExecutesNonIdempotentRequests) {
    ChaosServer ts;
    // Kill the server's first read: the POST reaches the wire but never a
    // handler, so the client must NOT retry (sent + non-idempotent) and
    // must NOT have hedged it in the first place.
    util::FaultInjector::global().armNthHit(net::kSiteRead, 1);

    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/2'000);
    net::RetryOptions retry;
    retry.maxAttempts = 3;
    retry.hedgeDelayMs = 10;
    client.setRetryOptions(retry);

    EXPECT_THROW((void)client.post("/count", "x"), Error);
    EXPECT_EQ(ts.posted.load(), 0) << "the faulted POST must not execute";
    EXPECT_EQ(client.stats().hedges, 0u) << "POSTs never hedge";
    EXPECT_EQ(client.stats().retries, 0u)
        << "a sent non-idempotent request must not be retried";
}

TEST_F(ChaosTest, ShedResponseIsRetriedHonoringRetryAfter) {
    ChaosServer ts;
    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/5'000);
    net::RetryOptions retry;
    retry.maxAttempts = 3;
    client.setRetryOptions(retry);

    const Clock::time_point start = Clock::now();
    const net::ClientResponse resp = client.get("/shed-once");
    const double took = elapsedMs(start);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "recovered");
    EXPECT_GE(took, 900.0) << "must wait out Retry-After: 1";
    EXPECT_EQ(client.stats().shedWaits, 1u);
    EXPECT_EQ(ts.shedHits.load(), 2);
}

TEST_F(ChaosTest, ShedResponseReturnsAsIsWhenBudgetTooSmall) {
    ChaosServer ts;
    // Retry-After: 1 does not fit a 300 ms budget: the 503 comes back
    // unchanged instead of a pointless wait-then-timeout.
    HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/300);
    net::RetryOptions retry;
    retry.maxAttempts = 3;
    client.setRetryOptions(retry);

    const net::ClientResponse resp = client.get("/shed-once");
    EXPECT_EQ(resp.status, 503);
    EXPECT_EQ(client.stats().shedWaits, 0u);
}

TEST_F(ChaosTest, DebugFaultsEndpointAndStatuszShowArmedSites) {
    reason::Service service;
    ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    options.accessLog = false;
    HttpServer server(options);
    serve::registerDebugRoutes(server, service);
    server.start();
    HttpClient client("127.0.0.1", server.port());

    // Nothing armed: the endpoint answers an empty ledger and /statusz
    // omits the section entirely.
    net::ClientResponse resp = client.get("/v1/debug/faults");
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("\"count\":0"), std::string::npos) << resp.body;
    EXPECT_EQ(client.get("/statusz").body.find("fault injection"),
              std::string::npos);

    util::FaultInjector::global().armProbability(net::kSiteRead, 0.05, 42);
    util::FaultInjector::global().armNthHit(net::kSiteConnect, 7);

    resp = client.get("/v1/debug/faults");
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("net.read"), std::string::npos) << resp.body;
    EXPECT_NE(resp.body.find("net.connect"), std::string::npos);
    EXPECT_NE(resp.body.find("probability"), std::string::npos);
    EXPECT_NE(resp.body.find("nth_hit"), std::string::npos);

    const std::string statusz = client.get("/statusz").body;
    EXPECT_NE(statusz.find("fault injection sites"), std::string::npos)
        << statusz;
    EXPECT_NE(statusz.find("net.read"), std::string::npos);

    // Reset before the server handles anything else, so the armed read
    // site cannot bite these very connections.
    util::FaultInjector::global().reset();
    server.stop();
}

// The availability gate in miniature (bench_chaos runs the full version):
// 5% faults on accept/read/write, a fleet of retrying clients, and the bar
// is zero crashes, >= 99% success with retries on, and a clean drain back
// to zero connections after disarm.
TEST_F(ChaosTest, FleetSurvivesFivePercentChaosAndServerRecovers) {
    ChaosServer ts;
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.armProbability(net::kSiteAccept, 0.05, 101);
    injector.armProbability(net::kSiteRead, 0.05, 102);
    injector.armProbability(net::kSiteWrite, 0.05, 103);

    constexpr int kThreads = 6;
    constexpr int kPerThread = 40;
    std::atomic<int> ok{0};
    std::atomic<int> failed{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> redials{0};
    std::vector<std::thread> fleet;
    fleet.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        fleet.emplace_back([&, t] {
            HttpClient client("127.0.0.1", ts.port(), /*timeoutMs=*/5'000);
            net::RetryOptions retry;
            retry.maxAttempts = 5;
            retry.baseBackoffMs = 2;
            retry.maxBackoffMs = 20;
            retry.seed = static_cast<std::uint64_t>(t) + 1;
            client.setRetryOptions(retry);
            for (int i = 0; i < kPerThread; ++i) {
                try {
                    if (client.get("/ping").status == 200)
                        ok.fetch_add(1);
                    else
                        failed.fetch_add(1);
                } catch (const Error&) {
                    failed.fetch_add(1);
                }
            }
            retries.fetch_add(client.stats().retries);
            redials.fetch_add(client.stats().redials);
        });
    }
    for (std::thread& t : fleet) t.join();

    const int total = kThreads * kPerThread;
    EXPECT_EQ(ok.load() + failed.load(), total);
    EXPECT_GE(ok.load(), (total * 99) / 100)
        << "with retries on, at least 99% must succeed under 5% chaos "
        << "(retries=" << retries.load() << " redials=" << redials.load()
        << ")";
    EXPECT_GT(injector.hits(net::kSiteRead), 0u) << "chaos must have run";
    EXPECT_GT(retries.load() + redials.load(), 0u)
        << "5% faults over " << total << " requests must trip the client's "
        << "resilience machinery at least once";

    // Disarm and verify recovery: health answers and connections drain.
    injector.reset();
    HttpClient probe("127.0.0.1", ts.port());
    EXPECT_EQ(probe.get("/healthz").status, 200);
    probe.disconnect();
    const Clock::time_point start = Clock::now();
    while (ts.server.activeConnections() != 0 && elapsedMs(start) < 5'000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(ts.server.activeConnections(), 0u)
        << "no leaked connections after the fleet disconnected";
}

} // namespace
