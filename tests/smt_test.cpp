#include <gtest/gtest.h>

#include "smt/backend.hpp"
#include "smt/formula.hpp"
#include "util/rng.hpp"

namespace lar::smt {
namespace {

TEST(FormulaStore, ConstantsAndFolding) {
    FormulaStore f;
    const NodeId t = f.constant(true);
    const NodeId fa = f.constant(false);
    EXPECT_EQ(f.mkNot(t), fa);
    EXPECT_EQ(f.mkNot(f.mkNot(f.var("x"))), f.var("x"));
    EXPECT_EQ(f.mkAnd(t, f.var("x")), f.var("x"));
    EXPECT_EQ(f.mkAnd(fa, f.var("x")), fa);
    EXPECT_EQ(f.mkOr(t, f.var("x")), t);
    EXPECT_EQ(f.mkOr(fa, f.var("x")), f.var("x"));
    EXPECT_EQ(f.mkAnd(std::vector<NodeId>{}), t);
    EXPECT_EQ(f.mkOr(std::vector<NodeId>{}), fa);
}

TEST(FormulaStore, VarInterning) {
    FormulaStore f;
    EXPECT_EQ(f.var("a"), f.var("a"));
    EXPECT_NE(f.var("a"), f.var("b"));
    EXPECT_TRUE(f.findVar("a").has_value());
    EXPECT_FALSE(f.findVar("zz").has_value());
}

TEST(FormulaStore, AsLiteral) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const auto pos = f.asLiteral(x);
    ASSERT_TRUE(pos.has_value());
    EXPECT_EQ(pos->first, x);
    EXPECT_FALSE(pos->second);
    const auto neg = f.asLiteral(f.mkNot(x));
    ASSERT_TRUE(neg.has_value());
    EXPECT_TRUE(neg->second);
    EXPECT_FALSE(f.asLiteral(f.mkAnd(x, f.var("y"))).has_value());
}

TEST(FormulaStore, LinLeqFolding) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    // Bound below zero → false; bound ≥ total → true.
    EXPECT_EQ(f.mkLinLeq({{1, x, false}, {1, y, false}}, -1), f.constant(false));
    EXPECT_EQ(f.mkLinLeq({{1, x, false}, {1, y, false}}, 2), f.constant(true));
    EXPECT_EQ(f.mkLinGeq({{2, x, false}}, 0), f.constant(true));
    EXPECT_EQ(f.mkLinGeq({{2, x, false}}, 3), f.constant(false));
}

TEST(FormulaStore, LinLeqNormalizesNegatedVars) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId atom = f.mkLinLeq({{1, f.mkNot(x), false}}, 0);
    const Node& n = f.node(atom);
    ASSERT_EQ(n.kind, NodeKind::LinLeq);
    ASSERT_EQ(n.terms.size(), 1u);
    EXPECT_EQ(n.terms[0].var, x);
    EXPECT_TRUE(n.terms[0].negated);
}

TEST(FormulaStore, EvaluateMatchesSemantics) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    const NodeId expr = f.mkOr(f.mkAnd(x, f.mkNot(y)), f.mkLinLeq({{1, x, false}, {1, y, false}}, 1));
    std::unordered_map<NodeId, bool> m{{x, true}, {y, true}};
    EXPECT_FALSE(f.evaluate(f.mkAnd(x, f.mkNot(y)), m));
    EXPECT_FALSE(f.evaluate(f.mkLinLeq({{1, x, false}, {1, y, false}}, 1), m));
    EXPECT_FALSE(f.evaluate(expr, m));
    m[y] = false;
    EXPECT_TRUE(f.evaluate(expr, m));
}

TEST(FormulaStore, ToStringIsReadable) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    EXPECT_EQ(f.toString(f.mkAnd(x, f.mkNot(y))), "(x & !y)");
    EXPECT_EQ(f.toString(f.mkLinLeq({{2, x, false}, {1, y, true}}, 2)),
              "(2*x + !y <= 2)");
}

// --- Backend conformance: both backends must behave identically -------------

std::vector<BackendKind> availableBackends() {
    std::vector<BackendKind> kinds{BackendKind::Cdcl};
    if (haveZ3()) kinds.push_back(BackendKind::Z3);
    return kinds;
}

class BackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendTest, SimpleSatAndModel) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(f.mkOr(x, y));
    backend->addHard(f.mkNot(x));
    ASSERT_EQ(backend->check(), CheckStatus::Sat);
    EXPECT_FALSE(backend->modelValue(x));
    EXPECT_TRUE(backend->modelValue(y));
}

TEST_P(BackendTest, UnsatDetected) {
    FormulaStore f;
    const NodeId x = f.var("x");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(x);
    backend->addHard(f.mkNot(x));
    EXPECT_EQ(backend->check(), CheckStatus::Unsat);
}

TEST_P(BackendTest, AssumptionsAndCore) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    const NodeId z = f.var("z");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(f.mkOr(f.mkNot(x), f.mkNot(y))); // ¬(x ∧ y)
    const std::vector<NodeId> assume{z, x, y};
    ASSERT_EQ(backend->check(assume), CheckStatus::Unsat);
    const CoreResult core = backend->unsatCore();
    // z is irrelevant; the core should name x and/or y only.
    for (const NodeId a : core.assumptions) EXPECT_NE(a, z);
    EXPECT_FALSE(core.assumptions.empty());
}

TEST_P(BackendTest, TrackedConstraintsAppearInCore) {
    FormulaStore f;
    const NodeId x = f.var("x");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(x, /*track=*/7);
    backend->addHard(f.mkNot(x), /*track=*/9);
    backend->addHard(f.var("unrelated"), /*track=*/13);
    ASSERT_EQ(backend->check(), CheckStatus::Unsat);
    const CoreResult core = backend->unsatCore();
    EXPECT_FALSE(core.tracks.empty());
    for (const int t : core.tracks) EXPECT_NE(t, 13);
    // Both sides of the contradiction should be present.
    EXPECT_NE(std::find(core.tracks.begin(), core.tracks.end(), 7),
              core.tracks.end());
    EXPECT_NE(std::find(core.tracks.begin(), core.tracks.end(), 9),
              core.tracks.end());
}

TEST_P(BackendTest, LinLeqBothPolarities) {
    FormulaStore f;
    const NodeId a = f.var("a");
    const NodeId b = f.var("b");
    const NodeId c = f.var("c");
    const NodeId atMostOne =
        f.mkLinLeq({{1, a, false}, {1, b, false}, {1, c, false}}, 1);
    auto backend = makeBackend(GetParam(), f);
    // Negated atom: at least two of a,b,c.
    backend->addHard(f.mkNot(atMostOne));
    ASSERT_EQ(backend->check(), CheckStatus::Sat);
    int count = 0;
    for (const NodeId v : {a, b, c})
        if (backend->modelValue(v)) ++count;
    EXPECT_GE(count, 2);
}

TEST_P(BackendTest, OptimizeLexicographic) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    const NodeId z = f.var("z");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(f.mkOr(f.mkNot(x), f.mkNot(y))); // x excludes y
    backend->addHard(f.mkOr(f.mkNot(x), f.mkNot(z))); // x excludes z
    const std::vector<ObjectiveSpec> objectives{
        {"first", {{x, 1}}},
        {"second", {{y, 1}, {z, 1}}},
    };
    const OptimizeResult r = backend->optimize(objectives);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(r.costs.size(), 2u);
    EXPECT_EQ(r.costs[0], 0);
    EXPECT_EQ(r.costs[1], 2);
    EXPECT_TRUE(backend->modelValue(x));
}

TEST_P(BackendTest, OptimizeInfeasible) {
    FormulaStore f;
    const NodeId x = f.var("x");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(x);
    backend->addHard(f.mkNot(x));
    const std::vector<ObjectiveSpec> objectives{{"o", {{f.var("y"), 1}}}};
    EXPECT_FALSE(backend->optimize(objectives).feasible);
}

TEST_P(BackendTest, OptimizeWeighted) {
    FormulaStore f;
    const NodeId x = f.var("x");
    const NodeId y = f.var("y");
    auto backend = makeBackend(GetParam(), f);
    backend->addHard(f.mkOr(f.mkNot(x), f.mkNot(y)));
    const std::vector<ObjectiveSpec> objectives{{"o", {{x, 7}, {y, 3}}}};
    const OptimizeResult r = backend->optimize(objectives);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.costs[0], 3);
    EXPECT_TRUE(backend->modelValue(x));
    EXPECT_FALSE(backend->modelValue(y));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::ValuesIn(availableBackends()),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                             return info.param == BackendKind::Cdcl ? "cdcl" : "z3";
                         });

// --- Cross-backend agreement on random formulas -----------------------------

NodeId randomFormula(FormulaStore& f, util::Rng& rng, int depth,
                     const std::vector<NodeId>& vars) {
    if (depth == 0 || rng.chance(0.3)) {
        const NodeId v = vars[rng.below(vars.size())];
        return rng.chance(0.5) ? v : f.mkNot(v);
    }
    const double pick = rng.uniform();
    if (pick < 0.35) {
        return f.mkAnd(randomFormula(f, rng, depth - 1, vars),
                       randomFormula(f, rng, depth - 1, vars));
    }
    if (pick < 0.7) {
        return f.mkOr(randomFormula(f, rng, depth - 1, vars),
                      randomFormula(f, rng, depth - 1, vars));
    }
    if (pick < 0.85) {
        return f.mkNot(randomFormula(f, rng, depth - 1, vars));
    }
    // Linear atom over a random subset.
    std::vector<LinTerm> terms;
    for (const NodeId v : vars)
        if (rng.chance(0.6))
            terms.push_back({1 + static_cast<std::int64_t>(rng.below(3)), v,
                             rng.chance(0.3)});
    if (terms.empty()) terms.push_back({1, vars[0], false});
    std::int64_t total = 0;
    for (const auto& t : terms) total += t.coef;
    return f.mkLinLeq(std::move(terms),
                      static_cast<std::int64_t>(rng.below(
                          static_cast<std::uint64_t>(total + 1))));
}

TEST(BackendAgreement, RandomFormulasSameVerdict) {
    if (!haveZ3()) GTEST_SKIP() << "built without Z3";
    util::Rng rng(31337);
    int satSeen = 0;
    int unsatSeen = 0;
    for (int round = 0; round < 40; ++round) {
        FormulaStore f;
        std::vector<NodeId> vars;
        for (int i = 0; i < 5; ++i) vars.push_back(f.var("v" + std::to_string(i)));
        auto cdcl = makeBackend(BackendKind::Cdcl, f);
        auto z3b = makeBackend(BackendKind::Z3, f);
        for (int c = 0; c < 6; ++c) {
            const NodeId g = randomFormula(f, rng, 3, vars);
            cdcl->addHard(g);
            z3b->addHard(g);
        }
        const CheckStatus a = cdcl->check();
        const CheckStatus b = z3b->check();
        EXPECT_EQ(a, b) << "round " << round;
        if (a == CheckStatus::Sat) ++satSeen;
        if (a == CheckStatus::Unsat) ++unsatSeen;
    }
    EXPECT_GT(satSeen, 0);
    EXPECT_GT(unsatSeen, 0);
}

TEST(BackendAgreement, RandomOptimizationSameCosts) {
    if (!haveZ3()) GTEST_SKIP() << "built without Z3";
    util::Rng rng(2718);
    int feasibleSeen = 0;
    for (int round = 0; round < 25; ++round) {
        FormulaStore f;
        std::vector<NodeId> vars;
        for (int i = 0; i < 5; ++i) vars.push_back(f.var("v" + std::to_string(i)));
        auto cdcl = makeBackend(BackendKind::Cdcl, f);
        auto z3b = makeBackend(BackendKind::Z3, f);
        for (int c = 0; c < 4; ++c) {
            const NodeId g = randomFormula(f, rng, 2, vars);
            cdcl->addHard(g);
            z3b->addHard(g);
        }
        std::vector<ObjectiveSpec> objectives(2);
        objectives[0].name = "a";
        objectives[1].name = "b";
        for (int i = 0; i < 5; ++i)
            objectives[static_cast<std::size_t>(i % 2)].softs.push_back(
                {rng.chance(0.5) ? vars[static_cast<std::size_t>(i)]
                                 : f.mkNot(vars[static_cast<std::size_t>(i)]),
                 1 + static_cast<std::int64_t>(rng.below(4))});
        const OptimizeResult ra = cdcl->optimize(objectives);
        const OptimizeResult rb = z3b->optimize(objectives);
        ASSERT_EQ(ra.feasible, rb.feasible) << "round " << round;
        if (!ra.feasible) continue;
        ++feasibleSeen;
        ASSERT_EQ(ra.costs, rb.costs) << "round " << round;
    }
    EXPECT_GT(feasibleSeen, 5);
}

} // namespace
} // namespace lar::smt
