#include <gtest/gtest.h>

#include "json/parse.hpp"
#include "kb/kb.hpp"
#include "kb/objectives.hpp"
#include "kb/serialize.hpp"
#include "util/error.hpp"

namespace lar::kb {
namespace {

Requirement sampleRequirement() {
    return Requirement::allOf(
        {Requirement::hardwareHas(HardwareClass::Nic, kAttrNicTimestamps),
         Requirement::anyOf(
             {Requirement::systemPresent("Linux"),
              Requirement::negate(Requirement::fact("flooding"))}),
         Requirement::hardwareCmp(HardwareClass::Switch, kAttrP4Stages, CmpOp::Ge,
                                  6.0),
         Requirement::option("pony_enabled"),
         Requirement::workloadHas("dc_flows")});
}

TEST(Requirement, DefaultIsTrivial) {
    EXPECT_TRUE(Requirement().isTrivial());
    EXPECT_TRUE(Requirement::alwaysTrue().isTrivial());
    EXPECT_FALSE(Requirement::alwaysFalse().isTrivial());
}

TEST(Requirement, ToStringShapes) {
    EXPECT_EQ(Requirement::systemPresent("Snap").toString(), "system(Snap)");
    EXPECT_EQ(Requirement::fact("flooding").toString(), "fact(flooding)");
    EXPECT_EQ(Requirement::factAbsent("flooding").toString(), "!fact(flooding)");
    EXPECT_EQ(Requirement::option("pony").toString(), "option(pony)");
    EXPECT_EQ(Requirement::workloadHas("dc_flows").toString(),
              "workload.has(dc_flows)");
    EXPECT_EQ(
        Requirement::hardwareHas(HardwareClass::Nic, "nic_timestamps").toString(),
        "nic.has(nic_timestamps)");
    EXPECT_EQ(Requirement::hardwareCmp(HardwareClass::Switch, "p4_stages",
                                       CmpOp::Ge, 6.0)
                  .toString(),
              "switch.p4_stages >= 6");
}

TEST(Requirement, CollectRefs) {
    const Requirement r = sampleRequirement();
    std::vector<std::string> systems;
    r.collectSystemRefs(systems);
    ASSERT_EQ(systems.size(), 1u);
    EXPECT_EQ(systems[0], "Linux");
    std::vector<std::string> facts;
    r.collectFactRefs(facts);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_EQ(facts[0], "flooding");
    std::vector<std::string> options;
    r.collectOptionRefs(options);
    ASSERT_EQ(options.size(), 1u);
    EXPECT_EQ(options[0], "pony_enabled");
    std::vector<std::pair<HardwareClass, std::string>> hw;
    r.collectHardwareRefs(hw);
    ASSERT_EQ(hw.size(), 2u);
}

TEST(CmpOp, ApplyAllOperators) {
    EXPECT_TRUE(applyCmp(CmpOp::Lt, 1, 2));
    EXPECT_FALSE(applyCmp(CmpOp::Lt, 2, 2));
    EXPECT_TRUE(applyCmp(CmpOp::Le, 2, 2));
    EXPECT_TRUE(applyCmp(CmpOp::Eq, 2, 2));
    EXPECT_TRUE(applyCmp(CmpOp::Ne, 1, 2));
    EXPECT_TRUE(applyCmp(CmpOp::Ge, 2, 2));
    EXPECT_TRUE(applyCmp(CmpOp::Gt, 3, 2));
    EXPECT_FALSE(applyCmp(CmpOp::Gt, 2, 2));
}

TEST(HardwareSpec, TypedAttrLookups) {
    HardwareSpec spec;
    spec.attrs["flag"] = true;
    spec.attrs["count"] = std::int64_t{42};
    spec.attrs["ratio"] = 2.5;
    spec.attrs["label"] = std::string("fpga");
    EXPECT_EQ(spec.boolAttr("flag"), true);
    EXPECT_EQ(spec.numAttr("count"), 42.0);
    EXPECT_EQ(spec.numAttr("ratio"), 2.5);
    EXPECT_EQ(spec.strAttr("label"), "fpga");
    // Wrong type / absent → nullopt.
    EXPECT_FALSE(spec.boolAttr("count").has_value());
    EXPECT_FALSE(spec.numAttr("flag").has_value());
    EXPECT_FALSE(spec.strAttr("absent").has_value());
}

TEST(ResourceDemand, AmountScalesWithWorkload) {
    const ResourceDemand d{kResCores, 2.0, 0.04, 0.1};
    EXPECT_EQ(d.amountFor(0, 0), 2);
    EXPECT_EQ(d.amountFor(50, 0), 4);   // 2 + 0.04*50 = 4
    EXPECT_EQ(d.amountFor(0, 30), 5);   // 2 + 3 = 5
    EXPECT_EQ(d.amountFor(50, 30), 7);  // 2 + 2 + 3
    // Rounds up.
    const ResourceDemand frac{kResCores, 0.5, 0.0, 0.0};
    EXPECT_EQ(frac.amountFor(0, 0), 1);
}

TEST(System, CapabilityAndFactHelpers) {
    System s;
    s.solves = {"capture_delays", "monitoring"};
    s.provides = {"flooding"};
    EXPECT_TRUE(s.solvesCapability("monitoring"));
    EXPECT_FALSE(s.solvesCapability("transport"));
    EXPECT_TRUE(s.providesFact("flooding"));
    EXPECT_FALSE(s.providesFact("pfc"));
}

KnowledgeBase makeSmallKb() {
    KnowledgeBase kb;
    System linux;
    linux.name = "Linux";
    linux.category = Category::NetworkStack;
    linux.source = "kernel";
    kb.addSystem(std::move(linux));
    System snap;
    snap.name = "Snap";
    snap.category = Category::NetworkStack;
    snap.source = "sosp19";
    kb.addSystem(std::move(snap));
    System dctcp;
    dctcp.name = "DCTCP";
    dctcp.category = Category::CongestionControl;
    dctcp.source = "sigcomm10";
    kb.addSystem(std::move(dctcp));
    HardwareSpec sw;
    sw.model = "SW-1";
    sw.vendor = "V";
    sw.cls = HardwareClass::Switch;
    kb.addHardware(std::move(sw));
    return kb;
}

TEST(KnowledgeBase, AddAndLookup) {
    const KnowledgeBase kb = makeSmallKb();
    EXPECT_NE(kb.findSystem("Linux"), nullptr);
    EXPECT_EQ(kb.findSystem("Nope"), nullptr);
    EXPECT_EQ(kb.system("Snap").category, Category::NetworkStack);
    EXPECT_THROW((void)kb.system("Nope"), EncodingError);
    EXPECT_NE(kb.findHardware("SW-1"), nullptr);
    EXPECT_THROW((void)kb.hardware("Nope"), EncodingError);
}

TEST(KnowledgeBase, DuplicatesRejected) {
    KnowledgeBase kb = makeSmallKb();
    System dup;
    dup.name = "Linux";
    EXPECT_THROW(kb.addSystem(std::move(dup)), EncodingError);
    HardwareSpec hw;
    hw.model = "SW-1";
    EXPECT_THROW(kb.addHardware(std::move(hw)), EncodingError);
}

TEST(KnowledgeBase, CategoryAndCapabilityIndices) {
    KnowledgeBase kb = makeSmallKb();
    EXPECT_EQ(kb.byCategory(Category::NetworkStack).size(), 2u);
    EXPECT_EQ(kb.byCategory(Category::Firewall).size(), 0u);
    EXPECT_EQ(kb.byClass(HardwareClass::Switch).size(), 1u);
    EXPECT_EQ(kb.byClass(HardwareClass::Nic).size(), 0u);
}

TEST(KnowledgeBase, ValidateFlagsDanglingRefs) {
    KnowledgeBase kb = makeSmallKb();
    System bad;
    bad.name = "Bad";
    bad.category = Category::Monitoring;
    bad.constraints = Requirement::systemPresent("Ghost");
    bad.conflicts = {"AlsoGhost"};
    bad.source = "x";
    kb.addSystem(std::move(bad));
    const auto issues = kb.validate();
    int errors = 0;
    for (const auto& issue : issues)
        if (issue.severity == ValidationIssue::Severity::Error) ++errors;
    EXPECT_EQ(errors, 2);
}

TEST(KnowledgeBase, ValidateFlagsOrderingProblems) {
    KnowledgeBase kb = makeSmallKb();
    kb.addOrdering({"Linux", "Ghost", kObjThroughput, {}, "src"});
    kb.addOrdering({"Linux", "Linux", kObjThroughput, {}, "src"});
    kb.addOrdering({"Linux", "DCTCP", kObjThroughput, {}, "src"}); // cross-cat
    const auto issues = kb.validate();
    int errors = 0;
    for (const auto& issue : issues)
        if (issue.severity == ValidationIssue::Severity::Error) ++errors;
    EXPECT_GE(errors, 3);
}

TEST(KnowledgeBase, ValidateDetectsUnconditionalCycle) {
    KnowledgeBase kb = makeSmallKb();
    kb.addOrdering({"Linux", "Snap", kObjThroughput, {}, "a"});
    kb.addOrdering({"Snap", "Linux", kObjThroughput, {}, "b"});
    const auto issues = kb.validate();
    const bool hasCycleError = std::any_of(
        issues.begin(), issues.end(), [](const ValidationIssue& issue) {
            return issue.severity == ValidationIssue::Severity::Error &&
                   issue.message.find("cycle") != std::string::npos;
        });
    EXPECT_TRUE(hasCycleError);
}

TEST(KnowledgeBase, ConditionalOppositeEdgesAreNotACycle) {
    // Conditional edges in opposite directions under different contexts are
    // legitimate knowledge (Figure 1's <40G vs ≥40G pair).
    KnowledgeBase kb = makeSmallKb();
    kb.addOrdering({"Linux", "Snap", kObjThroughput,
                    Requirement::option("low_rate"), "a"});
    kb.addOrdering({"Snap", "Linux", kObjThroughput,
                    Requirement::option("high_rate"), "b"});
    const auto issues = kb.validate();
    const bool hasCycleError = std::any_of(
        issues.begin(), issues.end(), [](const ValidationIssue& issue) {
            return issue.message.find("cycle") != std::string::npos;
        });
    EXPECT_FALSE(hasCycleError);
}

TEST(KnowledgeBase, MissingSourceIsWarningOnly) {
    KnowledgeBase kb;
    System s;
    s.name = "NoSource";
    kb.addSystem(std::move(s));
    const auto issues = kb.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].severity, ValidationIssue::Severity::Warning);
}

TEST(KnowledgeBase, EncodingLengthGrowsWithContent) {
    KnowledgeBase kb = makeSmallKb();
    const std::size_t before = kb.encodingLength();
    System s;
    s.name = "Extra";
    s.category = Category::Monitoring;
    s.constraints = sampleRequirement();
    s.demands = {{kResCores, 1, 0, 0}};
    s.source = "x";
    kb.addSystem(std::move(s));
    EXPECT_GT(kb.encodingLength(), before);
}

// --- serialization ------------------------------------------------------------

TEST(Serialize, RequirementRoundTrip) {
    const Requirement original = sampleRequirement();
    const Requirement restored = requirementFromJson(toJson(original));
    EXPECT_EQ(restored.toString(), original.toString());
}

TEST(Serialize, RequirementAllKinds) {
    for (const Requirement& r :
         {Requirement::alwaysTrue(), Requirement::alwaysFalse(),
          Requirement::systemAbsent("X"), Requirement::fact("f"),
          Requirement::option("o"), Requirement::workloadHas("w"),
          Requirement::hardwareHas(HardwareClass::Server, "cores"),
          Requirement::hardwareCmp(HardwareClass::Nic, "bw", CmpOp::Lt, 40)}) {
        EXPECT_EQ(requirementFromJson(toJson(r)).toString(), r.toString());
    }
}

TEST(Serialize, HardwareRoundTrip) {
    HardwareSpec spec;
    spec.model = "Cisco Catalyst 9500-40X";
    spec.vendor = "Cisco";
    spec.cls = HardwareClass::Switch;
    spec.unitCostUsd = 22000;
    spec.maxPowerW = 950;
    spec.attrs[kAttrPortBandwidthGbps] = std::int64_t{10};
    spec.attrs[kAttrP4Supported] = false;
    spec.attrs[kAttrMemoryGb] = 16.0;
    spec.attrs["note"] = std::string("sfp+");
    const HardwareSpec restored = hardwareFromJson(toJson(spec));
    EXPECT_EQ(restored.model, spec.model);
    EXPECT_EQ(restored.cls, spec.cls);
    EXPECT_EQ(restored.attrs, spec.attrs);
    EXPECT_DOUBLE_EQ(restored.unitCostUsd, spec.unitCostUsd);
}

TEST(Serialize, SystemRoundTrip) {
    System s;
    s.name = "SIMON";
    s.category = Category::Monitoring;
    s.solves = {"capture_delays", "detect_queue_length"};
    s.constraints = sampleRequirement();
    s.demands = {{kResCores, 2.0, 0.04, 0.0}, {kResSmartNicCores, 2.0, 0, 0}};
    s.provides = {"telemetry"};
    s.conflicts = {"Everflow"};
    s.researchGrade = true;
    s.source = "NSDI 19";
    const System restored = systemFromJson(toJson(s));
    EXPECT_EQ(restored.name, s.name);
    EXPECT_EQ(restored.category, s.category);
    EXPECT_EQ(restored.solves, s.solves);
    EXPECT_EQ(restored.constraints.toString(), s.constraints.toString());
    ASSERT_EQ(restored.demands.size(), 2u);
    EXPECT_EQ(restored.demands[0].resource, kResCores);
    EXPECT_DOUBLE_EQ(restored.demands[0].perKiloFlows, 0.04);
    EXPECT_EQ(restored.provides, s.provides);
    EXPECT_EQ(restored.conflicts, s.conflicts);
    EXPECT_TRUE(restored.researchGrade);
}

TEST(Serialize, WorkloadRoundTrip) {
    Workload w;
    w.name = "inference_app";
    w.properties = {kPropDcFlows, kPropShortFlows, kPropHighPriority};
    w.racks = {0, 1, 2};
    w.peakCores = 2800;
    w.peakBandwidthGbps = 30.0;
    w.numFlows = 50000;
    w.bounds = {{kObjLoadBalancing, "PacketSpray"}};
    const Workload restored = workloadFromJson(toJson(w));
    EXPECT_EQ(restored.name, w.name);
    EXPECT_EQ(restored.properties, w.properties);
    EXPECT_EQ(restored.racks, w.racks);
    EXPECT_EQ(restored.peakCores, 2800);
    ASSERT_EQ(restored.bounds.size(), 1u);
    EXPECT_EQ(restored.bounds[0].betterThanSystem, "PacketSpray");
}

TEST(Serialize, WholeKbRoundTrip) {
    KnowledgeBase kb = makeSmallKb();
    kb.addOrdering({"Snap", "Linux", kObjThroughput,
                    Requirement::option("pony_enabled"), "snap paper"});
    const KnowledgeBase restored = kbFromText(kbToText(kb));
    EXPECT_EQ(restored.systems().size(), kb.systems().size());
    EXPECT_EQ(restored.hardwareSpecs().size(), kb.hardwareSpecs().size());
    ASSERT_EQ(restored.orderings().size(), 1u);
    EXPECT_EQ(restored.orderings()[0].better, "Snap");
    EXPECT_EQ(restored.orderings()[0].condition.toString(),
              "option(pony_enabled)");
}

TEST(Serialize, MalformedKbTextThrows) {
    EXPECT_THROW((void)kbFromText("not json"), ParseError);
    EXPECT_THROW((void)kbFromText("{}"), Error);
}

TEST(Serialize, UnknownRequirementKindThrows) {
    EXPECT_THROW(
        (void)requirementFromJson(json::parse(R"({"kind":"martian"})")),
        ParseError);
}

} // namespace
} // namespace lar::kb
