#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/loadbalance.hpp"
#include "topo/pfc.hpp"
#include "util/error.hpp"

namespace lar::topo {
namespace {

TEST(FatTree, NodeAndLinkCounts) {
    const FatTree t(4);
    // k=4: 16 hosts, 4 core, 8 edge, 8 agg.
    EXPECT_EQ(t.hosts().size(), 16u);
    EXPECT_EQ(t.switches().size(), 20u);
    // Cables: 16 host links + 16 edge-agg + 16 agg-core = 48, ×2 directions.
    EXPECT_EQ(t.links().size(), 96u);
}

TEST(FatTree, RejectsBadK) {
    EXPECT_THROW(FatTree(3), LogicError);
    EXPECT_THROW(FatTree(0), LogicError);
}

TEST(FatTree, LinkDirectionsConsistent) {
    const FatTree t(4);
    for (const Link& l : t.links()) {
        const Node& from = t.node(l.from);
        const Node& to = t.node(l.to);
        if (l.up) {
            EXPECT_LT(static_cast<int>(from.kind), static_cast<int>(to.kind))
                << from.name << "->" << to.name;
        } else {
            EXPECT_GT(static_cast<int>(from.kind), static_cast<int>(to.kind));
        }
    }
}

TEST(FatTree, FindLinkInverseOfTopology) {
    const FatTree t(4);
    for (const Link& l : t.links()) {
        EXPECT_EQ(t.findLink(l.from, l.to), l.id);
        EXPECT_GE(t.findLink(l.to, l.from), 0); // reverse direction exists
    }
    EXPECT_EQ(t.findLink(t.hosts()[0], t.hosts()[1]), -1);
}

TEST(Routing, UpDownRouteIsValleyFree) {
    const FatTree t(8);
    util::Rng rng(1);
    for (const Route& route : sampleUpDownRoutes(t, 200, rng)) {
        bool descended = false;
        for (const int linkId : route.linkIds) {
            if (!t.link(linkId).up) descended = true;
            // Once going down, never up again (valley-free).
            if (descended) EXPECT_FALSE(t.link(linkId).up);
        }
        // Endpoints connect.
        EXPECT_EQ(t.link(route.linkIds.front()).from, route.srcHost);
        EXPECT_EQ(t.link(route.linkIds.back()).to, route.dstHost);
        for (std::size_t i = 0; i + 1 < route.linkIds.size(); ++i)
            EXPECT_EQ(t.link(route.linkIds[i]).to,
                      t.link(route.linkIds[i + 1]).from);
    }
}

TEST(Routing, SamePodAndCrossPodRoutes) {
    const FatTree t(4);
    // Hosts under the same edge switch: 2-hop route.
    const Route sameEdge = upDownRoute(t, t.hosts()[0], t.hosts()[1]);
    EXPECT_EQ(sameEdge.linkIds.size(), 2u);
    // Cross-pod: up to core and down = 6 links.
    const Route crossPod = upDownRoute(t, t.hosts()[0], t.hosts().back());
    EXPECT_EQ(crossPod.linkIds.size(), 6u);
}

TEST(Routing, RouteTurnsDeduplicated) {
    const FatTree t(4);
    const Route r = upDownRoute(t, t.hosts()[0], t.hosts().back());
    const std::vector<Route> twice{r, r};
    const auto turns = routeTurns(t, twice);
    EXPECT_EQ(turns.size(), r.linkIds.size() - 1);
}

TEST(Routing, FloodingIncludesDownUpTurns) {
    const FatTree t(4);
    const auto turns = floodingTurns(t);
    bool downUp = false;
    for (const Turn& turn : turns) {
        if (!t.link(turn.inLink).up && t.link(turn.outLink).up) downUp = true;
        // Never reflect straight back.
        EXPECT_NE(t.link(turn.outLink).to, t.link(turn.inLink).from);
    }
    EXPECT_TRUE(downUp);
}

// --- PFC deadlock: the §2.2 Microsoft story -----------------------------------

class PfcSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PfcSweepTest, UpDownRoutingIsDeadlockFree) {
    const PfcAnalysis analysis =
        analyzePfcDeadlock(GetParam(), /*routePairs=*/300,
                           /*floodingEnabled=*/false, /*seed=*/7);
    EXPECT_FALSE(analysis.deadlockPossible) << "k=" << GetParam();
    EXPECT_GT(analysis.dependencies, 0u);
}

TEST_P(PfcSweepTest, FloodingIntroducesDeadlockCycle) {
    const PfcAnalysis analysis =
        analyzePfcDeadlock(GetParam(), /*routePairs=*/300,
                           /*floodingEnabled=*/true, /*seed=*/7);
    EXPECT_TRUE(analysis.deadlockPossible) << "k=" << GetParam();
    EXPECT_GE(analysis.cycle.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Ks, PfcSweepTest, ::testing::Values(4, 6, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                             return "k" + std::to_string(info.param);
                         });

TEST(Pfc, ExpertRuleMatchesGraphAnalysisOnTheStory) {
    // §3.4: the expert rule "PFC cannot be used with flooding" reaches the
    // same verdict as the deep graph analysis, at zero analysis cost.
    EXPECT_FALSE(pfcExpertRuleUnsafe(true, false));
    EXPECT_TRUE(pfcExpertRuleUnsafe(true, true));
    EXPECT_FALSE(pfcExpertRuleUnsafe(false, true));
    const PfcAnalysis clean = analyzePfcDeadlock(4, 100, false, 3);
    const PfcAnalysis flooded = analyzePfcDeadlock(4, 100, true, 3);
    EXPECT_EQ(clean.deadlockPossible, pfcExpertRuleUnsafe(true, false));
    EXPECT_EQ(flooded.deadlockPossible, pfcExpertRuleUnsafe(true, true));
}

TEST(Pfc, CycleIsActualCycleInDependencyGraph) {
    const FatTree t(4);
    util::Rng rng(5);
    auto routes = sampleUpDownRoutes(t, 100, rng);
    auto turns = routeTurns(t, routes);
    const auto flood = floodingTurns(t);
    turns.insert(turns.end(), flood.begin(), flood.end());
    const BufferDependencyGraph graph(t, turns);
    const auto cycle = graph.findCycle();
    ASSERT_TRUE(cycle.has_value());
    // Verify each consecutive pair is a real dependency (turn).
    const auto isTurn = [&turns](int a, int b) {
        return std::any_of(turns.begin(), turns.end(), [a, b](const Turn& turn) {
            return turn.inLink == a && turn.outLink == b;
        });
    };
    for (std::size_t i = 0; i < cycle->size(); ++i) {
        const int a = (*cycle)[i];
        const int b = (*cycle)[(i + 1) % cycle->size()];
        EXPECT_TRUE(isTurn(a, b)) << "missing dependency " << a << "->" << b;
    }
    EXPECT_FALSE(graph.describeCycle(t, *cycle).empty());
}

// --- load-balancing simulation (§2.3 ECMP-imbalance claim) -------------------

TEST(LoadBalance, TrafficMatrixShape) {
    const FatTree t(4);
    util::Rng rng(3);
    const auto flows = randomTrafficMatrix(t, 100, rng);
    ASSERT_EQ(flows.size(), 100u);
    for (const Flow& f : flows) {
        EXPECT_NE(f.srcHost, f.dstHost);
        EXPECT_EQ(t.node(f.srcHost).kind, NodeKind::Host);
        EXPECT_EQ(t.node(f.dstHost).kind, NodeKind::Host);
        EXPECT_GT(f.rateGbps, 0);
    }
}

TEST(LoadBalance, SprayingConservesTraffic) {
    // Total fabric load must match between schemes for inter-edge flows
    // (same hops per unit of traffic at each level on a fat-tree).
    const FatTree t(4);
    util::Rng rng(9);
    const auto flows = randomTrafficMatrix(t, 200, rng);
    const LoadReport ecmp = simulateEcmp(t, flows);
    const LoadReport spray = simulateSpraying(t, flows);
    EXPECT_GT(ecmp.maxLinkLoadGbps, 0);
    EXPECT_GT(spray.maxLinkLoadGbps, 0);
    // Spraying never produces a hotter link than ECMP's worst.
    EXPECT_LE(spray.maxLinkLoadGbps, ecmp.maxLinkLoadGbps + 1e-9);
}

TEST(LoadBalance, EcmpImbalanceExceedsSpraying) {
    const FatTree t(8);
    util::Rng rng(7);
    const auto flows = randomTrafficMatrix(t, 600, rng);
    const LoadReport ecmp = simulateEcmp(t, flows);
    const LoadReport spray = simulateSpraying(t, flows);
    EXPECT_GT(ecmp.imbalance(), spray.imbalance());
    // Spraying is close to uniform across the symmetric fabric.
    EXPECT_LT(spray.imbalance(), 4.0);
}

TEST(LoadBalance, SingleFlowSprayUsesAllPaths) {
    const FatTree t(4);
    // One cross-pod flow: ECMP loads one core link; spraying loads four.
    const std::vector<Flow> one{{t.hosts().front(), t.hosts().back(), 1.0}};
    const LoadReport ecmp = simulateEcmp(t, one);
    const LoadReport spray = simulateSpraying(t, one);
    EXPECT_DOUBLE_EQ(ecmp.maxLinkLoadGbps, 1.0);
    EXPECT_NEAR(spray.maxLinkLoadGbps, 0.5, 1e-9); // edge→agg split over 2
}

TEST(Pfc, EmptyTurnSetIsAcyclic) {
    const FatTree t(4);
    const BufferDependencyGraph graph(t, {});
    EXPECT_FALSE(graph.findCycle().has_value());
    EXPECT_EQ(graph.dependencyCount(), 0u);
}

} // namespace
} // namespace lar::topo
