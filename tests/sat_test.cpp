#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "testsupport.hpp"
#include "util/rng.hpp"

namespace lar::sat {
namespace {

using test::bruteForceSat;
using test::randomKSat;
using test::satisfies;

TEST(Lit, EncodingRoundTrip) {
    const Lit p = mkLit(5);
    EXPECT_EQ(p.var(), 5);
    EXPECT_FALSE(p.sign());
    const Lit n = ~p;
    EXPECT_EQ(n.var(), 5);
    EXPECT_TRUE(n.sign());
    EXPECT_EQ(~n, p);
    EXPECT_EQ(Lit::fromIndex(p.index()), p);
    EXPECT_EQ(p.toDimacs(), 6);
    EXPECT_EQ(n.toDimacs(), -6);
}

TEST(Lit, UndefIsNotDefined) {
    EXPECT_FALSE(kUndefLit.isDefined());
    EXPECT_TRUE(mkLit(0).isDefined());
}

TEST(Solver, EmptyFormulaIsSat) {
    Solver s;
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, SingleUnit) {
    Solver s;
    const Var x = s.newVar();
    ASSERT_TRUE(s.addClause(mkLit(x)));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
    Solver s;
    const Var x = s.newVar();
    ASSERT_TRUE(s.addClause(mkLit(x)));
    EXPECT_FALSE(s.addClause(~mkLit(x)));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_TRUE(s.inconsistent());
}

TEST(Solver, TautologyIgnored) {
    Solver s;
    const Var x = s.newVar();
    ASSERT_TRUE(s.addClause(std::vector<Lit>{mkLit(x), ~mkLit(x)}));
    EXPECT_EQ(s.numClauses(), 0u);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, DuplicateLiteralsCollapse) {
    Solver s;
    const Var x = s.newVar();
    ASSERT_TRUE(s.addClause(std::vector<Lit>{mkLit(x), mkLit(x), mkLit(x)}));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Solver, SimpleImplicationChain) {
    // x0 ∧ (x0→x1) ∧ (x1→x2) ∧ ... forces all true.
    Solver s;
    constexpr int n = 20;
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.newVar());
    ASSERT_TRUE(s.addClause(mkLit(vars[0])));
    for (int i = 0; i + 1 < n; ++i)
        ASSERT_TRUE(s.addClause(~mkLit(vars[i]), mkLit(vars[i + 1])));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    for (const Var v : vars) EXPECT_TRUE(s.modelValue(v));
}

TEST(Solver, PigeonholeUnsat) {
    // 4 pigeons, 3 holes: classic small UNSAT instance needing real search.
    Solver s;
    constexpr int pigeons = 4;
    constexpr int holes = 3;
    Var p[pigeons][holes];
    for (auto& row : p)
        for (auto& v : row) v = s.newVar();
    for (int i = 0; i < pigeons; ++i) {
        std::vector<Lit> atLeastOne;
        for (int j = 0; j < holes; ++j) atLeastOne.push_back(mkLit(p[i][j]));
        ASSERT_TRUE(s.addClause(std::move(atLeastOne)));
    }
    for (int j = 0; j < holes; ++j)
        for (int i = 0; i < pigeons; ++i)
            for (int k = i + 1; k < pigeons; ++k)
                ASSERT_TRUE(s.addClause(~mkLit(p[i][j]), ~mkLit(p[k][j])));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, AssumptionsSelectBranch) {
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause(mkLit(a), mkLit(b))); // a ∨ b
    const std::vector<Lit> assumeNotA{~mkLit(a)};
    ASSERT_EQ(s.solve(assumeNotA), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
    const std::vector<Lit> assumeNotB{~mkLit(b)};
    ASSERT_EQ(s.solve(assumeNotB), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Solver, UnsatCoreIsSubsetOfAssumptionsAndUnsat) {
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    const Var z = s.newVar();
    ASSERT_TRUE(s.addClause(~mkLit(x), ~mkLit(y))); // x ∧ y impossible
    // z is irrelevant.
    const std::vector<Lit> assumptions{mkLit(z), mkLit(x), mkLit(y)};
    ASSERT_EQ(s.solve(assumptions), SolveResult::Unsat);
    const auto& core = s.unsatCore();
    EXPECT_GE(core.size(), 2u);
    for (const Lit l : core) {
        EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                    assumptions.end());
    }
    // The core itself (x, y) should exclude the irrelevant z.
    EXPECT_TRUE(std::find(core.begin(), core.end(), mkLit(z)) == core.end());
}

TEST(Solver, UnsatCoreWithPropagatedConflict) {
    // Assumption a forces chain to ¬b; assuming b too must fail with a core.
    Solver s;
    const Var a = s.newVar();
    const Var m = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause(~mkLit(a), mkLit(m)));
    ASSERT_TRUE(s.addClause(~mkLit(m), ~mkLit(b)));
    const std::vector<Lit> assumptions{mkLit(a), mkLit(b)};
    ASSERT_EQ(s.solve(assumptions), SolveResult::Unsat);
    EXPECT_FALSE(s.unsatCore().empty());
}

TEST(Solver, IncrementalAddAfterSolve) {
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    ASSERT_TRUE(s.addClause(mkLit(x), mkLit(y)));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    ASSERT_TRUE(s.addClause(~mkLit(x)));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
    s.addClause(~mkLit(y));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
    // A hard pigeonhole instance with a 1-conflict budget cannot finish.
    SolverOptions opts;
    opts.conflictBudget = 1;
    Solver s(opts);
    constexpr int pigeons = 7;
    constexpr int holes = 6;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p)
        for (auto& v : row) v = s.newVar();
    for (int i = 0; i < pigeons; ++i) {
        std::vector<Lit> c;
        for (int j = 0; j < holes; ++j) c.push_back(mkLit(p[i][j]));
        s.addClause(std::move(c));
    }
    for (int j = 0; j < holes; ++j)
        for (int i = 0; i < pigeons; ++i)
            for (int k = i + 1; k < pigeons; ++k)
                s.addClause(~mkLit(p[i][j]), ~mkLit(p[k][j]));
    EXPECT_EQ(s.solve(), SolveResult::Unknown);
}

TEST(Solver, BudgetInterruptedResolveStaysSound) {
    // Regression for the mid-propagation budget stop: the interrupted
    // literal must keep its queue position. It used to be dequeued before
    // the limit check, so a learnt-unit cascade interrupted at decision
    // level 0 left that literal's watchers unexamined by every later
    // incremental solve() on the same Solver (backtrackTo(0) cannot rewind
    // qhead_ below the level-0 trail). Drive many budget-starved re-solves
    // and require any decided verdict — and any model — to agree with the
    // brute-force oracle. A budget too tight to ever converge is fine; a
    // wrong verdict is not.
    util::Rng rng(20240807);
    for (int round = 0; round < 6; ++round) {
        const Cnf cnf = randomKSat(rng, 10, 44, 3);
        const std::optional<std::vector<bool>> expected = bruteForceSat(cnf);
        for (const std::int64_t budget : {2, 3, 7, 33}) {
            SolverOptions opts;
            opts.propagationBudget = budget;
            Solver s(opts);
            loadCnf(s, cnf);
            SolveResult result = SolveResult::Unknown;
            for (int i = 0; i < 20000 && result == SolveResult::Unknown; ++i)
                result = s.solve();
            if (result == SolveResult::Unknown) continue;
            EXPECT_EQ(result == SolveResult::Sat, expected.has_value())
                << "round " << round << " budget " << budget;
            if (result == SolveResult::Sat) {
                std::vector<bool> model(static_cast<std::size_t>(cnf.numVars));
                for (Var v = 0; v < cnf.numVars; ++v)
                    model[static_cast<std::size_t>(v)] = s.modelValue(v);
                EXPECT_TRUE(satisfies(cnf, model))
                    << "round " << round << " budget " << budget;
            }
        }
    }
}

TEST(Solver, ManyConflictsTriggerRestartsWithoutHanging) {
    // Regression: instances crossing the restart threshold (100 conflicts by
    // default) must keep making progress through the Luby sequence. A
    // broken luby() implementation hangs here.
    util::Rng rng(4242);
    int restartsSeen = 0;
    for (int round = 0; round < 25; ++round) {
        const Cnf cnf = randomKSat(rng, 60, 255, 3); // near phase transition
        Solver s;
        loadCnf(s, cnf);
        const SolveResult result = s.solve();
        EXPECT_NE(result, SolveResult::Unknown);
        restartsSeen += static_cast<int>(s.stats().restarts);
    }
    EXPECT_GT(restartsSeen, 0) << "test must exercise the restart path";
}

TEST(Solver, LargePigeonholeCompletes) {
    // PHP(8,7): thousands of conflicts, multiple restarts, DB reductions.
    Solver s;
    constexpr int holes = 7;
    constexpr int pigeons = 8;
    std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
    for (auto& row : p)
        for (auto& v : row) v = s.newVar();
    for (int i = 0; i < pigeons; ++i) {
        std::vector<Lit> c;
        for (int j = 0; j < holes; ++j) c.push_back(mkLit(p[i][j]));
        s.addClause(std::move(c));
    }
    for (int j = 0; j < holes; ++j)
        for (int i = 0; i < pigeons; ++i)
            for (int k = i + 1; k < pigeons; ++k)
                s.addClause(~mkLit(p[i][j]), ~mkLit(p[k][j]));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_GT(s.stats().conflicts, 100u);
}

TEST(Solver, StatsAreTracked) {
    Solver s;
    sat::SolverOptions statOpts;
    statOpts.simplify.enable = false; // decisions must come from the search path
    s.setOptions(statOpts);
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(mkLit(x), mkLit(y));
    s.addClause(~mkLit(x), mkLit(y));
    s.addClause(mkLit(x), ~mkLit(y));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_GE(s.stats().decisions, 1u);
    EXPECT_EQ(s.stats().solves, 1u);
}

TEST(Solver, ArenaCompactsUnderMemoryBudget) {
    // Flood the learnt database over the 1MB budget via clause import, then
    // require solve() to reduce + compact the arena back under budget instead
    // of giving up. 12000 imported 20-literal clauses occupy
    // 12000 * (3 header + 20 literal) words * 4 bytes ≈ 1.10 MB.
    constexpr int kVars = 200;
    constexpr int kImported = 12000;
    constexpr int kClauseLen = 20;
    SolverOptions opts;
    opts.memoryBudgetMb = 1;
    bool delivered = false;
    opts.importClausesFn = [&delivered](std::vector<ImportedClause>& out) {
        if (delivered) return;
        delivered = true;
        for (int i = 0; i < kImported; ++i) {
            ImportedClause imp;
            imp.lbd = 5;
            // Two leading negative literals keep each clause satisfied by the
            // all-false default phase, so the search stays conflict-free.
            for (int k = 0; k < kClauseLen; ++k) {
                const Var v = static_cast<Var>((i + k) % kVars);
                imp.lits.push_back(k < 2 ? ~mkLit(v) : mkLit(v));
            }
            out.push_back(std::move(imp));
        }
    };
    Solver s(opts);
    for (int i = 0; i < kVars; ++i) s.newVar();
    ASSERT_TRUE(s.addClause(~mkLit(0), ~mkLit(1)));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(s.stats().importedClauses, static_cast<std::uint64_t>(kImported));
    EXPECT_GE(s.stats().arenaGcs, 1u)
        << "over-budget import must compact the arena, not just unlink";
    EXPECT_LE(s.learntMemoryBytes(), std::size_t{1} << 20)
        << "solve() finished while still over the memory budget";
    EXPECT_GT(s.learntMemoryBytes(), 0u)
        << "reduction should halve the database, not empty it";
}

TEST(Solver, BinaryGraphDetachesOnLevelZeroSimplification) {
    // binaryClauses is a live gauge of the binary implication graph: binaries
    // satisfied by the level-0 trail are detached by the pre-search sweep.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    ASSERT_TRUE(s.addClause(mkLit(a), mkLit(b)));
    ASSERT_TRUE(s.addClause(~mkLit(a), mkLit(c)));
    EXPECT_EQ(s.stats().binaryClauses, 2u);
    EXPECT_EQ(s.numClauses(), 2u);
    ASSERT_TRUE(s.addClause(mkLit(a))); // level 0: a, then a → c
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(c));
    EXPECT_EQ(s.stats().binaryClauses, 0u)
        << "both binaries are satisfied at level 0 and must be detached";
    EXPECT_EQ(s.numClauses(), 0u);
}

TEST(Solver, AnalyzeResolvesBinaryReasonsInFirstUipCut) {
    // The implication chain a → x → y runs entirely through the binary
    // graph, so conflict analysis over the two long clauses must resolve
    // tagged binary reasons (and analyzeFinal must walk them to reach the
    // assumption for the core).
    Solver s;
    const Var a = s.newVar();
    const Var x = s.newVar();
    const Var y = s.newVar();
    const Var z = s.newVar();
    ASSERT_TRUE(s.addClause(~mkLit(a), mkLit(x))); // a → x (binary reason)
    ASSERT_TRUE(s.addClause(~mkLit(x), mkLit(y))); // x → y (binary reason)
    ASSERT_TRUE(s.addClause(~mkLit(x), ~mkLit(y), mkLit(z)));
    ASSERT_TRUE(s.addClause(~mkLit(x), ~mkLit(y), ~mkLit(z)));
    const std::vector<Lit> assumptions{mkLit(a)};
    ASSERT_EQ(s.solve(assumptions), SolveResult::Unsat);
    const auto& core = s.unsatCore();
    ASSERT_EQ(core.size(), 1u) << "only the assumption a is to blame";
    EXPECT_EQ(core[0], mkLit(a));
    // Without the assumption the formula is satisfiable — and the learnt
    // units must have forced ¬x through the binary graph.
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_FALSE(s.modelValue(a));
}

// --- Parameterized property suite: solver configs × random instances -------

struct ConfigCase {
    const char* name;
    SolverOptions opts;
};

class SolverConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(SolverConfigTest, AgreesWithBruteForceOnRandom3Sat) {
    util::Rng rng(2024);
    int satCount = 0;
    int unsatCount = 0;
    for (int round = 0; round < 60; ++round) {
        const int vars = 6 + static_cast<int>(rng.below(7));       // 6..12
        const int clauses = static_cast<int>(vars * (3.0 + rng.uniform() * 2.5));
        const Cnf cnf = randomKSat(rng, vars, clauses, 3);
        const auto expected = bruteForceSat(cnf);

        Solver s(GetParam().opts);
        loadCnf(s, cnf);
        const SolveResult result = s.solve();
        if (expected.has_value()) {
            ASSERT_EQ(result, SolveResult::Sat) << "round " << round;
            std::vector<bool> model(static_cast<std::size_t>(vars));
            for (Var v = 0; v < vars; ++v)
                model[static_cast<std::size_t>(v)] = s.modelValue(v);
            EXPECT_TRUE(satisfies(cnf, model)) << "round " << round;
            ++satCount;
        } else {
            ASSERT_EQ(result, SolveResult::Unsat) << "round " << round;
            ++unsatCount;
        }
    }
    // The clause-density range must exercise both outcomes.
    EXPECT_GT(satCount, 5);
    EXPECT_GT(unsatCount, 5);
}

TEST_P(SolverConfigTest, UnsatCoreIsActuallyUnsat) {
    // Random instances solved under random assumptions: whenever Unsat, the
    // returned core re-asserted as units must also be Unsat.
    util::Rng rng(777);
    int coresChecked = 0;
    for (int round = 0; round < 40; ++round) {
        const int vars = 8;
        const Cnf cnf = randomKSat(rng, vars, 30, 3);
        std::vector<Lit> assumptions;
        for (Var v = 0; v < 4; ++v)
            assumptions.push_back(mkLit(v, rng.chance(0.5)));

        Solver s(GetParam().opts);
        loadCnf(s, cnf);
        if (s.solve(assumptions) != SolveResult::Unsat) continue;
        const std::vector<Lit> core = s.unsatCore();
        Solver s2(GetParam().opts);
        loadCnf(s2, cnf);
        bool ok = true;
        for (const Lit l : core) ok = s2.addClause(l) && ok;
        EXPECT_TRUE(!ok || s2.solve() == SolveResult::Unsat) << "round " << round;
        ++coresChecked;
    }
    EXPECT_GT(coresChecked, 3);
}

SolverOptions makeOpts(bool learning, bool vsids, bool restarts, bool phase) {
    SolverOptions o;
    o.useLearning = learning;
    o.useVsids = vsids;
    o.useRestarts = restarts;
    o.usePhaseSaving = phase;
    return o;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SolverConfigTest,
    ::testing::Values(
        ConfigCase{"full_cdcl", makeOpts(true, true, true, true)},
        ConfigCase{"no_vsids", makeOpts(true, false, true, true)},
        ConfigCase{"no_restarts", makeOpts(true, true, false, true)},
        ConfigCase{"no_phase_saving", makeOpts(true, true, true, false)},
        ConfigCase{"dpll", makeOpts(false, true, false, true)},
        ConfigCase{"dpll_static_order", makeOpts(false, false, false, false)}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
        return std::string(info.param.name);
    });

// --- DIMACS -----------------------------------------------------------------

TEST(Dimacs, ParseBasic) {
    const Cnf cnf = parseDimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.numVars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0][0], mkLit(0));
    EXPECT_EQ(cnf.clauses[0][1], ~mkLit(1));
}

TEST(Dimacs, RoundTrip) {
    util::Rng rng(5);
    const Cnf cnf = randomKSat(rng, 10, 25, 3);
    const Cnf parsed = parseDimacs(writeDimacs(cnf));
    EXPECT_EQ(parsed.numVars, cnf.numVars);
    ASSERT_EQ(parsed.clauses.size(), cnf.clauses.size());
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
        EXPECT_EQ(parsed.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, ClauseSpanningLines) {
    const Cnf cnf = parseDimacs("p cnf 3 1\n1\n2\n3 0\n");
    ASSERT_EQ(cnf.clauses.size(), 1u);
    EXPECT_EQ(cnf.clauses[0].size(), 3u);
}

TEST(Dimacs, Malformed) {
    EXPECT_THROW(parseDimacs(""), ParseError);
    EXPECT_THROW(parseDimacs("1 2 0\n"), ParseError);
    EXPECT_THROW(parseDimacs("p cnf 2 1\n5 0\n"), ParseError);
    EXPECT_THROW(parseDimacs("p cnf 2 2\n1 0\n"), ParseError);
}

// ------------------------------------------------------------ inprocessing

/// Loads `cnf` into `solver` (shared variable numbering).
void loadCnfInstance(Solver& solver, const Cnf& cnf) {
    while (solver.numVars() < cnf.numVars) (void)solver.newVar();
    for (const auto& clause : cnf.clauses) (void)solver.addClause(clause);
}

/// Options with a single inprocessing technique enabled.
SolverOptions onlyTechnique(void (*set)(SimplifyOptions&)) {
    SolverOptions opts;
    opts.simplify.subsumption = false;
    opts.simplify.vivification = false;
    opts.simplify.probing = false;
    opts.simplify.equivalence = false;
    opts.simplify.elimination = false;
    set(opts.simplify);
    return opts;
}

TEST(Simplify, BruteForceAgreementWithReconstruction) {
    // Verdicts AND models are checked against the ORIGINAL formula: a model
    // read after variable elimination exercises the reconstruction stack.
    util::Rng rng(101);
    for (int round = 0; round < 60; ++round) {
        const Cnf cnf = randomKSat(rng, /*numVars=*/12, /*numClauses=*/50,
                                   /*k=*/3);
        const std::optional<std::vector<bool>> oracle = bruteForceSat(cnf);
        Solver s;
        loadCnfInstance(s, cnf);
        const SolveResult verdict = s.solve();
        ASSERT_EQ(verdict == SolveResult::Sat, oracle.has_value())
            << "round " << round;
        if (verdict != SolveResult::Sat) continue;
        std::vector<bool> model;
        for (int v = 0; v < cnf.numVars; ++v) model.push_back(s.modelValue(v));
        EXPECT_TRUE(satisfies(cnf, model)) << "round " << round;
    }
}

TEST(Simplify, RepeatedSolvesStayCorrectAcrossRounds) {
    // Incremental use: force a simplify round before every solve and keep
    // adding clauses (which restores any eliminated variable they mention).
    util::Rng rng(202);
    Cnf cnf = randomKSat(rng, 14, 40, 3);
    Solver s;
    SolverOptions opts;
    opts.simplify.conflictInterval = 0; // every solve simplifies
    s.setOptions(opts);
    loadCnfInstance(s, cnf);
    for (int round = 0; round < 8; ++round) {
        const std::optional<std::vector<bool>> oracle = bruteForceSat(cnf);
        const SolveResult verdict = s.solve();
        ASSERT_EQ(verdict == SolveResult::Sat, oracle.has_value())
            << "round " << round;
        if (verdict != SolveResult::Sat) break;
        std::vector<bool> model;
        for (int v = 0; v < cnf.numVars; ++v) model.push_back(s.modelValue(v));
        ASSERT_TRUE(satisfies(cnf, model)) << "round " << round;
        // Grow the instance: 3 fresh random clauses.
        const Cnf extra = randomKSat(rng, 14, 3, 3);
        for (const auto& clause : extra.clauses) {
            cnf.clauses.push_back(clause);
            (void)s.addClause(clause);
        }
    }
}

TEST(Simplify, AssumptionVerdictsAndCoresStayHonest) {
    // Same instance, random assumption sets: a simplifying solver and a
    // plain solver must agree on every verdict, and every unsat core must
    // be a subset of the assumptions that is itself unsatisfiable.
    util::Rng rng(303);
    for (int round = 0; round < 30; ++round) {
        const Cnf cnf = randomKSat(rng, 12, 45, 3);
        Solver simp;
        SolverOptions simpOpts;
        simpOpts.simplify.conflictInterval = 0;
        simp.setOptions(simpOpts);
        loadCnfInstance(simp, cnf);

        Solver plain;
        SolverOptions plainOpts;
        plainOpts.simplify.enable = false;
        plain.setOptions(plainOpts);
        loadCnfInstance(plain, cnf);

        for (int trial = 0; trial < 4; ++trial) {
            std::vector<Lit> assumptions;
            for (int v = 0; v < cnf.numVars; ++v)
                if (rng.chance(0.3))
                    assumptions.push_back(mkLit(v, rng.chance(0.5)));
            const SolveResult a = simp.solve(assumptions);
            const SolveResult b = plain.solve(assumptions);
            ASSERT_EQ(a, b) << "round " << round << " trial " << trial;
            if (a != SolveResult::Unsat) continue;
            const std::vector<Lit>& core = simp.unsatCore();
            for (const Lit l : core) {
                EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                          assumptions.end())
                    << "core literal not among the assumptions";
            }
            // The core alone must still be unsat on a fresh plain solver.
            Solver check;
            SolverOptions checkOpts;
            checkOpts.simplify.enable = false;
            check.setOptions(checkOpts);
            loadCnfInstance(check, cnf);
            EXPECT_EQ(check.solve(core), SolveResult::Unsat)
                << "round " << round << " trial " << trial;
        }
    }
}

TEST(Simplify, FrozenAssumptionVariablesAreNeverEliminated) {
    // A variable with tiny occurrence counts is elimination's first pick —
    // unless it is assumed. solve(assumptions) freezes assumption variables
    // before any simplify round.
    Solver s;
    const Var v = s.newVar();
    const Var a = s.newVar();
    const Var b = s.newVar();
    (void)s.addClause(mkLit(v), mkLit(a));
    (void)s.addClause(~mkLit(v), mkLit(b));
    (void)s.addClause(mkLit(a), mkLit(b));
    const std::vector<Lit> assumptions{mkLit(v)};
    ASSERT_EQ(s.solve(assumptions), SolveResult::Sat);
    EXPECT_TRUE(s.isFrozen(v));
    EXPECT_FALSE(s.isEliminated(v));
    EXPECT_TRUE(s.modelValue(v));
}

TEST(Simplify, EliminationReconstructsModelsAndRestoresOnReuse) {
    Solver s;
    const Var v = s.newVar();
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    // v occurs once per phase: a prime elimination candidate.
    (void)s.addClause(mkLit(v), mkLit(a));
    (void)s.addClause(~mkLit(v), mkLit(b));
    (void)s.addClause(mkLit(a), mkLit(c));
    ASSERT_TRUE(s.simplify());
    ASSERT_TRUE(s.isEliminated(v));
    EXPECT_GE(s.stats().eliminatedVars, 1u);

    // Models must still cover v via the reconstruction stack.
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    const bool mv = s.modelValue(v);
    const bool ma = s.modelValue(a);
    const bool mb = s.modelValue(b);
    EXPECT_TRUE(mv || ma);
    EXPECT_TRUE(!mv || mb);

    // A new clause over v transparently restores it.
    (void)s.addClause(~mkLit(v), mkLit(c));
    EXPECT_FALSE(s.isEliminated(v));
    EXPECT_GE(s.stats().restoredVars, 1u);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(!s.modelValue(v) || s.modelValue(c));

    // And assuming v (freeze-on-solve) keeps working after restoration.
    const std::vector<Lit> assumeV{mkLit(v)};
    ASSERT_EQ(s.solve(assumeV), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(v));
    EXPECT_TRUE(s.modelValue(b));
}

TEST(Simplify, SnapshotRoundTripAfterElimination) {
    // exportSnapshot from a solver that eliminated variables must import
    // cleanly into an identically-built solver and preserve verdicts.
    util::Rng rng(404);
    for (int round = 0; round < 10; ++round) {
        const Cnf cnf = randomKSat(rng, 20, 70, 3);
        Solver exporter;
        SolverOptions opts;
        opts.simplify.conflictInterval = 0;
        exporter.setOptions(opts);
        loadCnfInstance(exporter, cnf);
        exporter.markSnapshotBaseline();
        const SolveResult verdict = exporter.solve();
        const SolverSnapshot snap = exporter.exportSnapshot();

        Solver importer;
        importer.setOptions(opts);
        loadCnfInstance(importer, cnf);
        importer.markSnapshotBaseline();
        (void)importer.importSnapshot(snap);
        EXPECT_EQ(importer.solve(), verdict) << "round " << round;
        if (verdict != SolveResult::Sat) continue;
        std::vector<bool> model;
        for (int v = 0; v < cnf.numVars; ++v)
            model.push_back(importer.modelValue(v));
        EXPECT_TRUE(satisfies(cnf, model)) << "round " << round;
    }
}

TEST(Simplify, SubsumptionAndStrengtheningCounters) {
    Solver s;
    s.setOptions(onlyTechnique([](SimplifyOptions& o) { o.subsumption = true; }));
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    const Var d = s.newVar();
    const Var e = s.newVar();
    (void)s.addClause(mkLit(a), mkLit(b), mkLit(c));           // C
    (void)s.addClause({mkLit(a), mkLit(b), mkLit(c), mkLit(d)}); // C ⊂ D
    (void)s.addClause(~mkLit(a), mkLit(b), mkLit(e)); // strengthens vs (a∨b)
    (void)s.addClause(mkLit(a), mkLit(b));            // binary source
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().subsumedClauses, 1u);
    EXPECT_GE(s.stats().strengthenedClauses, 1u);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Simplify, FailedLiteralProbingFindsUnits) {
    Solver s;
    s.setOptions(onlyTechnique([](SimplifyOptions& o) { o.probing = true; }));
    const Var p = s.newVar();
    const Var q = s.newVar();
    const Var r = s.newVar();
    (void)s.addClause(~mkLit(p), mkLit(q));  // p → q
    (void)s.addClause(~mkLit(p), ~mkLit(q)); // p → ¬q: probing p conflicts
    (void)s.addClause(mkLit(p), mkLit(r));   // keeps ¬p from ending it all
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().probedLiterals, 1u);
    EXPECT_GE(s.stats().failedLiterals, 1u);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(p));
    EXPECT_TRUE(s.modelValue(r));
}

TEST(Simplify, EquivalentLiteralsAreSubstituted) {
    Solver s;
    s.setOptions(onlyTechnique([](SimplifyOptions& o) { o.equivalence = true; }));
    const Var x = s.newVar();
    const Var y = s.newVar();
    const Var z = s.newVar();
    (void)s.addClause(~mkLit(x), mkLit(y)); // x → y
    (void)s.addClause(~mkLit(y), mkLit(x)); // y → x: x ≡ y
    (void)s.addClause(mkLit(y), mkLit(z));
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().equivalentLiterals, 1u);
    // The equivalence itself must survive substitution: x and y always agree.
    const std::vector<Lit> assumeX{mkLit(x)};
    ASSERT_EQ(s.solve(assumeX), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(y));
    const std::vector<Lit> assumeNotY{~mkLit(y)};
    ASSERT_EQ(s.solve(assumeNotY), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
}

TEST(Simplify, VivificationShortensClauses) {
    Solver s;
    s.setOptions(
        onlyTechnique([](SimplifyOptions& o) { o.vivification = true; }));
    const Var x = s.newVar();
    const Var y = s.newVar();
    const Var z = s.newVar();
    const Var w = s.newVar();
    (void)s.addClause(mkLit(x), mkLit(y)); // ¬x propagates y …
    // … so vivifying (x ∨ y ∨ z ∨ w) shrinks it to (x ∨ y).
    (void)s.addClause({mkLit(x), mkLit(y), mkLit(z), mkLit(w)});
    (void)s.addClause(mkLit(z), mkLit(w), mkLit(x)); // keep z,w referenced
    ASSERT_TRUE(s.simplify());
    EXPECT_GE(s.stats().vivifiedClauses, 1u);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Simplify, TickBudgetStopsCleanlyAndSearchContinues) {
    // A starved budget must halt the round benignly — the verdict still
    // comes out of the search, and the stop is recorded in the stats.
    util::Rng rng(505);
    const Cnf cnf = randomKSat(rng, 18, 76, 3);
    const std::optional<std::vector<bool>> oracle = bruteForceSat(cnf);
    Solver s;
    SolverOptions opts;
    opts.simplify.tickBudget = 1; // next to nothing
    s.setOptions(opts);
    loadCnfInstance(s, cnf);
    const SolveResult verdict = s.solve();
    ASSERT_EQ(verdict == SolveResult::Sat, oracle.has_value());
    EXPECT_GE(s.stats().simplifyStops, 1u);
    EXPECT_EQ(s.stats().lastSimplifyStop, SimplifyStop::Ticks);
}

} // namespace
} // namespace lar::sat
