#include <gtest/gtest.h>

#include "json/escape.hpp"
#include "json/parse.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "util/error.hpp"

namespace lar::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
    Value v;
    EXPECT_TRUE(v.isNull());
}

TEST(JsonValue, ScalarConstruction) {
    EXPECT_TRUE(Value(true).asBool());
    EXPECT_EQ(Value(42).asInt(), 42);
    EXPECT_DOUBLE_EQ(Value(2.5).asDouble(), 2.5);
    EXPECT_EQ(Value("hi").asString(), "hi");
}

TEST(JsonValue, IntCoercesToDouble) {
    EXPECT_DOUBLE_EQ(Value(7).asDouble(), 7.0);
}

TEST(JsonValue, TypeMismatchThrows) {
    EXPECT_THROW((void)Value(1).asString(), LogicError);
    EXPECT_THROW((void)Value("x").asInt(), LogicError);
    EXPECT_THROW((void)Value(true).asArray(), LogicError);
}

TEST(JsonObject, PreservesInsertionOrder) {
    Object o;
    o["zeta"] = 1;
    o["alpha"] = 2;
    o["mid"] = 3;
    const auto& entries = o.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, "zeta");
    EXPECT_EQ(entries[1].first, "alpha");
    EXPECT_EQ(entries[2].first, "mid");
}

TEST(JsonObject, AtThrowsOnMissing) {
    Object o;
    o["present"] = 1;
    EXPECT_EQ(o.at("present").asInt(), 1);
    EXPECT_THROW((void)o.at("absent"), LogicError);
    EXPECT_TRUE(o.contains("present"));
    EXPECT_FALSE(o.contains("absent"));
}

TEST(JsonObject, EraseMaintainsIndex) {
    Object o;
    o["a"] = 1;
    o["b"] = 2;
    o["c"] = 3;
    EXPECT_TRUE(o.erase("b"));
    EXPECT_FALSE(o.erase("b"));
    EXPECT_EQ(o.size(), 2u);
    EXPECT_EQ(o.at("a").asInt(), 1);
    EXPECT_EQ(o.at("c").asInt(), 3);
}

TEST(JsonValue, IndexingNullMakesObject) {
    Value v;
    v["key"] = "value";
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.at("key").asString(), "value");
}

TEST(JsonParse, Scalars) {
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_EQ(parse("-17").asInt(), -17);
    EXPECT_DOUBLE_EQ(parse("3.25").asDouble(), 3.25);
    EXPECT_DOUBLE_EQ(parse("1e3").asDouble(), 1000.0);
    EXPECT_EQ(parse("\"str\"").asString(), "str");
}

TEST(JsonParse, NestedDocument) {
    const Value v = parse(R"({
      "Model Name": "Cisco Catalyst 9500-40X",
      "Ports": 40,
      "ECN supported?": true,
      "features": ["a", "b"],
      "nested": {"x": [1, 2.5, null]}
    })");
    EXPECT_EQ(v.at("Model Name").asString(), "Cisco Catalyst 9500-40X");
    EXPECT_EQ(v.at("Ports").asInt(), 40);
    EXPECT_TRUE(v.at("ECN supported?").asBool());
    EXPECT_EQ(v.at("features").asArray().size(), 2u);
    const auto& x = v.at("nested").at("x").asArray();
    ASSERT_EQ(x.size(), 3u);
    EXPECT_EQ(x[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(x[1].asDouble(), 2.5);
    EXPECT_TRUE(x[2].isNull());
}

TEST(JsonParse, EscapeSequences) {
    EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").asString(), "a\nb\t\"c\"\\");
    EXPECT_EQ(parse(R"("A")").asString(), "A");
}

TEST(JsonParse, EmptyContainers) {
    EXPECT_TRUE(parse("{}").asObject().empty());
    EXPECT_TRUE(parse("[]").asArray().empty());
}

TEST(JsonParse, MalformedInputsThrow) {
    EXPECT_THROW(parse(""), ParseError);
    EXPECT_THROW(parse("{"), ParseError);
    EXPECT_THROW(parse("[1,]"), ParseError);
    EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(parse("tru"), ParseError);
    EXPECT_THROW(parse("1 2"), ParseError);
    EXPECT_THROW(parse("\"unterminated"), ParseError);
    EXPECT_THROW(parse("nan"), ParseError);
}

TEST(JsonWrite, CompactRoundTrip) {
    const std::string text =
        R"({"name":"x","n":3,"f":1.5,"b":true,"nil":null,"arr":[1,2],"obj":{"k":"v"}})";
    const Value v = parse(text);
    EXPECT_EQ(parse(write(v)), v);
}

TEST(JsonWrite, PrettyRoundTrip) {
    Value v;
    v["a"] = Value(Array{Value(1), Value(2)});
    v["b"]["c"] = "deep";
    const std::string pretty = writePretty(v);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(parse(pretty), v);
}

TEST(JsonWrite, StringEscaping) {
    const Value v(std::string("line\n\"quote\"\\slash"));
    EXPECT_EQ(parse(write(v)), v);
}

TEST(JsonWrite, PreservesKeyOrder) {
    Value v;
    v["z"] = 1;
    v["a"] = 2;
    const std::string out = write(v);
    EXPECT_LT(out.find("\"z\""), out.find("\"a\""));
}

TEST(JsonWrite, IntegralDoubleKeepsPointZero) {
    EXPECT_EQ(write(Value(4.0)), "4.0");
    EXPECT_EQ(write(Value(std::int64_t{4})), "4");
}

TEST(JsonParse, DeeplyNestedArrays) {
    std::string text;
    constexpr int depth = 64;
    for (int i = 0; i < depth; ++i) text += '[';
    text += '1';
    for (int i = 0; i < depth; ++i) text += ']';
    Value v = parse(text);
    for (int i = 0; i < depth; ++i) {
        ASSERT_TRUE(v.isArray());
        Value inner = v.asArray()[0]; // copy out before reassigning v
        v = std::move(inner);
    }
    EXPECT_EQ(v.asInt(), 1);
}

TEST(JsonRoundTrip, LargeIntegersExact) {
    const std::int64_t big = 9007199254740993LL; // not representable in double
    EXPECT_EQ(parse(write(Value(big))).asInt(), big);
}

// The consolidated escaper (json/escape.hpp) is the single string-quoting
// path for json::write, the structured logger, and the HTTP layer.

TEST(JsonEscape, QuotesAndBackslashes) {
    EXPECT_EQ(lar::json::quoted("say \"hi\"\\now"), "\"say \\\"hi\\\"\\\\now\"");
}

TEST(JsonEscape, ShortFormControls) {
    EXPECT_EQ(lar::json::quoted("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
}

TEST(JsonEscape, RemainingControlsUseUnicodeForm) {
    EXPECT_EQ(lar::json::quoted(std::string_view("\x00\x01\x1f", 3)),
              "\"\\u0000\\u0001\\u001f\"");
}

TEST(JsonEscape, HighBytesAndDelPassThrough) {
    // Transcoding is not the escaper's job: DEL and (possibly invalid)
    // UTF-8 bytes pass through untouched.
    const std::string input = "caf\xc3\xa9\x7f";
    EXPECT_EQ(lar::json::quoted(input), "\"" + input + "\"");
}

TEST(JsonEscape, AppendVariantsCompose) {
    std::string out = "{\"k\":";
    appendQuoted(out, "v\n");
    EXPECT_EQ(out, "{\"k\":\"v\\n\"");
    std::string bare;
    appendEscaped(bare, "a\"b");
    EXPECT_EQ(bare, "a\\\"b");
}

TEST(JsonEscape, EscapedStringsParseBackExactly) {
    // Round-trip through the parser: every escape the writer emits must be
    // read back to the original bytes.
    std::string nasty = "line1\nline2\t\"quoted\"\\slash";
    nasty.push_back('\0');
    nasty += "\x01tail";
    EXPECT_EQ(parse(lar::json::quoted(nasty)).asString(), nasty);
}

} // namespace
} // namespace lar::json
