// End-to-end tests of the epoll HTTP server over loopback: routing,
// keep-alive, limits → 4xx, Expect: 100-continue, pipelining, deterministic
// 503 backpressure at the inflight cap, concurrent connections, and the
// graceful-drain state machine (readyz flips before healthz, in-flight work
// finishes, zero crashed connections). Compiled a second time under
// ThreadSanitizer as server_tsan (see CMakeLists).
#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.hpp"
#include "util/error.hpp"

using namespace lar;
using net::HttpClient;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::ServerOptions;

namespace {

/// Blocking raw-socket exchange for wire-level cases the well-behaved
/// HttpClient cannot produce (malformed requests, pipelining, 100-continue).
class RawConn {
public:
    explicit RawConn(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        timeval tv{};
        tv.tv_sec = 5;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    }
    ~RawConn() {
        if (fd_ >= 0) ::close(fd_);
    }

    [[nodiscard]] bool connected() const { return connected_; }
    [[nodiscard]] int fd() const { return fd_; }

    void send(const std::string& bytes) const {
        ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }

    /// Reads until EOF (server closed) or the 5 s timeout.
    [[nodiscard]] std::string readAll() const {
        std::string out;
        char buf[4096];
        while (true) {
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n <= 0) break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

    /// Reads until `marker` appears in the accumulated bytes (or timeout).
    [[nodiscard]] std::string readUntil(const std::string& marker) const {
        std::string out;
        char buf[4096];
        while (out.find(marker) == std::string::npos) {
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n <= 0) break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

private:
    int fd_ = -1;
    bool connected_ = false;
};

/// A server with the standard test routes, started on an ephemeral port.
struct TestServer {
    explicit TestServer(ServerOptions options = {}) : server([&options] {
        options.bindAddress = "127.0.0.1";
        options.port = 0;
        return options;
    }()) {
        server.route("GET", "/ping", [](const HttpRequest&) {
            return HttpResponse::text(200, "pong");
        });
        server.route("POST", "/echo", [](const HttpRequest& req) {
            HttpResponse resp;
            resp.body = req.body;
            return resp;
        });
        server.route("GET", "/healthz", [](const HttpRequest&) {
            return HttpResponse::text(200, "ok");
        });
        server.route("GET", "/readyz", [this](const HttpRequest&) {
            if (server.draining())
                return HttpResponse::errorJson(503, "draining", "bye");
            return HttpResponse::text(200, "ready");
        });
        server.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
            throw std::runtime_error("handler exploded");
        });
        server.route("GET", "/slow", [this](const HttpRequest&) {
            slowEntered.fetch_add(1);
            std::unique_lock<std::mutex> lock(slowMutex);
            slowCv.wait(lock, [this] { return slowRelease; });
            return HttpResponse::text(200, "done");
        });
    }

    void start() { server.start(); }
    [[nodiscard]] std::uint16_t port() const { return server.port(); }

    void releaseSlow() {
        {
            const std::lock_guard<std::mutex> lock(slowMutex);
            slowRelease = true;
        }
        slowCv.notify_all();
    }

    HttpServer server;
    std::atomic<int> slowEntered{0};
    std::mutex slowMutex;
    std::condition_variable slowCv;
    bool slowRelease = false;
};

TEST(HttpServerTest, RoundTripAndKeepAlive) {
    TestServer ts;
    ts.start();
    HttpClient client("127.0.0.1", ts.port());

    const net::ClientResponse a = client.get("/ping");
    EXPECT_EQ(a.status, 200);
    EXPECT_EQ(a.body, "pong");

    // Same client object → same kept-alive connection for the next two.
    const net::ClientResponse b = client.post("/echo", "{\"x\":1}");
    EXPECT_EQ(b.status, 200);
    EXPECT_EQ(b.body, "{\"x\":1}");
    EXPECT_EQ(client.get("/ping").status, 200);
    EXPECT_EQ(ts.server.activeConnections(), 1u);
}

TEST(HttpServerTest, NotFoundAndMethodNotAllowed) {
    TestServer ts;
    ts.start();
    HttpClient client("127.0.0.1", ts.port());

    EXPECT_EQ(client.get("/nope").status, 404);
    const net::ClientResponse resp = client.post("/ping", "{}");
    EXPECT_EQ(resp.status, 405);
    ASSERT_NE(resp.header("Allow"), nullptr);
    EXPECT_EQ(*resp.header("Allow"), "GET");
}

TEST(HttpServerTest, PatternRoutesCaptureParams) {
    ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    HttpServer server(options);
    server.route("POST", "/v1/session/{id}/ask",
                 [](const HttpRequest&, const HttpServer::RouteParams& p) {
                     return HttpResponse::text(200, "ask:" + p.at("id"));
                 });
    server.route("DELETE", "/v1/session/{id}",
                 [](const HttpRequest&, const HttpServer::RouteParams& p) {
                     return HttpResponse::text(200, "del:" + p.at("id"));
                 });
    // Exact route on a path the pattern also matches: exact must win.
    server.route("DELETE", "/v1/session/special", [](const HttpRequest&) {
        return HttpResponse::text(200, "exact");
    });
    server.start();
    HttpClient client("127.0.0.1", server.port());

    EXPECT_EQ(client.post("/v1/session/s-42/ask", "{}").body, "ask:s-42");
    EXPECT_EQ(client.del("/v1/session/s-42").body, "del:s-42");
    EXPECT_EQ(client.del("/v1/session/special").body, "exact");

    // {id} must match exactly one non-empty segment.
    EXPECT_EQ(client.post("/v1/session//ask", "{}").status, 404);
    EXPECT_EQ(client.post("/v1/session/a/b/ask", "{}").status, 404);
    EXPECT_EQ(client.post("/v1/session/s-42", "{}").status, 405);
    server.stop();
}

TEST(HttpServerTest, PatternRouteMethodNotAllowedListsAllMethods) {
    ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    HttpServer server(options);
    // Two registrations on the same pattern merge into one route entry.
    server.route("POST", "/v1/session/{id}",
                 [](const HttpRequest&, const HttpServer::RouteParams&) {
                     return HttpResponse::text(200, "post");
                 });
    server.route("DELETE", "/v1/session/{id}",
                 [](const HttpRequest&, const HttpServer::RouteParams&) {
                     return HttpResponse::text(200, "delete");
                 });
    server.start();
    HttpClient client("127.0.0.1", server.port());

    const net::ClientResponse resp = client.get("/v1/session/s-1");
    EXPECT_EQ(resp.status, 405);
    ASSERT_NE(resp.header("Allow"), nullptr);
    EXPECT_EQ(*resp.header("Allow"), "DELETE, POST");
    server.stop();
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
    TestServer ts;
    ts.start();
    HttpClient client("127.0.0.1", ts.port());
    const net::ClientResponse resp = client.get("/boom");
    EXPECT_EQ(resp.status, 500);
    EXPECT_NE(resp.body.find("handler exploded"), std::string::npos);
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
    TestServer ts;
    ts.start();
    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    conn.send("GARBAGE-WITH-NO-SPACES\r\n\r\n");
    const std::string reply = conn.readAll(); // server closes after 4xx
    EXPECT_NE(reply.find("HTTP/1.1 400 "), std::string::npos);
    EXPECT_NE(reply.find("Connection: close"), std::string::npos);
}

TEST(HttpServerTest, OversizedHeadersGet431) {
    ServerOptions options;
    options.limits.maxHeaderBytes = 256;
    TestServer ts(options);
    ts.start();
    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    std::string req = "GET /ping HTTP/1.1\r\n";
    for (int i = 0; i < 32; ++i)
        req += "X-Pad-" + std::to_string(i) + ": " + std::string(64, 'p') +
               "\r\n";
    req += "\r\n";
    conn.send(req);
    EXPECT_NE(conn.readAll().find("HTTP/1.1 431 "), std::string::npos);
}

TEST(HttpServerTest, OversizedBodyGets413) {
    ServerOptions options;
    options.limits.maxBodyBytes = 1024;
    TestServer ts(options);
    ts.start();
    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    conn.send("POST /echo HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
    EXPECT_NE(conn.readAll().find("HTTP/1.1 413 "), std::string::npos);
}

TEST(HttpServerTest, ExpectContinueHandshake) {
    TestServer ts;
    ts.start();
    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    conn.send(
        "POST /echo HTTP/1.1\r\nExpect: 100-continue\r\n"
        "Content-Length: 5\r\n\r\n");
    const std::string interim = conn.readUntil("\r\n\r\n");
    ASSERT_NE(interim.find("HTTP/1.1 100 Continue"), std::string::npos);
    conn.send("hello");
    const std::string reply = conn.readUntil("hello");
    EXPECT_NE(reply.find("HTTP/1.1 200 "), std::string::npos);
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
    TestServer ts;
    ts.start();
    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    conn.send(
        "POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\none"
        "POST /echo HTTP/1.1\r\nContent-Length: 3\r\nConnection: close\r\n"
        "\r\ntwo");
    const std::string reply = conn.readAll();
    const std::size_t first = reply.find("one");
    const std::size_t second = reply.find("two");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}

TEST(HttpServerTest, InflightCapSheds503WithRetryAfter) {
    ServerOptions options;
    options.maxInflight = 1;
    TestServer ts(options);
    ts.start();

    std::thread slowCaller([&ts] {
        HttpClient client("127.0.0.1", ts.port());
        EXPECT_EQ(client.get("/slow").status, 200);
    });
    // Wait until the slow handler occupies the single inflight slot.
    while (ts.slowEntered.load() == 0) std::this_thread::yield();

    HttpClient client("127.0.0.1", ts.port());
    const net::ClientResponse shed = client.get("/ping");
    EXPECT_EQ(shed.status, 503);
    ASSERT_NE(shed.header("Retry-After"), nullptr);

    ts.releaseSlow();
    slowCaller.join();
    // The slot is free again — same client, same connection, now served.
    EXPECT_EQ(client.get("/ping").status, 200);
}

TEST(HttpServerTest, ConcurrentConnectionsAllServed) {
    // The default inflight cap is sized from the core count, which can be
    // tiny in CI; raise it so no request is legitimately shed with 503.
    ServerOptions options;
    options.maxInflight = 64;
    TestServer ts(options);
    ts.start();
    constexpr int kThreads = 8;
    constexpr int kRequests = 25;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&ts, &ok] {
            HttpClient client("127.0.0.1", ts.port());
            for (int i = 0; i < kRequests; ++i) {
                const net::ClientResponse resp =
                    client.post("/echo", "payload-" + std::to_string(i));
                if (resp.status == 200 &&
                    resp.body == "payload-" + std::to_string(i))
                    ok.fetch_add(1);
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(ok.load(), kThreads * kRequests);
}

TEST(HttpServerTest, DrainFlipsReadyzBeforeHealthzAndCloses) {
    ServerOptions options;
    options.drainIdleCloseMs = 5000; // keep pre-opened idle conns alive
    TestServer ts(options);
    ts.start();

    // Pre-open two keep-alive connections before the drain begins: new
    // connections are refused once draining.
    HttpClient ready("127.0.0.1", ts.port());
    HttpClient health("127.0.0.1", ts.port());
    ASSERT_EQ(ready.get("/readyz").status, 200);
    ASSERT_EQ(health.get("/healthz").status, 200);

    bool drainHookRan = false;
    ts.server.setDrainHooks([&drainHookRan] { drainHookRan = true; }, {});
    ts.server.beginDrain();
    EXPECT_TRUE(drainHookRan);
    EXPECT_TRUE(ts.server.draining());

    // Readiness fails while liveness still passes: the window where an
    // orchestrator routes traffic away without restarting the process.
    const net::ClientResponse notReady = ready.get("/readyz");
    EXPECT_EQ(notReady.status, 503);
    const net::ClientResponse alive = health.get("/healthz");
    EXPECT_EQ(alive.status, 200);
    // Drain responses tell the client to go away.
    ASSERT_NE(alive.header("Connection"), nullptr);
    EXPECT_EQ(*alive.header("Connection"), "close");

    // New connections are not admitted while draining.
    HttpClient late("127.0.0.1", ts.port());
    EXPECT_THROW((void)late.get("/ping"), Error);

    ts.server.drainAndStop(/*graceMs=*/2000);
    EXPECT_EQ(ts.server.activeConnections(), 0u);
}

TEST(HttpServerTest, DrainMidLoadLosesNoConnectionUncleanly) {
    TestServer ts;
    ts.start();
    constexpr int kThreads = 4;
    std::atomic<bool> stopping{false};
    std::atomic<int> served{0};
    std::atomic<int> badResponses{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (!stopping.load()) {
                try {
                    HttpClient client("127.0.0.1", ts.port());
                    const net::ClientResponse resp = client.get("/ping");
                    if (resp.status == 200) served.fetch_add(1);
                    else badResponses.fetch_add(1);
                } catch (const Error&) {
                    // Refused/closed connections are the expected way to be
                    // turned away during drain — not a failure.
                    if (!stopping.load() && !ts.server.draining())
                        badResponses.fetch_add(1);
                }
            }
        });
    }
    while (served.load() < 50) std::this_thread::yield();
    ts.server.drainAndStop(/*graceMs=*/2000);
    stopping.store(true);
    for (std::thread& t : threads) t.join();

    EXPECT_EQ(badResponses.load(), 0);
    EXPECT_GE(served.load(), 50);
    EXPECT_EQ(ts.server.activeConnections(), 0u);
}

TEST(HttpServerTest, StopWithoutStartIsSafe) {
    HttpServer server;
    server.stop(); // no-op
}

TEST(HttpServerTest, SlowlorisHeadersAnswered408AndClosed) {
    // A slowloris drips header bytes forever: every drip refreshes the idle
    // clock, so only the total-receive-time kill can catch it. The idle
    // timeout here is deliberately huge to prove which defense fired.
    ServerOptions options;
    options.readIdleTimeoutMs = 60'000;
    options.requestReadTimeoutMs = 300;
    TestServer ts(options);
    ts.start();

    RawConn conn(ts.port());
    ASSERT_TRUE(conn.connected());
    conn.send("GET /ping HTTP/1.1\r\n");
    const std::string drip = "X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    // Drip one byte every 20 ms — far inside the 60 s idle window — for half
    // the request-read window, then stop sending and wait for the verdict
    // (sending into the post-kill close would RST away the buffered 408).
    const auto start = std::chrono::steady_clock::now();
    std::size_t at = 0;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(150)) {
        const char byte = drip[at % drip.size()];
        ++at;
        if (::send(conn.fd(), &byte, 1, MSG_NOSIGNAL) <= 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const std::string response = conn.readAll(); // until server close
    EXPECT_NE(response.find("408"), std::string::npos) << response;
    EXPECT_NE(response.find("request_timeout"), std::string::npos) << response;
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsedMs, 2000.0); // killed by the 300 ms window, not idle
    // The connection itself is reaped, not just answered.
    const auto reapDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (ts.server.activeConnections() != 0 &&
           std::chrono::steady_clock::now() < reapDeadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(ts.server.activeConnections(), 0u);
}

TEST(HttpServerTest, StalledReaderOfLargeResponseIsReaped) {
    // The mirror-image attack: request a large response and never drain it.
    // outPending stays true forever; the write-idle clock is refreshed by
    // whatever trickle the kernel accepts, so the total-write-time kill is
    // what must fire. writeIdleTimeoutMs is large to prove that.
    ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    options.writeIdleTimeoutMs = 60'000;
    options.responseWriteTimeoutMs = 300;
    HttpServer server(options);
    const std::string big(8 * 1024 * 1024, 'x'); // >> socket buffers
    server.route("GET", "/big", [&big](const HttpRequest&) {
        return HttpResponse::text(200, big);
    });
    server.start();

    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.send("GET /big HTTP/1.1\r\nHost: t\r\n\r\n");
    // Read nothing. The server must abandon the response and close within
    // the configured window (plus sweep granularity and scheduling slack).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.activeConnections() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.activeConnections(), 0u);
    server.stop();
}

TEST(HttpClientTest, ParsesUrls) {
    const net::HttpUrl u = net::parseHttpUrl("http://127.0.0.1:8080");
    EXPECT_EQ(u.host, "127.0.0.1");
    EXPECT_EQ(u.port, 8080);
    const net::HttpUrl withPath = net::parseHttpUrl("http://host:9/v1/query");
    EXPECT_EQ(withPath.host, "host");
    EXPECT_EQ(withPath.port, 9);
    EXPECT_THROW((void)net::parseHttpUrl("https://host:1"), ParseError);
    EXPECT_THROW((void)net::parseHttpUrl("http://host"), ParseError);
    EXPECT_THROW((void)net::parseHttpUrl("http://host:0"), ParseError);
    EXPECT_THROW((void)net::parseHttpUrl("http://host:abc"), ParseError);
}

TEST(HttpClientTest, ConnectionRefusedThrows) {
    HttpClient client("127.0.0.1", 1, /*timeoutMs=*/1000);
    EXPECT_THROW((void)client.get("/"), Error);
}

} // namespace
