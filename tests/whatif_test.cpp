#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "reason/whatif.hpp"
#include "util/error.hpp"

namespace lar::reason {
namespace {

class WhatIfTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }

    Problem caseStudy() const {
        Problem p = makeDefaultProblem(*kb_);
        p.hardware[kb::HardwareClass::Server].count = 60;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.requiredCapabilities = {catalog::kCapDetectQueueLength};
        return p;
    }

    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* WhatIfTest::kb_ = nullptr;

TEST_F(WhatIfTest, EmptyVariationMatchesBaseFeasibility) {
    const Problem p = caseStudy();
    WhatIfSession session(p);
    const WhatIfAnswer answer = session.ask({});
    EXPECT_TRUE(answer.verdict == Verdict::Sat);
    ASSERT_TRUE(answer.design.has_value());
    EXPECT_TRUE(validateDesign(p, *answer.design).empty());
}

TEST_F(WhatIfTest, AnswersMatchFreshEnginePins) {
    const Problem p = caseStudy();
    WhatIfSession session(p);
    const struct {
        const char* system;
        bool include;
    } cases[] = {
        {"Sonata", true},  {"SIMON", true},    {"CONGA", false},
        {"RoCEv2", true},  {"Shenango", true}, {"Linux", false},
    };
    for (const auto& c : cases) {
        Variation variation;
        variation.systems[c.system] = c.include;
        const WhatIfAnswer incremental = session.ask(variation);

        Problem pinned = p;
        pinned.pinnedSystems[c.system] = c.include;
        const bool fresh = Engine(pinned).checkFeasible().feasible;
        EXPECT_EQ(incremental.verdict == Verdict::Sat, fresh)
            << c.system << "=" << c.include;
    }
    EXPECT_EQ(session.queriesAnswered(), 6);
}

TEST_F(WhatIfTest, VariationsAreIndependent) {
    // A restrictive variation must not leak into the next query.
    const Problem p = caseStudy();
    WhatIfSession session(p);
    Variation impossible;
    impossible.systems["CONGA"] = false; // kills the LB bound
    EXPECT_FALSE(session.ask(impossible).verdict == Verdict::Sat);
    EXPECT_TRUE(session.ask({}).verdict == Verdict::Sat); // back to normal
}

TEST_F(WhatIfTest, HardwarePinVariation) {
    const Problem p = caseStudy();
    WhatIfSession session(p);
    Variation tofino;
    tofino.hardwareModels[kb::HardwareClass::Switch] = "Intel Tofino2 32x100G";
    const WhatIfAnswer a = session.ask(tofino);
    EXPECT_TRUE(a.verdict == Verdict::Sat);
    ASSERT_TRUE(a.design.has_value());
    EXPECT_EQ(a.design->hardwareModel.at(kb::HardwareClass::Switch),
              "Intel Tofino2 32x100G");

    Variation catalyst;
    catalyst.hardwareModels[kb::HardwareClass::Switch] =
        "Cisco Catalyst 9500-40X"; // non-P4: bound unsatisfiable
    const WhatIfAnswer b = session.ask(catalyst);
    EXPECT_FALSE(b.verdict == Verdict::Sat);
    EXPECT_FALSE(b.conflictingRules.empty());
}

TEST_F(WhatIfTest, OptionVariation) {
    Problem p = makeDefaultProblem(*kb_);
    p.hardware[kb::HardwareClass::Server].count = 20;
    p.hardware[kb::HardwareClass::Nic].count = 20;
    WhatIfSession session(p);
    // Vegas needs the scavenger class option (and deep-buffer switches).
    Variation vegasNoScavenger;
    vegasNoScavenger.systems["Vegas"] = true;
    vegasNoScavenger.options[catalog::kOptScavengerClass] = false;
    EXPECT_FALSE(session.ask(vegasNoScavenger).verdict == Verdict::Sat);

    Variation vegasScavenger;
    vegasScavenger.systems["Vegas"] = true;
    vegasScavenger.options[catalog::kOptScavengerClass] = true;
    EXPECT_TRUE(session.ask(vegasScavenger).verdict == Verdict::Sat);
}

TEST_F(WhatIfTest, UnknownNamesReportedAsStructuredError) {
    WhatIfSession session(caseStudy());
    Variation bad;
    bad.systems["Ghost"] = true;
    bad.options["phantom_opt"] = true;
    const WhatIfAnswer a = session.ask(bad);
    EXPECT_EQ(a.verdict, Verdict::Error);
    EXPECT_FALSE(a.verdict != Verdict::Error);
    EXPECT_FALSE(a.verdict == Verdict::Sat); // a typo must never read as feasible
    ASSERT_EQ(a.unknownNames.size(), 2u);
    EXPECT_EQ(a.unknownNames[0], "system/Ghost");
    EXPECT_EQ(a.unknownNames[1], "option/phantom_opt");

    Variation badHw;
    badHw.hardwareModels[kb::HardwareClass::Nic] = "Ghost NIC";
    const WhatIfAnswer b = session.ask(badHw);
    EXPECT_EQ(b.verdict, Verdict::Error);
    ASSERT_EQ(b.unknownNames.size(), 1u);
    EXPECT_EQ(b.unknownNames[0], "hardware/nic/Ghost NIC");

    // The session stays usable after a rejected variation.
    EXPECT_EQ(session.ask({}).verdict, Verdict::Sat);
}

TEST_F(WhatIfTest, ManyVariationsStayConsistent) {
    // Sweep every monitoring system as a pin; incremental answers must
    // match fresh engines throughout (learned clauses must never change
    // semantics).
    const Problem p = caseStudy();
    WhatIfSession session(p);
    for (const kb::System* s : kb_->byCategory(kb::Category::Monitoring)) {
        Variation v;
        v.systems[s->name] = true;
        const bool incremental = session.ask(v).verdict == Verdict::Sat;
        Problem pinned = p;
        pinned.pinnedSystems[s->name] = true;
        EXPECT_EQ(incremental, Engine(pinned).checkFeasible().feasible)
            << s->name;
    }
}

} // namespace
} // namespace lar::reason
