// Shared test helpers: random CNF generation and a brute-force SAT oracle.
#pragma once

#include <optional>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/types.hpp"
#include "util/rng.hpp"

namespace lar::test {

/// Generates a uniform random k-SAT instance with `numVars` variables and
/// `numClauses` clauses (distinct variables within each clause).
[[nodiscard]] sat::Cnf randomKSat(util::Rng& rng, int numVars, int numClauses, int k);

/// Exhaustive SAT check (numVars must be small). Returns a model when
/// satisfiable, nullopt otherwise.
[[nodiscard]] std::optional<std::vector<bool>> bruteForceSat(const sat::Cnf& cnf);

/// True when `assignment` satisfies every clause of `cnf`.
[[nodiscard]] bool satisfies(const sat::Cnf& cnf, const std::vector<bool>& assignment);

} // namespace lar::test
