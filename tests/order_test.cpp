#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "order/poset.hpp"

namespace lar::order {
namespace {

using kb::Category;
using kb::CmpOp;
using kb::HardwareClass;
using kb::Requirement;

kb::KnowledgeBase makeStackKb() {
    // A miniature Figure-1: A > B unconditionally; B > C when fast NICs;
    // C > B when slow NICs; D incomparable to everything.
    kb::KnowledgeBase kb;
    for (const char* name : {"A", "B", "C", "D"}) {
        kb::System s;
        s.name = name;
        s.category = Category::NetworkStack;
        s.source = "test";
        kb.addSystem(std::move(s));
    }
    kb.addOrdering({"A", "B", kb::kObjThroughput, Requirement::alwaysTrue(), "t"});
    kb.addOrdering({"B", "C", kb::kObjThroughput,
                    Requirement::hardwareCmp(HardwareClass::Nic,
                                             kb::kAttrPortBandwidthGbps,
                                             CmpOp::Ge, 40.0),
                    "t"});
    kb.addOrdering({"C", "B", kb::kObjThroughput,
                    Requirement::hardwareCmp(HardwareClass::Nic,
                                             kb::kAttrPortBandwidthGbps,
                                             CmpOp::Lt, 40.0),
                    "t"});
    return kb;
}

kb::HardwareSpec nicWithBw(double gbps) {
    kb::HardwareSpec nic;
    nic.model = "test-nic";
    nic.cls = HardwareClass::Nic;
    nic.attrs[kb::kAttrPortBandwidthGbps] = gbps;
    return nic;
}

TEST(Context, EvaluatesAllKinds) {
    const kb::HardwareSpec nic = nicWithBw(100);
    Context ctx;
    ctx.hardware[HardwareClass::Nic] = &nic;
    ctx.presentSystems.insert("Linux");
    ctx.facts.insert("flooding");
    ctx.options.insert("pony");
    ctx.workloadProperties.insert("dc_flows");

    EXPECT_TRUE(ctx.evaluate(Requirement::alwaysTrue()));
    EXPECT_FALSE(ctx.evaluate(Requirement::alwaysFalse()));
    EXPECT_TRUE(ctx.evaluate(Requirement::systemPresent("Linux")));
    EXPECT_FALSE(ctx.evaluate(Requirement::systemPresent("Snap")));
    EXPECT_TRUE(ctx.evaluate(Requirement::fact("flooding")));
    EXPECT_FALSE(ctx.evaluate(Requirement::factAbsent("flooding")));
    EXPECT_TRUE(ctx.evaluate(Requirement::option("pony")));
    EXPECT_TRUE(ctx.evaluate(Requirement::workloadHas("dc_flows")));
    EXPECT_TRUE(ctx.evaluate(Requirement::hardwareCmp(
        HardwareClass::Nic, kb::kAttrPortBandwidthGbps, CmpOp::Ge, 40.0)));
    EXPECT_FALSE(ctx.evaluate(Requirement::hardwareCmp(
        HardwareClass::Nic, kb::kAttrPortBandwidthGbps, CmpOp::Lt, 40.0)));
    // Missing class / attr evaluates false.
    EXPECT_FALSE(ctx.evaluate(
        Requirement::hardwareHas(HardwareClass::Switch, kb::kAttrP4Supported)));
    EXPECT_FALSE(ctx.evaluate(
        Requirement::hardwareHas(HardwareClass::Nic, "no_such_attr")));
    // Connectives.
    EXPECT_TRUE(ctx.evaluate(
        Requirement::allOf({Requirement::fact("flooding"),
                            Requirement::option("pony")})));
    EXPECT_TRUE(ctx.evaluate(
        Requirement::anyOf({Requirement::alwaysFalse(),
                            Requirement::systemPresent("Linux")})));
}

TEST(PreferenceGraph, DirectAndTransitiveEdges) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    const kb::HardwareSpec fast = nicWithBw(100);
    Context ctx;
    ctx.hardware[HardwareClass::Nic] = &fast;

    EXPECT_TRUE(graph.betterThan("A", "B", ctx));
    EXPECT_TRUE(graph.betterThan("B", "C", ctx));
    EXPECT_TRUE(graph.betterThan("A", "C", ctx)); // transitive
    EXPECT_FALSE(graph.betterThan("C", "A", ctx));
    EXPECT_TRUE(graph.strictlyBetter("A", "C", ctx));
}

TEST(PreferenceGraph, ConditionsFlipWithContext) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    const kb::HardwareSpec slow = nicWithBw(10);
    Context ctx;
    ctx.hardware[HardwareClass::Nic] = &slow;
    EXPECT_FALSE(graph.betterThan("B", "C", ctx));
    EXPECT_TRUE(graph.betterThan("C", "B", ctx));
    // A > C now holds through nothing (A>B only reaches B; B is below C).
    EXPECT_FALSE(graph.betterThan("A", "C", ctx));
}

TEST(PreferenceGraph, IncomparabilityIsFirstClass) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    Context ctx; // no hardware: conditional edges inactive
    EXPECT_TRUE(graph.incomparable("D", "A", ctx));
    EXPECT_TRUE(graph.incomparable("B", "C", ctx));
    EXPECT_FALSE(graph.incomparable("A", "B", ctx));
    EXPECT_FALSE(graph.incomparable("A", "A", ctx));
}

TEST(PreferenceGraph, MaximalElements) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    const kb::HardwareSpec fast = nicWithBw(100);
    Context ctx;
    ctx.hardware[HardwareClass::Nic] = &fast;
    const auto maxima = graph.maximalElements({"A", "B", "C", "D"}, ctx);
    EXPECT_EQ(maxima, (std::vector<std::string>{"A", "D"}));
}

TEST(PreferenceGraph, CycleDetectionUnderContext) {
    kb::KnowledgeBase kb = makeStackKb();
    // Contradictory conditional knowledge that activates together.
    kb.addOrdering({"B", "A", kb::kObjThroughput,
                    Requirement::option("weird"), "t"});
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    Context ctx;
    EXPECT_FALSE(graph.findCycle(ctx).has_value());
    ctx.options.insert("weird");
    const auto cycle = graph.findCycle(ctx);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_GE(cycle->size(), 2u);
}

TEST(PreferenceGraph, DotExportContainsActiveEdges) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    const kb::HardwareSpec fast = nicWithBw(100);
    Context ctx;
    ctx.hardware[HardwareClass::Nic] = &fast;
    const std::string dot = graph.toDot(ctx);
    EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
    EXPECT_NE(dot.find("\"B\" -> \"C\""), std::string::npos);
    EXPECT_EQ(dot.find("\"C\" -> \"B\""), std::string::npos); // inactive
}

TEST(PreferenceGraph, KnowledgeGaps) {
    const kb::KnowledgeBase kb = makeStackKb();
    const PreferenceGraph graph(kb, kb::kObjThroughput);
    const kb::HardwareSpec fast = nicWithBw(100);
    const kb::HardwareSpec slow = nicWithBw(10);
    Context fastCtx;
    fastCtx.hardware[HardwareClass::Nic] = &fast;
    Context slowCtx;
    slowCtx.hardware[HardwareClass::Nic] = &slow;
    const auto gaps =
        knowledgeGaps(graph, {"A", "B", "C", "D"}, {fastCtx, slowCtx});
    // D vs everything is a gap in both contexts; B vs C is ordered in both.
    EXPECT_EQ(gaps.size(), 3u);
    for (const auto& [a, b] : gaps) EXPECT_TRUE(a == "D" || b == "D");
}

// --- Figure 1, from the real catalog -----------------------------------------

class Figure1Test : public ::testing::Test {
protected:
    Figure1Test() : kb_(catalog::buildKnowledgeBase()) {}

    Context contextWith(double nicGbps, bool pony) const {
        Context ctx;
        nic_.model = "ctx-nic";
        nic_.cls = HardwareClass::Nic;
        nic_.attrs[kb::kAttrPortBandwidthGbps] = nicGbps;
        ctx.hardware[HardwareClass::Nic] = &nic_;
        if (pony) ctx.options.insert("pony_enabled");
        return ctx;
    }

    kb::KnowledgeBase kb_;
    mutable kb::HardwareSpec nic_;
};

TEST_F(Figure1Test, ThroughputAbove40G) {
    const PreferenceGraph graph(kb_, kb::kObjThroughput);
    const Context ctx = contextWith(100, true);
    EXPECT_TRUE(graph.strictlyBetter("NetChannel", "Linux", ctx));
    EXPECT_TRUE(graph.strictlyBetter("NetChannel", "Snap", ctx));
    EXPECT_TRUE(graph.strictlyBetter("Snap", "Linux", ctx));
}

TEST_F(Figure1Test, ThroughputBelow40GFlipsNetChannel) {
    const PreferenceGraph graph(kb_, kb::kObjThroughput);
    const Context ctx = contextWith(10, false);
    EXPECT_TRUE(graph.strictlyBetter("Linux", "NetChannel", ctx));
    // Without Pony, Snap is not known to beat Linux on throughput.
    EXPECT_FALSE(graph.betterThan("Snap", "Linux", ctx));
}

TEST_F(Figure1Test, ShenangoDemikernelIsolationGapPreserved) {
    // The paper explicitly keeps this pair incomparable on isolation (§3.1).
    const PreferenceGraph graph(kb_, kb::kObjIsolation);
    const Context ctx = contextWith(100, true);
    EXPECT_TRUE(graph.incomparable("Shenango", "Demikernel", ctx));
    // But Snap > Shenango is known.
    EXPECT_TRUE(graph.strictlyBetter("Snap", "Shenango", ctx));
}

TEST_F(Figure1Test, PonyCostsAppModification) {
    const PreferenceGraph graph(kb_, kb::kObjAppModification);
    EXPECT_TRUE(
        graph.strictlyBetter("Linux", "Snap", contextWith(100, true)));
    EXPECT_FALSE(graph.betterThan("Linux", "Snap", contextWith(100, false)));
}

TEST_F(Figure1Test, ListingTwoMonitoringOrderings) {
    const Context ctx = contextWith(100, false);
    const PreferenceGraph monitoring(kb_, kb::kObjMonitoring);
    EXPECT_TRUE(monitoring.strictlyBetter("SIMON", "PingMesh", ctx));
    const PreferenceGraph ease(kb_, kb::kObjDeploymentEase);
    EXPECT_TRUE(ease.strictlyBetter("PingMesh", "SIMON", ctx));
}

TEST_F(Figure1Test, NoCycleInAnyObjectiveUnderCommonContexts) {
    std::set<std::string> objectives;
    for (const kb::Ordering& o : kb_.orderings()) objectives.insert(o.objective);
    for (const std::string& objective : objectives) {
        const PreferenceGraph graph(kb_, objective);
        for (const double bw : {10.0, 100.0}) {
            for (const bool pony : {false, true}) {
                Context ctx = contextWith(bw, pony);
                ctx.workloadProperties = {"dc_flows", "short_flows", "wan_flows",
                                          "wan_dc_traffic_compete",
                                          "incast_heavy", "long_flows"};
                EXPECT_FALSE(graph.findCycle(ctx).has_value())
                    << "objective " << objective << " bw " << bw;
            }
        }
    }
}

} // namespace
} // namespace lar::order
