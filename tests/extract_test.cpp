#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "extract/checker.hpp"
#include "extract/extractor.hpp"
#include "extract/specgen.hpp"
#include "util/error.hpp"

namespace lar::extract {
namespace {

class ExtractTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        kb_ = new kb::KnowledgeBase(catalog::buildKnowledgeBase());
    }
    static void TearDownTestSuite() {
        delete kb_;
        kb_ = nullptr;
    }
    static kb::KnowledgeBase* kb_;
};

kb::KnowledgeBase* ExtractTest::kb_ = nullptr;

TEST_F(ExtractTest, Listing1SheetRendersPaperFields) {
    const SpecSheet sheet =
        renderSpecSheet(kb_->hardware("Cisco Catalyst 9500-40X"));
    EXPECT_NE(sheet.text.find("\"Model Name\": \"Cisco Catalyst 9500-40X\""),
              std::string::npos);
    EXPECT_NE(sheet.text.find("\"Port Bandwidth\": \"10 Gbps\""),
              std::string::npos);
    EXPECT_NE(sheet.text.find("\"Max Power Consumption\": \"950W\""),
              std::string::npos);
    EXPECT_NE(sheet.text.find("\"Ports\": \"40x 10 Gigabit Ethernet SFP+\""),
              std::string::npos);
    EXPECT_NE(sheet.text.find("\"Memory\": \"16 GB\""), std::string::npos);
    EXPECT_NE(sheet.text.find("\"P4 Supported?\": \"No\""), std::string::npos);
    EXPECT_NE(sheet.text.find("\"# P4 Stages\": \"N/A\""), std::string::npos);
    EXPECT_NE(sheet.text.find("\"ECN supported?\": \"Yes\""), std::string::npos);
    EXPECT_NE(sheet.text.find("\"MAC Address Table Size\": \"64,000 entries\""),
              std::string::npos);
}

TEST_F(ExtractTest, HardwareExtractionIsPerfectOnWholeCorpus) {
    // §4.1: "the LLM extracted the fields with 100% accuracy (unless it was
    // missing in the spec itself)".
    int totalFields = 0;
    int correctFields = 0;
    for (const SpecSheet& sheet : renderHardwareCorpus(*kb_)) {
        const kb::HardwareSpec extracted = extractHardware(sheet.text);
        const FieldAccuracy acc = compareHardware(extracted, sheet.groundTruth);
        totalFields += acc.total;
        correctFields += acc.correct;
    }
    EXPECT_GT(totalFields, 1500);
    EXPECT_EQ(correctFields, totalFields); // 100 %
}

TEST_F(ExtractTest, ExtractHardwareParsesThousandsSeparators) {
    const SpecSheet sheet =
        renderSpecSheet(kb_->hardware("Cisco Catalyst 9500-40X"));
    const kb::HardwareSpec extracted = extractHardware(sheet.text);
    EXPECT_EQ(extracted.numAttr(kb::kAttrMacTableSize), 64000.0);
    EXPECT_DOUBLE_EQ(extracted.unitCostUsd, 22000.0);
}

TEST_F(ExtractTest, ExtractHardwareRejectsGarbage) {
    EXPECT_THROW((void)extractHardware("not a sheet"), ParseError);
    EXPECT_THROW((void)extractHardware("{\n  \"Vendor\": \"x\"\n}\n"),
                 ParseError); // no Model Name
}

TEST_F(ExtractTest, SystemDocSeparatesNuancesFromHardRequirements) {
    const SystemDoc annulus = renderSystemDoc(kb_->system("Annulus"));
    int nuances = 0;
    int hard = 0;
    for (const DocFact& fact : annulus.facts) {
        if (fact.kind == DocFact::Kind::NuanceCondition) ++nuances;
        if (fact.kind == DocFact::Kind::HardRequirement) ++hard;
    }
    // The WAN/DC-competition applicability is a nuance; QCN support is hard.
    EXPECT_GE(nuances, 1);
    EXPECT_GE(hard, 1);
    EXPECT_NE(annulus.prose.find("only when"), std::string::npos);
}

TEST_F(ExtractTest, NoiselessExtractionRecoversEverything) {
    NoiseModel perfect;
    perfect.missNuanceCondition = 0;
    perfect.missQuantity = 0;
    perfect.wrongQuantity = 0;
    perfect.missHardRequirement = 0;
    perfect.missProvides = 0;
    perfect.missConflict = 0;
    util::Rng rng(1);
    for (const kb::System& s : kb_->systems()) {
        const SystemDoc doc = renderSystemDoc(s);
        const SystemExtraction result = extractSystem(doc, perfect, rng);
        EXPECT_EQ(result.encoding.constraints.toString(),
                  s.constraints.toString())
            << s.name;
        EXPECT_EQ(result.encoding.demands.size(), s.demands.size()) << s.name;
        EXPECT_EQ(result.encoding.provides, s.provides) << s.name;
        EXPECT_EQ(result.encoding.solves, s.solves) << s.name;
    }
}

TEST_F(ExtractTest, NoisyExtractionMatchesPaperFindings) {
    // §4.1 shape: hardware requirements mostly found; nuance conditions and
    // quantities missed much more often.
    NoiseModel noise;
    util::Rng rng(42);
    ExtractionStats stats;
    for (int round = 0; round < 20; ++round)
        for (const SystemDoc& doc : renderSystemCorpus(*kb_))
            stats.add(extractSystem(doc, noise, rng).stats);

    const double hardRecall = static_cast<double>(stats.hardRequirementsFound) /
                              stats.hardRequirementsTotal;
    const double nuanceRecall = static_cast<double>(stats.nuanceConditionsFound) /
                                stats.nuanceConditionsTotal;
    const double quantityPrecision =
        static_cast<double>(stats.quantitiesCorrect) / stats.quantitiesTotal;
    EXPECT_GT(hardRecall, 0.9);
    EXPECT_LT(nuanceRecall, 0.7);
    EXPECT_LT(quantityPrecision, hardRecall);
    EXPECT_GT(stats.nuanceConditionsTotal, 0);
}

TEST_F(ExtractTest, AdversarialPromptingImprovesRecall) {
    // §4.1: "it was more productive to ask the LLM to find requirements
    // without which the mechanisms paper cannot work".
    NoiseModel plain;
    NoiseModel adversarial;
    adversarial.adversarialPrompting = true;
    ExtractionStats plainStats;
    ExtractionStats advStats;
    util::Rng rngA(7);
    util::Rng rngB(7);
    for (int round = 0; round < 30; ++round) {
        for (const SystemDoc& doc : renderSystemCorpus(*kb_)) {
            plainStats.add(extractSystem(doc, plain, rngA).stats);
            advStats.add(extractSystem(doc, adversarial, rngB).stats);
        }
    }
    EXPECT_GT(advStats.nuanceConditionsFound, plainStats.nuanceConditionsFound);
}

TEST_F(ExtractTest, CheckerFindsShenangoInterruptPollingGap) {
    // §4.2's concrete example: a hand-written Shenango encoding that forgot
    // the interrupt-polling NIC requirement gets flagged.
    kb::System incomplete = kb_->system("Shenango");
    incomplete.constraints = kb::Requirement::hardwareHas(
        kb::HardwareClass::Nic, kb::kAttrSrIov); // forgot interrupt polling
    const SystemDoc doc = renderSystemDoc(kb_->system("Shenango"));
    CheckerModel certain;
    certain.detectMissingCondition = 1.0;
    certain.falseAlarm = 0.0;
    util::Rng rng(3);
    const CheckResult result = checkEncoding(incomplete, doc, certain, rng);
    const bool flagged = std::any_of(
        result.findings.begin(), result.findings.end(),
        [](const CheckFinding& finding) {
            return finding.type == CheckFinding::Type::MissingCondition &&
                   finding.description.find("interrupt_polling") !=
                       std::string::npos;
        });
    EXPECT_TRUE(flagged);
}

TEST_F(ExtractTest, CheckerFlagsWrongSonataStageCount) {
    // §4.2: "it does raise an alarm if we encode the wrong number of P4
    // stages to deploy Sonata" — though value checks are less reliable.
    kb::System wrong = kb_->system("Sonata");
    for (kb::ResourceDemand& d : wrong.demands)
        if (d.resource == kb::kResP4Stages) d.fixed = 2; // truth is 8
    const SystemDoc doc = renderSystemDoc(kb_->system("Sonata"));
    CheckerModel certain;
    certain.detectWrongValue = 1.0;
    certain.falseAlarm = 0.0;
    util::Rng rng(3);
    const CheckResult result = checkEncoding(wrong, doc, certain, rng);
    const bool flagged = std::any_of(
        result.findings.begin(), result.findings.end(),
        [](const CheckFinding& finding) {
            return finding.type == CheckFinding::Type::WrongValue;
        });
    EXPECT_TRUE(flagged);
}

TEST_F(ExtractTest, ExistenceCheckingBeatsValueChecking) {
    // §4.2 aggregate: detection rate of missing conditions exceeds that of
    // wrong values under the default checker model.
    CheckerModel model;
    util::Rng rng(11);
    CheckStats totals;
    NoiseModel noise;
    for (int round = 0; round < 30; ++round) {
        for (const SystemDoc& doc : renderSystemCorpus(*kb_)) {
            const SystemExtraction extraction = extractSystem(doc, noise, rng);
            const CheckResult check =
                checkEncoding(extraction.encoding, doc, model, rng);
            totals.missingTotal += check.stats.missingTotal;
            totals.missingFlagged += check.stats.missingFlagged;
            totals.wrongValueTotal += check.stats.wrongValueTotal;
            totals.wrongValueFlagged += check.stats.wrongValueFlagged;
        }
    }
    ASSERT_GT(totals.missingTotal, 0);
    ASSERT_GT(totals.wrongValueTotal, 0);
    const double missRate =
        static_cast<double>(totals.missingFlagged) / totals.missingTotal;
    const double valueRate =
        static_cast<double>(totals.wrongValueFlagged) / totals.wrongValueTotal;
    EXPECT_GT(missRate, valueRate);
    EXPECT_GT(missRate, 0.85);
}

TEST_F(ExtractTest, PerfectEncodingYieldsNoFindings) {
    CheckerModel model;
    model.falseAlarm = 0.0;
    util::Rng rng(9);
    for (const kb::System& s : kb_->systems()) {
        const CheckResult result =
            checkEncoding(s, renderSystemDoc(s), model, rng);
        EXPECT_TRUE(result.findings.empty()) << s.name;
    }
}

TEST_F(ExtractTest, ObjectivityClassification) {
    // §4.2: comparisons are subjective; dependency facts are objective.
    for (const kb::Ordering& o : kb_->orderings())
        EXPECT_EQ(classifyOrdering(o), ClaimClass::SubjectiveComparison);
    EXPECT_EQ(classifyRequirement(kb_->system("HPCC").constraints),
              ClaimClass::ObjectiveFact);
}

} // namespace
} // namespace lar::extract
