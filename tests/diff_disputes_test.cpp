// Tests for the crowd-sourcing workflow pieces: KB diffing (§3.3 review),
// dispute annotation (§4.2 objectivity), and the Hasse/level views of the
// preference graphs (clutter-free Figure 1).
#include <gtest/gtest.h>

#include "catalog/catalog.hpp"
#include "extract/disputes.hpp"
#include "kb/diff.hpp"
#include "kb/objectives.hpp"
#include "kb/serialize.hpp"
#include "order/poset.hpp"

namespace lar {
namespace {

// --- KB diff -------------------------------------------------------------------

TEST(KbDiff, IdenticalKbsAreEmpty) {
    const kb::KnowledgeBase a = catalog::buildKnowledgeBase();
    const kb::KnowledgeBase b = catalog::buildKnowledgeBase();
    const kb::KbDiff diff = kb::diffKnowledgeBases(a, b);
    EXPECT_TRUE(diff.empty()) << diff.toString();
    EXPECT_NE(diff.toString().find("no changes"), std::string::npos);
}

TEST(KbDiff, DetectsAddedAndRemovedSystems) {
    kb::KnowledgeBase before = catalog::buildKnowledgeBase();
    kb::KnowledgeBase after = catalog::buildKnowledgeBase();
    kb::System extra;
    extra.name = "NewStack";
    extra.category = kb::Category::NetworkStack;
    extra.source = "contribution";
    after.addSystem(std::move(extra));
    after.removeSystem("PingMesh");

    const kb::KbDiff diff = kb::diffKnowledgeBases(before, after);
    EXPECT_EQ(diff.addedSystems, std::vector<std::string>{"NewStack"});
    EXPECT_EQ(diff.removedSystems, std::vector<std::string>{"PingMesh"});
    // Removing PingMesh also removes its Listing-2 orderings.
    EXPECT_GE(diff.removedOrderings.size(), 2u);
    EXPECT_FALSE(diff.empty());
}

TEST(KbDiff, DetectsChangedEncoding) {
    kb::KnowledgeBase before = catalog::buildKnowledgeBase();
    kb::KnowledgeBase after = catalog::buildKnowledgeBase();
    kb::System sonata = after.system("Sonata");
    sonata.demands[0].fixed = 12; // new version needs more stages
    after.replaceSystem(std::move(sonata));
    const kb::KbDiff diff = kb::diffKnowledgeBases(before, after);
    EXPECT_EQ(diff.changedSystems, std::vector<std::string>{"Sonata"});
    EXPECT_TRUE(diff.addedSystems.empty());
    EXPECT_TRUE(diff.removedSystems.empty());
}

TEST(KbDiff, DetectsHardwareAndOrderingChanges) {
    kb::KnowledgeBase before = catalog::buildKnowledgeBase();
    kb::KnowledgeBase after = catalog::buildKnowledgeBase();
    kb::HardwareSpec nic;
    nic.model = "FutureNIC 800G";
    nic.vendor = "contrib";
    nic.cls = kb::HardwareClass::Nic;
    nic.unitCostUsd = 1;
    nic.maxPowerW = 1;
    after.addHardware(std::move(nic));
    after.addOrdering({"Snap", "F-Stack", kb::kObjThroughput,
                       kb::Requirement::alwaysTrue(), "new measurement"});
    const kb::KbDiff diff = kb::diffKnowledgeBases(before, after);
    EXPECT_EQ(diff.addedHardware, std::vector<std::string>{"FutureNIC 800G"});
    ASSERT_EQ(diff.addedOrderings.size(), 1u);
    EXPECT_NE(diff.addedOrderings[0].find("Snap > F-Stack"), std::string::npos);
}

TEST(KbDiff, SymmetricUnderSwap) {
    kb::KnowledgeBase before = catalog::buildKnowledgeBase();
    kb::KnowledgeBase after = catalog::buildKnowledgeBase();
    after.removeSystem("Everflow");
    const kb::KbDiff forward = kb::diffKnowledgeBases(before, after);
    const kb::KbDiff backward = kb::diffKnowledgeBases(after, before);
    EXPECT_EQ(forward.removedSystems, backward.addedSystems);
}

// --- dispute annotation ---------------------------------------------------------

TEST(Disputes, ContrarianClaimsGetAttached) {
    kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    // Some catalog edges ship pre-annotated (the ECN-vs-delay debate);
    // snapshot so the check below only covers newly-attached disputes.
    std::vector<std::size_t> preexisting;
    for (const kb::Ordering& o : kb.orderings())
        preexisting.push_back(o.disputes.size());

    util::Rng rng(99);
    const auto corpus = extract::renderClaimCorpus(kb, /*contrarianProb=*/0.3, rng);
    EXPECT_GT(corpus.size(), kb.orderings().size()); // supporting + contrarian
    const std::size_t annotated = extract::annotateDisputes(kb, corpus);
    EXPECT_GT(annotated, 0u);
    EXPECT_LT(annotated, kb.orderings().size()); // only ~30% have contrarians
    // Every NEWLY attached dispute indeed contradicts its edge.
    for (std::size_t i = 0; i < kb.orderings().size(); ++i) {
        const kb::Ordering& o = kb.orderings()[i];
        if (o.disputes.size() <= preexisting[i]) continue;
        const bool contradicting = std::any_of(
            corpus.begin(), corpus.end(), [&o](const extract::ComparativeClaim& c) {
                return c.better == o.worse && c.worse == o.better &&
                       c.objective == o.objective;
            });
        EXPECT_TRUE(contradicting);
    }
}

TEST(Disputes, WithoutContrariansOnlyConditionalPairsAreFlagged) {
    // With contrarianProb 0 every claim supports some encoded edge — but the
    // KB deliberately contains opposite *conditional* edges (Figure 1's
    // "Linux > NetChannel below 40G" vs "NetChannel > Linux above"), and a
    // claim supporting one side disputes the other. Exactly those edges, and
    // no others, get annotated.
    kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    std::size_t reversiblePairs = 0;
    for (const kb::Ordering& a : kb.orderings()) {
        const bool hasReverse = std::any_of(
            kb.orderings().begin(), kb.orderings().end(),
            [&a](const kb::Ordering& b) {
                return b.better == a.worse && b.worse == a.better &&
                       b.objective == a.objective;
            });
        if (hasReverse) ++reversiblePairs;
    }
    util::Rng rng(7);
    const auto corpus = extract::renderClaimCorpus(kb, 0.0, rng);
    EXPECT_EQ(extract::annotateDisputes(kb, corpus), reversiblePairs);
}

TEST(Disputes, AnnotationIsIdempotent) {
    kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    util::Rng rng(5);
    const auto corpus = extract::renderClaimCorpus(kb, 0.5, rng);
    (void)extract::annotateDisputes(kb, corpus);
    std::size_t disputesAfterFirst = 0;
    for (const kb::Ordering& o : kb.orderings()) disputesAfterFirst += o.disputes.size();
    (void)extract::annotateDisputes(kb, corpus);
    std::size_t disputesAfterSecond = 0;
    for (const kb::Ordering& o : kb.orderings())
        disputesAfterSecond += o.disputes.size();
    EXPECT_EQ(disputesAfterFirst, disputesAfterSecond);
}

TEST(Disputes, SurviveJsonRoundTrip) {
    kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    util::Rng rng(11);
    (void)extract::annotateDisputes(kb, extract::renderClaimCorpus(kb, 0.4, rng));
    const kb::KnowledgeBase restored = kb::kbFromText(kb::kbToText(kb));
    std::size_t original = 0;
    std::size_t roundTripped = 0;
    for (const kb::Ordering& o : kb.orderings()) original += o.disputes.size();
    for (const kb::Ordering& o : restored.orderings())
        roundTripped += o.disputes.size();
    EXPECT_GT(original, 0u);
    EXPECT_EQ(original, roundTripped);
}

// --- Hasse reduction and levels -------------------------------------------------

TEST(Hasse, TransitiveEdgeRemoved) {
    kb::KnowledgeBase kb;
    for (const char* name : {"A", "B", "C"}) {
        kb::System s;
        s.name = name;
        s.category = kb::Category::NetworkStack;
        s.source = "t";
        kb.addSystem(std::move(s));
    }
    kb.addOrdering({"A", "B", kb::kObjLatency, {}, "t"});
    kb.addOrdering({"B", "C", kb::kObjLatency, {}, "t"});
    kb.addOrdering({"A", "C", kb::kObjLatency, {}, "t"}); // transitive shortcut
    const order::PreferenceGraph graph(kb, kb::kObjLatency);
    const order::Context ctx;
    const auto hasse = graph.hasseEdges(ctx);
    EXPECT_EQ(hasse.size(), 2u);
    for (const auto& [a, b] : hasse) EXPECT_FALSE(a == "A" && b == "C");
}

TEST(Hasse, LevelsRankByLongestChain) {
    kb::KnowledgeBase kb;
    for (const char* name : {"A", "B", "C", "D"}) {
        kb::System s;
        s.name = name;
        s.category = kb::Category::NetworkStack;
        s.source = "t";
        kb.addSystem(std::move(s));
    }
    kb.addOrdering({"A", "B", kb::kObjLatency, {}, "t"});
    kb.addOrdering({"B", "C", kb::kObjLatency, {}, "t"});
    // D incomparable: shares the top level with A.
    const order::PreferenceGraph graph(kb, kb::kObjLatency);
    const auto levels = graph.levels(order::Context{});
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0], (std::vector<std::string>{"A"}));
    EXPECT_EQ(levels[1], (std::vector<std::string>{"B"}));
    EXPECT_EQ(levels[2], (std::vector<std::string>{"C"}));
    // D only appears when it participates in an edge; add one.
    kb.addOrdering({"D", "C", kb::kObjLatency, {}, "t"});
    const order::PreferenceGraph withD(kb, kb::kObjLatency);
    const auto levels2 = withD.levels(order::Context{});
    EXPECT_NE(std::find(levels2[0].begin(), levels2[0].end(), "D"),
              levels2[0].end());
}

TEST(Hasse, DotRestrictionFiltersForeignEdges) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    const order::PreferenceGraph graph(kb, kb::kObjThroughput);
    kb::HardwareSpec nic;
    nic.cls = kb::HardwareClass::Nic;
    nic.attrs[kb::kAttrPortBandwidthGbps] = 100.0;
    order::Context ctx;
    ctx.hardware[kb::HardwareClass::Nic] = &nic;
    ctx.options.insert(catalog::kOptPonyEnabled);
    const std::vector<std::string> stacks = {"ZygOS",      "Linux",
                                             "Snap",       "NetChannel",
                                             "Shenango",   "Demikernel"};
    const std::string dot = graph.toDot(ctx, stacks);
    EXPECT_NE(dot.find("\"NetChannel\" -> \"Snap\""), std::string::npos);
    EXPECT_EQ(dot.find("RoCEv2"), std::string::npos); // transport edge filtered
}

} // namespace
} // namespace lar
