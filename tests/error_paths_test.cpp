// Error-path coverage: malformed inputs and precondition violations must
// throw the *typed* lar::Error subclass the API documents, with messages
// specific enough to act on — not a bare std::exception or a crash.
#include <gtest/gtest.h>

#include <span>
#include <string>

#include "catalog/catalog.hpp"
#include "reason/engine.hpp"
#include "reason/problem_io.hpp"
#include "reason/service.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "testsupport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lar {
namespace {

// Asserts `fn()` throws exactly `E` (not a broader base) and that the
// message mentions `needle` — a useless "error" message is a bug too.
template <typename E, typename Fn>
void expectThrowsWith(Fn&& fn, const std::string& needle) {
    try {
        fn();
        FAIL() << "expected an exception mentioning '" << needle << "'";
    } catch (const E& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "unhelpful message: " << e.what();
    } catch (const std::exception& e) {
        FAIL() << "wrong exception type: " << typeid(e).name() << " — "
               << e.what();
    }
}

// ------------------------------------------------------------- DIMACS

TEST(ErrorPaths, DimacsMissingHeaderIsParseError) {
    expectThrowsWith<ParseError>([] { (void)sat::parseDimacs("1 2 0\n"); },
                                 "problem line");
}

TEST(ErrorPaths, DimacsGarbageTokenIsParseError) {
    EXPECT_THROW((void)sat::parseDimacs("p cnf 2 1\n1 x 0\n"), ParseError);
}

TEST(ErrorPaths, DimacsVariableOutOfRangeIsParseError) {
    EXPECT_THROW((void)sat::parseDimacs("p cnf 2 1\n1 7 0\n"), ParseError);
}

TEST(ErrorPaths, DimacsValidInputStillParses) {
    const sat::Cnf cnf = sat::parseDimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.numVars, 3);
    EXPECT_EQ(cnf.clauses.size(), 2u);
}

// --------------------------------------------------- dangling KB references

TEST(ErrorPaths, UnknownSystemLookupIsEncodingError) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    expectThrowsWith<EncodingError>([&] { (void)kb.system("NoSuchSystem"); },
                                    "NoSuchSystem");
}

TEST(ErrorPaths, UnknownHardwareLookupIsEncodingError) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    expectThrowsWith<EncodingError>(
        [&] { (void)kb.hardware("NoSuchModel 9000"); }, "NoSuchModel 9000");
}

TEST(ErrorPaths, ProblemPinningUnknownSystemIsEncodingError) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    expectThrowsWith<EncodingError>(
        [&] {
            (void)reason::problemFromText(
                R"({"hardware": {"server": {"count": 4}},
                    "pinned_systems": {"NoSuchSystem": true}})",
                kb);
        },
        "NoSuchSystem");
}

TEST(ErrorPaths, ProblemPinningUnknownModelIsEncodingError) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    expectThrowsWith<EncodingError>(
        [&] {
            (void)reason::problemFromText(
                R"({"hardware": {"switch": {"count": 2,
                                           "pinned_model": "Ghost Switch"}}})",
                kb);
        },
        "Ghost Switch");
}

// ----------------------------------------------- precondition violations

TEST(ErrorPaths, NullCompilationIsLogicError) {
    expectThrowsWith<LogicError>(
        [] { reason::Engine engine(std::shared_ptr<const reason::Compilation>{}); },
        "compilation");
}

TEST(ErrorPaths, ProblemWithoutKbIsLogicError) {
    reason::Problem p; // p.kb deliberately null
    reason::Service service;
    reason::QueryRequest r;
    r.problem = p;
    // The Service catches it (failure isolation) and reports the kind.
    const reason::QueryResult result = service.run(r);
    EXPECT_FALSE(result.verdict != reason::Verdict::Error);
    EXPECT_EQ(result.error.errorKind, "logic_error");
    EXPECT_NE(result.error.message.find("knowledge base"), std::string::npos);
}

TEST(ErrorPaths, ZeroCacheCapacityIsLogicError) {
    reason::ServiceOptions options;
    options.cacheCapacity = 0;
    expectThrowsWith<LogicError>([&] { reason::Service service(options); },
                                 "cacheCapacity");
}

TEST(ErrorPaths, NonPositiveRetryAttemptsIsLogicError) {
    reason::ServiceOptions options;
    options.retry.maxAttempts = 0;
    expectThrowsWith<LogicError>([&] { reason::Service service(options); },
                                 "maxAttempts");
}

TEST(ErrorPaths, FlippingSimplifyKnobsMidSolveIsLogicError) {
    // Inprocessing options are read by the search thread without
    // synchronization; mutating them mid-solve() must be rejected, not
    // silently raced. Re-enter setOptions from the export callback.
    util::Rng rng(11);
    const sat::Cnf cnf = test::randomKSat(rng, 12, 70, 3); // dense → conflicts
    sat::Solver solver;
    sat::SolverOptions opts;
    opts.shareLbdMax = 1000;
    opts.simplify.enable = false; // keep the instance alive into search
    opts.exportClauseFn = [&solver, &opts](std::span<const sat::Lit>, int) {
        sat::SolverOptions flipped = opts;
        flipped.simplify.enable = true;
        solver.setOptions(flipped);
    };
    solver.setOptions(opts);
    while (solver.numVars() < cnf.numVars) (void)solver.newVar();
    for (const auto& clause : cnf.clauses) (void)solver.addClause(clause);
    expectThrowsWith<LogicError>([&] { (void)solver.solve(); },
                                 "while solve() is active");
}

TEST(ErrorPaths, TypedErrorsRemainCatchableAsLarError) {
    // The whole hierarchy funnels into lar::Error — the contract larctl and
    // the Service's errorKind mapping rely on.
    EXPECT_THROW((void)sat::parseDimacs("nope"), Error);
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    EXPECT_THROW((void)kb.system("missing"), Error);
    EXPECT_THROW(expects(false, "precondition"), Error);
}

} // namespace
} // namespace lar
