#include <gtest/gtest.h>

#include <numeric>

#include "encode/cardinality.hpp"
#include "encode/cnf_builder.hpp"
#include "encode/intvar.hpp"
#include "encode/pb.hpp"
#include "util/rng.hpp"

namespace lar::encode {
namespace {

using sat::Lit;
using sat::mkLit;
using sat::SolveResult;
using sat::Solver;

// Enumerates all models of `solver` projected onto `lits` by blocking; the
// count is compared against an expected predicate evaluated on all 2^n
// assignments. Assumes the solver contains no variables beyond `lits` that
// constrain the projection count (auxiliary encoding vars are fine — each
// projected assignment is counted once).
template <typename Predicate>
void expectModelCount(Solver& solver, const std::vector<Lit>& lits,
                      Predicate predicate) {
    // Expected count by brute force.
    const std::size_t n = lits.size();
    ASSERT_LE(n, 16u);
    std::size_t expected = 0;
    for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
        std::vector<bool> assignment(n);
        for (std::size_t i = 0; i < n; ++i) assignment[i] = ((bits >> i) & 1) != 0;
        if (predicate(assignment)) ++expected;
    }
    // Count projected models with blocking clauses.
    std::size_t found = 0;
    while (solver.solve() == SolveResult::Sat) {
        ++found;
        ASSERT_LE(found, expected) << "more projected models than expected";
        std::vector<bool> assignment(n);
        std::vector<Lit> block;
        for (std::size_t i = 0; i < n; ++i) {
            assignment[i] = solver.modelValue(lits[i]);
            block.push_back(assignment[i] ? ~lits[i] : lits[i]);
        }
        EXPECT_TRUE(predicate(assignment));
        solver.addClause(std::move(block));
    }
    EXPECT_EQ(found, expected);
}

std::vector<Lit> freshLits(CnfBuilder& b, int n) {
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(b.newLit());
    return lits;
}

TEST(CnfBuilder, TrueLitIsTrue) {
    Solver s;
    CnfBuilder b(s);
    const Lit t = b.trueLit();
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(t));
    EXPECT_FALSE(s.modelValue(b.falseLit()));
}

TEST(CnfBuilder, AndGateBothPolarities) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    const Lit g = b.mkAnd(x, y);
    // Force g true: both inputs must hold.
    b.assertLit(g);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
    // Force g false while x,y true: UNSAT.
    Solver s2;
    CnfBuilder b2(s2);
    const Lit x2 = b2.newLit();
    const Lit y2 = b2.newLit();
    const Lit g2 = b2.mkAnd(x2, y2);
    b2.assertLit(~g2);
    b2.assertLit(x2);
    b2.assertLit(y2);
    EXPECT_EQ(s2.solve(), SolveResult::Unsat);
}

TEST(CnfBuilder, OrGateBothPolarities) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    const Lit g = b.mkOr(x, y);
    b.assertLit(~g);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_FALSE(s.modelValue(y));
}

TEST(CnfBuilder, EmptyGates) {
    Solver s;
    CnfBuilder b(s);
    EXPECT_EQ(b.mkAnd(std::span<const Lit>{}), b.trueLit());
    EXPECT_EQ(b.mkOr(std::span<const Lit>{}), b.falseLit());
}

TEST(CnfBuilder, IffAndXorTruthTables) {
    for (const bool xv : {false, true}) {
        for (const bool yv : {false, true}) {
            Solver s;
            CnfBuilder b(s);
            const Lit x = b.newLit();
            const Lit y = b.newLit();
            const Lit iff = b.mkIff(x, y);
            const Lit xr = b.mkXor(x, y);
            b.assertLit(xv ? x : ~x);
            b.assertLit(yv ? y : ~y);
            ASSERT_EQ(s.solve(), SolveResult::Sat);
            EXPECT_EQ(s.modelValue(iff), xv == yv);
            EXPECT_EQ(s.modelValue(xr), xv != yv);
        }
    }
}

TEST(CnfBuilder, IteTruthTable) {
    for (const bool cv : {false, true}) {
        for (const bool tv : {false, true}) {
            for (const bool ev : {false, true}) {
                Solver s;
                CnfBuilder b(s);
                const Lit c = b.newLit();
                const Lit t = b.newLit();
                const Lit e = b.newLit();
                const Lit out = b.mkIte(c, t, e);
                b.assertLit(cv ? c : ~c);
                b.assertLit(tv ? t : ~t);
                b.assertLit(ev ? e : ~e);
                ASSERT_EQ(s.solve(), SolveResult::Sat);
                EXPECT_EQ(s.modelValue(out), cv ? tv : ev);
            }
        }
    }
}

// --- Cardinality: parameterized over encodings and (n, k) -------------------

using CardParam = std::tuple<CardinalityEncoding, int, int>; // encoding, n, k

class CardinalityTest : public ::testing::TestWithParam<CardParam> {};

TEST_P(CardinalityTest, AtMostExactCount) {
    const auto [enc, n, k] = GetParam();
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, n);
    addAtMost(b, lits, k, enc);
    expectModelCount(s, lits, [k = k](const std::vector<bool>& a) {
        return std::count(a.begin(), a.end(), true) <= k;
    });
}

TEST_P(CardinalityTest, AtLeastExactCount) {
    const auto [enc, n, k] = GetParam();
    if (k > n) GTEST_SKIP();
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, n);
    addAtLeast(b, lits, k, enc);
    expectModelCount(s, lits, [k = k](const std::vector<bool>& a) {
        return std::count(a.begin(), a.end(), true) >= k;
    });
}

TEST_P(CardinalityTest, ExactlyExactCount) {
    const auto [enc, n, k] = GetParam();
    if (k > n) GTEST_SKIP();
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, n);
    addExactly(b, lits, k, enc);
    expectModelCount(s, lits, [k = k](const std::vector<bool>& a) {
        return std::count(a.begin(), a.end(), true) == k;
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CardinalityTest,
    ::testing::Combine(::testing::Values(CardinalityEncoding::SequentialCounter,
                                         CardinalityEncoding::Totalizer),
                       ::testing::Values(1, 2, 4, 5, 7), // n
                       ::testing::Values(0, 1, 2, 3, 6)), // k
    [](const ::testing::TestParamInfo<CardParam>& info) {
        const char* name = std::get<0>(info.param) ==
                                   CardinalityEncoding::SequentialCounter
                               ? "seq"
                               : "tot";
        return std::string(name) + "_n" + std::to_string(std::get<1>(info.param)) +
               "_k" + std::to_string(std::get<2>(info.param));
    });

TEST(Cardinality, PairwiseAtMostOne) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 5);
    addAtMostOnePairwise(b, lits);
    expectModelCount(s, lits, [](const std::vector<bool>& a) {
        return std::count(a.begin(), a.end(), true) <= 1;
    });
}

TEST(Totalizer, OutputsReflectCount) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 6);
    const Totalizer t(b, lits);
    ASSERT_EQ(t.size(), 6u);
    // Force exactly 3 inputs true; outputs 0..2 must be true-capable and
    // asserting ~output(3) must stay satisfiable while ~output(2) must not.
    for (int i = 0; i < 3; ++i) b.assertLit(lits[static_cast<std::size_t>(i)]);
    for (int i = 3; i < 6; ++i) b.assertLit(~lits[static_cast<std::size_t>(i)]);
    b.assertLit(~t.output(3)); // at most 3: consistent
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    b.assertLit(~t.output(2)); // at most 2: contradiction
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Totalizer, AtMostLitBeyondSizeIsTrue) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 3);
    const Totalizer t(b, lits);
    EXPECT_EQ(t.atMostLit(b, 5), b.trueLit());
}

// --- Pseudo-Boolean ---------------------------------------------------------

TEST(Pb, WeightedAtMostExactCount) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 5);
    const std::vector<std::int64_t> weights{3, 5, 2, 7, 1};
    std::vector<PbTerm> terms;
    for (std::size_t i = 0; i < lits.size(); ++i)
        terms.push_back({weights[i], lits[i]});
    addPbAtMost(b, terms, 9);
    expectModelCount(s, lits, [&weights](const std::vector<bool>& a) {
        std::int64_t sum = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i]) sum += weights[i];
        return sum <= 9;
    });
}

TEST(Pb, OversizedWeightForcesFalse) {
    Solver s;
    CnfBuilder b(s);
    const Lit big = b.newLit();
    const Lit small = b.newLit();
    addPbAtMost(b, std::vector<PbTerm>{{10, big}, {2, small}}, 5);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(big));
}

TEST(Pb, TrivialBoundAddsNothing) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 3);
    std::vector<PbTerm> terms;
    for (const Lit l : lits) terms.push_back({1, l});
    addPbAtMost(b, terms, 3); // can never be violated
    EXPECT_EQ(s.numClauses(), 0u);
}

TEST(Pb, RandomizedAgainstBruteForce) {
    util::Rng rng(99);
    for (int round = 0; round < 25; ++round) {
        const int n = 3 + static_cast<int>(rng.below(5));
        Solver s;
        CnfBuilder b(s);
        const auto lits = freshLits(b, n);
        std::vector<PbTerm> terms;
        std::vector<std::int64_t> weights;
        std::int64_t total = 0;
        for (const Lit l : lits) {
            const std::int64_t w = 1 + static_cast<std::int64_t>(rng.below(9));
            terms.push_back({w, l});
            weights.push_back(w);
            total += w;
        }
        const std::int64_t bound = static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(total + 1)));
        addPbAtMost(b, terms, bound);
        expectModelCount(s, lits, [&](const std::vector<bool>& a) {
            std::int64_t sum = 0;
            for (std::size_t i = 0; i < a.size(); ++i)
                if (a[i]) sum += weights[i];
            return sum <= bound;
        });
    }
}

TEST(PbSum, GeqLitDetectsThreshold) {
    Solver s;
    CnfBuilder b(s);
    const auto lits = freshLits(b, 4);
    std::vector<PbTerm> terms;
    for (const Lit l : lits) terms.push_back({2, l});
    const PbSum sum(b, terms);
    EXPECT_EQ(sum.maxSum(), 8);
    // Set three inputs true → sum = 6 → geq(6) forced true, geq(8) free.
    b.assertLit(lits[0]);
    b.assertLit(lits[1]);
    b.assertLit(lits[2]);
    b.assertLit(~lits[3]);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(sum.geqLit(b, 6)));
    EXPECT_TRUE(s.modelValue(sum.geqLit(b, 5))); // rounds up to sum 6
    // Asserting ¬geq(6) now must be UNSAT.
    b.assertLit(~sum.geqLit(b, 6));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(PbSum, EmptyTermsIsZero) {
    Solver s;
    CnfBuilder b(s);
    const PbSum sum(b, std::vector<PbTerm>{});
    EXPECT_EQ(sum.maxSum(), 0);
    EXPECT_EQ(sum.atMostLit(b, 0), b.trueLit());
}

// --- IntVar ------------------------------------------------------------------

TEST(IntVar, RangeAndComparisons) {
    Solver s;
    CnfBuilder b(s);
    const IntVar x = IntVar::create(b, 2, 7);
    b.assertLit(x.geqLit(b, 5));
    b.assertLit(x.leqLit(b, 5));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(x.valueIn(s), 5);
}

TEST(IntVar, BoundsConstantFold) {
    Solver s;
    CnfBuilder b(s);
    const IntVar x = IntVar::create(b, 0, 3);
    EXPECT_EQ(x.leqLit(b, 3), b.trueLit());
    EXPECT_EQ(x.leqLit(b, 10), b.trueLit());
    EXPECT_EQ(x.leqLit(b, -1), b.falseLit());
    EXPECT_EQ(x.eqLit(b, 9), b.falseLit());
}

TEST(IntVar, SingletonDomain) {
    Solver s;
    CnfBuilder b(s);
    const IntVar x = IntVar::create(b, 4, 4);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(x.valueIn(s), 4);
    EXPECT_EQ(x.eqLit(b, 4), b.trueLit());
}

TEST(IntVar, EqLitEnumeratesDomain) {
    // Each value of [1,4] should be reachable and reported consistently.
    for (int target = 1; target <= 4; ++target) {
        Solver s;
        CnfBuilder b(s);
        const IntVar x = IntVar::create(b, 1, 4);
        b.assertLit(x.eqLit(b, target));
        ASSERT_EQ(s.solve(), SolveResult::Sat);
        EXPECT_EQ(x.valueIn(s), target);
    }
}

TEST(IntVar, ScaledTermsSumMatchesValue) {
    Solver s;
    CnfBuilder b(s);
    const IntVar x = IntVar::create(b, 3, 9);
    b.assertLit(x.eqLit(b, 6));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    const auto terms = x.scaledTerms(4); // 4·(x−3) = 12
    EXPECT_EQ(evalPb(s, terms), 12);
}

TEST(IntVar, LinearConstraintOverTwoVars) {
    // x ∈ [0,5], y ∈ [0,5], 2x + 3y ≤ 11, maximize-ish by forcing x ≥ 4.
    Solver s;
    CnfBuilder b(s);
    const IntVar x = IntVar::create(b, 0, 5);
    const IntVar y = IntVar::create(b, 0, 5);
    std::vector<PbTerm> terms = x.scaledTerms(2);
    const auto yTerms = y.scaledTerms(3);
    terms.insert(terms.end(), yTerms.begin(), yTerms.end());
    addPbAtMost(b, terms, 11);
    b.assertLit(x.geqLit(b, 4));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_GE(x.valueIn(s), 4);
    EXPECT_LE(2 * x.valueIn(s) + 3 * y.valueIn(s), 11);
    // y can be at most 1 here; force y ≥ 2 → UNSAT.
    b.assertLit(y.geqLit(b, 2));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

} // namespace
} // namespace lar::encode
