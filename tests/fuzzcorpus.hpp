// Random knowledge-base / problem generators shared by the fuzz suites.
//
// Factored out of fuzz_test.cpp so other suites (e.g. the portfolio
// verdict-agreement tests) can draw from the same corpus: a seed uniquely
// determines the KB and problem, so a failure report of "seed S round R"
// reproduces identically in any suite using these generators.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kb/kb.hpp"
#include "kb/objectives.hpp"
#include "reason/problem.hpp"
#include "util/rng.hpp"

namespace lar::fuzz {

/// Pools the generator draws from.
inline constexpr const char* kFacts[] = {"fact_a", "fact_b", "fact_c"};
inline constexpr const char* kOptions[] = {"opt_a", "opt_b"};
inline constexpr const char* kProps[] = {"prop_a", "prop_b", "prop_c"};
inline constexpr const char* kCapabilities[] = {"cap_a", "cap_b"};
inline constexpr const char* kBoolAttrs[] = {
    kb::kAttrEcnSupported, kb::kAttrP4Supported, kb::kAttrNicTimestamps,
    kb::kAttrSmartNic, kb::kAttrSrIov};

inline kb::Requirement randomLeaf(util::Rng& rng) {
    using kb::CmpOp;
    using kb::HardwareClass;
    using kb::Requirement;
    switch (rng.below(6)) {
        case 0:
            return Requirement::hardwareHas(
                rng.chance(0.5) ? HardwareClass::Switch : HardwareClass::Nic,
                kBoolAttrs[rng.below(std::size(kBoolAttrs))]);
        case 1:
            return Requirement::hardwareCmp(
                HardwareClass::Server, kb::kAttrCores, CmpOp::Ge,
                static_cast<double>(rng.range(8, 64)));
        case 2: return Requirement::fact(kFacts[rng.below(std::size(kFacts))]);
        case 3:
            return Requirement::option(kOptions[rng.below(std::size(kOptions))]);
        case 4:
            return Requirement::workloadHas(kProps[rng.below(std::size(kProps))]);
        default:
            return Requirement::hardwareCmp(
                HardwareClass::Nic, kb::kAttrPortBandwidthGbps, CmpOp::Ge,
                static_cast<double>(rng.range(10, 100)));
    }
}

inline kb::Requirement randomRequirement(util::Rng& rng, int depth) {
    using kb::Requirement;
    if (depth == 0 || rng.chance(0.45)) return randomLeaf(rng);
    std::vector<Requirement> kids;
    const int n = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < n; ++i) kids.push_back(randomRequirement(rng, depth - 1));
    switch (rng.below(3)) {
        case 0: return Requirement::allOf(std::move(kids));
        case 1: return Requirement::anyOf(std::move(kids));
        default: return Requirement::negate(std::move(kids[0]));
    }
}

inline kb::KnowledgeBase randomKb(util::Rng& rng) {
    using kb::Category;
    using kb::HardwareClass;
    kb::KnowledgeBase out;
    // Systems: 2-4 per required category, a few optional ones.
    std::vector<std::string> names;
    int counter = 0;
    const auto addSystems = [&](Category category, int count) {
        for (int i = 0; i < count; ++i) {
            kb::System s;
            s.name = "sys" + std::to_string(counter++);
            s.category = category;
            s.source = "fuzz";
            if (rng.chance(0.6)) s.constraints = randomRequirement(rng, 2);
            if (rng.chance(0.4))
                s.provides.push_back(kFacts[rng.below(std::size(kFacts))]);
            if (rng.chance(0.5))
                s.solves.push_back(kCapabilities[rng.below(std::size(kCapabilities))]);
            if (rng.chance(0.3))
                s.demands.push_back({kb::kResCores,
                                     static_cast<double>(rng.range(1, 8)), 0, 0});
            if (rng.chance(0.2) && !names.empty())
                s.conflicts.push_back(names[rng.below(names.size())]);
            if (rng.chance(0.15)) s.researchGrade = true;
            names.push_back(s.name);
            out.addSystem(std::move(s));
        }
    };
    addSystems(Category::NetworkStack, static_cast<int>(rng.range(2, 4)));
    addSystems(Category::CongestionControl, static_cast<int>(rng.range(2, 4)));
    addSystems(Category::Monitoring, static_cast<int>(rng.range(1, 3)));
    addSystems(Category::LoadBalancer, static_cast<int>(rng.range(1, 3)));

    // Hardware: a handful per class with random attributes.
    const auto addHardware = [&](HardwareClass cls, int count) {
        for (int i = 0; i < count; ++i) {
            kb::HardwareSpec h;
            h.model = toString(cls) + std::to_string(i);
            h.vendor = "fuzz";
            h.cls = cls;
            h.unitCostUsd = static_cast<double>(rng.range(10, 500)) * 10.0;
            h.maxPowerW = static_cast<double>(rng.range(50, 900));
            for (const char* attr : kBoolAttrs)
                h.attrs[attr] = rng.chance(0.5);
            h.attrs[kb::kAttrPortBandwidthGbps] =
                static_cast<double>(rng.range(1, 10) * 10);
            if (cls == HardwareClass::Server)
                h.attrs[kb::kAttrCores] = static_cast<double>(rng.range(8, 96));
            out.addHardware(std::move(h));
        }
    };
    addHardware(HardwareClass::Switch, static_cast<int>(rng.range(2, 4)));
    addHardware(HardwareClass::Nic, static_cast<int>(rng.range(2, 4)));
    addHardware(HardwareClass::Server, static_cast<int>(rng.range(2, 4)));

    // Orderings: edges from lower to higher system index only, so the
    // unconditional graph stays acyclic per objective.
    const char* objectives[] = {kb::kObjLatency, kb::kObjThroughput,
                                kb::kObjMonitoring};
    for (int e = 0; e < 8; ++e) {
        const std::size_t a = rng.below(names.size());
        const std::size_t b = rng.below(names.size());
        if (a == b) continue;
        const std::size_t hi = std::max(a, b);
        const std::size_t lo = std::min(a, b);
        if (out.system(names[hi]).category != out.system(names[lo]).category)
            continue;
        kb::Ordering o;
        o.better = names[lo];
        o.worse = names[hi];
        o.objective = objectives[rng.below(std::size(objectives))];
        if (rng.chance(0.4)) o.condition = randomLeaf(rng);
        o.source = "fuzz";
        out.addOrdering(o);
    }
    return out;
}

/// The KB must outlive the returned problem (Problem::kb points into it).
inline reason::Problem randomProblem(util::Rng& rng,
                                     const kb::KnowledgeBase& kb) {
    using kb::Category;
    using kb::HardwareClass;
    reason::Problem p;
    p.kb = &kb;
    p.requiredCategories = {Category::NetworkStack, Category::CongestionControl};
    p.optionalCategories = {Category::Monitoring, Category::LoadBalancer};
    p.hardware[HardwareClass::Switch].count = static_cast<int>(rng.range(1, 4));
    p.hardware[HardwareClass::Nic].count = static_cast<int>(rng.range(4, 20));
    p.hardware[HardwareClass::Server].count = static_cast<int>(rng.range(4, 20));
    if (rng.chance(0.7)) {
        kb::Workload w;
        w.name = "fuzz_app";
        for (const char* prop : kProps)
            if (rng.chance(0.5)) w.properties.push_back(prop);
        w.peakCores = rng.range(10, 200);
        w.peakBandwidthGbps = static_cast<double>(rng.range(1, 40));
        w.numFlows = rng.range(100, 5000);
        p.workloads.push_back(std::move(w));
    }
    if (rng.chance(0.5)) p.objectivePriority.push_back(kb::kObjLatency);
    if (rng.chance(0.3)) p.objectivePriority.push_back(kb::kObjHardwareCost);
    if (rng.chance(0.4))
        p.requiredCapabilities.push_back(
            kCapabilities[rng.below(std::size(kCapabilities))]);
    if (rng.chance(0.3))
        p.pinnedFacts[kFacts[rng.below(std::size(kFacts))]] = rng.chance(0.5);
    if (rng.chance(0.3))
        p.pinnedOptions[kOptions[rng.below(std::size(kOptions))]] = rng.chance(0.5);
    if (rng.chance(0.25)) p.maxHardwareCostUsd = static_cast<double>(
        rng.range(2, 40)) * 10000.0;
    if (rng.chance(0.2)) p.forbidResearchGrade = true;
    return p;
}

} // namespace lar::fuzz
