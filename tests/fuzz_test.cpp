// Randomized cross-implementation properties.
//
// Random knowledge bases and problems are run through the full stack; the
// independently-implemented components act as each other's oracles:
//   * every design the engine emits must pass reason::validateDesign
//     (compiler and validator share no evaluation code);
//   * the Datalog deployment checker must agree on predicate-level
//     compliance;
//   * the CDCL and Z3 backends must agree on feasibility;
//   * infeasibility must come with a non-empty rule explanation;
//   * KB and problem JSON round trips must preserve reasoning outcomes.
#include <gtest/gtest.h>

#include "fuzzcorpus.hpp"
#include "kb/objectives.hpp"
#include "kb/serialize.hpp"
#include "reason/engine.hpp"
#include "reason/problem_io.hpp"
#include "reason/validate.hpp"
#include "rules/deployment.hpp"
#include "util/rng.hpp"

namespace lar {
namespace {

using fuzz::randomKb;
using fuzz::randomProblem;

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, EngineDesignsAlwaysValidate) {
    util::Rng rng(GetParam());
    for (int round = 0; round < 10; ++round) {
        const kb::KnowledgeBase kb = randomKb(rng);
        const reason::Problem p = randomProblem(rng, kb);
        reason::Engine engine(p);
        const auto design = engine.optimize();
        if (!design.has_value()) {
            // Infeasible problems must come with an explanation.
            reason::Engine fresh(p);
            const auto report = fresh.explainMinimalConflict();
            EXPECT_FALSE(report.feasible);
            EXPECT_FALSE(report.conflictingRules.empty())
                << "seed " << GetParam() << " round " << round;
            continue;
        }
        const auto violations = reason::validateDesign(p, *design);
        EXPECT_TRUE(violations.empty())
            << "seed " << GetParam() << " round " << round << ": "
            << violations.front();
        // Datalog checker agreement (it covers the predicate-level subset,
        // which a clean design trivially satisfies too).
        const rules::DatalogCheck check = rules::checkDesignWithRules(p, *design);
        EXPECT_TRUE(check.compliant)
            << "seed " << GetParam() << " round " << round << ": "
            << check.violations.front();
    }
}

TEST_P(FuzzTest, BackendsAgreeOnFeasibility) {
    if (!smt::haveZ3()) GTEST_SKIP() << "built without Z3";
    util::Rng rng(GetParam() + 1000);
    for (int round = 0; round < 6; ++round) {
        const kb::KnowledgeBase kb = randomKb(rng);
        const reason::Problem p = randomProblem(rng, kb);
        const bool cdcl =
            reason::Engine(p, reason::withBackend(smt::BackendKind::Cdcl))
                .checkFeasible()
                .feasible;
        const bool z3 =
            reason::Engine(p, reason::withBackend(smt::BackendKind::Z3))
                .checkFeasible()
                .feasible;
        EXPECT_EQ(cdcl, z3) << "seed " << GetParam() << " round " << round;
    }
}

TEST_P(FuzzTest, KbRoundTripPreservesOutcome) {
    util::Rng rng(GetParam() + 2000);
    for (int round = 0; round < 5; ++round) {
        const kb::KnowledgeBase kb = randomKb(rng);
        const kb::KnowledgeBase restored = kb::kbFromText(kb::kbToText(kb));
        ASSERT_EQ(restored.systems().size(), kb.systems().size());
        ASSERT_EQ(restored.encodingLength(), kb.encodingLength());

        reason::Problem p = randomProblem(rng, kb);
        reason::Problem pRestored = p;
        pRestored.kb = &restored;
        EXPECT_EQ(reason::Engine(p).checkFeasible().feasible,
                  reason::Engine(pRestored).checkFeasible().feasible)
            << "seed " << GetParam() << " round " << round;
    }
}

TEST_P(FuzzTest, ProblemRoundTripPreservesOutcome) {
    util::Rng rng(GetParam() + 3000);
    for (int round = 0; round < 5; ++round) {
        const kb::KnowledgeBase kb = randomKb(rng);
        const reason::Problem p = randomProblem(rng, kb);
        const reason::Problem restored =
            reason::problemFromText(reason::problemToText(p), kb);
        EXPECT_EQ(reason::Engine(p).checkFeasible().feasible,
                  reason::Engine(restored).checkFeasible().feasible)
            << "seed " << GetParam() << " round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });

} // namespace
} // namespace lar
