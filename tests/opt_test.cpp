#include <gtest/gtest.h>

#include "encode/cnf_builder.hpp"
#include "opt/maxsat.hpp"
#include "util/rng.hpp"

namespace lar::opt {
namespace {

using encode::CnfBuilder;
using sat::Lit;
using sat::Solver;
using sat::SolveResult;

TEST(MaxSat, AllSoftsSatisfiableCostZero) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    const std::vector<SoftConstraint> softs{{x, 1}, {y, 1}};
    const auto cost = minimizeAndLock(b, softs);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 0);
    EXPECT_TRUE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
}

TEST(MaxSat, HardUnsatReturnsNullopt) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    b.assertLit(x);
    b.assertLit(~x);
    const std::vector<SoftConstraint> softs{{b.newLit(), 1}};
    EXPECT_FALSE(minimizeAndLock(b, softs).has_value());
}

TEST(MaxSat, PicksCheapestViolation) {
    // x ⊕ y forced; soft prefers both true; violating the lighter one wins.
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    b.addClause(x, y);
    b.addClause(~x, ~y);
    const std::vector<SoftConstraint> softs{{x, 5}, {y, 2}};
    const auto cost = minimizeAndLock(b, softs);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 2);
    EXPECT_TRUE(s.modelValue(x));
    EXPECT_FALSE(s.modelValue(y));
}

TEST(MaxSat, WeightedTradeoff) {
    // Mutually exclusive a,b,c with weights 3,4,5: keep c (violate 3+4=7)…
    // no wait — softs want each true, only one can hold: optimum keeps the
    // heaviest and pays the other two.
    Solver s;
    CnfBuilder b(s);
    const Lit a = b.newLit();
    const Lit bb = b.newLit();
    const Lit c = b.newLit();
    b.addClause(~a, ~bb);
    b.addClause(~a, ~c);
    b.addClause(~bb, ~c);
    const std::vector<SoftConstraint> softs{{a, 3}, {bb, 4}, {c, 5}};
    const auto cost = minimizeAndLock(b, softs);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 7);
    EXPECT_TRUE(s.modelValue(c));
}

TEST(MaxSat, ZeroWeightSoftsIgnored) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    b.assertLit(~x);
    const std::vector<SoftConstraint> softs{{x, 0}};
    const auto cost = minimizeAndLock(b, softs);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 0);
}

TEST(MaxSat, RespectsAssumptions) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    b.addClause(~x, ~y); // not both
    const std::vector<SoftConstraint> softs{{x, 10}, {y, 1}};
    // Without assumptions the optimum keeps x. Assume ¬x: optimum pays 10.
    const std::vector<Lit> assume{~x};
    const auto cost = minimizeAndLock(b, softs, assume);
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 10);
    EXPECT_TRUE(s.modelValue(y));
}

TEST(MaxSat, RandomizedMatchesExhaustiveOptimum) {
    util::Rng rng(4242);
    for (int round = 0; round < 20; ++round) {
        const int n = 4 + static_cast<int>(rng.below(4));
        Solver s;
        CnfBuilder b(s);
        std::vector<Lit> lits;
        for (int i = 0; i < n; ++i) lits.push_back(b.newLit());
        // Random hard 2-clauses (kept satisfiable by construction: skip any
        // clause that would make the formula UNSAT — checked at the end).
        std::vector<std::vector<Lit>> hard;
        for (int c = 0; c < n; ++c) {
            const Lit l1 = lits[rng.below(static_cast<std::uint64_t>(n))];
            Lit l2 = lits[rng.below(static_cast<std::uint64_t>(n))];
            hard.push_back({rng.chance(0.5) ? l1 : ~l1, rng.chance(0.5) ? l2 : ~l2});
            b.addClause(hard.back());
        }
        std::vector<SoftConstraint> softs;
        std::vector<std::int64_t> weights;
        for (int i = 0; i < n; ++i) {
            const std::int64_t w = 1 + static_cast<std::int64_t>(rng.below(6));
            softs.push_back({lits[static_cast<std::size_t>(i)], w});
            weights.push_back(w);
        }
        // Exhaustive optimum.
        std::int64_t best = -1;
        for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
            std::vector<bool> a(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i)] = ((bits >> i) & 1) != 0;
            bool ok = true;
            for (const auto& clause : hard) {
                bool satc = false;
                for (const Lit l : clause)
                    if (a[static_cast<std::size_t>(l.var())] != l.sign()) satc = true;
                if (!satc) {
                    ok = false;
                    break;
                }
            }
            if (!ok) continue;
            std::int64_t cost = 0;
            for (int i = 0; i < n; ++i)
                if (!a[static_cast<std::size_t>(i)]) cost += weights[static_cast<std::size_t>(i)];
            if (best < 0 || cost < best) best = cost;
        }
        const auto cost = minimizeAndLock(b, softs);
        if (best < 0) {
            EXPECT_FALSE(cost.has_value()) << "round " << round;
        } else {
            ASSERT_TRUE(cost.has_value()) << "round " << round;
            EXPECT_EQ(*cost, best) << "round " << round;
        }
    }
}

TEST(Lex, TwoLevelPriority) {
    // Level 1 prefers x; level 2 prefers y and z. Hard: x excludes y and z.
    // Lexicographic: satisfy level 1 (keep x), pay the whole level 2.
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    const Lit z = b.newLit();
    b.addClause(~x, ~y);
    b.addClause(~x, ~z);
    const std::vector<Objective> objectives{
        {"level1", {{x, 1}}},
        {"level2", {{y, 1}, {z, 1}}},
    };
    const LexResult r = optimizeLex(b, objectives);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(r.costs.size(), 2u);
    EXPECT_EQ(r.costs[0], 0);
    EXPECT_EQ(r.costs[1], 2);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Lex, ReversedPriorityFlipsOutcome) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    const Lit y = b.newLit();
    const Lit z = b.newLit();
    b.addClause(~x, ~y);
    b.addClause(~x, ~z);
    const std::vector<Objective> objectives{
        {"level1", {{y, 1}, {z, 1}}},
        {"level2", {{x, 1}}},
    };
    const LexResult r = optimizeLex(b, objectives);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.costs[0], 0);
    EXPECT_EQ(r.costs[1], 1); // x must be violated now
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
    EXPECT_TRUE(s.modelValue(z));
}

TEST(Lex, EmptyObjectivesJustChecksFeasibility) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    b.assertLit(x);
    const LexResult r = optimizeLex(b, std::vector<Objective>{});
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.costs.empty());
}

TEST(Lex, InfeasibleHardConstraints) {
    Solver s;
    CnfBuilder b(s);
    const Lit x = b.newLit();
    b.assertLit(x);
    b.assertLit(~x);
    const std::vector<Objective> objectives{{"o", {{b.newLit(), 1}}}};
    const LexResult r = optimizeLex(b, objectives);
    EXPECT_FALSE(r.feasible);
}

TEST(Lex, ThreeLevelsCaseStudyShape) {
    // Mimics Listing 3: Optimize(latency > hardware_cost > monitoring).
    // latency wants fast=true; cost wants cheap=true; monitoring wants
    // mon=true. Hard: fast excludes cheap; cheap excludes mon is absent.
    Solver s;
    CnfBuilder b(s);
    const Lit fast = b.newLit();
    const Lit cheap = b.newLit();
    const Lit mon = b.newLit();
    b.addClause(~fast, ~cheap);
    const std::vector<Objective> objectives{
        {"latency", {{fast, 1}}},
        {"hardware_cost", {{cheap, 1}}},
        {"monitoring", {{mon, 1}}},
    };
    const LexResult r = optimizeLex(b, objectives);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.costs, (std::vector<std::int64_t>{0, 1, 0}));
    EXPECT_TRUE(s.modelValue(fast));
    EXPECT_FALSE(s.modelValue(cheap));
    EXPECT_TRUE(s.modelValue(mon));
}

} // namespace
} // namespace lar::opt
