// Quickstart: encode a little knowledge, ask a design question.
//
// Mirrors the paper's Listing 2: we encode the SIMON and PingMesh
// monitoring systems, a couple of hardware models, one ordering rule of
// thumb, and ask the engine to pick a monitoring deployment for a
// latency-sensitive workload.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "kb/kb.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"

using namespace lar;

int main() {
    kb::KnowledgeBase knowledge;

    // --- Listing 2: SIMON = System(solves=[capture_delays,
    //     detect_queue_length], constraints=And(NICs.have("NIC_TIMESTAMPS"),
    //     computes.cores_needed(CPU_FACTOR*num_flows))) -------------------
    {
        kb::System simon;
        simon.name = "SIMON";
        simon.category = kb::Category::Monitoring;
        simon.solves = {"capture_delays", "detect_queue_length"};
        simon.constraints = kb::Requirement::hardwareHas(
            kb::HardwareClass::Nic, kb::kAttrNicTimestamps);
        simon.demands = {{kb::kResCores, /*fixed=*/2.0,
                          /*perKiloFlows=*/0.04, /*perGbps=*/0.0}};
        simon.source = "Geng et al., NSDI '19";
        knowledge.addSystem(std::move(simon));
    }
    {
        kb::System pingmesh;
        pingmesh.name = "PingMesh";
        pingmesh.category = kb::Category::Monitoring;
        pingmesh.solves = {"capture_delays"};
        pingmesh.demands = {{kb::kResCores, 1.0, 0.0, 0.0}};
        pingmesh.source = "Guo et al., SIGCOMM '15";
        knowledge.addSystem(std::move(pingmesh));
    }
    // Listing 2 lines 7–8: the partial ordering.
    knowledge.addOrdering({"SIMON", "PingMesh", kb::kObjMonitoring,
                           kb::Requirement::alwaysTrue(),
                           "Ordering(SIMON, monitoring, better_than=PINGMESH)"});
    knowledge.addOrdering({"PingMesh", "SIMON", kb::kObjDeploymentEase,
                           kb::Requirement::alwaysTrue(),
                           "Ordering(PINGMESH, deployment_ease, better_than=SIMON)"});

    // A required stack + CC so the common-sense rules have something to pick.
    {
        kb::System linux;
        linux.name = "Linux";
        linux.category = kb::Category::NetworkStack;
        linux.source = "kernel.org";
        knowledge.addSystem(std::move(linux));
        kb::System cubic;
        cubic.name = "Cubic";
        cubic.category = kb::Category::CongestionControl;
        cubic.source = "Linux default";
        knowledge.addSystem(std::move(cubic));
    }

    // Two NIC models: only one has hardware timestamps.
    {
        kb::HardwareSpec plain;
        plain.model = "BudgetNIC 25G";
        plain.vendor = "Acme";
        plain.cls = kb::HardwareClass::Nic;
        plain.attrs[kb::kAttrPortBandwidthGbps] = std::int64_t{25};
        plain.attrs[kb::kAttrNicTimestamps] = false;
        plain.unitCostUsd = 200;
        plain.maxPowerW = 15;
        knowledge.addHardware(std::move(plain));

        kb::HardwareSpec fancy = {};
        fancy.model = "TimestampNIC 25G";
        fancy.vendor = "Acme";
        fancy.cls = kb::HardwareClass::Nic;
        fancy.attrs[kb::kAttrPortBandwidthGbps] = std::int64_t{25};
        fancy.attrs[kb::kAttrNicTimestamps] = true;
        fancy.unitCostUsd = 320;
        fancy.maxPowerW = 16;
        knowledge.addHardware(std::move(fancy));

        kb::HardwareSpec server;
        server.model = "1U 32c";
        server.vendor = "Acme";
        server.cls = kb::HardwareClass::Server;
        server.attrs[kb::kAttrCores] = std::int64_t{32};
        server.unitCostUsd = 5000;
        server.maxPowerW = 250;
        knowledge.addHardware(std::move(server));

        kb::HardwareSpec sw;
        sw.model = "ToR 32x25G";
        sw.vendor = "Acme";
        sw.cls = kb::HardwareClass::Switch;
        sw.attrs[kb::kAttrPortBandwidthGbps] = std::int64_t{25};
        sw.attrs[kb::kAttrEcnSupported] = true;
        sw.attrs[kb::kAttrP4Supported] = false;
        sw.unitCostUsd = 9000;
        sw.maxPowerW = 400;
        knowledge.addHardware(std::move(sw));
    }

    // Sanity-check the encodings before reasoning.
    for (const kb::ValidationIssue& issue : knowledge.validate())
        std::printf("[validate] %s\n", issue.message.c_str());

    // --- The architect's question ------------------------------------------
    reason::Problem problem = reason::makeDefaultProblem(knowledge);
    problem.hardware[kb::HardwareClass::Server].count = 20;
    problem.hardware[kb::HardwareClass::Nic].count = 20;
    kb::Workload app;
    app.name = "latency_sensitive_app";
    app.properties = {kb::kPropLatencySensitive, kb::kPropDcFlows};
    app.peakCores = 500;
    app.peakBandwidthGbps = 12;
    app.numFlows = 20000;
    problem.workloads = {app};
    problem.requiredCapabilities = {"detect_queue_length"};
    problem.objectivePriority = {kb::kObjMonitoring, kb::kObjHardwareCost};

    reason::Engine engine(problem);
    if (const auto design = engine.optimize()) {
        std::printf("\nThe engine proposes:\n%s", design->toString().c_str());
        std::printf("\nNote the ripple: asking for queue-length detection "
                    "forces SIMON,\nwhich forces the NIC model with hardware "
                    "timestamps.\n");
    } else {
        std::printf("no compliant design exists\n");
        for (const std::string& rule :
             reason::Engine(problem).explainMinimalConflict().conflictingRules)
            std::printf("  conflict: %s\n", rule.c_str());
    }
    return 0;
}
