// The §2.2 Microsoft RDMA story, both at the rule level and in the fabric.
//
// "Microsoft reasoned that no cyclic buffer dependency should exist …
//  because of their datacenter's routing configuration. However, they
//  missed that Ethernet packet flooding was already in place, which broke
//  the routing configuration's invariant, causing deadlocks."
//
// Part 1 uses the reasoning engine: deploying RoCEv2 (which enables PFC)
// is fine, until the environment contains flooding — then the expert rule
// "PFC cannot be used with any flooding algorithm" fires and the engine
// explains the conflict.
// Part 2 drops to the topology substrate and shows the underlying physics:
// the buffer-dependency cycle that appears once flooding turns exist.
//
// Build & run:  ./build/examples/pfc_deadlock
#include <cstdio>

#include "catalog/catalog.hpp"
#include "reason/engine.hpp"
#include "topo/pfc.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase knowledge = catalog::buildKnowledgeBase();

    std::printf("=== part 1: the lightweight rule ===\n");
    reason::Problem rdma = reason::makeDefaultProblem(knowledge);
    rdma.hardware[kb::HardwareClass::Server].count = 40;
    rdma.hardware[kb::HardwareClass::Nic].count = 40;
    rdma.pinnedSystems["RoCEv2"] = true;

    const auto clean = reason::Engine(rdma).checkFeasible();
    std::printf("RoCEv2 on a clean fabric: %s\n",
                clean.feasible ? "deployable" : "NOT deployable");

    reason::Problem flooded = rdma;
    flooded.pinnedFacts[catalog::kFactFlooding] = true; // ARP flooding in place
    reason::Engine floodedEngine(flooded);
    const auto broken = floodedEngine.checkFeasible();
    std::printf("RoCEv2 with Ethernet flooding already in place: %s\n",
                broken.feasible ? "deployable (!?)" : "correctly rejected");
    if (!broken.feasible) {
        std::printf("the engine explains:\n");
        for (const std::string& rule :
             reason::Engine(flooded).explainMinimalConflict().conflictingRules)
            std::printf("  - %s\n", rule.c_str());
    }

    // The same trap via a chosen system rather than a pinned fact: a Linux
    // learning bridge floods unknown unicast.
    reason::Problem viaBridge = rdma;
    viaBridge.pinnedSystems["Linux-Bridge"] = true;
    const auto bridge = reason::Engine(viaBridge).checkFeasible();
    std::printf("RoCEv2 + Linux-Bridge (a flooding virtual switch): %s\n",
                bridge.feasible ? "deployable (!?)" : "correctly rejected");

    std::printf("\n=== part 2: why the rule is right (buffer dependencies) ===\n");
    for (const bool flooding : {false, true}) {
        const topo::PfcAnalysis analysis = topo::analyzePfcDeadlock(
            /*k=*/8, /*routePairs=*/200, flooding, /*seed=*/11);
        std::printf("fat-tree k=8, up-down routing%s: %zu buffers, %zu "
                    "dependencies -> %s\n",
                    flooding ? " + ARP flooding" : "", analysis.buffers,
                    analysis.dependencies,
                    analysis.deadlockPossible ? "DEADLOCK POSSIBLE"
                                              : "deadlock-free");
    }
    {
        const topo::FatTree tree(4);
        util::Rng rng(11);
        auto routes = topo::sampleUpDownRoutes(tree, 64, rng);
        auto turns = topo::routeTurns(tree, routes);
        const auto flood = topo::floodingTurns(tree);
        turns.insert(turns.end(), flood.begin(), flood.end());
        const topo::BufferDependencyGraph graph(tree, turns);
        if (const auto cycle = graph.findCycle())
            std::printf("example cycle (k=4): %s\n",
                        graph.describeCycle(tree, *cycle).c_str());
    }
    std::printf("\nThe one-line expert rule catches in microseconds what the "
                "production fabric\nlearned the hard way.\n");
    return 0;
}
