// Explainability and what-if reasoning (§5.1 queries, §6 future work).
//
// Demonstrates the engine features beyond plain synthesis:
//   * minimal conflict explanations when requirements clash,
//   * retention analysis ("keep Sonata unless there are huge benefits"),
//   * value-of-information ("is measuring Shenango vs Demikernel worth
//     it? only if the answer changes the design" — §3.1),
//   * knowledge-gap listing from the partial order.
//
// Build & run:  ./build/examples/whatif_explain
#include <cstdio>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "order/poset.hpp"
#include "reason/engine.hpp"

using namespace lar;

namespace {

reason::Problem caseStudy(const kb::KnowledgeBase& kb) {
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                           kb::kObjMonitoring};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    return p;
}

} // namespace

int main() {
    const kb::KnowledgeBase knowledge = catalog::buildKnowledgeBase();

    // 1. An over-constrained problem, explained minimally.
    std::printf("=== conflicting requirements, explained ===\n");
    reason::Problem conflicted = caseStudy(knowledge);
    conflicted.maxHardwareCostUsd = 250000; // too tight for 2800 cores
    reason::Engine engine(conflicted);
    const auto report = engine.explainMinimalConflict();
    if (!report.feasible) {
        std::printf("no design fits; the minimal clash (%zu rules):\n",
                    report.conflictingRules.size());
        for (std::size_t i = 0; i < report.conflictingRules.size() && i < 8; ++i)
            std::printf("  - %s\n", report.conflictingRules[i].c_str());
        if (report.conflictingRules.size() > 8)
            std::printf("  … and %zu more\n", report.conflictingRules.size() - 8);
    }

    // 2. Retention: "I already run Sonata."
    std::printf("\n=== keep Sonata unless there are huge benefits ===\n");
    const reason::RetentionReport retention =
        reason::analyzeRetention(caseStudy(knowledge), "Sonata");
    if (retention.keeping && retention.unpinned) {
        std::printf("extra per-objective cost of keeping Sonata:");
        for (const auto d : retention.extraCostPerObjective)
            std::printf(" %+lld", static_cast<long long>(d));
        std::printf("\nextra hardware cost: $%+.0f\n",
                    retention.extraHardwareCostUsd);
        std::printf("verdict at a 'huge benefit' threshold of 100: %s\n",
                    retention.worthSwitching(100)
                        ? "switch away from Sonata"
                        : "keep Sonata (no huge benefit in switching)");
    }

    // 3. Value of information (§3.1): would a measurement change anything?
    std::printf("\n=== is measuring Shenango vs Demikernel isolation worth it? ===\n");
    reason::Problem isolationFocused = reason::makeDefaultProblem(knowledge);
    isolationFocused.objectivePriority = {kb::kObjIsolation};
    const reason::InformationValue info = reason::valueOfInformation(
        isolationFocused, kb::kObjIsolation, "Shenango", "Demikernel");
    std::printf("design if Shenango wins vs if Demikernel wins: %s\n",
                info.changesDesign
                    ? "DIFFERENT -> the measurement is worth running"
                    : "identical -> skip the measurement");

    // 4. Knowledge gaps in the stack ordering (candidates for measurement).
    std::printf("\n=== knowledge gaps among network stacks (isolation) ===\n");
    const order::PreferenceGraph isolation(knowledge, kb::kObjIsolation);
    kb::HardwareSpec nic;
    nic.cls = kb::HardwareClass::Nic;
    nic.attrs[kb::kAttrPortBandwidthGbps] = 100.0;
    order::Context fast;
    fast.hardware[kb::HardwareClass::Nic] = &nic;
    order::Context slow = fast; // same shape; conditions differ via attrs only
    const auto gaps = order::knowledgeGaps(
        isolation, {"Linux", "Snap", "NetChannel", "Shenango", "Demikernel"},
        {fast, slow});
    for (const auto& [a, b] : gaps)
        std::printf("  no comparison encoded: %s vs %s\n", a.c_str(), b.c_str());
    return 0;
}
