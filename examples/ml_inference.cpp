// The §2.3 / Listing-3 case study as a worked example.
//
// An architect deploys an ML inference application (racks 0–3, 2800 peak
// cores, 30 Gbps, short high-priority DC flows) over the full 56-system /
// 208-hardware knowledge base, states goals in Listing-3 form, and lets the
// engine design the network — then pokes at the design with what-if twists.
//
// Build & run:  ./build/examples/ml_inference
#include <cstdio>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase knowledge = catalog::buildKnowledgeBase();

    // Listing 3, in the C++ DSL:
    //   inference_app = Workload(properties=[dc_flows, short_flows,
    //       high_priority], deployed_at=racks[0:3], peak_cores=2800,
    //       peak_bandwidth=30)
    //   inference_app.set_performance_bound(objective=load_balancing,
    //       better_than=PacketSpray)
    //   Optimize(latency > Hardware cost > monitoring)
    kb::Workload inference = catalog::makeInferenceWorkload();

    reason::Problem problem = reason::makeDefaultProblem(knowledge);
    problem.hardware[kb::HardwareClass::Server].count = 60;
    problem.hardware[kb::HardwareClass::Switch].count = 8;
    problem.hardware[kb::HardwareClass::Nic].count = 60;
    problem.workloads = {inference};
    problem.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                                 kb::kObjMonitoring};
    problem.requiredCapabilities = {catalog::kCapDetectQueueLength};

    std::printf("=== optimizing the inference deployment ===\n");
    reason::Engine engine(problem);
    const auto design = engine.optimize();
    if (!design) {
        std::printf("infeasible!\n");
        return 1;
    }
    std::printf("%s", design->toString().c_str());
    const auto violations = reason::validateDesign(problem, *design);
    std::printf("independent validation: %s\n",
                violations.empty() ? "clean" : violations.front().c_str());

    // What-if 1: the org has a sharp deadline — no research prototypes.
    std::printf("\n=== what-if: sharp deployment deadline ===\n");
    reason::Problem deadline = problem;
    deadline.forbidResearchGrade = true;
    if (const auto safer = reason::Engine(deadline).optimize()) {
        for (const std::string& change : design->diff(*safer))
            std::printf("  * %s\n", change.c_str());
        if (design->diff(*safer).empty()) std::printf("  (no change)\n");
    }

    // What-if 2: the security team insists on a firewall at every server.
    std::printf("\n=== what-if: mandatory firewalling ===\n");
    reason::Problem secured = problem;
    secured.requiredCapabilities.push_back(catalog::kCapFirewalling);
    if (const auto withFw = reason::Engine(secured).optimize()) {
        for (const std::string& change : design->diff(*withFw))
            std::printf("  * %s\n", change.c_str());
        std::printf("firewall chosen: %s\n",
                    withFw->chosen.count(kb::Category::Firewall)
                        ? withFw->chosen.at(kb::Category::Firewall).c_str()
                        : "(none)");
    }

    // Equivalence classes: several designs may be equally optimal (§6).
    std::printf("\n=== optimal equivalence class (up to 4 members) ===\n");
    reason::Engine enumerator(problem);
    const auto designs = enumerator.enumerateDesigns(4, /*optimizeFirst=*/true);
    std::printf("%zu equally-optimal design(s) found\n", designs.size());
    for (std::size_t i = 1; i < designs.size(); ++i) {
        std::printf("variant %zu differs from the first by:\n", i);
        for (const std::string& change : designs[0].diff(designs[i]))
            std::printf("  * %s\n", change.c_str());
    }
    return 0;
}
