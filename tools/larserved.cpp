// larserved — HTTP front end to the reasoning service.
//
// Serves the same JSON wire schema as `larctl batch` (reason/service_io.hpp)
// over a from-scratch epoll HTTP/1.1 server (net/server.hpp), so a fleet of
// CI jobs or an interactive UI can share one warm compilation cache instead
// of each paying cold-start per query. The routes themselves live in
// serve/routes.hpp (shared with tests and benches); this binary is flag
// parsing and signal handling around them.
//
//   POST   /v1/query             one query object in, one result object out.
//                                Verdict mapping: Shed → 429 (+ Retry-After),
//                                Error → 500, everything else → 200 with the
//                                verdict in the body.
//   POST   /v1/batch             a batch document in (same schema as larctl
//                                batch files, except the "service" block is
//                                rejected), full batch report out.
//   POST   /v1/session           open a stateful what-if session over a
//                                problem; later asks reuse its warm solver.
//   POST   /v1/session/{id}/ask  answer one variation on the session.
//   POST   /v1/session/{id}/renew  extend the session lease.
//   DELETE /v1/session/{id}      close the session.
//   GET    /metrics              Prometheus text exposition.
//   GET    /healthz              200 while the process is up (liveness).
//   GET    /readyz               200 while accepting work, 503 once draining.
//   GET    /v1/debug/traces      flight-recorder trace list (filterable).
//   GET    /v1/debug/traces/{id} one full trace; ?format=chrome for Perfetto.
//   GET    /v1/debug/inflight    queries executing right now.
//   GET    /v1/debug/sessions    live what-if sessions.
//   GET    /statusz              the same, as a human text page.
//   GET    /version              build identity (git, schema versions).
//
// All /v1/* JSON bodies follow the versioned "api" envelope (serve/api.hpp):
// requests may pin {"api": 1}; an unknown major is rejected with 400.
//
// SIGTERM/SIGINT start a graceful drain: stop accepting, cancel and evict
// live sessions (exporting their learnt state to the warm-start cache), let
// in-flight queries finish within the grace period, cancel stragglers (they
// report Cancelled, not Error), then exit 0.
//
// Flags (strict numeric parsing; a bad value is a usage error, not a 0):
//   --kb <path|builtin>     knowledge base to serve (default builtin)
//   --bind <addr>           listen address (default 127.0.0.1)
//   --port <n>              listen port; 0 = ephemeral (default 8080)
//   --port-file <path>      write the bound port (for scripts with --port 0)
//   --io-threads <n>        event-loop threads (default 2)
//   --workers <n>           solver pool width; 0 = hardware (default 0)
//   --max-inflight <n>      HTTP requests inside handlers before 503
//   --max-queue <n>         ServiceOptions::maxQueueDepth (0 = unbounded)
//   --max-sessions <n>      live what-if sessions before 429 (default 64)
//   --lease-ttl-ms <n>      session lease; asks/renews extend it (default 60s)
//   --warm-start-cap <n>    solver snapshots kept for warm starts (default 32,
//                           0 disables warm starting entirely)
//   --flight-recorder-cap <n>  completed traces the flight recorder retains
//                           (default 256, 0 disables retention; the in-flight
//                           registry keeps working either way)
//   --drain-grace-ms <n>    per-phase drain grace (default 5000)
//   --request-read-timeout-ms <n>   kill a request still arriving after n ms
//                           with 408 (slowloris defense; 0 disables,
//                           default 30s)
//   --response-write-timeout-ms <n> drop a peer still draining a response
//                           after n ms (stalled-reader defense; 0 disables,
//                           default 30s)
//   --max-conn-lifetime-ms <n>  close any connection older than n ms
//                           regardless of activity (0 = off, default)
//   --log-info              lower the log threshold to Info (access logs on)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "catalog/catalog.hpp"
#include "kb/serialize.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "reason/session.hpp"
#include "serve/routes.hpp"
#include "util/error.hpp"
#include "util/file.hpp"
#include "util/logging.hpp"

using namespace lar;

namespace {

int g_signalPipe[2] = {-1, -1};

void onSignal(int) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signalPipe[1], &byte, 1);
}

int usage() {
    std::fprintf(
        stderr,
        "usage: larserved [--kb <path|builtin>] [--bind <addr>] [--port <n>]\n"
        "                 [--port-file <path>] [--io-threads <n>] "
        "[--workers <n>]\n"
        "                 [--max-inflight <n>] [--max-queue <n>]\n"
        "                 [--max-sessions <n>] [--lease-ttl-ms <n>]\n"
        "                 [--warm-start-cap <n>] [--flight-recorder-cap <n>]\n"
        "                 [--drain-grace-ms <n>] [--log-info]\n"
        "                 [--request-read-timeout-ms <n>]\n"
        "                 [--response-write-timeout-ms <n>]\n"
        "                 [--max-conn-lifetime-ms <n>]\n");
    return 2;
}

bool parseLongArg(const char* tok, long& out) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(tok, &end, 10);
    if (end == tok || *end != '\0' || errno == ERANGE) return false;
    out = value;
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::string kbPath = "builtin";
    std::string bind = "127.0.0.1";
    std::string portFile;
    long port = 8080;
    long ioThreads = 2;
    long workers = 0;
    long maxInflight = 0;
    long maxQueue = 0;
    long maxSessions = 64;
    long leaseTtlMs = 60'000;
    long warmStartCap = 32;
    long flightRecorderCap = 256;
    long drainGraceMs = 5000;
    long requestReadTimeoutMs = 30'000;
    long responseWriteTimeoutMs = 30'000;
    long maxConnLifetimeMs = 0;
    bool logInfo = false;

    for (int i = 1; i < argc; ++i) {
        const auto needValue = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "larserved: %s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        const auto numericFlag = [&](const char* flag, long& out, long min,
                                     long max) -> bool {
            const char* value = needValue(flag);
            if (value == nullptr) return false;
            if (!parseLongArg(value, out) || out < min || out > max) {
                std::fprintf(stderr,
                             "larserved: %s must be a number in %ld..%ld, got "
                             "'%s'\n",
                             flag, min, max, value);
                return false;
            }
            return true;
        };
        if (std::strcmp(argv[i], "--kb") == 0) {
            const char* value = needValue("--kb");
            if (value == nullptr) return usage();
            kbPath = value;
        } else if (std::strcmp(argv[i], "--bind") == 0) {
            const char* value = needValue("--bind");
            if (value == nullptr) return usage();
            bind = value;
        } else if (std::strcmp(argv[i], "--port-file") == 0) {
            const char* value = needValue("--port-file");
            if (value == nullptr) return usage();
            portFile = value;
        } else if (std::strcmp(argv[i], "--port") == 0) {
            if (!numericFlag("--port", port, 0, 65535)) return usage();
        } else if (std::strcmp(argv[i], "--io-threads") == 0) {
            if (!numericFlag("--io-threads", ioThreads, 1, 64)) return usage();
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            if (!numericFlag("--workers", workers, 0, 256)) return usage();
        } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
            if (!numericFlag("--max-inflight", maxInflight, 0, 1 << 20))
                return usage();
        } else if (std::strcmp(argv[i], "--max-queue") == 0) {
            if (!numericFlag("--max-queue", maxQueue, 0, 1 << 20))
                return usage();
        } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
            if (!numericFlag("--max-sessions", maxSessions, 0, 1 << 20))
                return usage();
        } else if (std::strcmp(argv[i], "--lease-ttl-ms") == 0) {
            if (!numericFlag("--lease-ttl-ms", leaseTtlMs, 1, 86'400'000))
                return usage();
        } else if (std::strcmp(argv[i], "--warm-start-cap") == 0) {
            if (!numericFlag("--warm-start-cap", warmStartCap, 0, 1 << 20))
                return usage();
        } else if (std::strcmp(argv[i], "--flight-recorder-cap") == 0) {
            if (!numericFlag("--flight-recorder-cap", flightRecorderCap, 0,
                             1 << 20))
                return usage();
        } else if (std::strcmp(argv[i], "--drain-grace-ms") == 0) {
            if (!numericFlag("--drain-grace-ms", drainGraceMs, 0, 3'600'000))
                return usage();
        } else if (std::strcmp(argv[i], "--request-read-timeout-ms") == 0) {
            if (!numericFlag("--request-read-timeout-ms", requestReadTimeoutMs,
                             0, 3'600'000))
                return usage();
        } else if (std::strcmp(argv[i], "--response-write-timeout-ms") == 0) {
            if (!numericFlag("--response-write-timeout-ms",
                             responseWriteTimeoutMs, 0, 3'600'000))
                return usage();
        } else if (std::strcmp(argv[i], "--max-conn-lifetime-ms") == 0) {
            if (!numericFlag("--max-conn-lifetime-ms", maxConnLifetimeMs, 0,
                             86'400'000))
                return usage();
        } else if (std::strcmp(argv[i], "--log-info") == 0) {
            logInfo = true;
        } else {
            std::fprintf(stderr, "larserved: unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (logInfo) util::setLogLevel(util::LogLevel::Info);

    try {
        const kb::KnowledgeBase kb =
            kbPath == "builtin" ? catalog::buildKnowledgeBase()
                                : kb::kbFromText(util::readFile(kbPath));

        reason::ServiceOptions serviceOptions;
        serviceOptions.workers = static_cast<unsigned>(workers);
        serviceOptions.maxQueueDepth = static_cast<std::size_t>(maxQueue);
        serviceOptions.warmStartCapacity =
            static_cast<std::size_t>(warmStartCap);
        serviceOptions.flightRecorderCapacity =
            static_cast<std::size_t>(flightRecorderCap);
        reason::Service service(serviceOptions);

        reason::SessionOptions sessionOptions;
        sessionOptions.leaseTtl = std::chrono::milliseconds(leaseTtlMs);
        sessionOptions.maxSessions = static_cast<std::size_t>(maxSessions);
        reason::SessionManager sessions(service, sessionOptions);

        net::ServerOptions serverOptions;
        serverOptions.bindAddress = bind;
        serverOptions.port = static_cast<std::uint16_t>(port);
        serverOptions.ioThreads = static_cast<unsigned>(ioThreads);
        serverOptions.maxInflight = static_cast<std::size_t>(maxInflight);
        serverOptions.requestReadTimeoutMs =
            static_cast<int>(requestReadTimeoutMs);
        serverOptions.responseWriteTimeoutMs =
            static_cast<int>(responseWriteTimeoutMs);
        serverOptions.maxConnLifetimeMs = static_cast<int>(maxConnLifetimeMs);
        serverOptions.accessLog = logInfo;
        net::HttpServer server(serverOptions);

        serve::registerServiceRoutes(server, service, kb);
        serve::registerSessionRoutes(server, sessions, kb);
        serve::registerDebugRoutes(server, service, &sessions);

        // Drain order: evict sessions first (their in-flight asks observe
        // the cancel flag and the learnt solver state is exported), then
        // shed the stateless query queue.
        server.setDrainHooks(
            [&service, &sessions] {
                sessions.drain();
                service.beginDrain();
            },
            [&service] { service.cancelActive(); });

        if (::pipe2(g_signalPipe, O_CLOEXEC) != 0) {
            std::fprintf(stderr, "larserved: pipe2: %s\n",
                         std::strerror(errno));
            return 1;
        }
        struct sigaction sa{};
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        server.start();
        std::printf("larserved listening on %s:%u\n", bind.c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        if (!portFile.empty()) {
            util::writeFile(portFile, std::to_string(server.port()) + "\n");
        }

        char byte = 0;
        while (::read(g_signalPipe[0], &byte, 1) < 0 && errno == EINTR) {
        }
        std::fprintf(stderr, "larserved: draining (grace %ld ms)\n",
                     drainGraceMs);
        server.drainAndStop(static_cast<int>(drainGraceMs));
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "larserved: %s\n", e.what());
        return 1;
    }
}
