// larctl — command-line front end to the reasoning library.
//
// The workflow the paper envisions: a shared knowledge base (JSON, possibly
// crowd-sourced), per-team problem specs (JSON), and quick answers at the
// terminal.
//
//   larctl export-kb <kb.json>             write the built-in seed KB
//   larctl validate <kb.json>              check an encoding file
//   larctl feasible <kb.json> <prob.json>  is any compliant design possible?
//                                          (prints a minimal conflict if not)
//   larctl optimize <kb.json> <prob.json>  lexicographically optimal design
//   larctl enumerate <kb.json> <prob.json> [N]   distinct optimal designs
//   larctl batch <kb.json> <batch.json> [threads] [--trace-out <dir>]
//                [--deadline-ms <n>] [--max-queue <n>] [--portfolio <n>]
//                                          run a query batch through the
//                                          caching service; JSON out, plus a
//                                          Chrome trace_event file (load in
//                                          chrome://tracing or Perfetto) when
//                                          --trace-out is given.
//                                          --deadline-ms sets an end-to-end
//                                          deadline on every query (queue wait
//                                          and compile both count against it);
//                                          --max-queue bounds the batch queue
//                                          (overload is shed, never hung);
//                                          --portfolio races N diverse CDCL
//                                          solvers per query (budgeted
//                                          against the thread pool).
//                                          Exit codes: 0 all answered, 1 some
//                                          infeasible or errored, 2 malformed
//                                          batch file (one-line JSON error on
//                                          stdout).
//   larctl metrics [--json] [<kb.json> <batch.json> [threads]]
//                                          dump the process metrics registry
//                                          (Prometheus text exposition, or
//                                          JSON with --json), optionally after
//                                          running a batch to populate it
//   larctl suggest  <kb.json> <prob.json>  disambiguation suggestions (§6)
//   larctl ordering <kb.json> <objective>  Graphviz of the partial order
//   larctl sheet    <kb.json> <model>      render a vendor spec sheet
//   larctl diff     <old.json> <new.json>  review a KB contribution (§3.3)
//
// Pass the literal name "builtin" instead of <kb.json> to use the compiled-in
// catalog (56 systems / 208 hardware specs).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "extract/specgen.hpp"
#include "json/parse.hpp"
#include "json/write.hpp"
#include "kb/diff.hpp"
#include "kb/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "order/poset.hpp"
#include "reason/engine.hpp"
#include "reason/problem_io.hpp"
#include "reason/service.hpp"
#include "reason/validate.hpp"
#include "util/error.hpp"
#include "util/file.hpp"

using namespace lar;

namespace {

// atoi/atol turn non-numeric input into 0 silently, which for the limit
// flags below means "unlimited" — the opposite of what the user asked for.
// Require the whole token to parse, like the DIMACS reader does.
bool parseLongArg(const char* tok, long& out) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(tok, &end, 10);
    if (end == tok || *end != '\0' || errno == ERANGE) return false;
    out = value;
    return true;
}

int usage() {
    std::fprintf(stderr,
                 "usage: larctl <command> [args]\n"
                 "  export-kb <out.json>\n"
                 "  validate  <kb.json>\n"
                 "  feasible  <kb.json> <problem.json>\n"
                 "  optimize  <kb.json> <problem.json>\n"
                 "  enumerate <kb.json> <problem.json> [maxDesigns]\n"
                 "  batch     <kb.json> <batch.json> [threads] [--trace-out <dir>]\n"
                 "            [--deadline-ms <n>] [--max-queue <n>] [--portfolio <n>]\n"
                 "  metrics   [--json] [<kb.json> <batch.json> [threads]]\n"
                 "  suggest   <kb.json> <problem.json>\n"
                 "  ordering  <kb.json> <objective>\n"
                 "  sheet     <kb.json> <model name>\n"
                 "  diff      <old.json> <new.json>\n"
                 "use 'builtin' as <kb.json> for the compiled-in catalog\n");
    return 2;
}

kb::KnowledgeBase loadKb(const std::string& path) {
    if (path == "builtin") return catalog::buildKnowledgeBase();
    return kb::kbFromText(util::readFile(path));
}

int cmdExportKb(const std::string& out) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    util::writeFile(out, kb::kbToText(kb));
    std::printf("wrote %zu systems, %zu hardware specs, %zu orderings to %s\n",
                kb.systems().size(), kb.hardwareSpecs().size(),
                kb.orderings().size(), out.c_str());
    return 0;
}

int cmdValidate(const std::string& kbPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const auto issues = kb.validate();
    int errors = 0;
    for (const kb::ValidationIssue& issue : issues) {
        const bool isError =
            issue.severity == kb::ValidationIssue::Severity::Error;
        std::printf("%s: %s\n", isError ? "error" : "warning",
                    issue.message.c_str());
        if (isError) ++errors;
    }
    std::printf("%zu systems, %zu hardware specs, %zu orderings; %d errors, "
                "%zu findings\n",
                kb.systems().size(), kb.hardwareSpecs().size(),
                kb.orderings().size(), errors, issues.size());
    return errors == 0 ? 0 : 1;
}

int cmdFeasible(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto report = engine.explainMinimalConflict();
    if (report.feasible) {
        std::printf("FEASIBLE\n");
        return 0;
    }
    std::printf("INFEASIBLE — minimal conflicting rule set:\n");
    for (const std::string& rule : report.conflictingRules)
        std::printf("  - %s\n", rule.c_str());
    return 1;
}

int cmdOptimize(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto design = engine.optimize();
    if (!design) {
        std::printf("INFEASIBLE — run 'larctl feasible' for the conflict\n");
        return 1;
    }
    std::printf("%s", design->toString().c_str());
    const auto violations = reason::validateDesign(problem, *design);
    if (!violations.empty()) {
        std::printf("INTERNAL ERROR: design failed independent validation:\n");
        for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
        return 3;
    }
    return 0;
}

int cmdEnumerate(const std::string& kbPath, const std::string& problemPath,
                 int maxDesigns) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto designs = engine.enumerateDesigns(maxDesigns, /*optimizeFirst=*/true);
    std::printf("%zu design(s) in the optimal equivalence class:\n",
                designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        std::printf("--- design %zu ---\n%s", i + 1, designs[i].toString().c_str());
    }
    return designs.empty() ? 1 : 0;
}

// Batch file format: either a bare JSON array of query objects, or
// {"options": {...}, "queries": [...]} where "options" sets defaults every
// query may override. A query object:
//   {"id": "q1", "kind": "optimize", "problem": {...problem spec...},
//    "max_designs": 4, "backend": "cdcl", "seed": 7, "timeout_ms": 0,
//    "trace": true, "progress_every_conflicts": 256, "portfolio_workers": 1}
reason::QueryOptions queryOptionsFromJson(const json::Value& v,
                                          reason::QueryOptions defaults) {
    const json::Object& obj = v.asObject();
    if (obj.contains("backend")) {
        const std::string& name = obj.at("backend").asString();
        if (name == "cdcl") defaults.backend = smt::BackendKind::Cdcl;
        else if (name == "z3") defaults.backend = smt::BackendKind::Z3;
        else throw ParseError("batch: unknown backend '" + name + "'");
    }
    if (obj.contains("seed"))
        defaults.seed = static_cast<std::uint64_t>(obj.at("seed").asInt());
    if (obj.contains("timeout_ms"))
        defaults.timeoutMs = static_cast<int>(obj.at("timeout_ms").asInt());
    if (obj.contains("conflict_budget"))
        defaults.conflictBudget = obj.at("conflict_budget").asInt();
    if (obj.contains("propagation_budget"))
        defaults.propagationBudget = obj.at("propagation_budget").asInt();
    if (obj.contains("memory_budget_mb"))
        defaults.memoryBudgetMb = obj.at("memory_budget_mb").asInt();
    if (obj.contains("trace")) defaults.collectTrace = obj.at("trace").asBool();
    if (obj.contains("progress_every_conflicts"))
        defaults.progressEveryConflicts =
            static_cast<int>(obj.at("progress_every_conflicts").asInt());
    if (obj.contains("portfolio_workers"))
        defaults.portfolioWorkers =
            static_cast<int>(obj.at("portfolio_workers").asInt());
    return defaults;
}

int cmdBatch(const std::string& kbPath, const std::string& batchPath,
             unsigned threads, const std::string& traceOut = {},
             bool quiet = false, int deadlineMs = -1, long maxQueue = -1,
             int portfolio = 0) {
    const kb::KnowledgeBase kb = loadKb(kbPath);

    reason::ServiceOptions serviceOptions;
    serviceOptions.workers = threads;
    std::vector<reason::QueryRequest> requests;
    // A malformed batch file is a protocol error, not a query failure:
    // report it as one machine-readable line on stdout and exit 2, so
    // scripts driving larctl can tell "bad input" from "infeasible".
    try {
        const json::Value doc = json::parse(util::readFile(batchPath));

        reason::QueryOptions defaults;
        const json::Array* queries = nullptr;
        if (doc.isArray()) {
            queries = &doc.asArray();
        } else {
            if (doc.asObject().contains("options"))
                defaults = queryOptionsFromJson(doc.at("options"), defaults);
            if (doc.asObject().contains("service")) {
                const json::Object& svc = doc.at("service").asObject();
                if (svc.contains("max_queue_depth"))
                    serviceOptions.maxQueueDepth = static_cast<std::size_t>(
                        svc.at("max_queue_depth").asInt());
                if (svc.contains("shed_policy")) {
                    const std::string& policy = svc.at("shed_policy").asString();
                    if (policy == "reject_new")
                        serviceOptions.shedPolicy = reason::ShedPolicy::RejectNew;
                    else if (policy == "drop_oldest")
                        serviceOptions.shedPolicy = reason::ShedPolicy::DropOldest;
                    else
                        throw ParseError("batch: unknown shed_policy '" + policy +
                                         "' (want reject_new or drop_oldest)");
                }
                if (svc.contains("max_attempts"))
                    serviceOptions.retry.maxAttempts =
                        static_cast<int>(svc.at("max_attempts").asInt());
            }
            queries = &doc.at("queries").asArray();
        }

        requests.reserve(queries->size());
        for (std::size_t i = 0; i < queries->size(); ++i) {
            const json::Value& q = (*queries)[i];
            reason::QueryRequest request;
            request.id = q.asObject().contains("id") ? q.at("id").asString()
                                                     : std::to_string(i);
            request.kind =
                q.asObject().contains("kind")
                    ? reason::queryKindFromString(q.at("kind").asString())
                    : reason::QueryKind::Optimize;
            request.problem = reason::problemFromJson(q.at("problem"), kb);
            if (q.asObject().contains("max_designs"))
                request.maxDesigns = static_cast<int>(q.at("max_designs").asInt());
            request.options = queryOptionsFromJson(q, defaults);
            requests.push_back(std::move(request));
        }
    } catch (const std::exception& e) {
        json::Value detail;
        detail["kind"] =
            dynamic_cast<const ParseError*>(&e) != nullptr ? "parse_error"
                                                           : "error";
        detail["message"] = std::string(e.what());
        json::Value err;
        err["error"] = std::move(detail);
        std::printf("%s\n", json::write(err).c_str());
        return 2;
    }

    if (deadlineMs >= 0)
        for (reason::QueryRequest& r : requests) r.options.timeoutMs = deadlineMs;
    if (portfolio > 0)
        for (reason::QueryRequest& r : requests)
            r.options.portfolioWorkers = portfolio;
    if (maxQueue >= 0)
        serviceOptions.maxQueueDepth = static_cast<std::size_t>(maxQueue);

    reason::Service service(serviceOptions);
    const std::vector<reason::QueryResult> results = service.runBatch(requests);

    json::Array out;
    bool anyInfeasible = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const reason::QueryResult& r = results[i];
        json::Value v;
        v["id"] = r.id;
        v["kind"] = reason::toString(r.kind);
        v["verdict"] = std::string(reason::verdictName(r.verdict));
        v["feasible"] = r.feasible();
        if (r.timedOut()) v["timed_out"] = true;
        if (r.shed()) v["shed"] = true;
        if (r.cancelled()) v["cancelled"] = true;
        if (r.retries > 0) v["retries"] = static_cast<std::int64_t>(r.retries);
        if (r.backendFellBack) v["backend_fallback"] = true;
        if (!r.ok()) {
            json::Value detail;
            detail["kind"] = r.error.errorKind;
            detail["message"] = r.error.message;
            v["error"] = std::move(detail);
        }
        if (r.design.has_value()) v["design"] = reason::toJson(*r.design);
        if (!r.designs.empty()) {
            json::Array designs;
            for (const reason::Design& d : r.designs)
                designs.push_back(reason::toJson(d));
            v["designs"] = json::Value(std::move(designs));
        }
        if (!r.conflictingRules.empty()) {
            json::Array rules;
            for (const std::string& rule : r.conflictingRules)
                rules.emplace_back(rule);
            v["conflicting_rules"] = json::Value(std::move(rules));
        }
        if (requests[i].options.collectTrace) v["trace"] = reason::toJson(r.trace);
        out.push_back(std::move(v));
        // Shed and cancelled queries are reported but do not fail the batch
        // — the caller opted into admission control / cancellation.
        if (!r.ok() || (!r.feasible() && !r.timedOut() && !r.shed()))
            anyInfeasible = true;
    }

    const reason::CacheStats cache = service.cacheStats();
    json::Value report;
    report["results"] = json::Value(std::move(out));
    json::Value cacheJson;
    cacheJson["hits"] = static_cast<std::int64_t>(cache.hits);
    cacheJson["misses"] = static_cast<std::int64_t>(cache.misses);
    cacheJson["entries"] = static_cast<std::int64_t>(cache.entries);
    report["cache"] = std::move(cacheJson);
    report["workers"] = static_cast<std::int64_t>(service.workerCount());
    if (!quiet) std::printf("%s\n", json::writePretty(report).c_str());

    if (!traceOut.empty()) {
        std::vector<std::pair<std::string, const obs::Trace*>> traces;
        for (const reason::QueryResult& r : results)
            if (r.trace.spans)
                traces.emplace_back("query " + r.id, r.trace.spans.get());
        std::filesystem::create_directories(traceOut);
        const std::string path = traceOut + "/trace.json";
        util::writeFile(path, json::write(obs::chromeTraceDocument(traces)));
        std::fprintf(stderr, "wrote %zu trace lane(s) to %s\n", traces.size(),
                     path.c_str());
    }
    return anyInfeasible ? 1 : 0;
}

int cmdMetrics(bool asJson, const std::string& kbPath,
               const std::string& batchPath, unsigned threads,
               int portfolio = 0) {
    // Optionally run a batch first so the dump shows a populated registry
    // (the registry is per-process; a fresh larctl starts empty).
    if (!kbPath.empty())
        (void)cmdBatch(kbPath, batchPath, threads, {}, true, -1, -1, portfolio);
    obs::Registry& registry = obs::Registry::global();
    if (asJson)
        std::printf("%s\n", json::writePretty(registry.toJson()).c_str());
    else
        std::fputs(registry.renderPrometheus().c_str(), stdout);
    return 0;
}

int cmdSuggest(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    const auto suggestions = reason::suggestDisambiguation(problem);
    if (suggestions.empty()) {
        std::printf("the optimal design is already unique (or infeasible)\n");
        return 0;
    }
    for (const auto& s : suggestions) std::printf("* %s\n", s.suggestion.c_str());
    return 0;
}

int cmdOrdering(const std::string& kbPath, const std::string& objective) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const order::PreferenceGraph graph(kb, objective);
    // Render with every conditional edge visible (empty context would hide
    // them): use condition labels by passing a context that activates
    // nothing and printing the full edge list instead.
    std::printf("digraph \"%s\" {\n", objective.c_str());
    for (const kb::Ordering* e : kb.orderingsFor(objective)) {
        std::printf("  \"%s\" -> \"%s\"", e->better.c_str(), e->worse.c_str());
        if (!e->condition.isTrivial())
            std::printf(" [label=\"%s\"]", e->condition.toString().c_str());
        std::printf(";\n");
    }
    std::printf("}\n");
    return graph.systems().empty() ? 1 : 0;
}

int cmdDiff(const std::string& beforePath, const std::string& afterPath) {
    const kb::KnowledgeBase before = loadKb(beforePath);
    const kb::KnowledgeBase after = loadKb(afterPath);
    const kb::KbDiff diff = kb::diffKnowledgeBases(before, after);
    std::printf("%s", diff.toString().c_str());
    std::printf("%zu change(s)\n", diff.totalChanges());
    return 0;
}

int cmdSheet(const std::string& kbPath, const std::string& model) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const kb::HardwareSpec* spec = kb.findHardware(model);
    if (spec == nullptr) {
        std::fprintf(stderr, "unknown model: %s\n", model.c_str());
        return 1;
    }
    std::printf("%s", extract::renderSpecSheet(*spec).text.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "export-kb" && argc == 3) return cmdExportKb(argv[2]);
        if (command == "validate" && argc == 3) return cmdValidate(argv[2]);
        if (command == "feasible" && argc == 4)
            return cmdFeasible(argv[2], argv[3]);
        if (command == "optimize" && argc == 4)
            return cmdOptimize(argv[2], argv[3]);
        if (command == "enumerate" && (argc == 4 || argc == 5))
            return cmdEnumerate(argv[2], argv[3],
                                argc == 5 ? std::atoi(argv[4]) : 4);
        if (command == "batch" || command == "metrics") {
            bool asJson = false;
            std::string traceOut;
            int deadlineMs = -1;
            long maxQueue = -1;
            int portfolio = 0;
            std::vector<std::string> positional;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--trace-out") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --trace-out needs a directory\n");
                        return 1;
                    }
                    traceOut = argv[++i];
                } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --deadline-ms needs a number\n");
                        return 1;
                    }
                    long value = 0;
                    if (!parseLongArg(argv[++i], value) || value < 0) {
                        std::fprintf(stderr,
                                     "larctl: --deadline-ms must be a number "
                                     ">= 0, got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                    deadlineMs = static_cast<int>(value);
                } else if (std::strcmp(argv[i], "--max-queue") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --max-queue needs a number\n");
                        return 1;
                    }
                    if (!parseLongArg(argv[++i], maxQueue) || maxQueue < 0) {
                        std::fprintf(stderr,
                                     "larctl: --max-queue must be a number "
                                     ">= 0 (0 = unbounded), got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                } else if (std::strcmp(argv[i], "--portfolio") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --portfolio needs a worker "
                                     "count\n");
                        return 1;
                    }
                    long value = 0;
                    if (!parseLongArg(argv[++i], value) || value < 1 ||
                        value > 16) {
                        std::fprintf(stderr,
                                     "larctl: --portfolio must be a number in "
                                     "1..16 (1 = single solver), got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                    portfolio = static_cast<int>(value);
                } else if (std::strcmp(argv[i], "--json") == 0) {
                    asJson = true;
                } else {
                    positional.emplace_back(argv[i]);
                }
            }
            const bool isMetrics = command == "metrics";
            if (!isMetrics && positional.size() < 2) return usage();
            if (isMetrics && positional.size() == 1) return usage();
            if (positional.size() > 3) return usage();
            long threads = 0;
            if (positional.size() == 3 &&
                (!parseLongArg(positional[2].c_str(), threads) ||
                 threads < 0)) {
                std::fprintf(stderr,
                             "larctl: thread count must be a number >= 0 (0 = "
                             "one per hardware thread), got '%s'\n",
                             positional[2].c_str());
                return 1;
            }
            if (isMetrics)
                return cmdMetrics(asJson,
                                  positional.empty() ? "" : positional[0],
                                  positional.empty() ? "" : positional[1],
                                  static_cast<unsigned>(threads), portfolio);
            return cmdBatch(positional[0], positional[1],
                            static_cast<unsigned>(threads), traceOut,
                            /*quiet=*/false, deadlineMs, maxQueue, portfolio);
        }
        if (command == "suggest" && argc == 4)
            return cmdSuggest(argv[2], argv[3]);
        if (command == "ordering" && argc == 4)
            return cmdOrdering(argv[2], argv[3]);
        if (command == "sheet" && argc == 4) return cmdSheet(argv[2], argv[3]);
        if (command == "diff" && argc == 4) return cmdDiff(argv[2], argv[3]);
    } catch (const Error& e) {
        std::fprintf(stderr, "larctl: %s\n", e.what());
        return 1;
    }
    return usage();
}
