// larctl — command-line front end to the reasoning library.
//
// The workflow the paper envisions: a shared knowledge base (JSON, possibly
// crowd-sourced), per-team problem specs (JSON), and quick answers at the
// terminal.
//
//   larctl export-kb <kb.json>             write the built-in seed KB
//   larctl validate <kb.json>              check an encoding file
//   larctl feasible <kb.json> <prob.json>  is any compliant design possible?
//                                          (prints a minimal conflict if not)
//   larctl optimize <kb.json> <prob.json>  lexicographically optimal design
//   larctl enumerate <kb.json> <prob.json> [N]   distinct optimal designs
//   larctl batch <kb.json> <batch.json> [threads] [--trace-out <dir>]
//                [--deadline-ms <n>] [--max-queue <n>] [--portfolio <n>]
//                                          run a query batch through the
//                                          caching service; JSON out, plus a
//                                          Chrome trace_event file (load in
//                                          chrome://tracing or Perfetto) when
//                                          --trace-out is given.
//                                          --deadline-ms sets an end-to-end
//                                          deadline on every query (queue wait
//                                          and compile both count against it);
//                                          --max-queue bounds the batch queue
//                                          (overload is shed, never hung);
//                                          --portfolio races N diverse CDCL
//                                          solvers per query (budgeted
//                                          against the thread pool).
//                                          Exit codes: 0 all answered, 1 some
//                                          infeasible or errored, 2 malformed
//                                          batch file (one-line JSON error on
//                                          stdout).
//   larctl metrics [--json] [<kb.json> <batch.json> [threads]]
//                                          dump the process metrics registry
//                                          (Prometheus text exposition, or
//                                          JSON with --json), optionally after
//                                          running a batch to populate it
//   larctl trace <id> [--chrome]           (--url only) fetch one retained
//                                          trace from the server's flight
//                                          recorder by trace id or query id;
//                                          --chrome prints the raw Chrome
//                                          trace_event document (redirect to
//                                          a file, load in Perfetto).
//   larctl top                             (--url only) the server's /statusz
//                                          page: build, flight-recorder
//                                          occupancy, in-flight queries, live
//                                          sessions.
//   larctl version                         (--url only) the server's build
//                                          identity: git describe, trace
//                                          schema version, api major.
//   larctl session <verb> ...              (--url only) stateful what-if
//                                          sessions against larserved: create /
//                                          ask / renew / close, or `run` to
//                                          drive a whole variation script over
//                                          one warm session.
//   larctl suggest  <kb.json> <prob.json>  disambiguation suggestions (§6)
//   larctl ordering <kb.json> <objective>  Graphviz of the partial order
//   larctl sheet    <kb.json> <model>      render a vendor spec sheet
//   larctl diff     <old.json> <new.json>  review a KB contribution (§3.3)
//
// Pass the literal name "builtin" instead of <kb.json> to use the compiled-in
// catalog (56 systems / 208 hardware specs).
//
// --trace-id <id> (with --url) sends the given X-Lar-Trace-Id on every
// request, so the server adopts the client's trace identity end to end —
// `larctl --url U --trace-id deadbeef feasible p.json` followed by
// `larctl --url U trace deadbeef` retrieves exactly that query's trace.
//
// --retries <n> (with --url) allows n retry attempts after the first try
// (default 2): transport failures retry when safe, and a shed 429/503 is
// waited out honoring the server's Retry-After before retrying, all within
// the request deadline — exit codes are unchanged when retries exhaust.
// --hedge-ms <n> additionally hedges GETs: a second connection races the
// first after n ms without a response. --retries 0 restores fail-fast.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "extract/specgen.hpp"
#include "json/parse.hpp"
#include "json/write.hpp"
#include "net/http_client.hpp"
#include "kb/diff.hpp"
#include "kb/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "order/poset.hpp"
#include "reason/engine.hpp"
#include "reason/problem_io.hpp"
#include "reason/service.hpp"
#include "reason/service_io.hpp"
#include "reason/validate.hpp"
#include "util/error.hpp"
#include "util/file.hpp"

using namespace lar;

namespace {

// atoi/atol turn non-numeric input into 0 silently, which for the limit
// flags below means "unlimited" — the opposite of what the user asked for.
// Require the whole token to parse, like the DIMACS reader does.
bool parseLongArg(const char* tok, long& out) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(tok, &end, 10);
    if (end == tok || *end != '\0' || errno == ERANGE) return false;
    out = value;
    return true;
}

int usage() {
    std::fprintf(stderr,
                 "usage: larctl [--url http://host:port] <command> [args]\n"
                 "  export-kb <out.json>\n"
                 "  validate  <kb.json>\n"
                 "  feasible  <kb.json> <problem.json>\n"
                 "  optimize  <kb.json> <problem.json>\n"
                 "  enumerate <kb.json> <problem.json> [maxDesigns]\n"
                 "  batch     <kb.json> <batch.json> [threads] [--trace-out <dir>]\n"
                 "            [--deadline-ms <n>] [--max-queue <n>] [--portfolio <n>]\n"
                 "  metrics   [--json] [<kb.json> <batch.json> [threads]]\n"
                 "  suggest   <kb.json> <problem.json>\n"
                 "  ordering  <kb.json> <objective>\n"
                 "  sheet     <kb.json> <model name>\n"
                 "  diff      <old.json> <new.json>\n"
                 "  session   create <problem.json> | ask <id> <var.json|-> |\n"
                 "            renew <id> | close <id> |\n"
                 "            run <problem.json> [script.json]   (--url only)\n"
                 "  trace     <id> [--chrome]            (--url only)\n"
                 "  top                                  (--url only)\n"
                 "  version                              (--url only)\n"
                 "use 'builtin' as <kb.json> for the compiled-in catalog\n"
                 "with --url, feasible/optimize/enumerate/batch/metrics/session/\n"
                 "trace/top/version run against a larserved instance (no <kb.json>\n"
                 "argument — the server's knowledge base answers); --trace-id\n"
                 "<id> stamps every request with that X-Lar-Trace-Id;\n"
                 "--retries <n> bounds retry attempts (default 2, honoring\n"
                 "Retry-After on 429/503); --hedge-ms <n> hedges GETs after n ms\n");
    return 2;
}

kb::KnowledgeBase loadKb(const std::string& path) {
    if (path == "builtin") return catalog::buildKnowledgeBase();
    return kb::kbFromText(util::readFile(path));
}

int cmdExportKb(const std::string& out) {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    util::writeFile(out, kb::kbToText(kb));
    std::printf("wrote %zu systems, %zu hardware specs, %zu orderings to %s\n",
                kb.systems().size(), kb.hardwareSpecs().size(),
                kb.orderings().size(), out.c_str());
    return 0;
}

int cmdValidate(const std::string& kbPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const auto issues = kb.validate();
    int errors = 0;
    for (const kb::ValidationIssue& issue : issues) {
        const bool isError =
            issue.severity == kb::ValidationIssue::Severity::Error;
        std::printf("%s: %s\n", isError ? "error" : "warning",
                    issue.message.c_str());
        if (isError) ++errors;
    }
    std::printf("%zu systems, %zu hardware specs, %zu orderings; %d errors, "
                "%zu findings\n",
                kb.systems().size(), kb.hardwareSpecs().size(),
                kb.orderings().size(), errors, issues.size());
    return errors == 0 ? 0 : 1;
}

int cmdFeasible(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto report = engine.explainMinimalConflict();
    if (report.feasible) {
        std::printf("FEASIBLE\n");
        return 0;
    }
    std::printf("INFEASIBLE — minimal conflicting rule set:\n");
    for (const std::string& rule : report.conflictingRules)
        std::printf("  - %s\n", rule.c_str());
    return 1;
}

int cmdOptimize(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto design = engine.optimize();
    if (!design) {
        std::printf("INFEASIBLE — run 'larctl feasible' for the conflict\n");
        return 1;
    }
    std::printf("%s", design->toString().c_str());
    const auto violations = reason::validateDesign(problem, *design);
    if (!violations.empty()) {
        std::printf("INTERNAL ERROR: design failed independent validation:\n");
        for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
        return 3;
    }
    return 0;
}

int cmdEnumerate(const std::string& kbPath, const std::string& problemPath,
                 int maxDesigns) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    reason::Engine engine(problem);
    const auto designs = engine.enumerateDesigns(maxDesigns, /*optimizeFirst=*/true);
    std::printf("%zu design(s) in the optimal equivalence class:\n",
                designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        std::printf("--- design %zu ---\n%s", i + 1, designs[i].toString().c_str());
    }
    return designs.empty() ? 1 : 0;
}

// Batch file schema: see reason/service_io.hpp (shared with larserved).
int cmdBatch(const std::string& kbPath, const std::string& batchPath,
             unsigned threads, const std::string& traceOut = {},
             bool quiet = false, int deadlineMs = -1, long maxQueue = -1,
             int portfolio = 0) {
    const kb::KnowledgeBase kb = loadKb(kbPath);

    reason::ServiceOptions serviceOptions;
    serviceOptions.workers = threads;
    std::vector<reason::QueryRequest> requests;
    // A malformed batch file is a protocol error, not a query failure:
    // report it as one machine-readable line on stdout and exit 2, so
    // scripts driving larctl can tell "bad input" from "infeasible".
    try {
        const json::Value doc = json::parse(util::readFile(batchPath));
        requests = reason::batchRequestsFromJson(doc, kb, &serviceOptions);
    } catch (const std::exception& e) {
        json::Value detail;
        detail["kind"] =
            dynamic_cast<const ParseError*>(&e) != nullptr ? "parse_error"
                                                           : "error";
        detail["message"] = std::string(e.what());
        json::Value err;
        err["error"] = std::move(detail);
        std::printf("%s\n", json::write(err).c_str());
        return 2;
    }

    if (deadlineMs >= 0)
        for (reason::QueryRequest& r : requests) r.options.timeoutMs = deadlineMs;
    if (portfolio > 0)
        for (reason::QueryRequest& r : requests)
            r.options.portfolioWorkers = portfolio;
    if (maxQueue >= 0)
        serviceOptions.maxQueueDepth = static_cast<std::size_t>(maxQueue);

    reason::Service service(serviceOptions);
    const std::vector<reason::QueryResult> results = service.runBatch(requests);
    const bool anyInfeasible = reason::anyFailedOrInfeasible(results);
    const json::Value report =
        reason::batchReportToJson(results, requests, service);
    if (!quiet) std::printf("%s\n", json::writePretty(report).c_str());

    if (!traceOut.empty()) {
        std::vector<std::pair<std::string, const obs::Trace*>> traces;
        for (const reason::QueryResult& r : results)
            if (r.trace.spans)
                traces.emplace_back("query " + r.id, r.trace.spans.get());
        std::filesystem::create_directories(traceOut);
        const std::string path = traceOut + "/trace.json";
        util::writeFile(path, json::write(obs::chromeTraceDocument(traces)));
        std::fprintf(stderr, "wrote %zu trace lane(s) to %s\n", traces.size(),
                     path.c_str());
    }
    return anyInfeasible ? 1 : 0;
}

int cmdMetrics(bool asJson, const std::string& kbPath,
               const std::string& batchPath, unsigned threads,
               int portfolio = 0) {
    // Optionally run a batch first so the dump shows a populated registry
    // (the registry is per-process; a fresh larctl starts empty).
    if (!kbPath.empty())
        (void)cmdBatch(kbPath, batchPath, threads, {}, true, -1, -1, portfolio);
    obs::Registry& registry = obs::Registry::global();
    if (asJson)
        std::printf("%s\n", json::writePretty(registry.toJson()).c_str());
    else
        std::fputs(registry.renderPrometheus().c_str(), stdout);
    return 0;
}

int cmdSuggest(const std::string& kbPath, const std::string& problemPath) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const reason::Problem problem =
        reason::problemFromText(util::readFile(problemPath), kb);
    const auto suggestions = reason::suggestDisambiguation(problem);
    if (suggestions.empty()) {
        std::printf("the optimal design is already unique (or infeasible)\n");
        return 0;
    }
    for (const auto& s : suggestions) std::printf("* %s\n", s.suggestion.c_str());
    return 0;
}

int cmdOrdering(const std::string& kbPath, const std::string& objective) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const order::PreferenceGraph graph(kb, objective);
    // Render with every conditional edge visible (empty context would hide
    // them): use condition labels by passing a context that activates
    // nothing and printing the full edge list instead.
    std::printf("digraph \"%s\" {\n", objective.c_str());
    for (const kb::Ordering* e : kb.orderingsFor(objective)) {
        std::printf("  \"%s\" -> \"%s\"", e->better.c_str(), e->worse.c_str());
        if (!e->condition.isTrivial())
            std::printf(" [label=\"%s\"]", e->condition.toString().c_str());
        std::printf(";\n");
    }
    std::printf("}\n");
    return graph.systems().empty() ? 1 : 0;
}

int cmdDiff(const std::string& beforePath, const std::string& afterPath) {
    const kb::KnowledgeBase before = loadKb(beforePath);
    const kb::KnowledgeBase after = loadKb(afterPath);
    const kb::KbDiff diff = kb::diffKnowledgeBases(before, after);
    std::printf("%s", diff.toString().c_str());
    std::printf("%zu change(s)\n", diff.totalChanges());
    return 0;
}

int cmdSheet(const std::string& kbPath, const std::string& model) {
    const kb::KnowledgeBase kb = loadKb(kbPath);
    const kb::HardwareSpec* spec = kb.findHardware(model);
    if (spec == nullptr) {
        std::fprintf(stderr, "unknown model: %s\n", model.c_str());
        return 1;
    }
    std::printf("%s", extract::renderSpecSheet(*spec).text.c_str());
    return 0;
}

// ---------------------------------------------------------------------------
// --url client mode: the same commands, answered by a larserved instance.
// Exit codes mirror local runs (0 answered/feasible, 1 infeasible or errored,
// 2 malformed input), with one addition: a shed query (HTTP 429) exits 1 like
// a locally-shed one would.
// ---------------------------------------------------------------------------

int remoteQuery(net::HttpClient& client, const std::string& kind,
                const std::string& problemPath, int maxDesigns) {
    json::Value query;
    query["kind"] = kind;
    query["problem"] = json::parse(util::readFile(problemPath));
    if (kind == "enumerate")
        query["max_designs"] = static_cast<std::int64_t>(maxDesigns);
    const net::ClientResponse resp =
        client.post("/v1/query", json::write(query));
    if (resp.status == 400) {
        std::printf("%s", resp.body.c_str());
        return 2;
    }
    std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
    if (resp.status != 200) return 1; // 429 shed / 500 error
    const json::Value result = json::parse(resp.body);
    return result.at("feasible").asBool() ? 0 : 1;
}

int remoteBatch(net::HttpClient& client, const std::string& batchPath,
                int deadlineMs, int portfolio, bool quiet = false) {
    // A locally-unreadable batch file exits 2 with a one-line JSON error,
    // exactly like local mode; schema errors the server detects come back
    // as a 400 and exit 2 below.
    json::Value doc;
    try {
        doc = json::parse(util::readFile(batchPath));
    } catch (const std::exception& e) {
        json::Value detail;
        detail["kind"] = dynamic_cast<const ParseError*>(&e) != nullptr
                             ? "parse_error"
                             : "error";
        detail["message"] = std::string(e.what());
        json::Value err;
        err["error"] = std::move(detail);
        std::printf("%s\n", json::write(err).c_str());
        return 2;
    }
    // Flag overrides are applied per query, matching local precedence where
    // --deadline-ms / --portfolio rewrite every request after parsing.
    if (deadlineMs >= 0 || portfolio > 0) {
        json::Array* queries = nullptr;
        if (doc.isArray()) {
            queries = &doc.asArray();
        } else if (doc.asObject().contains("queries")) {
            queries = &doc["queries"].asArray();
        }
        if (queries != nullptr) {
            for (json::Value& q : *queries) {
                if (!q.isObject()) continue;
                if (deadlineMs >= 0)
                    q["timeout_ms"] = static_cast<std::int64_t>(deadlineMs);
                if (portfolio > 0)
                    q["portfolio_workers"] =
                        static_cast<std::int64_t>(portfolio);
            }
        }
    }
    const net::ClientResponse resp = client.post("/v1/batch", json::write(doc));
    if (resp.status == 400) {
        std::printf("%s", resp.body.c_str());
        return 2;
    }
    if (resp.status != 200) {
        std::fprintf(stderr, "larctl: server answered %d\n%s", resp.status,
                     resp.body.c_str());
        return 1;
    }
    const json::Value report = json::parse(resp.body);
    if (!quiet) std::printf("%s\n", json::writePretty(report).c_str());
    return report.at("any_failed_or_infeasible").asBool() ? 1 : 0;
}

// ---------------------------------------------------------------------------
// session client mode: the stateful what-if workflow over larserved.
//
//   larctl --url U session create <problem.json>      open; prints {"id",...}
//   larctl --url U session ask    <id> <variation.json|->  one variation
//                                                      ('-' reads stdin)
//   larctl --url U session renew  <id>                 extend the lease
//   larctl --url U session close  <id>                 close it
//   larctl --url U session run    <problem.json> [script.json]
//       create → ask every variation in the script (a JSON array; when
//       omitted, one variation object per stdin line) → close. Exit 0 when
//       every ask was answered, 1 when any was infeasible or failed, 2 on
//       malformed input.
// ---------------------------------------------------------------------------

/// Posts one variation; prints the answer. Returns 0 feasible, 1 not
/// (infeasible/timeout/cancelled), 2 client mistake (bad body, unknown id).
int sessionAsk(net::HttpClient& client, const std::string& id,
               const std::string& variationText) {
    const net::ClientResponse resp = client.post(
        "/v1/session/" + id + "/ask", variationText.empty() ? "{}"
                                                            : variationText);
    std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
    if (resp.status == 400 || resp.status == 404) return 2;
    if (resp.status != 200) return 1;
    return json::parse(resp.body).at("feasible").asBool() ? 0 : 1;
}

std::string readStreamAll(std::FILE* stream) {
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, stream)) > 0) text.append(buf, n);
    return text;
}

int remoteSession(net::HttpClient& client, int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string verb = argv[2];

    if (verb == "create" && argc == 4) {
        json::Value body;
        body["problem"] = json::parse(util::readFile(argv[3]));
        const net::ClientResponse resp =
            client.post("/v1/session", json::write(body));
        std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
        if (resp.status == 400) return 2;
        return resp.status == 200 ? 0 : 1;
    }
    if (verb == "ask" && argc == 5) {
        const std::string variation = std::strcmp(argv[4], "-") == 0
                                          ? readStreamAll(stdin)
                                          : util::readFile(argv[4]);
        return sessionAsk(client, argv[3], variation);
    }
    if (verb == "renew" && argc == 4) {
        const net::ClientResponse resp =
            client.post("/v1/session/" + std::string(argv[3]) + "/renew", "{}");
        std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
        return resp.status == 200 ? 0 : 1;
    }
    if (verb == "close" && argc == 4) {
        const net::ClientResponse resp =
            client.del("/v1/session/" + std::string(argv[3]));
        std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
        return resp.status == 200 ? 0 : 1;
    }
    if (verb == "run" && (argc == 4 || argc == 5)) {
        json::Value body;
        body["problem"] = json::parse(util::readFile(argv[3]));
        const net::ClientResponse created =
            client.post("/v1/session", json::write(body));
        std::printf("%s\n",
                    json::writePretty(json::parse(created.body)).c_str());
        if (created.status == 400) return 2;
        if (created.status != 200) return 1;
        const std::string id = json::parse(created.body).at("id").asString();

        int worst = 0;
        if (argc == 5) {
            const json::Value script = json::parse(util::readFile(argv[4]));
            for (const json::Value& variation : script.asArray()) {
                const int rc = sessionAsk(client, id, json::write(variation));
                if (rc > worst) worst = rc;
            }
        } else {
            // One variation object per stdin line; blank lines are skipped.
            std::string line;
            int ch = 0;
            while ((ch = std::fgetc(stdin)) != EOF) {
                if (ch != '\n') {
                    line.push_back(static_cast<char>(ch));
                    continue;
                }
                if (!line.empty()) {
                    const int rc = sessionAsk(client, id, line);
                    if (rc > worst) worst = rc;
                }
                line.clear();
            }
            if (!line.empty()) {
                const int rc = sessionAsk(client, id, line);
                if (rc > worst) worst = rc;
            }
        }
        (void)client.del("/v1/session/" + id);
        return worst;
    }
    return usage();
}

/// Fetches one retained trace from the server's flight recorder. Exit 0
/// found, 1 unknown id (or other server failure).
int remoteTrace(net::HttpClient& client, const std::string& id, bool chrome) {
    const net::ClientResponse resp = client.get(
        "/v1/debug/traces/" + id + (chrome ? "?format=chrome" : ""));
    if (resp.status != 200) {
        std::fprintf(stderr, "larctl: server answered %d\n%s", resp.status,
                     resp.body.c_str());
        return 1;
    }
    if (chrome) {
        // The raw trace_event document — keep it byte-exact for Perfetto.
        std::fputs(resp.body.c_str(), stdout);
        return 0;
    }
    std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
    return 0;
}

int remoteMain(const std::string& url, const std::string& traceId,
               long retries, long hedgeMs, int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const net::HttpUrl parsed = net::parseHttpUrl(url);
    net::HttpClient client(parsed.host, parsed.port);
    if (!traceId.empty()) client.setHeader("X-Lar-Trace-Id", traceId);
    // Resilience defaults: a couple of bounded retries so one shed response
    // (429/503 + Retry-After) or transient reset does not fail the command;
    // exit codes are the same as ever once attempts run out.
    net::RetryOptions retry;
    retry.maxAttempts = static_cast<int>(retries) + 1;
    retry.hedgeDelayMs = static_cast<int>(hedgeMs);
    client.setRetryOptions(retry);

    if ((command == "feasible" || command == "optimize") && argc == 3)
        return remoteQuery(client, command, argv[2], 4);
    if (command == "enumerate" && (argc == 3 || argc == 4)) {
        long maxDesigns = 4;
        if (argc == 4 && (!parseLongArg(argv[3], maxDesigns) || maxDesigns < 1)) {
            std::fprintf(stderr,
                         "larctl: maxDesigns must be a number >= 1, got '%s'\n",
                         argv[3]);
            return 1;
        }
        return remoteQuery(client, command, argv[2],
                           static_cast<int>(maxDesigns));
    }
    if (command == "batch") {
        std::string batchPath;
        int deadlineMs = -1;
        int portfolio = 0;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--deadline-ms") == 0 ||
                std::strcmp(argv[i], "--portfolio") == 0) {
                const bool isDeadline = argv[i][2] == 'd';
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "larctl: %s needs a number\n", argv[i]);
                    return 1;
                }
                long value = 0;
                if (!parseLongArg(argv[i + 1], value) ||
                    (isDeadline ? value < 0 : (value < 1 || value > 16))) {
                    std::fprintf(stderr, "larctl: bad value for %s: '%s'\n",
                                 argv[i], argv[i + 1]);
                    return 1;
                }
                if (isDeadline) deadlineMs = static_cast<int>(value);
                else portfolio = static_cast<int>(value);
                ++i;
            } else if (std::strcmp(argv[i], "--max-queue") == 0 ||
                       std::strcmp(argv[i], "--trace-out") == 0) {
                std::fprintf(stderr,
                             "larctl: %s is not supported with --url (set it "
                             "on the larserved command line)\n",
                             argv[i]);
                return 1;
            } else if (batchPath.empty() && argv[i][0] != '-') {
                batchPath = argv[i];
            } else {
                std::fprintf(stderr, "larctl: unexpected argument '%s'\n",
                             argv[i]);
                return usage();
            }
        }
        if (batchPath.empty()) return usage();
        return remoteBatch(client, batchPath, deadlineMs, portfolio);
    }
    if (command == "session") return remoteSession(client, argc, argv);
    if (command == "trace" && (argc == 3 || argc == 4)) {
        bool chrome = false;
        if (argc == 4) {
            if (std::strcmp(argv[3], "--chrome") != 0) return usage();
            chrome = true;
        }
        return remoteTrace(client, argv[2], chrome);
    }
    if (command == "top" && argc == 2) {
        const net::ClientResponse resp = client.get("/statusz");
        if (resp.status != 200) {
            std::fprintf(stderr, "larctl: server answered %d\n", resp.status);
            return 1;
        }
        std::fputs(resp.body.c_str(), stdout);
        return 0;
    }
    if (command == "version" && argc == 2) {
        const net::ClientResponse resp = client.get("/version");
        if (resp.status != 200) {
            std::fprintf(stderr, "larctl: server answered %d\n", resp.status);
            return 1;
        }
        std::printf("%s\n", json::writePretty(json::parse(resp.body)).c_str());
        return 0;
    }
    if (command == "metrics" && argc == 2) {
        const net::ClientResponse resp = client.get("/metrics");
        if (resp.status != 200) {
            std::fprintf(stderr, "larctl: server answered %d\n", resp.status);
            return 1;
        }
        std::fputs(resp.body.c_str(), stdout);
        return 0;
    }
    std::fprintf(stderr, "larctl: command '%s' is not available with --url\n",
                 command.c_str());
    return usage();
}

} // namespace

int main(int argc, char** argv) {
    // Peel off the --url and --trace-id flags anywhere before/after the
    // command; everything else keeps its position.
    std::string url;
    std::string traceId;
    long retries = 2;
    long hedgeMs = 0;
    bool retryFlagSeen = false;
    std::vector<char*> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--url") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "larctl: --url needs an address\n");
                return 2;
            }
            url = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-id") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "larctl: --trace-id needs a value\n");
                return 2;
            }
            traceId = argv[++i];
        } else if (std::strcmp(argv[i], "--retries") == 0 ||
                   std::strcmp(argv[i], "--hedge-ms") == 0) {
            const bool isRetries = argv[i][2] == 'r';
            if (i + 1 >= argc) {
                std::fprintf(stderr, "larctl: %s needs a number\n", argv[i]);
                return 2;
            }
            long value = 0;
            if (!parseLongArg(argv[i + 1], value) || value < 0 ||
                value > (isRetries ? 100 : 3'600'000)) {
                std::fprintf(stderr, "larctl: bad value for %s: '%s'\n",
                             argv[i], argv[i + 1]);
                return 2;
            }
            if (isRetries) retries = value;
            else hedgeMs = value;
            retryFlagSeen = true;
            ++i;
        } else {
            rest.push_back(argv[i]);
        }
    }
    argc = static_cast<int>(rest.size());
    argv = rest.data();
    if (!url.empty()) {
        try {
            return remoteMain(url, traceId, retries, hedgeMs, argc, argv);
        } catch (const Error& e) {
            std::fprintf(stderr, "larctl: %s\n", e.what());
            return 1;
        }
    }
    if (!traceId.empty()) {
        std::fprintf(stderr, "larctl: --trace-id needs --url (the trace "
                             "identity travels in an HTTP header)\n");
        return 2;
    }
    if (retryFlagSeen) {
        std::fprintf(stderr, "larctl: --retries/--hedge-ms need --url (they "
                             "configure the HTTP client)\n");
        return 2;
    }

    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        if (command == "export-kb" && argc == 3) return cmdExportKb(argv[2]);
        if (command == "validate" && argc == 3) return cmdValidate(argv[2]);
        if (command == "feasible" && argc == 4)
            return cmdFeasible(argv[2], argv[3]);
        if (command == "optimize" && argc == 4)
            return cmdOptimize(argv[2], argv[3]);
        if (command == "enumerate" && (argc == 4 || argc == 5))
            return cmdEnumerate(argv[2], argv[3],
                                argc == 5 ? std::atoi(argv[4]) : 4);
        if (command == "batch" || command == "metrics") {
            bool asJson = false;
            std::string traceOut;
            int deadlineMs = -1;
            long maxQueue = -1;
            int portfolio = 0;
            std::vector<std::string> positional;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--trace-out") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --trace-out needs a directory\n");
                        return 1;
                    }
                    traceOut = argv[++i];
                } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --deadline-ms needs a number\n");
                        return 1;
                    }
                    long value = 0;
                    if (!parseLongArg(argv[++i], value) || value < 0) {
                        std::fprintf(stderr,
                                     "larctl: --deadline-ms must be a number "
                                     ">= 0, got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                    deadlineMs = static_cast<int>(value);
                } else if (std::strcmp(argv[i], "--max-queue") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --max-queue needs a number\n");
                        return 1;
                    }
                    if (!parseLongArg(argv[++i], maxQueue) || maxQueue < 0) {
                        std::fprintf(stderr,
                                     "larctl: --max-queue must be a number "
                                     ">= 0 (0 = unbounded), got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                } else if (std::strcmp(argv[i], "--portfolio") == 0) {
                    if (i + 1 >= argc) {
                        std::fprintf(stderr,
                                     "larctl: --portfolio needs a worker "
                                     "count\n");
                        return 1;
                    }
                    long value = 0;
                    if (!parseLongArg(argv[++i], value) || value < 1 ||
                        value > 16) {
                        std::fprintf(stderr,
                                     "larctl: --portfolio must be a number in "
                                     "1..16 (1 = single solver), got '%s'\n",
                                     argv[i]);
                        return 1;
                    }
                    portfolio = static_cast<int>(value);
                } else if (std::strcmp(argv[i], "--json") == 0) {
                    asJson = true;
                } else {
                    positional.emplace_back(argv[i]);
                }
            }
            const bool isMetrics = command == "metrics";
            if (!isMetrics && positional.size() < 2) return usage();
            if (isMetrics && positional.size() == 1) return usage();
            if (positional.size() > 3) return usage();
            long threads = 0;
            if (positional.size() == 3 &&
                (!parseLongArg(positional[2].c_str(), threads) ||
                 threads < 0)) {
                std::fprintf(stderr,
                             "larctl: thread count must be a number >= 0 (0 = "
                             "one per hardware thread), got '%s'\n",
                             positional[2].c_str());
                return 1;
            }
            if (isMetrics)
                return cmdMetrics(asJson,
                                  positional.empty() ? "" : positional[0],
                                  positional.empty() ? "" : positional[1],
                                  static_cast<unsigned>(threads), portfolio);
            return cmdBatch(positional[0], positional[1],
                            static_cast<unsigned>(threads), traceOut,
                            /*quiet=*/false, deadlineMs, maxQueue, portfolio);
        }
        if (command == "suggest" && argc == 4)
            return cmdSuggest(argv[2], argv[3]);
        if (command == "ordering" && argc == 4)
            return cmdOrdering(argv[2], argv[3]);
        if (command == "sheet" && argc == 4) return cmdSheet(argv[2], argv[3]);
        if (command == "diff" && argc == 4) return cmdDiff(argv[2], argv[3]);
    } catch (const Error& e) {
        std::fprintf(stderr, "larctl: %s\n", e.what());
        return 1;
    }
    return usage();
}
