#include "opt/maxsat.hpp"

#include <map>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace lar::opt {

std::optional<std::int64_t> minimizeAndLock(encode::CnfBuilder& builder,
                                            std::span<const SoftConstraint> softs,
                                            std::span<const sat::Lit> assumptions,
                                            bool* unknown) {
    sat::Solver& solver = builder.solver();
    const auto flagUnknown = [unknown] {
        if (unknown != nullptr) *unknown = true;
    };

    // Penalty terms: weight is paid when the soft literal is FALSE. Group
    // them by exclusiveGroup so the counter can use one leaf per group.
    std::vector<encode::PbTerm> penalties;
    std::map<int, std::vector<encode::PbTerm>> groupIndex;
    std::vector<std::vector<encode::PbTerm>> groups;
    penalties.reserve(softs.size());
    for (const SoftConstraint& s : softs) {
        expects(s.weight >= 0, "minimizeAndLock: negative soft weight");
        if (s.weight == 0) continue;
        const encode::PbTerm term{s.weight, ~s.lit};
        penalties.push_back(term);
        if (s.exclusiveGroup >= 0)
            groupIndex[s.exclusiveGroup].push_back(term);
        else
            groups.push_back({term});
    }
    for (auto& [id, members] : groupIndex) groups.push_back(std::move(members));

    std::vector<sat::Lit> assume(assumptions.begin(), assumptions.end());
    const sat::SolveResult first = solver.solve(assume);
    if (first == sat::SolveResult::Unknown) {
        // Interrupted before any model: feasibility itself is unproven.
        flagUnknown();
        return std::nullopt;
    }
    if (first != sat::SolveResult::Sat) return std::nullopt;
    std::int64_t cost = encode::evalPb(solver, penalties);
    if (cost == 0 || penalties.empty()) {
        // Zero cost still needs the lock: later lexicographic levels must
        // not trade this objective away. Cost 0 means every weighted soft
        // literal is true in the model, so assert them directly — no
        // counter needed. (The first model rarely landed here before the
        // solver grew inprocessing; now it often starts optimal.)
        for (const encode::PbTerm& p : penalties) builder.assertLit(~p.lit);
        return cost;
    }

    // Counter clamped just above the first cost: tighter bounds only.
    const encode::PbSum counter(
        builder, std::span<const std::vector<encode::PbTerm>>(groups),
        /*clampAt=*/cost + 1);
    while (cost > 0) {
        assume.assign(assumptions.begin(), assumptions.end());
        assume.push_back(counter.atMostLit(builder, cost - 1));
        const sat::SolveResult step = solver.solve(assume);
        if (step == sat::SolveResult::Unknown) {
            // Budget exhausted mid-descent: keep the best bound found so far
            // (anytime behaviour). The caller sees it via *unknown.
            flagUnknown();
            break;
        }
        if (step != sat::SolveResult::Sat) break;
        const std::int64_t improved = encode::evalPb(solver, penalties);
        ensures(improved < cost, "minimizeAndLock: cost failed to decrease");
        cost = improved;
        util::logAt(util::LogLevel::Debug, "maxsat: improved cost to ", cost);
    }

    // Lock the optimum and restore the optimal model.
    builder.assertLit(counter.atMostLit(builder, cost));
    assume.assign(assumptions.begin(), assumptions.end());
    const sat::SolveResult final = solver.solve(assume);
    if (final == sat::SolveResult::Unknown) {
        // The lock-in re-solve was interrupted; the last Sat model (which
        // attains `cost`) is still loaded, so callers can read it.
        flagUnknown();
        return cost;
    }
    ensures(final == sat::SolveResult::Sat,
            "minimizeAndLock: formula infeasible after locking optimum");
    return cost;
}

LexResult optimizeLex(encode::CnfBuilder& builder,
                      std::span<const Objective> objectives,
                      std::span<const sat::Lit> assumptions) {
    LexResult result;
    for (const Objective& objective : objectives) {
        bool unknown = false;
        const auto cost =
            minimizeAndLock(builder, objective.softs, assumptions, &unknown);
        if (!cost.has_value()) {
            // infeasible (or interrupted before a model): costs empty/partial
            result.unknown = unknown;
            return result;
        }
        util::logAt(util::LogLevel::Debug, "lex: objective '", objective.name,
                    "' optimal cost ", *cost);
        result.costs.push_back(*cost);
        if (unknown) {
            // Best-effort bound at this level; deeper levels would optimize
            // against an unproven lock, so stop here with what we have.
            result.unknown = true;
            break;
        }
    }
    result.feasible = true;
    // When there are no objectives at all, still report hard feasibility.
    if (objectives.empty()) {
        const sat::SolveResult r = builder.solver().solve(assumptions);
        result.feasible = r == sat::SolveResult::Sat;
        result.unknown = r == sat::SolveResult::Unknown;
    }
    return result;
}

} // namespace lar::opt
