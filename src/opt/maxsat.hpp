// Weighted MaxSAT and lexicographic multi-objective optimization.
//
// The reasoning layer turns conditional partial-order preferences ("Snap is
// better than Linux on throughput when load ≥ 40 Gbps") into weighted soft
// constraints and optimizes them per objective, in the priority order the
// architect declares (Listing 3: Optimize(latency > Hardware cost >
// monitoring)). The optimizer runs a linear SAT→UNSAT search over an
// incremental Generalized-Totalizer objective counter: each improving model
// tightens the bound by assumption, and the final bound is locked as a hard
// constraint before the next objective level runs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "encode/cnf_builder.hpp"
#include "encode/pb.hpp"

namespace lar::opt {

/// A soft constraint: pay `weight` whenever `lit` is false in the model.
/// Softs sharing a non-negative `exclusiveGroup` are guaranteed by the
/// caller to have at most one *violated* member at a time (e.g. penalties
/// attached to an exactly-one selector); the objective counter exploits this
/// to stay linear instead of enumerating subset sums.
struct SoftConstraint {
    sat::Lit lit;
    std::int64_t weight = 1;
    int exclusiveGroup = -1;
};

/// One lexicographic level: minimize the total weight of violated softs.
struct Objective {
    std::string name;
    std::vector<SoftConstraint> softs;
};

/// Costs per level (same order as the objectives); empty when infeasible.
/// `unknown` is set when a solver budget/deadline/cancellation interrupted
/// the search: either nothing is proven (feasible == false) or the reported
/// costs are a best-effort bound rather than a proven optimum (anytime
/// behaviour — the model for the best bound found so far stays loaded, and
/// remaining objective levels are skipped).
struct LexResult {
    bool feasible = false;
    bool unknown = false;
    std::vector<std::int64_t> costs;
};

/// Minimizes the violation cost of `softs` subject to the solver's hard
/// clauses and `assumptions`. Returns std::nullopt when the hard part is
/// unsatisfiable; otherwise the optimal cost, with the optimal model loaded
/// in the solver and the bound locked in as a hard constraint (so later
/// optimization levels preserve it).
///
/// When the solver returns Unknown (budget, deadline, or cancellation),
/// `*unknown` is set (if provided) and the search degrades gracefully:
/// Unknown before any model → std::nullopt (feasibility unproven); Unknown
/// mid-improvement → the best cost found so far, locked as usual.
std::optional<std::int64_t> minimizeAndLock(encode::CnfBuilder& builder,
                                            std::span<const SoftConstraint> softs,
                                            std::span<const sat::Lit> assumptions = {},
                                            bool* unknown = nullptr);

/// Runs minimizeAndLock for each objective in order.
LexResult optimizeLex(encode::CnfBuilder& builder,
                      std::span<const Objective> objectives,
                      std::span<const sat::Lit> assumptions = {});

} // namespace lar::opt
