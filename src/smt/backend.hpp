// Abstract solver backend consumed by the reasoning engine.
//
// Two implementations exist: CdclBackend (the from-scratch CDCL solver with
// CNF encodings and MaxSAT) and Z3Backend (native Z3 C++ API — the solver
// family the paper's prototype used). They are interchangeable and the test
// suite cross-checks their verdicts on random formulas.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sat/solver.hpp"
#include "smt/formula.hpp"

namespace lar::smt {

enum class CheckStatus { Sat, Unsat, Unknown };

/// Soft constraint: pay `weight` when `formula` is violated. Softs sharing a
/// non-negative `exclusiveGroup` must have at most one violated member in
/// any model (caller-guaranteed); backends may exploit this to keep their
/// objective counters small.
struct SoftItem {
    NodeId formula = kInvalidNode;
    std::int64_t weight = 1;
    int exclusiveGroup = -1;
};

/// One lexicographic objective level (earlier levels dominate later ones).
struct ObjectiveSpec {
    std::string name;
    std::vector<SoftItem> softs;
};

/// Result of an optimize() call: per-level violation costs, in order.
/// `unknown` is set when a budget/deadline/cancellation interrupted the
/// search — either nothing is proven (feasible == false) or the costs are a
/// best-effort bound with the matching model loaded (CDCL backend only; Z3
/// reports interrupted optimization as infeasible+unknown).
struct OptimizeResult {
    bool feasible = false;
    bool unknown = false;
    std::vector<std::int64_t> costs;
};

/// Unsat-core: which tracked hard constraints and which assumptions clash.
struct CoreResult {
    std::vector<int> tracks;            ///< track ids passed to addHard
    std::vector<NodeId> assumptions;    ///< failing members of the assumption set
};

/// Cumulative portfolio figures for a backend that races several workers
/// (see PortfolioBackend); single-worker backends report std::nullopt from
/// Backend::portfolioStats().
struct PortfolioStats {
    int workers = 1;              ///< racing solver configurations
    int races = 0;                ///< check/optimize calls fanned out so far
    int winner = -1;              ///< worker index that won the last race
    std::string winnerConfig;     ///< diversity-profile name of that worker
    std::uint64_t clausesShared = 0;   ///< published into the exchange
    std::uint64_t clausesImported = 0; ///< integrated by importing workers
    std::uint64_t clausesLost = 0;     ///< overwritten/over-long, never imported
    double cancelLatencyMs = 0.0; ///< last race: verdict → all workers stopped
};

class Backend {
public:
    virtual ~Backend() = default;

    /// Asserts `formula` as a hard constraint. When `track` >= 0 the
    /// constraint participates in unsat cores under that id (tracked
    /// constraints are enforced through a selector, so they cost one extra
    /// assumption per check).
    virtual void addHard(NodeId formula, int track = -1) = 0;

    /// Satisfiability under assumptions. Each assumption must be a Var or
    /// Not(Var) node.
    virtual CheckStatus check(std::span<const NodeId> assumptions = {}) = 0;

    /// Like check(), but only the tracked constraints whose ids appear in
    /// `activeTracks` are enforced (untracked constraints always hold).
    /// Used for deletion-based unsat-core minimization.
    virtual CheckStatus checkWithTracks(std::span<const int> activeTracks,
                                        std::span<const NodeId> assumptions = {}) = 0;

    /// Value of a Var node in the model of the last Sat check/optimize.
    [[nodiscard]] virtual bool modelValue(NodeId var) const = 0;

    /// After an Unsat check: the conflicting tracked constraints/assumptions.
    [[nodiscard]] virtual CoreResult unsatCore() const = 0;

    /// Lexicographic optimization under assumptions. On success the model of
    /// the optimum is available through modelValue(). Backends may leave the
    /// optimum locked in (the engine uses one backend instance per query).
    virtual OptimizeResult optimize(std::span<const ObjectiveSpec> objectives,
                                    std::span<const NodeId> assumptions = {}) = 0;

    /// Cumulative search statistics for this backend instance (the engine
    /// uses one instance per query, so these read as per-query figures).
    /// The CDCL backend reports exact counters; Z3 maps what its statistics
    /// API exposes (best effort — unknown counters stay zero).
    [[nodiscard]] virtual sat::SolverStats stats() const = 0;

    /// Portfolio race figures; std::nullopt for single-worker backends.
    [[nodiscard]] virtual std::optional<PortfolioStats> portfolioStats() const {
        return std::nullopt;
    }

    /// Why the last check/optimize stopped without a definitive verdict
    /// (deadline vs. budget vs. cancellation). StopReason::None when the last
    /// call was definitive, or for backends that don't track it (Z3).
    [[nodiscard]] virtual sat::StopReason lastStopReason() const {
        return sat::StopReason::None;
    }

    // -- warm-start snapshots (CDCL single-worker backend only) --------------
    // Defaults make snapshots a no-op: Z3 has no exportable learnt state and
    // the portfolio backend's workers diverge from the replay baseline, so
    // only CdclBackend overrides these (see sat::SolverSnapshot for the
    // soundness argument).

    /// Records the current clause database as the snapshot baseline. Called
    /// by the reasoning layer right after replaying a compilation's hard
    /// assertions, before any query-specific clauses.
    virtual void markSnapshotBaseline() {}

    /// Exports heuristic state + short learnt clauses, or an empty snapshot
    /// when the backend doesn't support it / the clause DB grew past the
    /// baseline.
    [[nodiscard]] virtual sat::SolverSnapshot exportSnapshot() const {
        return {};
    }

    /// Imports a snapshot exported from an identically-built backend;
    /// returns the number of clauses integrated (0 = refused/unsupported).
    virtual std::size_t importSnapshot(const sat::SolverSnapshot&) { return 0; }

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Kinds of backends available in this build.
enum class BackendKind { Cdcl, Z3 };

/// Per-instance knobs shared by all backends, mapped from
/// reason::QueryOptions by the reasoning layer.
struct BackendConfig {
    /// Nonzero: seed for randomized search aspects (initial phases for the
    /// CDCL backend, random_seed for Z3). 0 keeps the deterministic default.
    std::uint64_t seed = 0;
    /// Wall-clock budget per check/optimize call in milliseconds; 0 = none.
    /// On exhaustion checks return CheckStatus::Unknown and optimize()
    /// reports infeasible=false.
    int timeoutMs = 0;
    /// Conflict budget per solver call; -1 = unlimited. CDCL maps this to
    /// SolverOptions::conflictBudget; Z3 to max_conflicts where the linked
    /// libz3 supports it (best effort).
    std::int64_t conflictBudget = -1;
    /// Propagation budget per solver call; -1 = unlimited (CDCL only).
    std::int64_t propagationBudget = -1;
    /// Learnt-clause arena cap in MiB; -1 = unlimited. CDCL enforces it via
    /// SolverOptions::memoryBudgetMb; Z3 maps to max_memory (best effort).
    std::int64_t memoryBudgetMb = -1;
    /// Cooperative cancellation flag, polled on the deadline cadence by the
    /// CDCL solver. The Z3 backend checks it at call entry only (coarse).
    /// Owned by the caller; may be flipped from any thread.
    const std::atomic<bool>* cancelFlag = nullptr;
    /// Fire `progressFn` every this many conflicts during CDCL search
    /// (0 = never). Observation only: verdicts, models, and costs are
    /// identical with probes on or off. Z3 exposes no equivalent hook, so
    /// the Z3 backend ignores both fields and reports search counters only
    /// through stats().
    int progressEveryConflicts = 0;
    std::function<void(const sat::SolverProgress&)> progressFn;
    /// Portfolio width: number of diverse CDCL workers racing each
    /// check/optimize call, first definitive verdict wins (≤ 1 = classic
    /// single-threaded solving). Honoured by the CDCL backend only — Z3
    /// ignores it. makeBackend(BackendKind::Cdcl, …) returns a
    /// PortfolioBackend when this exceeds 1.
    int portfolioWorkers = 1;
    /// Run CDCL inprocessing (subsumption, vivification, probing,
    /// equivalence reduction, bounded variable elimination) before search
    /// and at restart boundaries. Verdict-preserving; Z3 ignores it.
    bool simplify = true;
    /// Tick budget per inprocessing round; 0 keeps the solver default.
    std::int64_t simplifyTickBudget = 0;
};

/// True when the library was built with Z3 support.
[[nodiscard]] bool haveZ3();

/// Creates a backend over `store`. Throws LogicError for BackendKind::Z3
/// when the library was built without Z3.
[[nodiscard]] std::unique_ptr<Backend> makeBackend(BackendKind kind,
                                                   const FormulaStore& store,
                                                   const BackendConfig& config = {});

} // namespace lar::smt
