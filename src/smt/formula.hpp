// Solver-neutral formula AST.
//
// The reasoning layer compiles knowledge-base rules into this AST; backends
// (our CDCL solver, native Z3) consume it. Nodes are interned in a
// FormulaStore arena and referenced by dense NodeId, so formulas are cheap
// to copy and share. The AST is deliberately small — propositional
// connectives plus linear pseudo-Boolean atoms — matching the paper's
// "simple predicate logic is already enough" position (§3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace lar::smt {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

enum class NodeKind : std::uint8_t { Const, Var, Not, And, Or, LinLeq };

/// One weighted term of a linear atom: coef · [var ≠ negated].
/// Terms sharing a non-negative `group` are mutually exclusive (at most one
/// is true in any model) — an invariant the *caller* guarantees (e.g.
/// exactly-one selector variables). Backends may exploit it to keep
/// counting encodings linear.
struct LinTerm {
    std::int64_t coef = 1;
    NodeId var = kInvalidNode; ///< must reference a Var node
    bool negated = false;
    int group = -1;
};

struct Node {
    NodeKind kind = NodeKind::Const;
    bool constValue = false;                ///< Const
    std::string name;                       ///< Var
    std::vector<NodeId> children;           ///< Not (1), And, Or
    std::vector<LinTerm> terms;             ///< LinLeq
    std::int64_t bound = 0;                 ///< LinLeq: Σ terms ≤ bound
};

class FormulaStore {
public:
    FormulaStore();

    /// Constant true / false (interned singletons).
    [[nodiscard]] NodeId constant(bool value) const {
        return value ? trueId_ : falseId_;
    }

    /// Named boolean variable; repeated calls with the same name return the
    /// same node.
    NodeId var(const std::string& name);

    /// Looks up a variable by name without creating it.
    [[nodiscard]] std::optional<NodeId> findVar(const std::string& name) const;

    /// Negation (folds constants and double negation).
    NodeId mkNot(NodeId f);
    /// Conjunction (folds constants; empty → true; singleton → itself).
    NodeId mkAnd(std::vector<NodeId> children);
    /// Disjunction (folds constants; empty → false; singleton → itself).
    NodeId mkOr(std::vector<NodeId> children);
    NodeId mkAnd(NodeId a, NodeId b) { return mkAnd(std::vector<NodeId>{a, b}); }
    NodeId mkOr(NodeId a, NodeId b) { return mkOr(std::vector<NodeId>{a, b}); }
    NodeId mkImplies(NodeId a, NodeId b) { return mkOr(mkNot(a), b); }
    NodeId mkIff(NodeId a, NodeId b) {
        return mkAnd(mkImplies(a, b), mkImplies(b, a));
    }

    /// Σ coef_i·lit_i ≤ bound. Each term's var must be a Var node (or a Not
    /// of one, which is normalized into the negated flag); coefs must be > 0.
    NodeId mkLinLeq(std::vector<LinTerm> terms, std::int64_t bound);
    /// Σ coef_i·lit_i ≥ bound (rewritten to a LinLeq over complements).
    NodeId mkLinGeq(std::vector<LinTerm> terms, std::int64_t bound);

    /// Cardinality sugar over plain variables/negations.
    NodeId mkAtMost(std::span<const NodeId> lits, int k);
    NodeId mkAtLeast(std::span<const NodeId> lits, int k);
    NodeId mkExactly(std::span<const NodeId> lits, int k) {
        return mkAnd(mkAtMost(lits, k), mkAtLeast(lits, k));
    }

    [[nodiscard]] const Node& node(NodeId id) const {
        expects(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                "FormulaStore: invalid node id");
        return nodes_[static_cast<std::size_t>(id)];
    }

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }

    /// Variables in creation order (useful for model dumps).
    [[nodiscard]] const std::vector<NodeId>& variables() const { return vars_; }

    /// Renders `id` as a human-readable string (for explanations/tests).
    [[nodiscard]] std::string toString(NodeId id) const;

    /// Evaluates `id` under a full assignment (var NodeId → bool).
    [[nodiscard]] bool evaluate(NodeId id,
                                const std::unordered_map<NodeId, bool>& model) const;

    /// Normalizes a literal-like node: returns (varNode, negated) when `id`
    /// is a Var or Not(Var); nullopt otherwise.
    [[nodiscard]] std::optional<std::pair<NodeId, bool>> asLiteral(NodeId id) const;

private:
    NodeId addNode(Node n);

    std::vector<Node> nodes_;
    std::vector<NodeId> vars_;
    std::unordered_map<std::string, NodeId> varIndex_;
    NodeId trueId_ = kInvalidNode;
    NodeId falseId_ = kInvalidNode;
};

} // namespace lar::smt
