// Parallel portfolio over diverse CDCL workers with learnt-clause sharing.
//
// K CdclBackend instances hold the identical compiled formula (same addHard
// sequence over one FormulaStore → identical CNF, identical variable
// numbering) and race every check/optimize call under diverse
// configurations: different initial-phase seeds, restart cadences, VSIDS
// decay, and phase-saving switches. The first worker with a definitive
// verdict wins and cooperatively cancels its siblings through the shared
// race-cancel flag (the solvers' existing cancelFlag polling). Workers
// exchange short learnt clauses (LBD ≤ shareLbdMax or size ≤ shareSizeMax)
// through a bounded lock-free sat::ClauseExchange; imports are validated
// against the importing solver's level-0 assignment at restart boundaries.
//
// Soundness invariants:
//  * learnt clauses are implied by the clause database alone (never by the
//    assumptions of the call that learnt them), so sharing is sound exactly
//    while all workers hold identical clause databases;
//  * addHard() keeps the databases identical (every worker asserts the same
//    formula), so sharing stays on across incremental check() calls;
//  * optimize() workers add divergent bound clauses, so sharing is switched
//    off permanently before the first optimize() fan-out;
//  * after an optimize() race only the winner holds the optimum locked in
//    (Backend contract), so from then on the portfolio collapses to that
//    sole worker — later addHard/check/optimize/model calls all forward to
//    it, which is exactly the enumeration (blocking-clause) pattern.
//
// The wrapper satisfies smt::Backend, so Engine, WhatIfSession, unsat cores
// and optimization work unchanged on top of it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "sat/clause_exchange.hpp"
#include "smt/backend.hpp"
#include "smt/cdcl_backend.hpp"

namespace lar::smt {

class PortfolioBackend final : public Backend {
public:
    /// Hard cap on racing workers (exchange sizing; more buys nothing on
    /// commodity hosts).
    static constexpr int kMaxWorkers = 16;

    /// Uses `config.portfolioWorkers` workers (clamped to [2, kMaxWorkers]).
    PortfolioBackend(const FormulaStore& store, const BackendConfig& config);
    ~PortfolioBackend() override = default;

    void addHard(NodeId formula, int track = -1) override;
    CheckStatus check(std::span<const NodeId> assumptions = {}) override;
    CheckStatus checkWithTracks(std::span<const int> activeTracks,
                                std::span<const NodeId> assumptions = {}) override;
    [[nodiscard]] bool modelValue(NodeId var) const override;
    [[nodiscard]] CoreResult unsatCore() const override;
    OptimizeResult optimize(std::span<const ObjectiveSpec> objectives,
                            std::span<const NodeId> assumptions = {}) override;
    /// The last race winner's counters (worker 0 before any race) — the
    /// portfolio-wide aggregate lives in portfolioStats().
    [[nodiscard]] sat::SolverStats stats() const override;
    [[nodiscard]] std::optional<PortfolioStats> portfolioStats() const override;
    /// The stats worker's stop reason: after a race without a definitive
    /// verdict every worker stopped for the same class of reason (shared
    /// deadline/cancel flag), so one worker's answer stands in for all.
    [[nodiscard]] sat::StopReason lastStopReason() const override {
        return workers_[static_cast<std::size_t>(statsWorker_)]->lastStopReason();
    }
    [[nodiscard]] std::string name() const override { return "cdcl-portfolio"; }

    /// Diversity-profile name applied to worker `i` ("base" for worker 0,
    /// which runs the stock configuration).
    [[nodiscard]] static const char* profileName(int i);

private:
    /// Runs `attempt` on every worker concurrently; the first to return
    /// true (definitive) wins and flips the race-cancel flag. Returns the
    /// winner index or -1 (nobody definitive). Relays the caller's
    /// cancelFlag into the race while waiting. Worker exceptions are
    /// rethrown only when no worker produced a definitive verdict.
    int race(const std::function<bool(CdclBackend&, int)>& attempt);
    /// Permanently stops clause exchange (called before optimize fan-out).
    void disableSharing();
    /// Collapses the portfolio onto `worker` (post-optimize): later calls
    /// forward to it, and its solver polls the caller's cancel flag again
    /// instead of the race-cancel flag the finished race left set.
    void becomeSoleWorker(int worker);

    std::vector<std::unique_ptr<CdclBackend>> workers_;
    std::unique_ptr<sat::ClauseExchange> exchange_;
    /// The flag every worker's solver polls; set by the race winner or
    /// relayed from the caller's BackendConfig::cancelFlag.
    std::atomic<bool> raceCancel_{false};
    const std::atomic<bool>* callerCancel_ = nullptr;
    int active_ = -1;      ///< ≥ 0: sole-worker mode (post-optimize)
    int statsWorker_ = 0;  ///< worker whose model/core/stats are current
    bool sharingEnabled_ = true;
    PortfolioStats pstats_;
};

} // namespace lar::smt
