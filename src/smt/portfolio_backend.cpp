#include "smt/portfolio_backend.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lar::smt {

namespace {

/// Search-diversity profiles, cycled over the workers. Worker 0 keeps the
/// stock configuration (and the caller's seed), so a portfolio degenerates
/// to the plain CDCL backend when every sibling is strictly slower.
struct Profile {
    const char* name;
    double varDecay;
    int restartBase;
    bool usePhaseSaving;
};

constexpr Profile kProfiles[] = {
    {"base", 0.95, 100, true},
    {"rapid-restarts", 0.95, 32, true},
    {"slow-decay", 0.99, 100, true},
    {"fast-decay", 0.85, 100, true},
    {"no-phase-saving", 0.95, 100, false},
    {"rapid-slow-decay", 0.99, 32, true},
    {"steady-restarts", 0.95, 512, true},
    {"fast-decay-rapid", 0.85, 32, false},
};
constexpr int kProfileCount = static_cast<int>(std::size(kProfiles));

} // namespace

const char* PortfolioBackend::profileName(int i) {
    return kProfiles[static_cast<std::size_t>(i % kProfileCount)].name;
}

PortfolioBackend::PortfolioBackend(const FormulaStore& store,
                                   const BackendConfig& config)
    : callerCancel_(config.cancelFlag) {
    const int n = std::clamp(config.portfolioWorkers, 2, kMaxWorkers);
    exchange_ = std::make_unique<sat::ClauseExchange>(n);
    // Seeds diverge per worker but stay a pure function of the caller's
    // seed, so portfolio runs are reproducible modulo race timing.
    std::uint64_t seedState = config.seed ^ 0xb5297a4d3f84d5a1ULL;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        BackendConfig workerConfig = config;
        workerConfig.cancelFlag = &raceCancel_;
        if (i > 0) {
            workerConfig.seed = util::splitmix64(seedState);
            // Progress probes observe the canonical search only: sibling
            // workers stay silent so the feed is one coherent stream.
            workerConfig.progressEveryConflicts = 0;
            workerConfig.progressFn = nullptr;
        }
        auto worker = std::make_unique<CdclBackend>(store, workerConfig);
        const Profile& profile =
            kProfiles[static_cast<std::size_t>(i % kProfileCount)];
        sat::SolverOptions opts = worker->solverOptions();
        opts.varDecay = profile.varDecay;
        opts.restartBase = profile.restartBase;
        opts.usePhaseSaving = profile.usePhaseSaving;
        opts.exportClauseFn = [this, i](std::span<const sat::Lit> lits, int lbd) {
            exchange_->publish(i, lits, lbd);
        };
        opts.importClausesFn = [this, i](std::vector<sat::ImportedClause>& out) {
            exchange_->collect(i, out);
        };
        worker->setSolverOptions(opts);
        workers_.push_back(std::move(worker));
    }
    pstats_.workers = n;
}

void PortfolioBackend::disableSharing() {
    if (!sharingEnabled_) return;
    sharingEnabled_ = false;
    for (auto& worker : workers_) {
        sat::SolverOptions opts = worker->solverOptions();
        opts.exportClauseFn = nullptr;
        opts.importClausesFn = nullptr;
        worker->setSolverOptions(opts);
    }
}

void PortfolioBackend::addHard(NodeId formula, int track) {
    if (active_ >= 0) {
        workers_[static_cast<std::size_t>(active_)]->addHard(formula, track);
        return;
    }
    // Same assertion into every worker keeps the clause databases identical
    // — the invariant that makes clause sharing sound.
    for (auto& worker : workers_) worker->addHard(formula, track);
}

int PortfolioBackend::race(const std::function<bool(CdclBackend&, int)>& attempt) {
    // Reset the previous race's cancellation — but a call that arrives
    // already cancelled starts cancelled, so workers stop at their first
    // poll instead of getting a relay-interval head start.
    raceCancel_.store(callerCancel_ != nullptr &&
                          callerCancel_->load(std::memory_order_relaxed),
                      std::memory_order_release);
    const std::size_t n = workers_.size();
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t done = 0;
    int winner = -1;
    double winnerAtMs = -1.0;
    std::vector<std::exception_ptr> errors(n);
    const util::Stopwatch timer;
    // Worker 0 inherits the caller's observability context (its spans are
    // the canonical ones); siblings run context-free so the trace tree has
    // a single writer.
    const obs::Context obsContext = obs::currentContext();

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            bool definitive = false;
            try {
                if (i == 0) {
                    const obs::ScopedContext scoped(obsContext);
                    definitive = attempt(*workers_[i], static_cast<int>(i));
                } else {
                    definitive = attempt(*workers_[i], static_cast<int>(i));
                }
            } catch (...) {
                errors[i] = std::current_exception();
            }
            bool won = false;
            {
                const std::lock_guard<std::mutex> lock(mutex);
                if (definitive && winner < 0) {
                    winner = static_cast<int>(i);
                    winnerAtMs = timer.millis();
                    won = true;
                }
                ++done;
            }
            if (won) raceCancel_.store(true, std::memory_order_release);
            cv.notify_all();
        });
    }

    {
        // Relay the caller's cancellation into the race while waiting.
        std::unique_lock<std::mutex> lock(mutex);
        while (done < n) {
            cv.wait_for(lock, std::chrono::milliseconds(2));
            if (callerCancel_ != nullptr &&
                callerCancel_->load(std::memory_order_relaxed))
                raceCancel_.store(true, std::memory_order_release);
        }
    }
    for (auto& thread : threads) thread.join();
    const double allDoneMs = timer.millis();

    ++pstats_.races;
    if (winner >= 0) {
        statsWorker_ = winner;
        pstats_.winner = winner;
        pstats_.winnerConfig = profileName(winner);
        pstats_.cancelLatencyMs = std::max(0.0, allDoneMs - winnerAtMs);
        return winner;
    }
    // Nobody answered: surface a worker failure if one occurred (a winner
    // would have masked it — portfolio failure isolation).
    for (auto& error : errors)
        if (error) std::rethrow_exception(error);
    return -1;
}

CheckStatus PortfolioBackend::check(std::span<const NodeId> assumptions) {
    if (active_ >= 0)
        return workers_[static_cast<std::size_t>(active_)]->check(assumptions);
    std::vector<CheckStatus> statuses(workers_.size(), CheckStatus::Unknown);
    const int winner = race([&](CdclBackend& backend, int i) {
        const CheckStatus status = backend.check(assumptions);
        statuses[static_cast<std::size_t>(i)] = status;
        return status != CheckStatus::Unknown;
    });
    return winner >= 0 ? statuses[static_cast<std::size_t>(winner)]
                       : CheckStatus::Unknown;
}

CheckStatus PortfolioBackend::checkWithTracks(std::span<const int> activeTracks,
                                              std::span<const NodeId> assumptions) {
    if (active_ >= 0)
        return workers_[static_cast<std::size_t>(active_)]->checkWithTracks(
            activeTracks, assumptions);
    std::vector<CheckStatus> statuses(workers_.size(), CheckStatus::Unknown);
    const int winner = race([&](CdclBackend& backend, int i) {
        const CheckStatus status = backend.checkWithTracks(activeTracks, assumptions);
        statuses[static_cast<std::size_t>(i)] = status;
        return status != CheckStatus::Unknown;
    });
    return winner >= 0 ? statuses[static_cast<std::size_t>(winner)]
                       : CheckStatus::Unknown;
}

OptimizeResult PortfolioBackend::optimize(std::span<const ObjectiveSpec> objectives,
                                          std::span<const NodeId> assumptions) {
    if (active_ >= 0)
        return workers_[static_cast<std::size_t>(active_)]->optimize(objectives,
                                                                     assumptions);
    // Optimizing workers add divergent bound clauses, which would break the
    // identical-database invariant sharing relies on — sharing ends here.
    disableSharing();
    std::vector<OptimizeResult> results(workers_.size());
    const int winner = race([&](CdclBackend& backend, int i) {
        results[static_cast<std::size_t>(i)] = backend.optimize(objectives,
                                                                assumptions);
        // Definitive = proven optimum or proven infeasible; an interrupted
        // best-effort bound must not preempt a sibling's proof.
        return !results[static_cast<std::size_t>(i)].unknown;
    });
    // Each worker now holds its own bound clauses; only one can serve all
    // later calls (the Backend contract leaves the optimum locked in).
    if (winner >= 0) {
        becomeSoleWorker(winner);
        return results[static_cast<std::size_t>(winner)];
    }
    // No proven result: keep the best anytime bound (feasible beats not;
    // then lexicographically smaller costs).
    std::size_t best = 0;
    for (std::size_t i = 1; i < results.size(); ++i) {
        const OptimizeResult& a = results[i];
        const OptimizeResult& b = results[best];
        if (a.feasible != b.feasible ? a.feasible : (a.feasible && a.costs < b.costs))
            best = i;
    }
    becomeSoleWorker(static_cast<int>(best));
    return results[best];
}

void PortfolioBackend::becomeSoleWorker(int worker) {
    active_ = worker;
    statsWorker_ = worker;
    // Forwarded calls no longer pass through race(), which is what resets
    // the race-cancel flag — left alone, the winner's own cancellation of
    // its siblings would instantly cancel every later call. Poll the
    // caller's flag (possibly none) directly instead.
    auto& sole = *workers_[static_cast<std::size_t>(worker)];
    sat::SolverOptions opts = sole.solverOptions();
    opts.cancelFlag = callerCancel_;
    sole.setSolverOptions(opts);
}

bool PortfolioBackend::modelValue(NodeId var) const {
    return workers_[static_cast<std::size_t>(statsWorker_)]->modelValue(var);
}

CoreResult PortfolioBackend::unsatCore() const {
    return workers_[static_cast<std::size_t>(statsWorker_)]->unsatCore();
}

sat::SolverStats PortfolioBackend::stats() const {
    return workers_[static_cast<std::size_t>(statsWorker_)]->stats();
}

std::optional<PortfolioStats> PortfolioBackend::portfolioStats() const {
    PortfolioStats stats = pstats_;
    const sat::ClauseExchange::Stats exchange = exchange_->stats();
    stats.clausesShared = exchange.published;
    stats.clausesImported = exchange.collected;
    stats.clausesLost = exchange.lost + exchange.rejected;
    return stats;
}

} // namespace lar::smt
