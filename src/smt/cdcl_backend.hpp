// Backend over the from-scratch CDCL solver (src/sat) with CNF encodings
// (src/encode) and linear-search MaxSAT (src/opt).
#pragma once

#include <unordered_map>

#include "encode/cnf_builder.hpp"
#include "sat/solver.hpp"
#include "smt/backend.hpp"

namespace lar::smt {

class CdclBackend final : public Backend {
public:
    explicit CdclBackend(const FormulaStore& store, const BackendConfig& config = {})
        : store_(&store) {
        sat::SolverOptions opts;
        opts.randomSeed = config.seed;
        opts.timeBudgetMs = config.timeoutMs > 0 ? config.timeoutMs : -1;
        opts.conflictBudget = config.conflictBudget;
        opts.propagationBudget = config.propagationBudget;
        opts.memoryBudgetMb = config.memoryBudgetMb;
        opts.cancelFlag = config.cancelFlag;
        opts.progressEvery = config.progressEveryConflicts;
        opts.progressFn = config.progressFn;
        opts.simplify.enable = config.simplify;
        if (config.simplifyTickBudget > 0)
            opts.simplify.tickBudget = config.simplifyTickBudget;
        solver_.setOptions(opts);
    }

    void addHard(NodeId formula, int track = -1) override;
    CheckStatus check(std::span<const NodeId> assumptions = {}) override;
    CheckStatus checkWithTracks(std::span<const int> activeTracks,
                                std::span<const NodeId> assumptions = {}) override;
    [[nodiscard]] bool modelValue(NodeId var) const override;
    [[nodiscard]] CoreResult unsatCore() const override { return lastCore_; }
    OptimizeResult optimize(std::span<const ObjectiveSpec> objectives,
                            std::span<const NodeId> assumptions = {}) override;
    [[nodiscard]] std::string name() const override { return "cdcl"; }
    [[nodiscard]] sat::SolverStats stats() const override { return solver_.stats(); }
    [[nodiscard]] sat::StopReason lastStopReason() const override {
        return solver_.stopReason();
    }
    void markSnapshotBaseline() override { solver_.markSnapshotBaseline(); }
    [[nodiscard]] sat::SolverSnapshot exportSnapshot() const override {
        return solver_.exportSnapshot();
    }
    std::size_t importSnapshot(const sat::SolverSnapshot& snapshot) override {
        return solver_.importSnapshot(snapshot);
    }

    /// Underlying solver knobs (diversity profile, clause-sharing hooks).
    /// Read with solverOptions(), write with setSolverOptions() — the solver
    /// rejects option changes while a solve() is in flight (LogicError), per
    /// its threading contract (solver.hpp).
    [[nodiscard]] const sat::SolverOptions& solverOptions() const {
        return solver_.options();
    }
    void setSolverOptions(const sat::SolverOptions& opts) {
        solver_.setOptions(opts);
    }

private:
    /// Polarity bits for occurrence analysis of LinLeq atoms.
    enum : int { kPos = 1, kNeg = 2 };

    struct LinLeqGate {
        sat::Lit out = sat::kUndefLit;
        bool forwardBuilt = false;  ///< out → (Σ ≤ bound)
        bool backwardBuilt = false; ///< ¬out → (Σ ≥ bound+1)
    };

    sat::Lit compile(NodeId id);
    sat::Lit compileLinLeq(NodeId id);
    /// Emits the counter directions required by the node's polarity mask.
    void emitLinLeqDirections(NodeId id);
    /// Records polarity of every LinLeq under `id`; upgrades already-built
    /// gates when a new polarity appears.
    void notePolarity(NodeId id, int mask);
    sat::Lit assumptionLit(NodeId id);
    std::vector<sat::Lit> buildAssumptionLits(std::span<const NodeId> assumptions);
    void captureCore(std::span<const NodeId> assumptions);

    const FormulaStore* store_;
    sat::Solver solver_;
    encode::CnfBuilder builder_{solver_};
    std::unordered_map<NodeId, sat::Lit> cache_;
    std::unordered_map<NodeId, int> polarity_;
    std::unordered_map<NodeId, LinLeqGate> linleqGates_;
    std::vector<std::pair<int, sat::Lit>> selectors_; ///< (track id, selector)
    CoreResult lastCore_;
};

} // namespace lar::smt
