#include "smt/cdcl_backend.hpp"

#include <algorithm>
#include <map>

#include "encode/pb.hpp"
#include "obs/span.hpp"
#include "opt/maxsat.hpp"
#include "util/error.hpp"

namespace lar::smt {

sat::Lit CdclBackend::compile(NodeId id) {
    if (const auto it = cache_.find(id); it != cache_.end()) return it->second;
    const Node& n = store_->node(id);
    sat::Lit out = sat::kUndefLit;
    switch (n.kind) {
        case NodeKind::Const:
            out = n.constValue ? builder_.trueLit() : builder_.falseLit();
            break;
        case NodeKind::Var:
            out = builder_.newLit();
            // KB-facing variable: modelValue()/cores/what-if deltas address
            // it directly, so inprocessing must never eliminate it.
            solver_.freeze(out.var());
            break;
        case NodeKind::Not:
            out = ~compile(n.children[0]);
            break;
        case NodeKind::And:
        case NodeKind::Or: {
            std::vector<sat::Lit> kids;
            kids.reserve(n.children.size());
            for (const NodeId c : n.children) kids.push_back(compile(c));
            out = n.kind == NodeKind::And ? builder_.mkAnd(kids) : builder_.mkOr(kids);
            break;
        }
        case NodeKind::LinLeq:
            out = compileLinLeq(id);
            break;
    }
    cache_.emplace(id, out);
    return out;
}

sat::Lit CdclBackend::compileLinLeq(NodeId id) {
    const Node& n = store_->node(id);
    // The FormulaStore folds trivial bounds, but stay defensive.
    std::int64_t total = 0;
    for (const LinTerm& t : n.terms) total += t.coef;
    if (n.bound >= total) return builder_.trueLit();
    if (n.bound < 0) return builder_.falseLit();

    LinLeqGate& gate = linleqGates_[id];
    gate.out = builder_.newLit();
    emitLinLeqDirections(id);
    return gate.out;
}

void CdclBackend::emitLinLeqDirections(NodeId id) {
    auto gateIt = linleqGates_.find(id);
    if (gateIt == linleqGates_.end()) return; // folded to a constant
    LinLeqGate& gate = gateIt->second;
    const int mask = polarity_.count(id) ? polarity_[id] : (kPos | kNeg);
    const bool needForward = (mask & kPos) != 0 && !gate.forwardBuilt;
    const bool needBackward = (mask & kNeg) != 0 && !gate.backwardBuilt;
    if (!needForward && !needBackward) return;

    const Node& n = store_->node(id);
    std::int64_t total = 0;
    std::vector<encode::PbTerm> flat;
    std::map<int, std::vector<encode::PbTerm>> grouped;
    std::vector<std::vector<encode::PbTerm>> groups;
    flat.reserve(n.terms.size());
    for (const LinTerm& t : n.terms) {
        const sat::Lit varLit = compile(t.var);
        const sat::Lit lit = t.negated ? ~varLit : varLit;
        const encode::PbTerm term{t.coef, lit};
        flat.push_back(term);
        if (t.group >= 0)
            grouped[t.group].push_back(term);
        else
            groups.push_back({term});
        total += t.coef;
    }
    for (auto& [groupId, members] : grouped) groups.push_back(std::move(members));

    if (needForward) {
        // out → Σ ≤ bound: counter detects Σ ≥ bound+1; exclusivity groups
        // keep it linear for selector-style inputs.
        const encode::PbSum forward(
            builder_, std::span<const std::vector<encode::PbTerm>>(groups),
            /*clampAt=*/n.bound + 1);
        builder_.addClause(~gate.out, forward.atMostLit(builder_, n.bound));
        gate.forwardBuilt = true;
    }
    if (needBackward) {
        // ¬out → Σ ≥ bound+1 ⇔ Σ complements ≤ total−bound−1. Complements
        // are not exclusive, so this uses the flat construction.
        std::vector<encode::PbTerm> complements;
        complements.reserve(flat.size());
        for (const encode::PbTerm& t : flat) complements.push_back({t.weight, ~t.lit});
        const encode::PbSum backward(builder_, complements,
                                     /*clampAt=*/total - n.bound);
        builder_.addClause(gate.out,
                           backward.atMostLit(builder_, total - n.bound - 1));
        gate.backwardBuilt = true;
    }
}

void CdclBackend::notePolarity(NodeId id, int mask) {
    const Node& n = store_->node(id);
    switch (n.kind) {
        case NodeKind::Const:
        case NodeKind::Var: return;
        case NodeKind::Not:
            notePolarity(n.children[0],
                         ((mask & kPos) != 0 ? kNeg : 0) |
                             ((mask & kNeg) != 0 ? kPos : 0));
            return;
        case NodeKind::And:
        case NodeKind::Or:
            for (const NodeId c : n.children) notePolarity(c, mask);
            return;
        case NodeKind::LinLeq: {
            const int before = polarity_.count(id) ? polarity_[id] : 0;
            const int after = before | mask;
            if (after == before) return;
            polarity_[id] = after;
            // Upgrade an already-compiled gate with the new direction.
            if (cache_.count(id)) emitLinLeqDirections(id);
            return;
        }
    }
}

void CdclBackend::addHard(NodeId formula, int track) {
    notePolarity(formula, kPos);
    const sat::Lit f = compile(formula);
    if (track < 0) {
        builder_.assertLit(f);
        return;
    }
    const sat::Lit selector = builder_.newLit();
    // Selectors are assumed on every check; eliminating one between solves
    // would silently disable its track.
    solver_.freeze(selector.var());
    builder_.assertImplies(selector, f);
    selectors_.emplace_back(track, selector);
}

sat::Lit CdclBackend::assumptionLit(NodeId id) {
    const auto lit = store_->asLiteral(id);
    expects(lit.has_value(), "CdclBackend: assumption must be a (negated) variable");
    const sat::Lit base = compile(lit->first);
    return lit->second ? ~base : base;
}

std::vector<sat::Lit> CdclBackend::buildAssumptionLits(
    std::span<const NodeId> assumptions) {
    std::vector<sat::Lit> lits;
    lits.reserve(selectors_.size() + assumptions.size());
    for (const auto& [track, selector] : selectors_) lits.push_back(selector);
    for (const NodeId a : assumptions) lits.push_back(assumptionLit(a));
    return lits;
}

void CdclBackend::captureCore(std::span<const NodeId> assumptions) {
    lastCore_ = {};
    const std::vector<sat::Lit>& core = solver_.unsatCore();
    for (const sat::Lit failed : core) {
        bool matched = false;
        for (const auto& [track, selector] : selectors_) {
            if (selector == failed) {
                lastCore_.tracks.push_back(track);
                matched = true;
                break;
            }
        }
        if (matched) continue;
        for (const NodeId a : assumptions) {
            if (assumptionLit(a) == failed) {
                lastCore_.assumptions.push_back(a);
                break;
            }
        }
    }
}

CheckStatus CdclBackend::check(std::span<const NodeId> assumptions) {
    const obs::Span span("check");
    const std::vector<sat::Lit> lits = buildAssumptionLits(assumptions);
    switch (solver_.solve(lits)) {
        case sat::SolveResult::Sat: return CheckStatus::Sat;
        case sat::SolveResult::Unknown: return CheckStatus::Unknown;
        case sat::SolveResult::Unsat:
            captureCore(assumptions);
            return CheckStatus::Unsat;
    }
    return CheckStatus::Unknown;
}

CheckStatus CdclBackend::checkWithTracks(std::span<const int> activeTracks,
                                         std::span<const NodeId> assumptions) {
    const obs::Span span("check");
    std::vector<sat::Lit> lits;
    lits.reserve(activeTracks.size() + assumptions.size());
    for (const auto& [track, selector] : selectors_) {
        if (std::find(activeTracks.begin(), activeTracks.end(), track) !=
            activeTracks.end())
            lits.push_back(selector);
    }
    for (const NodeId a : assumptions) lits.push_back(assumptionLit(a));
    switch (solver_.solve(lits)) {
        case sat::SolveResult::Sat: return CheckStatus::Sat;
        case sat::SolveResult::Unknown: return CheckStatus::Unknown;
        case sat::SolveResult::Unsat:
            captureCore(assumptions);
            return CheckStatus::Unsat;
    }
    return CheckStatus::Unknown;
}

bool CdclBackend::modelValue(NodeId var) const {
    expects(store_->node(var).kind == NodeKind::Var,
            "CdclBackend::modelValue: not a variable");
    const auto it = cache_.find(var);
    if (it == cache_.end()) return false; // variable absent from the formula
    return solver_.modelValue(it->second);
}

OptimizeResult CdclBackend::optimize(std::span<const ObjectiveSpec> objectives,
                                     std::span<const NodeId> assumptions) {
    const obs::Span span("optimize");
    const std::vector<sat::Lit> assume = buildAssumptionLits(assumptions);

    std::vector<opt::Objective> levels;
    levels.reserve(objectives.size());
    for (const ObjectiveSpec& spec : objectives) {
        opt::Objective level;
        level.name = spec.name;
        level.softs.reserve(spec.softs.size());
        for (const SoftItem& soft : spec.softs) {
            notePolarity(soft.formula, kPos);
            level.softs.push_back(
                {compile(soft.formula), soft.weight, soft.exclusiveGroup});
        }
        levels.push_back(std::move(level));
    }

    const opt::LexResult lex = opt::optimizeLex(builder_, levels, assume);
    OptimizeResult result;
    result.feasible = lex.feasible;
    result.unknown = lex.unknown;
    result.costs = lex.costs;
    // Interrupted searches proved nothing, so there is no core to capture.
    if (!lex.feasible && !lex.unknown) captureCore(assumptions);
    return result;
}

} // namespace lar::smt
