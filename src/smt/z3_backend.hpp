// Backend over the native Z3 C++ API (the paper's solver substrate).
// Compiled only when the build finds libz3; see smt/backend.hpp::haveZ3().
#pragma once

#include "smt/backend.hpp"

#if defined(LAR_HAVE_Z3)

#include <memory>
#include <unordered_map>

#include <z3++.h>

namespace lar::smt {

class Z3Backend final : public Backend {
public:
    explicit Z3Backend(const FormulaStore& store, const BackendConfig& config = {});

    void addHard(NodeId formula, int track = -1) override;
    CheckStatus check(std::span<const NodeId> assumptions = {}) override;
    CheckStatus checkWithTracks(std::span<const int> activeTracks,
                                std::span<const NodeId> assumptions = {}) override;
    [[nodiscard]] bool modelValue(NodeId var) const override;
    [[nodiscard]] CoreResult unsatCore() const override { return lastCore_; }
    OptimizeResult optimize(std::span<const ObjectiveSpec> objectives,
                            std::span<const NodeId> assumptions = {}) override;
    [[nodiscard]] std::string name() const override { return "z3"; }
    [[nodiscard]] sat::SolverStats stats() const override { return collected_; }

private:
    /// Coarse cancellation: checked at check/optimize entry only (Z3 offers
    /// no safe mid-search poll through the params API we rely on).
    [[nodiscard]] bool cancelled() const {
        return config_.cancelFlag != nullptr &&
               config_.cancelFlag->load(std::memory_order_relaxed);
    }

    z3::expr toExpr(NodeId id);
    z3::expr varExpr(NodeId id);
    void captureCore(const z3::expr_vector& core,
                     std::span<const NodeId> assumptions);
    /// Folds a z3::stats dump into collected_ (conflicts/decisions/...).
    void collectStats(const z3::stats& st);

    const FormulaStore* store_;
    BackendConfig config_;
    sat::SolverStats collected_;
    z3::context ctx_;
    z3::solver solver_;
    std::unordered_map<NodeId, unsigned> exprIndex_; ///< NodeId -> exprs_ slot
    std::vector<z3::expr> exprs_;
    std::vector<std::pair<int, z3::expr>> selectors_;
    std::vector<std::pair<NodeId, int>> hardForOptimize_; ///< (formula, track)
    std::unique_ptr<z3::model> model_;
    CoreResult lastCore_;
};

} // namespace lar::smt

#endif // LAR_HAVE_Z3
