#include "smt/formula.hpp"

#include <algorithm>

namespace lar::smt {

FormulaStore::FormulaStore() {
    Node t;
    t.kind = NodeKind::Const;
    t.constValue = true;
    trueId_ = addNode(std::move(t));
    Node f;
    f.kind = NodeKind::Const;
    f.constValue = false;
    falseId_ = addNode(std::move(f));
}

NodeId FormulaStore::addNode(Node n) {
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId FormulaStore::var(const std::string& name) {
    if (auto it = varIndex_.find(name); it != varIndex_.end()) return it->second;
    Node n;
    n.kind = NodeKind::Var;
    n.name = name;
    const NodeId id = addNode(std::move(n));
    varIndex_.emplace(name, id);
    vars_.push_back(id);
    return id;
}

std::optional<NodeId> FormulaStore::findVar(const std::string& name) const {
    if (auto it = varIndex_.find(name); it != varIndex_.end()) return it->second;
    return std::nullopt;
}

NodeId FormulaStore::mkNot(NodeId f) {
    const Node& n = node(f);
    if (n.kind == NodeKind::Const) return constant(!n.constValue);
    if (n.kind == NodeKind::Not) return n.children[0];
    Node out;
    out.kind = NodeKind::Not;
    out.children = {f};
    return addNode(std::move(out));
}

NodeId FormulaStore::mkAnd(std::vector<NodeId> children) {
    std::vector<NodeId> kept;
    kept.reserve(children.size());
    for (const NodeId c : children) {
        const Node& n = node(c);
        if (n.kind == NodeKind::Const) {
            if (!n.constValue) return constant(false);
            continue; // true is neutral
        }
        kept.push_back(c);
    }
    if (kept.empty()) return constant(true);
    if (kept.size() == 1) return kept[0];
    Node out;
    out.kind = NodeKind::And;
    out.children = std::move(kept);
    return addNode(std::move(out));
}

NodeId FormulaStore::mkOr(std::vector<NodeId> children) {
    std::vector<NodeId> kept;
    kept.reserve(children.size());
    for (const NodeId c : children) {
        const Node& n = node(c);
        if (n.kind == NodeKind::Const) {
            if (n.constValue) return constant(true);
            continue; // false is neutral
        }
        kept.push_back(c);
    }
    if (kept.empty()) return constant(false);
    if (kept.size() == 1) return kept[0];
    Node out;
    out.kind = NodeKind::Or;
    out.children = std::move(kept);
    return addNode(std::move(out));
}

NodeId FormulaStore::mkLinLeq(std::vector<LinTerm> terms, std::int64_t bound) {
    std::int64_t total = 0;
    for (LinTerm& t : terms) {
        expects(t.coef > 0, "mkLinLeq: coefficients must be positive");
        // Normalize Not(Var) references.
        const auto lit = asLiteral(t.var);
        expects(lit.has_value(), "mkLinLeq: term must reference a variable");
        t.var = lit->first;
        t.negated = t.negated != lit->second;
        total += t.coef;
    }
    if (bound < 0) return constant(false);
    if (total <= bound) return constant(true);
    Node out;
    out.kind = NodeKind::LinLeq;
    out.terms = std::move(terms);
    out.bound = bound;
    return addNode(std::move(out));
}

NodeId FormulaStore::mkLinGeq(std::vector<LinTerm> terms, std::int64_t bound) {
    // Σ c·l ≥ b  ⇔  Σ c·(1−l) ≤ Σc − b. Complemented literals lose the
    // exclusivity guarantee, so groups are cleared.
    std::int64_t total = 0;
    for (LinTerm& t : terms) {
        expects(t.coef > 0, "mkLinGeq: coefficients must be positive");
        total += t.coef;
        t.negated = !t.negated;
        t.group = -1;
    }
    if (bound <= 0) return constant(true);
    if (bound > total) return constant(false);
    return mkLinLeq(std::move(terms), total - bound);
}

NodeId FormulaStore::mkAtMost(std::span<const NodeId> lits, int k) {
    std::vector<LinTerm> terms;
    terms.reserve(lits.size());
    for (const NodeId l : lits) terms.push_back({1, l, false});
    return mkLinLeq(std::move(terms), k);
}

NodeId FormulaStore::mkAtLeast(std::span<const NodeId> lits, int k) {
    std::vector<LinTerm> terms;
    terms.reserve(lits.size());
    for (const NodeId l : lits) terms.push_back({1, l, false});
    return mkLinGeq(std::move(terms), k);
}

std::optional<std::pair<NodeId, bool>> FormulaStore::asLiteral(NodeId id) const {
    const Node& n = node(id);
    if (n.kind == NodeKind::Var) return std::make_pair(id, false);
    if (n.kind == NodeKind::Not) {
        const Node& inner = node(n.children[0]);
        if (inner.kind == NodeKind::Var)
            return std::make_pair(n.children[0], true);
    }
    return std::nullopt;
}

std::string FormulaStore::toString(NodeId id) const {
    const Node& n = node(id);
    switch (n.kind) {
        case NodeKind::Const: return n.constValue ? "true" : "false";
        case NodeKind::Var: return n.name;
        case NodeKind::Not: return "!" + toString(n.children[0]);
        case NodeKind::And:
        case NodeKind::Or: {
            std::string out = "(";
            const char* sep = n.kind == NodeKind::And ? " & " : " | ";
            for (std::size_t i = 0; i < n.children.size(); ++i) {
                if (i > 0) out += sep;
                out += toString(n.children[i]);
            }
            return out + ")";
        }
        case NodeKind::LinLeq: {
            std::string out = "(";
            for (std::size_t i = 0; i < n.terms.size(); ++i) {
                if (i > 0) out += " + ";
                const LinTerm& t = n.terms[i];
                if (t.coef != 1) out += std::to_string(t.coef) + "*";
                if (t.negated) out += "!";
                out += node(t.var).name;
            }
            return out + " <= " + std::to_string(n.bound) + ")";
        }
    }
    return "?";
}

bool FormulaStore::evaluate(NodeId id,
                            const std::unordered_map<NodeId, bool>& model) const {
    const Node& n = node(id);
    switch (n.kind) {
        case NodeKind::Const: return n.constValue;
        case NodeKind::Var: {
            const auto it = model.find(id);
            expects(it != model.end(), "evaluate: unassigned variable " + n.name);
            return it->second;
        }
        case NodeKind::Not: return !evaluate(n.children[0], model);
        case NodeKind::And:
            return std::all_of(n.children.begin(), n.children.end(),
                               [&](NodeId c) { return evaluate(c, model); });
        case NodeKind::Or:
            return std::any_of(n.children.begin(), n.children.end(),
                               [&](NodeId c) { return evaluate(c, model); });
        case NodeKind::LinLeq: {
            std::int64_t sum = 0;
            for (const LinTerm& t : n.terms) {
                const auto it = model.find(t.var);
                expects(it != model.end(), "evaluate: unassigned variable");
                if (it->second != t.negated) sum += t.coef;
            }
            return sum <= n.bound;
        }
    }
    return false;
}

} // namespace lar::smt
