#include "smt/backend.hpp"

#include "smt/cdcl_backend.hpp"
#include "smt/portfolio_backend.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"

#if defined(LAR_HAVE_Z3)
#include "smt/z3_backend.hpp"
#endif

namespace lar::smt {

bool haveZ3() {
#if defined(LAR_HAVE_Z3)
    return true;
#else
    return false;
#endif
}

std::unique_ptr<Backend> makeBackend(BackendKind kind, const FormulaStore& store,
                                     const BackendConfig& config) {
    util::FaultInjector::global().maybeFault("backend.construct");
    switch (kind) {
        case BackendKind::Cdcl:
            if (config.portfolioWorkers > 1)
                return std::make_unique<PortfolioBackend>(store, config);
            return std::make_unique<CdclBackend>(store, config);
        case BackendKind::Z3:
#if defined(LAR_HAVE_Z3)
            return std::make_unique<Z3Backend>(store, config);
#else
            (void)config;
            throw LogicError("Z3 backend requested but the build has no libz3");
#endif
    }
    throw LogicError("makeBackend: unknown backend kind");
}

} // namespace lar::smt
