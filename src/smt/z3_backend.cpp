#if defined(LAR_HAVE_Z3)

#include "smt/z3_backend.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "util/error.hpp"

namespace lar::smt {

Z3Backend::Z3Backend(const FormulaStore& store, const BackendConfig& config)
    : store_(&store), config_(config), solver_(ctx_) {
    if (config_.timeoutMs > 0 || config_.seed != 0) {
        z3::params params(ctx_);
        if (config_.timeoutMs > 0)
            params.set("timeout", static_cast<unsigned>(config_.timeoutMs));
        if (config_.seed != 0)
            params.set("random_seed",
                       static_cast<unsigned>(config_.seed & 0xFFFFFFFFu));
        solver_.set(params);
    }
    // Resource budgets are applied one param at a time so an unsupported
    // name in the linked libz3 degrades to "unlimited" instead of discarding
    // the whole parameter set.
    if (config_.conflictBudget >= 0) {
        try {
            z3::params params(ctx_);
            params.set("max_conflicts",
                       static_cast<unsigned>(std::min<std::int64_t>(
                           config_.conflictBudget, 0xFFFFFFFFLL)));
            solver_.set(params);
        } catch (const z3::exception&) {
        }
    }
    if (config_.memoryBudgetMb >= 0) {
        try {
            z3::params params(ctx_);
            params.set("max_memory",
                       static_cast<unsigned>(std::min<std::int64_t>(
                           config_.memoryBudgetMb, 0xFFFFFFFFLL)));
            solver_.set(params);
        } catch (const z3::exception&) {
        }
    }
}

void Z3Backend::collectStats(const z3::stats& st) {
    // Z3 key names vary per tactic ("conflicts", "sat conflicts", ...): match
    // by substring and take the maximum seen, since the same quantity can be
    // reported under several keys.
    const auto value = [&st](unsigned i) -> std::uint64_t {
        return st.is_uint(i) ? st.uint_value(i)
                             : static_cast<std::uint64_t>(st.double_value(i));
    };
    sat::SolverStats out = collected_;
    for (unsigned i = 0; i < st.size(); ++i) {
        const std::string key = st.key(i);
        if (key.find("conflict") != std::string::npos)
            out.conflicts = std::max(out.conflicts, collected_.conflicts + value(i));
        else if (key.find("decision") != std::string::npos)
            out.decisions = std::max(out.decisions, collected_.decisions + value(i));
        else if (key.find("propagation") != std::string::npos)
            out.propagations =
                std::max(out.propagations, collected_.propagations + value(i));
        else if (key.find("restart") != std::string::npos)
            out.restarts = std::max(out.restarts, collected_.restarts + value(i));
        else if (key.find("binary") != std::string::npos)
            out.binaryClauses =
                std::max(out.binaryClauses, collected_.binaryClauses + value(i));
    }
    out.solves = collected_.solves + 1;
    collected_ = out;
}

z3::expr Z3Backend::varExpr(NodeId id) {
    const auto it = exprIndex_.find(id);
    if (it != exprIndex_.end()) return exprs_[it->second];
    const Node& n = store_->node(id);
    expects(n.kind == NodeKind::Var, "Z3Backend::varExpr: not a variable");
    z3::expr e = ctx_.bool_const(n.name.c_str());
    exprIndex_.emplace(id, static_cast<unsigned>(exprs_.size()));
    exprs_.push_back(e);
    return e;
}

z3::expr Z3Backend::toExpr(NodeId id) {
    const Node& n = store_->node(id);
    switch (n.kind) {
        case NodeKind::Const: return ctx_.bool_val(n.constValue);
        case NodeKind::Var: return varExpr(id);
        case NodeKind::Not: return !toExpr(n.children[0]);
        case NodeKind::And: {
            z3::expr_vector kids(ctx_);
            for (const NodeId c : n.children) kids.push_back(toExpr(c));
            return z3::mk_and(kids);
        }
        case NodeKind::Or: {
            z3::expr_vector kids(ctx_);
            for (const NodeId c : n.children) kids.push_back(toExpr(c));
            return z3::mk_or(kids);
        }
        case NodeKind::LinLeq: {
            // Σ coef·ite(lit, 1, 0) ≤ bound over the integers.
            z3::expr sum = ctx_.int_val(0);
            for (const LinTerm& t : n.terms) {
                z3::expr lit = varExpr(t.var);
                if (t.negated) lit = !lit;
                sum = sum + z3::ite(lit, ctx_.int_val(static_cast<int>(t.coef)),
                                    ctx_.int_val(0));
            }
            return sum <= ctx_.int_val(static_cast<int>(n.bound));
        }
    }
    throw LogicError("Z3Backend::toExpr: unknown node kind");
}

void Z3Backend::addHard(NodeId formula, int track) {
    hardForOptimize_.emplace_back(formula, track);
    if (track < 0) {
        solver_.add(toExpr(formula));
        return;
    }
    const std::string name = "lar!track!" + std::to_string(track);
    z3::expr selector = ctx_.bool_const(name.c_str());
    solver_.add(z3::implies(selector, toExpr(formula)));
    selectors_.emplace_back(track, selector);
}

void Z3Backend::captureCore(const z3::expr_vector& core,
                            std::span<const NodeId> assumptions) {
    lastCore_ = {};
    for (unsigned i = 0; i < core.size(); ++i) {
        const z3::expr failed = core[i];
        bool matched = false;
        for (const auto& [track, selector] : selectors_) {
            if (z3::eq(failed, selector)) {
                lastCore_.tracks.push_back(track);
                matched = true;
                break;
            }
        }
        if (matched) continue;
        for (const NodeId a : assumptions) {
            z3::expr e = toExpr(a);
            if (z3::eq(failed, e)) {
                lastCore_.assumptions.push_back(a);
                break;
            }
        }
    }
}

CheckStatus Z3Backend::checkWithTracks(std::span<const int> activeTracks,
                                       std::span<const NodeId> assumptions) {
    const obs::Span span("check");
    if (cancelled()) return CheckStatus::Unknown;
    z3::expr_vector assume(ctx_);
    for (const auto& [track, selector] : selectors_) {
        if (std::find(activeTracks.begin(), activeTracks.end(), track) !=
            activeTracks.end())
            assume.push_back(selector);
    }
    for (const NodeId a : assumptions) assume.push_back(toExpr(a));
    const z3::check_result verdict = solver_.check(assume);
    collectStats(solver_.statistics());
    switch (verdict) {
        case z3::sat:
            model_ = std::make_unique<z3::model>(solver_.get_model());
            return CheckStatus::Sat;
        case z3::unsat:
            captureCore(solver_.unsat_core(), assumptions);
            return CheckStatus::Unsat;
        case z3::unknown: return CheckStatus::Unknown;
    }
    return CheckStatus::Unknown;
}

CheckStatus Z3Backend::check(std::span<const NodeId> assumptions) {
    const obs::Span span("check");
    if (cancelled()) return CheckStatus::Unknown;
    z3::expr_vector assume(ctx_);
    for (const auto& [track, selector] : selectors_) assume.push_back(selector);
    for (const NodeId a : assumptions) assume.push_back(toExpr(a));
    const z3::check_result verdict = solver_.check(assume);
    collectStats(solver_.statistics());
    switch (verdict) {
        case z3::sat:
            model_ = std::make_unique<z3::model>(solver_.get_model());
            return CheckStatus::Sat;
        case z3::unsat:
            captureCore(solver_.unsat_core(), assumptions);
            return CheckStatus::Unsat;
        case z3::unknown: return CheckStatus::Unknown;
    }
    return CheckStatus::Unknown;
}

bool Z3Backend::modelValue(NodeId var) const {
    expects(model_ != nullptr, "Z3Backend::modelValue: no model available");
    const Node& n = store_->node(var);
    expects(n.kind == NodeKind::Var, "Z3Backend::modelValue: not a variable");
    const auto it = exprIndex_.find(var);
    if (it == exprIndex_.end()) return false; // variable absent from the formula
    const z3::expr v = model_->eval(exprs_[it->second], /*model_completion=*/true);
    return v.is_true();
}

OptimizeResult Z3Backend::optimize(std::span<const ObjectiveSpec> objectives,
                                   std::span<const NodeId> assumptions) {
    const obs::Span span("optimize");
    if (cancelled()) {
        OptimizeResult result;
        result.unknown = true;
        return result;
    }
    z3::optimize opt(ctx_);
    z3::params params(ctx_);
    params.set("priority", ctx_.str_symbol("lex"));
    if (config_.timeoutMs > 0)
        params.set("timeout", static_cast<unsigned>(config_.timeoutMs));
    opt.set(params);

    for (const auto& [formula, track] : hardForOptimize_) opt.add(toExpr(formula));
    for (const NodeId a : assumptions) opt.add(toExpr(a));
    // Soft groups are created in objective order; with lex priority Z3
    // optimizes them in that order. The installed z3++.h has no grouped
    // add_soft overload, so go through the C API.
    for (const ObjectiveSpec& spec : objectives) {
        const z3::symbol group = ctx_.str_symbol(spec.name.c_str());
        for (const SoftItem& soft : spec.softs) {
            const std::string weight = std::to_string(soft.weight);
            Z3_optimize_assert_soft(ctx_, opt, toExpr(soft.formula), weight.c_str(),
                                    group);
        }
    }

    OptimizeResult result;
    const z3::check_result verdict = opt.check();
    collectStats(opt.statistics());
    result.unknown = verdict == z3::unknown;
    if (verdict != z3::sat) return result;
    model_ = std::make_unique<z3::model>(opt.get_model());
    result.feasible = true;
    // Recompute per-level costs from the model (backend-independent metric).
    for (const ObjectiveSpec& spec : objectives) {
        std::int64_t cost = 0;
        for (const SoftItem& soft : spec.softs) {
            const z3::expr v = model_->eval(
                const_cast<Z3Backend*>(this)->toExpr(soft.formula), true);
            if (!v.is_true()) cost += soft.weight;
        }
        result.costs.push_back(cost);
    }
    return result;
}

} // namespace lar::smt

#endif // LAR_HAVE_Z3
