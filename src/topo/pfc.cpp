#include "topo/pfc.hpp"

#include <functional>

namespace lar::topo {

BufferDependencyGraph::BufferDependencyGraph(const FatTree& tree,
                                             const std::vector<Turn>& turns)
    : adj_(tree.links().size()) {
    for (const Turn& t : turns) {
        adj_[static_cast<std::size_t>(t.inLink)].push_back(t.outLink);
        ++edges_;
    }
}

std::optional<std::vector<int>> BufferDependencyGraph::findCycle() const {
    // Iterative DFS with colors; reconstruct the cycle from the stack.
    enum : char { White, Gray, Black };
    std::vector<char> color(adj_.size(), White);
    std::vector<int> stack;

    const std::function<std::optional<std::vector<int>>(int)> dfs =
        [&](int u) -> std::optional<std::vector<int>> {
        color[static_cast<std::size_t>(u)] = Gray;
        stack.push_back(u);
        for (const int v : adj_[static_cast<std::size_t>(u)]) {
            if (color[static_cast<std::size_t>(v)] == Gray) {
                std::vector<int> cycle;
                auto it = std::find(stack.begin(), stack.end(), v);
                cycle.assign(it, stack.end());
                return cycle;
            }
            if (color[static_cast<std::size_t>(v)] == White) {
                if (auto found = dfs(v)) return found;
            }
        }
        stack.pop_back();
        color[static_cast<std::size_t>(u)] = Black;
        return std::nullopt;
    };

    for (std::size_t u = 0; u < adj_.size(); ++u)
        if (color[u] == White)
            if (auto found = dfs(static_cast<int>(u))) return found;
    return std::nullopt;
}

std::string BufferDependencyGraph::describeCycle(
    const FatTree& tree, const std::vector<int>& cycle) const {
    std::string out;
    for (const int linkId : cycle) {
        const Link& l = tree.link(linkId);
        if (!out.empty()) out += " -> ";
        out += tree.node(l.from).name + ">" + tree.node(l.to).name;
    }
    return out;
}

bool pfcExpertRuleUnsafe(bool pfcEnabled, bool floodingEnabled) {
    return pfcEnabled && floodingEnabled;
}

PfcAnalysis analyzePfcDeadlock(int k, int routePairs, bool floodingEnabled,
                               std::uint64_t seed) {
    const FatTree tree(k);
    util::Rng rng(seed);
    const std::vector<Route> routes = sampleUpDownRoutes(tree, routePairs, rng);
    std::vector<Turn> turns = routeTurns(tree, routes);
    if (floodingEnabled) {
        const std::vector<Turn> flood = floodingTurns(tree);
        turns.insert(turns.end(), flood.begin(), flood.end());
    }
    const BufferDependencyGraph graph(tree, turns);
    PfcAnalysis analysis;
    analysis.buffers = graph.bufferCount();
    analysis.dependencies = graph.dependencyCount();
    if (const auto cycle = graph.findCycle()) {
        analysis.deadlockPossible = true;
        analysis.cycle = *cycle;
    }
    return analysis;
}

} // namespace lar::topo
