#include "topo/loadbalance.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lar::topo {

std::vector<Flow> randomTrafficMatrix(const FatTree& tree, int flows,
                                      util::Rng& rng) {
    const std::vector<int>& hosts = tree.hosts();
    expects(hosts.size() >= 2, "randomTrafficMatrix: need hosts");
    std::vector<Flow> out;
    out.reserve(static_cast<std::size_t>(flows));
    for (int i = 0; i < flows; ++i) {
        Flow f;
        f.srcHost = hosts[rng.below(hosts.size())];
        do {
            f.dstHost = hosts[rng.below(hosts.size())];
        } while (f.dstHost == f.srcHost);
        // Elephants and mice: 10 % of flows carry ~20× the rate.
        f.rateGbps = rng.chance(0.1) ? 4.0 + rng.uniform() * 6.0
                                     : 0.1 + rng.uniform() * 0.4;
        out.push_back(f);
    }
    return out;
}

namespace {

/// Only fabric (switch-to-switch) links count: host access links carry the
/// full flow rate under every scheme and would mask the fabric imbalance.
LoadReport summarize(const FatTree& tree, const std::vector<double>& load) {
    LoadReport report;
    double total = 0;
    int loaded = 0;
    for (std::size_t i = 0; i < load.size(); ++i) {
        const Link& link = tree.link(static_cast<int>(i));
        if (tree.node(link.from).kind == NodeKind::Host ||
            tree.node(link.to).kind == NodeKind::Host)
            continue;
        report.maxLinkLoadGbps = std::max(report.maxLinkLoadGbps, load[i]);
        if (load[i] > 0) {
            total += load[i];
            ++loaded;
        }
    }
    report.meanLinkLoadGbps = loaded == 0 ? 0 : total / loaded;
    return report;
}

void addLoad(std::vector<double>& load, const FatTree& tree, int from, int to,
             double rate) {
    const int link = tree.findLink(from, to);
    expects(link >= 0, "loadbalance: missing link");
    load[static_cast<std::size_t>(link)] += rate;
}

} // namespace

LoadReport simulateEcmp(const FatTree& tree, const std::vector<Flow>& flows) {
    std::vector<double> load(tree.links().size(), 0.0);
    for (const Flow& f : flows) {
        const Route route = upDownRoute(tree, f.srcHost, f.dstHost);
        for (const int link : route.linkIds)
            load[static_cast<std::size_t>(link)] += f.rateGbps;
    }
    return summarize(tree, load);
}

LoadReport simulateSpraying(const FatTree& tree, const std::vector<Flow>& flows) {
    std::vector<double> load(tree.links().size(), 0.0);
    const double half = tree.k() / 2.0;

    const auto upNeighbors = [&tree](int node) {
        std::vector<int> ups;
        for (const int l : tree.outLinks(node))
            if (tree.link(l).up) ups.push_back(tree.link(l).to);
        return ups;
    };

    for (const Flow& f : flows) {
        const int srcEdge = upNeighbors(f.srcHost)[0];
        const int dstEdge = upNeighbors(f.dstHost)[0];
        addLoad(load, tree, f.srcHost, srcEdge, f.rateGbps);
        addLoad(load, tree, dstEdge, f.dstHost, f.rateGbps);
        if (srcEdge == dstEdge) continue;

        if (tree.node(srcEdge).pod == tree.node(dstEdge).pod) {
            // Spread over every aggregation switch in the pod.
            for (const int agg : upNeighbors(srcEdge)) {
                addLoad(load, tree, srcEdge, agg, f.rateGbps / half);
                addLoad(load, tree, agg, dstEdge, f.rateGbps / half);
            }
            continue;
        }
        // Cross-pod: spread over every (srcAgg, core) pair; each core has
        // exactly one aggregation switch in the destination pod.
        for (const int srcAgg : upNeighbors(srcEdge)) {
            addLoad(load, tree, srcEdge, srcAgg, f.rateGbps / half);
            for (const int core : upNeighbors(srcAgg)) {
                const double perCore = f.rateGbps / (half * half);
                addLoad(load, tree, srcAgg, core, perCore);
                int dstAgg = -1;
                for (const int l : tree.outLinks(core)) {
                    const int agg = tree.link(l).to;
                    if (tree.node(agg).pod == tree.node(dstEdge).pod) {
                        dstAgg = agg;
                        break;
                    }
                }
                expects(dstAgg >= 0, "spraying: no agg under core in dst pod");
                addLoad(load, tree, core, dstAgg, perCore);
                addLoad(load, tree, dstAgg, dstEdge, perCore);
            }
        }
    }
    return summarize(tree, load);
}

} // namespace lar::topo
