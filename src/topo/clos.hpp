// k-ary fat-tree (Clos) topology builder.
//
// Substrate for the §2.2 PFC-deadlock experiment: Microsoft's RDMA
// deployment used up-down routing on a Clos network and believed that ruled
// out cyclic buffer dependencies — until Ethernet flooding broke the
// up-down invariant. We model exactly enough topology to reproduce that
// reasoning: hosts, edge/aggregation/core switches, links, and the
// up/down direction of every link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lar::topo {

enum class NodeKind { Host, EdgeSwitch, AggSwitch, CoreSwitch };

struct Node {
    int id = 0;
    NodeKind kind = NodeKind::Host;
    int pod = -1; ///< -1 for core switches and out-of-pod entities
    std::string name;
};

/// A directed link (u → v). Every physical cable appears twice, once per
/// direction; each direction has its own buffer at the receiving end.
struct Link {
    int id = 0;
    int from = 0;
    int to = 0;
    /// True when the link goes "up" (host→edge→agg→core); down otherwise.
    bool up = false;
};

class FatTree {
public:
    /// Builds a k-ary fat-tree (k even, ≥ 2): k pods, (k/2)² core switches,
    /// k/2 edge + k/2 agg switches per pod, k/2 hosts per edge switch.
    explicit FatTree(int k);

    [[nodiscard]] int k() const { return k_; }
    [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
    [[nodiscard]] const std::vector<Link>& links() const { return links_; }

    [[nodiscard]] const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
    [[nodiscard]] const Link& link(int id) const { return links_[static_cast<std::size_t>(id)]; }

    /// Hosts, in id order.
    [[nodiscard]] const std::vector<int>& hosts() const { return hosts_; }
    /// Switches (edge + agg + core), in id order.
    [[nodiscard]] const std::vector<int>& switches() const { return switches_; }

    /// Outgoing link ids of `nodeId`.
    [[nodiscard]] const std::vector<int>& outLinks(int nodeId) const {
        return out_[static_cast<std::size_t>(nodeId)];
    }
    /// Incoming link ids of `nodeId`.
    [[nodiscard]] const std::vector<int>& inLinks(int nodeId) const {
        return in_[static_cast<std::size_t>(nodeId)];
    }

    /// The link from → to; -1 when absent.
    [[nodiscard]] int findLink(int from, int to) const;

private:
    int addNode(NodeKind kind, int pod, std::string name);
    void addBidirectional(int a, int b, bool aToBisUp);

    int k_ = 0;
    std::vector<Node> nodes_;
    std::vector<Link> links_;
    std::vector<int> hosts_;
    std::vector<int> switches_;
    std::vector<std::vector<int>> out_;
    std::vector<std::vector<int>> in_;
};

} // namespace lar::topo
