// PFC buffer-dependency analysis.
//
// With Priority Flow Control, a paused downstream buffer back-pressures the
// upstream buffer feeding it; a cycle in that dependency relation can
// deadlock the fabric. The dependency graph has one vertex per directed
// link (the buffer at its receiving end) and one edge per traffic turn.
// Up-down routing provably yields an acyclic graph; adding Ethernet
// flooding recreates the Microsoft RDMA deadlock (§2.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topo/routing.hpp"

namespace lar::topo {

class BufferDependencyGraph {
public:
    BufferDependencyGraph(const FatTree& tree, const std::vector<Turn>& turns);

    /// Number of buffers (= directed links) in the fabric.
    [[nodiscard]] std::size_t bufferCount() const { return adj_.size(); }
    /// Number of dependency edges.
    [[nodiscard]] std::size_t dependencyCount() const { return edges_; }

    /// A cycle of link ids when the dependency graph is cyclic (deadlock
    /// possible), nullopt when acyclic (deadlock-free).
    [[nodiscard]] std::optional<std::vector<int>> findCycle() const;

    /// Human-readable rendering of a cycle for reports.
    [[nodiscard]] std::string describeCycle(const FatTree& tree,
                                            const std::vector<int>& cycle) const;

private:
    std::vector<std::vector<int>> adj_; ///< linkId → dependent linkIds
    std::size_t edges_ = 0;
};

/// The paper's §3.4 expert shortcut: "PFC cannot be used with any flooding
/// algorithm". True when the (pfcEnabled, floodingEnabled) combination is
/// unsafe per the rule — no topology analysis involved.
[[nodiscard]] bool pfcExpertRuleUnsafe(bool pfcEnabled, bool floodingEnabled);

/// Full analysis: builds routes (+ flooding turns when enabled) on a k-ary
/// fat-tree and reports whether a deadlock cycle exists.
struct PfcAnalysis {
    bool deadlockPossible = false;
    std::size_t buffers = 0;
    std::size_t dependencies = 0;
    std::vector<int> cycle; ///< empty when deadlock-free
};
[[nodiscard]] PfcAnalysis analyzePfcDeadlock(int k, int routePairs,
                                             bool floodingEnabled,
                                             std::uint64_t seed);

} // namespace lar::topo
