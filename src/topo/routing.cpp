#include "topo/routing.hpp"

#include <set>

#include "util/error.hpp"

namespace lar::topo {

namespace {

/// Deterministic pick from a vector based on a pair hash (ECMP-style).
int pick(const std::vector<int>& options, unsigned hash) {
    expects(!options.empty(), "routing: no path option");
    return options[hash % options.size()];
}

/// The switch one level above `node` chosen deterministically for the pair.
int upNeighbor(const FatTree& tree, int node, unsigned hash) {
    std::vector<int> ups;
    for (const int l : tree.outLinks(node))
        if (tree.link(l).up) ups.push_back(tree.link(l).to);
    return pick(ups, hash);
}

} // namespace

Route upDownRoute(const FatTree& tree, int srcHost, int dstHost) {
    expects(tree.node(srcHost).kind == NodeKind::Host &&
                tree.node(dstHost).kind == NodeKind::Host,
            "upDownRoute: endpoints must be hosts");
    expects(srcHost != dstHost, "upDownRoute: distinct hosts required");
    const unsigned hash =
        static_cast<unsigned>(srcHost * 2654435761u + dstHost * 40503u);

    Route route;
    route.srcHost = srcHost;
    route.dstHost = dstHost;

    // Climb from both ends until the up-paths can meet, then stitch.
    const int srcEdge = upNeighbor(tree, srcHost, hash);
    const int dstEdge = upNeighbor(tree, dstHost, hash);

    std::vector<int> upPath{srcHost, srcEdge};
    std::vector<int> downPath{dstHost, dstEdge}; // reversed later

    if (srcEdge != dstEdge) {
        const int srcAgg = upNeighbor(tree, srcEdge, hash);
        if (tree.node(srcEdge).pod == tree.node(dstEdge).pod) {
            // Same pod: meet at an aggregation switch (full edge↔agg mesh).
            upPath.push_back(srcAgg);
            downPath.push_back(srcAgg);
        } else {
            // Different pods: climb to a core switch above srcAgg, then the
            // unique agg in the destination pod attached to that core.
            const int core = upNeighbor(tree, srcAgg, hash);
            upPath.push_back(srcAgg);
            upPath.push_back(core);
            int dstAgg = -1;
            for (const int l : tree.outLinks(core)) {
                const int agg = tree.link(l).to;
                if (tree.node(agg).pod == tree.node(dstEdge).pod) {
                    dstAgg = agg;
                    break;
                }
            }
            expects(dstAgg >= 0, "upDownRoute: no agg under core in dst pod");
            downPath.push_back(dstAgg);
            downPath.push_back(core);
        }
    }

    // Stitch: upPath ends where reversed downPath begins.
    std::vector<int> nodes = upPath;
    for (auto it = downPath.rbegin(); it != downPath.rend(); ++it) {
        if (*it == nodes.back()) continue; // meeting node
        nodes.push_back(*it);
    }
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        const int l = tree.findLink(nodes[i], nodes[i + 1]);
        expects(l >= 0, "upDownRoute: missing link on stitched path");
        route.linkIds.push_back(l);
    }
    return route;
}

std::vector<Route> sampleUpDownRoutes(const FatTree& tree, int pairs,
                                      util::Rng& rng) {
    const std::vector<int>& hosts = tree.hosts();
    expects(hosts.size() >= 2, "sampleUpDownRoutes: need at least two hosts");
    std::vector<Route> routes;
    routes.reserve(static_cast<std::size_t>(pairs));
    for (int i = 0; i < pairs; ++i) {
        const int a = hosts[rng.below(hosts.size())];
        int b = a;
        while (b == a) b = hosts[rng.below(hosts.size())];
        routes.push_back(upDownRoute(tree, a, b));
    }
    return routes;
}

std::vector<Turn> routeTurns(const FatTree& tree,
                             const std::vector<Route>& routes) {
    (void)tree;
    std::set<std::pair<int, int>> seen;
    std::vector<Turn> turns;
    for (const Route& route : routes) {
        for (std::size_t i = 0; i + 1 < route.linkIds.size(); ++i) {
            const auto key = std::make_pair(route.linkIds[i], route.linkIds[i + 1]);
            if (seen.insert(key).second) turns.push_back({key.first, key.second});
        }
    }
    return turns;
}

std::vector<Turn> floodingTurns(const FatTree& tree) {
    std::vector<Turn> turns;
    for (const int sw : tree.switches()) {
        for (const int inLink : tree.inLinks(sw)) {
            for (const int outLink : tree.outLinks(sw)) {
                // Forward on every port except back where it came from.
                if (tree.link(outLink).to == tree.link(inLink).from) continue;
                turns.push_back({inLink, outLink});
            }
        }
    }
    return turns;
}

} // namespace lar::topo
