#include "topo/clos.hpp"

#include "util/error.hpp"

namespace lar::topo {

FatTree::FatTree(int k) : k_(k) {
    expects(k >= 2 && k % 2 == 0, "FatTree: k must be even and >= 2");
    const int half = k / 2;

    // Core switches: (k/2)².
    std::vector<int> cores;
    for (int i = 0; i < half * half; ++i)
        cores.push_back(addNode(NodeKind::CoreSwitch, -1,
                                "core" + std::to_string(i)));

    for (int pod = 0; pod < k; ++pod) {
        std::vector<int> edges;
        std::vector<int> aggs;
        for (int i = 0; i < half; ++i) {
            edges.push_back(addNode(NodeKind::EdgeSwitch, pod,
                                    "p" + std::to_string(pod) + "e" +
                                        std::to_string(i)));
            aggs.push_back(addNode(NodeKind::AggSwitch, pod,
                                   "p" + std::to_string(pod) + "a" +
                                       std::to_string(i)));
        }
        // Hosts: k/2 per edge switch.
        for (int e = 0; e < half; ++e) {
            for (int h = 0; h < half; ++h) {
                const int host =
                    addNode(NodeKind::Host, pod,
                            "p" + std::to_string(pod) + "e" + std::to_string(e) +
                                "h" + std::to_string(h));
                addBidirectional(host, edges[static_cast<std::size_t>(e)], true);
            }
        }
        // Edge ↔ agg full mesh within the pod.
        for (const int e : edges)
            for (const int a : aggs) addBidirectional(e, a, true);
        // Agg ↔ core: agg i connects to cores [i*half, (i+1)*half).
        for (int i = 0; i < half; ++i)
            for (int c = 0; c < half; ++c)
                addBidirectional(aggs[static_cast<std::size_t>(i)],
                                 cores[static_cast<std::size_t>(i * half + c)],
                                 true);
    }
}

int FatTree::addNode(NodeKind kind, int pod, std::string name) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back({id, kind, pod, std::move(name)});
    out_.emplace_back();
    in_.emplace_back();
    if (kind == NodeKind::Host)
        hosts_.push_back(id);
    else
        switches_.push_back(id);
    return id;
}

void FatTree::addBidirectional(int a, int b, bool aToBisUp) {
    const int upId = static_cast<int>(links_.size());
    links_.push_back({upId, a, b, aToBisUp});
    out_[static_cast<std::size_t>(a)].push_back(upId);
    in_[static_cast<std::size_t>(b)].push_back(upId);
    const int downId = static_cast<int>(links_.size());
    links_.push_back({downId, b, a, !aToBisUp});
    out_[static_cast<std::size_t>(b)].push_back(downId);
    in_[static_cast<std::size_t>(a)].push_back(downId);
}

int FatTree::findLink(int from, int to) const {
    for (const int l : out_[static_cast<std::size_t>(from)])
        if (links_[static_cast<std::size_t>(l)].to == to) return l;
    return -1;
}

} // namespace lar::topo
