// Flow-level load-balancing simulation on the fat-tree.
//
// Substantiates the §2.3 rule of thumb "ECMP load balancing can lead to
// load imbalance … consider using packet spraying instead": place a traffic
// matrix on the fabric under hash-based ECMP (each flow pinned to one path)
// vs packet spraying (each flow split evenly over all shortest paths), and
// compare the peak link utilization. The asymmetry under ECMP comes from
// hash collisions of heavy flows — the effect the partial-order edge
// "PacketSpray > ECMP (short_flows)" encodes shallowly.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/routing.hpp"

namespace lar::topo {

/// One flow of the traffic matrix.
struct Flow {
    int srcHost = 0;
    int dstHost = 0;
    double rateGbps = 1.0;
};

/// A random permutation-style traffic matrix with heavy-tailed flow sizes.
[[nodiscard]] std::vector<Flow> randomTrafficMatrix(const FatTree& tree,
                                                    int flows, util::Rng& rng);

struct LoadReport {
    double maxLinkLoadGbps = 0.0;
    double meanLinkLoadGbps = 0.0; ///< over links that carry any traffic
    /// Imbalance factor: max / mean. 1.0 = perfectly balanced.
    [[nodiscard]] double imbalance() const {
        return meanLinkLoadGbps == 0 ? 0 : maxLinkLoadGbps / meanLinkLoadGbps;
    }
};

/// ECMP: each flow follows its single hash-chosen up-down path.
[[nodiscard]] LoadReport simulateEcmp(const FatTree& tree,
                                      const std::vector<Flow>& flows);

/// Packet spraying: each flow's rate is split evenly across all of its
/// shortest up-down paths (all choices of upward hops).
[[nodiscard]] LoadReport simulateSpraying(const FatTree& tree,
                                          const std::vector<Flow>& flows);

} // namespace lar::topo
