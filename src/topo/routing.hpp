// Routing models over the fat-tree: up-down (valley-free) unicast routes
// and the turn set induced by Ethernet flooding.
#pragma once

#include <vector>

#include "topo/clos.hpp"
#include "util/rng.hpp"

namespace lar::topo {

/// A unicast route: the sequence of link ids from source host to
/// destination host.
struct Route {
    int srcHost = 0;
    int dstHost = 0;
    std::vector<int> linkIds;
};

/// A turn: a packet occupying the buffer at the receiving end of `inLink`
/// waits for space on `outLink` — the unit of PFC buffer dependency.
struct Turn {
    int inLink = 0;
    int outLink = 0;
    bool operator==(const Turn&) const = default;
};

/// Computes an up-down route between two hosts: climb to the lowest common
/// level (edge / agg / core, chosen deterministically by `rng`-free hashing
/// of the pair), then descend. Never makes a down→up turn.
[[nodiscard]] Route upDownRoute(const FatTree& tree, int srcHost, int dstHost);

/// Up-down routes for `pairs` random host pairs (seeded; distinct hosts).
[[nodiscard]] std::vector<Route> sampleUpDownRoutes(const FatTree& tree,
                                                    int pairs,
                                                    util::Rng& rng);

/// Turns traversed by a set of routes.
[[nodiscard]] std::vector<Turn> routeTurns(const FatTree& tree,
                                           const std::vector<Route>& routes);

/// Turns induced by Ethernet flooding (e.g. ARP broadcast): every switch
/// forwards a flooded frame out of every port except the one it arrived on,
/// including down→up turns that up-down routing forbids (§2.2).
[[nodiscard]] std::vector<Turn> floodingTurns(const FatTree& tree);

} // namespace lar::topo
