#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace lar::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
} // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logLine(LogLevel level, const std::string& message) {
    if (level < logLevel()) return;
    std::fprintf(stderr, "[lar:%s] %s\n", levelName(level), message.c_str());
}

} // namespace lar::util
