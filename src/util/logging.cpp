#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "json/escape.hpp"

namespace lar::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}

const char* levelNameLower(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
        case LogLevel::Off: return "off";
    }
    return "?";
}

// The shared escaper (json/escape.hpp is header-only, so including it here
// does not invert the util ← json link order).
std::string jsonQuote(std::string_view s) { return json::quoted(s); }

thread_local std::string t_traceId;
} // namespace

ScopedLogTraceId::ScopedLogTraceId(std::string_view traceId)
    : saved_(std::move(t_traceId)) {
    t_traceId.assign(traceId);
}

ScopedLogTraceId::~ScopedLogTraceId() { t_traceId = std::move(saved_); }

const std::string& currentLogTraceId() { return t_traceId; }

LogField::LogField(std::string_view k, std::string_view value)
    : key(k), rendered(jsonQuote(value)) {}

LogField::LogField(std::string_view k, double value) : key(k) {
    if (std::isfinite(value)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        rendered = buf;
    } else {
        rendered = "null"; // JSON has no Inf/NaN
    }
}

LogField::LogField(std::string_view k, std::int64_t value)
    : key(k), rendered(std::to_string(value)) {}

LogField::LogField(std::string_view k, std::uint64_t value)
    : key(k), rendered(std::to_string(value)) {}

LogField::LogField(std::string_view k, bool value)
    : key(k), rendered(value ? "true" : "false") {}

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logLine(LogLevel level, const std::string& message) {
    if (level < logLevel()) return;
    std::fprintf(stderr, "[lar:%s] %s\n", levelName(level), message.c_str());
}

void logLineJson(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
    if (level < logLevel()) return;
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto tsMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    std::string line;
    line.reserve(128);
    line += "{\"ts_ms\":";
    line += std::to_string(tsMs);
    line += ",\"level\":\"";
    line += levelNameLower(level);
    line += "\",\"event\":";
    line += jsonQuote(event);
    for (const LogField& f : fields) {
        line += ',';
        line += jsonQuote(f.key);
        line += ':';
        line += f.rendered;
    }
    if (!t_traceId.empty()) {
        line += ",\"trace_id\":";
        line += jsonQuote(t_traceId);
    }
    line += '}';
    // One write call so concurrent loggers interleave at line granularity.
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace lar::util
