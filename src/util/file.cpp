#include "util/file.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lar::util {

std::string readFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open file for reading: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) throw Error("read failed: " + path);
    return buffer.str();
}

void writeFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot open file for writing: " + path);
    out << content;
    if (!out) throw Error("write failed: " + path);
}

} // namespace lar::util
