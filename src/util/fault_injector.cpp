#include "util/fault_injector.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace lar::util {

FaultInjector& FaultInjector::global() {
    static FaultInjector injector;
    return injector;
}

FaultInjector::Site& FaultInjector::entry(std::string_view site) {
    const auto it = sites_.find(site);
    if (it != sites_.end()) return it->second;
    return sites_.emplace(std::string(site), Site{}).first->second;
}

void FaultInjector::recount() {
    int armed = 0;
    for (const auto& [name, site] : sites_)
        if (site.armed) ++armed;
    armedSites_.store(armed, std::memory_order_relaxed);
}

void FaultInjector::armProbability(std::string_view site, double probability,
                                   std::uint64_t seed) {
    expects(probability >= 0.0 && probability <= 1.0,
            "FaultInjector: probability must be in [0, 1]");
    const std::lock_guard<std::mutex> lock(mutex_);
    Site& s = entry(site);
    s.armed = true;
    s.probability = probability;
    s.rngState = seed;
    s.nth = 0;
    s.delayMs = 0;
    recount();
}

void FaultInjector::armNthHit(std::string_view site, std::uint64_t nth) {
    expects(nth > 0, "FaultInjector: nth is 1-based and must be positive");
    const std::lock_guard<std::mutex> lock(mutex_);
    Site& s = entry(site);
    s.armed = true;
    s.probability = 0.0;
    s.nth = nth;
    s.delayMs = 0;
    recount();
}

void FaultInjector::armDelayMs(std::string_view site, int delayMs) {
    expects(delayMs >= 0, "FaultInjector: delay must be non-negative");
    const std::lock_guard<std::mutex> lock(mutex_);
    Site& s = entry(site);
    s.armed = true;
    s.probability = 0.0;
    s.nth = 0;
    s.delayMs = delayMs;
    recount();
}

void FaultInjector::disarm(std::string_view site) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return;
    it->second.armed = false;
    recount();
}

void FaultInjector::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    sites_.clear();
    armedSites_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hitCount;
}

std::vector<FaultInjector::SiteStatus> FaultInjector::snapshot() const {
    std::vector<SiteStatus> out;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(sites_.size());
        for (const auto& [name, site] : sites_) {
            SiteStatus status;
            status.site = name;
            status.armed = site.armed;
            status.probability = site.probability;
            status.nth = site.nth;
            status.delayMs = site.delayMs;
            status.hits = site.hitCount;
            if (!site.armed) status.mode = "disarmed";
            else if (site.nth > 0) status.mode = "nth_hit";
            else if (site.probability > 0.0) status.mode = "probability";
            else status.mode = "delay";
            out.push_back(std::move(status));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SiteStatus& a, const SiteStatus& b) {
                         if (a.armed != b.armed) return a.armed;
                         return a.site < b.site;
                     });
    return out;
}

void FaultInjector::maybeFault(std::string_view site) {
    std::uint64_t hit = 0;
    if (fire(site, hit)) {
        throw FaultInjectedError("fault injected at " + std::string(site) +
                                 " (hit " + std::to_string(hit) + ")");
    }
}

bool FaultInjector::fires(std::string_view site) {
    std::uint64_t hit = 0;
    return fire(site, hit);
}

bool FaultInjector::fire(std::string_view site, std::uint64_t& hitOut) {
    if (armedSites_.load(std::memory_order_relaxed) == 0) return false;

    bool fire = false;
    int delayMs = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = sites_.find(site);
        if (it == sites_.end() || !it->second.armed) return false;
        Site& s = it->second;
        const std::uint64_t hit = hitOut = ++s.hitCount;
        if (s.nth > 0 && hit == s.nth) {
            fire = true;
            s.armed = false; // Nth-hit sites fire once
            recount();
        } else if (s.probability > 0.0) {
            // splitmix64 output folded to [0, 1), same scaling as Rng::uniform.
            const std::uint64_t draw = splitmix64(s.rngState);
            fire = static_cast<double>(draw >> 11) *
                       (1.0 / 9007199254740992.0) <
                   s.probability;
        }
        delayMs = s.delayMs;
    }
    // Sleep outside the lock so a slow site never blocks other sites (or
    // the same site on other threads).
    if (delayMs > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    return fire;
}

} // namespace lar::util
