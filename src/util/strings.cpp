#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace lar::util {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> splitWhitespace(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        std::size_t j = i;
        while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
        if (j > i) out.emplace_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string toLower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool containsIgnoreCase(std::string_view haystack, std::string_view needle) {
    if (needle.empty()) return true;
    if (needle.size() > haystack.size()) return false;
    const std::string h = toLower(haystack);
    const std::string n = toLower(needle);
    return h.find(n) != std::string::npos;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string replaceAll(std::string_view s, std::string_view from, std::string_view to) {
    if (from.empty()) return std::string(s);
    std::string out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(from, start);
        if (pos == std::string_view::npos) {
            out += s.substr(start);
            return out;
        }
        out += s.substr(start, pos - start);
        out += to;
        start = pos + from.size();
    }
}

bool parseFirstInt(std::string_view s, long long& out) {
    std::size_t i = 0;
    while (i < s.size() && !std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == s.size()) return false;
    long long v = 0;
    bool any = false;
    while (i < s.size()) {
        const char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            v = v * 10 + (c - '0');
            any = true;
        } else if (c == ',') {
            // thousands separator inside a number ("64,000"): skip only when
            // followed by a digit, otherwise the number has ended.
            if (i + 1 >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i + 1]))) break;
        } else {
            break;
        }
        ++i;
    }
    if (!any) return false;
    out = v;
    return true;
}

std::string formatDouble(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return std::string(buf);
}

} // namespace lar::util
