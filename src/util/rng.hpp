// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, the
// simulated-LLM noise model, random test instances) draw from this seeded
// generator so every experiment is reproducible run-to-run.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace lar::util {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality PRNG with explicit seeding.
class Rng {
public:
    explicit Rng(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    /// Uniform 64-bit value.
    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). `bound` must be positive.
    std::uint64_t below(std::uint64_t bound) {
        expects(bound > 0, "Rng::below: bound must be positive");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        while (true) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        expects(lo <= hi, "Rng::range: lo must not exceed hi");
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /// Bernoulli trial with success probability `p`.
    bool chance(double p) { return uniform() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

} // namespace lar::util
