#include "util/threadpool.hpp"

#include <algorithm>

namespace lar::util {

ThreadPool::ThreadPool(unsigned workers) {
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return; // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

} // namespace lar::util
