// Whole-file read/write helpers.
#pragma once

#include <string>

namespace lar::util {

/// Reads an entire file; throws lar::Error when it cannot be opened.
[[nodiscard]] std::string readFile(const std::string& path);

/// Writes `content` to `path` (truncating); throws lar::Error on failure.
void writeFile(const std::string& path, const std::string& content);

} // namespace lar::util
