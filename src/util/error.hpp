// Error types and precondition helpers shared across the library.
//
// The library reports recoverable failures (bad input files, malformed
// encodings, infeasible API usage) with exceptions derived from lar::Error,
// per the project convention of RAII + exceptions for error handling.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace lar {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Thrown when an input document / JSON / DIMACS file cannot be parsed.
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what_arg) : Error(what_arg) {}
};

/// Thrown when a knowledge-base encoding is internally inconsistent
/// (dangling references, contradictory unconditional orderings, ...).
class EncodingError : public Error {
public:
    explicit EncodingError(const std::string& what_arg) : Error(what_arg) {}
};

/// Thrown when an API precondition is violated by the caller.
class LogicError : public Error {
public:
    explicit LogicError(const std::string& what_arg) : Error(what_arg) {}
};

/// Precondition check: throws LogicError when `cond` is false.
inline void expects(bool cond, std::string_view msg) {
    if (!cond) throw LogicError(std::string(msg));
}

/// Postcondition / invariant check: throws LogicError when `cond` is false.
inline void ensures(bool cond, std::string_view msg) {
    if (!cond) throw LogicError(std::string(msg));
}

} // namespace lar
