// Small string utilities used across parsing and report generation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lar::util {

/// Splits `s` on every occurrence of `sep`; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string> splitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// ASCII lower-casing.
[[nodiscard]] std::string toLower(std::string_view s);

/// True when `s` begins with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);

/// True when `needle` occurs in `haystack`, ignoring ASCII case.
[[nodiscard]] bool containsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) in `s` with `to`.
[[nodiscard]] std::string replaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

/// Parses a non-negative decimal integer embedded in `s` (first digit run),
/// ignoring thousands separators (','). Returns false when no digits exist.
[[nodiscard]] bool parseFirstInt(std::string_view s, long long& out);

/// Formats `v` with `digits` digits after the decimal point.
[[nodiscard]] std::string formatDouble(double v, int digits);

} // namespace lar::util
