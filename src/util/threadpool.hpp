// A small fixed-size thread pool for embarrassingly-parallel query batches.
//
// Deliberately minimal: submit() returns a std::future, tasks may not
// submit further tasks (no work stealing, no dependencies), and the pool
// joins on destruction. With one worker the pool degenerates to an ordered
// background executor, which keeps batch semantics identical on single-core
// hosts — results never depend on the worker count.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace lar::util {

class ThreadPool {
public:
    /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency()
    /// (at least 1).
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned workerCount() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// Enqueues `fn` and returns a future for its result. Exceptions thrown
    /// by the task surface from future::get().
    template <typename Fn>
    [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn fn) {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
        std::future<Result> result = task->get_future();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace([task]() { (*task)(); });
        }
        wake_.notify_one();
        return result;
    }

private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace lar::util
