// Deterministic fault injection for failure-path testing.
//
// Production code sprinkles named injection sites (`maybeFault("service.compile")`)
// at the places most likely to fail in the wild: compilation, cache insertion,
// backend construction, and solving. The injector is compiled in but default-off;
// the fast path of an un-armed process is a single relaxed atomic load, so the
// sites cost nothing when tests are not driving them.
//
// Tests arm sites in one of three modes:
//   * probability — every hit draws from a seeded per-site RNG stream, so a
//     given (seed, hit-sequence) always faults at the same hits;
//   * Nth-hit — the site throws exactly once, on its Nth consultation, then
//     disarms itself (for "1 of N queries fails" batch-isolation tests);
//   * delay — the site sleeps for a fixed duration on every hit (latency
//     injection, used to saturate queues deterministically).
//
// Injected faults throw FaultInjectedError, a lar::Error subclass, so they
// exercise exactly the catch paths real errors take.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace lar::util {

/// Thrown by an armed injection site. Derives lar::Error so fault-injection
/// tests exercise the same handling as organic failures.
class FaultInjectedError : public Error {
public:
    explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

/// Process-wide registry of injection sites. Thread-safe; see file comment.
class FaultInjector {
public:
    /// The process-wide injector consulted by every `maybeFault` site.
    static FaultInjector& global();

    /// Arms `site` to throw with probability `probability` per hit, drawn
    /// from a deterministic stream seeded by `seed`.
    void armProbability(std::string_view site, double probability,
                        std::uint64_t seed);

    /// Arms `site` to throw exactly once, on its `nth` hit (1-based), then
    /// stay silent.
    void armNthHit(std::string_view site, std::uint64_t nth);

    /// Arms `site` to sleep `delayMs` milliseconds on every hit.
    void armDelayMs(std::string_view site, int delayMs);

    /// Disarms one site (its hit counter is kept until reset()).
    void disarm(std::string_view site);

    /// Disarms every site and clears all hit counters.
    void reset();

    /// Number of times `site` has been consulted since it was first armed.
    [[nodiscard]] std::uint64_t hits(std::string_view site) const;

    /// Observable state of one injection site, for /statusz and
    /// GET /v1/debug/faults: what is armed, how, and how often it was hit.
    struct SiteStatus {
        std::string site;
        std::string mode; ///< "probability", "nth_hit", "delay", "disarmed"
        double probability = 0.0;
        std::uint64_t nth = 0;
        int delayMs = 0;
        std::uint64_t hits = 0;
        bool armed = false;
    };

    /// Every site ever armed this process (armed first, then by name), with
    /// its current mode and hit count. Disarmed sites stay listed until
    /// reset() so a chaos run's tally survives the disarm.
    [[nodiscard]] std::vector<SiteStatus> snapshot() const;

    /// True when at least one site is armed.
    [[nodiscard]] bool anyArmed() const {
        return armedSites_.load(std::memory_order_relaxed) > 0;
    }

    /// Injection point. No-op (one relaxed load) while nothing is armed;
    /// otherwise counts the hit and applies the site's armed behaviour.
    /// Throws FaultInjectedError when the site fires.
    void maybeFault(std::string_view site);

    /// Non-throwing injection point for code that cannot unwind (the epoll
    /// event loop, syscall wrappers): counts the hit, applies any armed
    /// delay, and returns true when the site fires. The caller maps "fired"
    /// to its own failure emulation (ECONNRESET, short read, ...). Same
    /// zero-cost-when-disarmed fast path as maybeFault.
    [[nodiscard]] bool fires(std::string_view site);

private:
    struct Site {
        bool armed = false;
        double probability = 0.0;    ///< per-hit fault probability (0 = off)
        std::uint64_t rngState = 0;  ///< splitmix64 stream for `probability`
        std::uint64_t nth = 0;       ///< 1-based trigger hit (0 = off)
        int delayMs = 0;             ///< sleep per hit (0 = off)
        std::uint64_t hitCount = 0;
    };

    Site& entry(std::string_view site);
    void recount();
    bool fire(std::string_view site, std::uint64_t& hitOut);

    mutable std::mutex mutex_;
    std::map<std::string, Site, std::less<>> sites_;
    std::atomic<int> armedSites_{0};
};

} // namespace lar::util
