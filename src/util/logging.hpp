// Minimal leveled logger.
//
// The reasoning engine logs compilation and search statistics at Debug level;
// benches raise the level to Warn to keep tables clean.
#pragma once

#include <sstream>
#include <string>

namespace lar::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// Emits one formatted line to stderr when `level` passes the threshold.
void logLine(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
    os << value;
    append(os, rest...);
}
} // namespace detail

/// Variadic convenience: logAt(LogLevel::Info, "solved in ", ms, " ms").
template <typename... Args>
void logAt(LogLevel level, const Args&... args) {
    if (level < logLevel()) return;
    std::ostringstream os;
    detail::append(os, args...);
    logLine(level, os.str());
}

} // namespace lar::util
