// Minimal leveled logger.
//
// The reasoning engine logs compilation and search statistics at Debug level;
// benches raise the level to Warn to keep tables clean. Two line formats
// share the level threshold: logAt/logLine for humans, logLineJson for log
// pipelines (one JSON object per line).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>

namespace lar::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// Emits one formatted line to stderr when `level` passes the threshold.
void logLine(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
    os << value;
    append(os, rest...);
}
} // namespace detail

/// Variadic convenience: logAt(LogLevel::Info, "solved in ", ms, " ms").
template <typename... Args>
void logAt(LogLevel level, const Args&... args) {
    if (level < logLevel()) return;
    std::ostringstream os;
    detail::append(os, args...);
    logLine(level, os.str());
}

/// One key/value pair of a structured log line. The value is pre-rendered to
/// a JSON scalar at the call site (strings escaped, numbers/bools verbatim).
struct LogField {
    LogField(std::string_view key, std::string_view value);
    LogField(std::string_view key, const char* value)
        : LogField(key, std::string_view(value)) {}
    LogField(std::string_view key, const std::string& value)
        : LogField(key, std::string_view(value)) {}
    LogField(std::string_view key, double value);
    LogField(std::string_view key, std::int64_t value);
    LogField(std::string_view key, std::uint64_t value);
    LogField(std::string_view key, int value)
        : LogField(key, static_cast<std::int64_t>(value)) {}
    LogField(std::string_view key, bool value);

    std::string key;
    std::string rendered; ///< value as a JSON scalar
};

/// Structured logging: emits one JSON object per line to stderr when `level`
/// passes the threshold, e.g.
///   {"ts_ms":…,"level":"info","event":"query_done","id":"q1","total_ms":3.2}
/// ts_ms is milliseconds since the Unix epoch. Keys "ts_ms"/"level"/"event"
/// are reserved; fields appear after them in call order. When a
/// ScopedLogTraceId is active on the calling thread, a trailing
/// "trace_id" field is appended automatically.
void logLineJson(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields);

/// Installs `traceId` as this thread's ambient request identity for the
/// enclosing scope: every logLineJson call on the thread gains a trailing
/// "trace_id" field, so all lines a request emits — across the HTTP layer,
/// the Service, and session asks — join on one grep. Scopes nest (a worker
/// task restores the submitter's value on exit); an empty id is a no-op
/// installation that still restores correctly.
class ScopedLogTraceId {
public:
    explicit ScopedLogTraceId(std::string_view traceId);
    ~ScopedLogTraceId();
    ScopedLogTraceId(const ScopedLogTraceId&) = delete;
    ScopedLogTraceId& operator=(const ScopedLogTraceId&) = delete;

private:
    std::string saved_;
};

/// This thread's ambient trace id ("" when none is installed). Exposed so
/// layers below the HTTP server (Service, SessionManager) can adopt the
/// request identity without it being plumbed through every signature.
[[nodiscard]] const std::string& currentLogTraceId();

} // namespace lar::util
