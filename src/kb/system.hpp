// System encodings — the paper's Listing 2.
//
// A System is the shallow description of a deployable component: the
// category (role) it fills, the capabilities it `solves`, the requirements
// it places on the environment, the resources it consumes (possibly scaled
// by workload aggregates, like SIMON's CPU_FACTOR·num_flows), the facts it
// `provides` to the environment, and hard conflicts. No behavioural or
// temporal modelling — by design (§3.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kb/requirement.hpp"

namespace lar::kb {

/// The system taxonomy used by the paper's prototype (§5.1).
enum class Category {
    NetworkStack,
    CongestionControl,
    Monitoring,
    Firewall,
    VirtualSwitch,
    LoadBalancer,
    TransportProtocol,
};

inline constexpr Category kAllCategories[] = {
    Category::NetworkStack,   Category::CongestionControl,
    Category::Monitoring,     Category::Firewall,
    Category::VirtualSwitch,  Category::LoadBalancer,
    Category::TransportProtocol,
};

[[nodiscard]] std::string toString(Category c);

/// Resource names with built-in capacity semantics (see reason/compile.cpp).
inline constexpr const char* kResCores = "cores";            // per server
inline constexpr const char* kResP4Stages = "p4_stages";     // per switch
inline constexpr const char* kResQosClasses = "qos_classes"; // per switch
inline constexpr const char* kResSmartNicCores = "smartnic_cores"; // per NIC
inline constexpr const char* kResFpgaGatesK = "fpga_gates_k";      // per NIC
inline constexpr const char* kResSwitchMemoryGb = "switch_memory_gb";

/// A system's demand on one resource. The effective amount is
///   fixed + perKiloFlows·(Σ workload flows / 1000)
///         + perGbps·(Σ workload peak bandwidth),
/// rounded up — the "crude approximations human designers use" (§3.1).
struct ResourceDemand {
    std::string resource;
    double fixed = 0.0;
    double perKiloFlows = 0.0;
    double perGbps = 0.0;

    /// Effective integer demand for given workload aggregates.
    [[nodiscard]] std::int64_t amountFor(double totalKiloFlows,
                                         double totalGbps) const;
};

struct System {
    std::string name;
    Category category = Category::NetworkStack;
    std::vector<std::string> solves;    ///< capabilities, e.g. "detect_queue_length"
    Requirement constraints;            ///< deployment requirements
    std::vector<ResourceDemand> demands;
    std::vector<std::string> provides;  ///< facts made true when deployed
    std::vector<std::string> conflicts; ///< systems it cannot coexist with
    bool researchGrade = false;         ///< research prototype (§3.1 deadline rule)
    std::string source;                 ///< citation / provenance note

    [[nodiscard]] bool solvesCapability(const std::string& capability) const;
    [[nodiscard]] bool providesFact(const std::string& fact) const;
};

/// A rule-of-thumb preference edge (Figure 1): `better` beats `worse` on
/// `objective`, when `condition` holds in the deployment context.
///
/// Comparisons are inherently subjective (§4.2); `disputes` records sources
/// that disagree with the encoded direction, so architects can see both
/// sides before trusting the edge ("annotated by LLMs and humans with links
/// to sources that disagree with what is encoded").
struct Ordering {
    std::string better;
    std::string worse;
    std::string objective;
    Requirement condition; ///< default: unconditional
    std::string source;    ///< citation backing the rule of thumb
    std::vector<std::string> disputes; ///< sources contesting this edge
};

} // namespace lar::kb
