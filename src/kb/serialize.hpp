// JSON (de)serialization of knowledge-base encodings.
//
// The wire format mirrors the paper's listings: hardware specs serialize to
// Listing-1-style attribute objects; systems to Listing-2-style objects with
// `solves`, `constraints`, and `resources`; orderings to Listing-2 lines 7–8.
#pragma once

#include <string>

#include "json/value.hpp"
#include "kb/kb.hpp"

namespace lar::kb {

// -- individual entities ------------------------------------------------------
[[nodiscard]] json::Value toJson(const HardwareSpec& spec);
[[nodiscard]] json::Value toJson(const System& system);
[[nodiscard]] json::Value toJson(const Ordering& ordering);
[[nodiscard]] json::Value toJson(const Requirement& requirement);
[[nodiscard]] json::Value toJson(const Workload& workload);

[[nodiscard]] HardwareSpec hardwareFromJson(const json::Value& v);
[[nodiscard]] System systemFromJson(const json::Value& v);
[[nodiscard]] Ordering orderingFromJson(const json::Value& v);
[[nodiscard]] Requirement requirementFromJson(const json::Value& v);
[[nodiscard]] Workload workloadFromJson(const json::Value& v);

// -- whole knowledge base -----------------------------------------------------
[[nodiscard]] json::Value toJson(const KnowledgeBase& kb);
[[nodiscard]] KnowledgeBase kbFromJson(const json::Value& v);

/// Convenience text round trip.
[[nodiscard]] std::string kbToText(const KnowledgeBase& kb);
[[nodiscard]] KnowledgeBase kbFromText(const std::string& text);

} // namespace lar::kb
