#include "kb/system.hpp"

#include <algorithm>
#include <cmath>

namespace lar::kb {

std::string toString(Category c) {
    switch (c) {
        case Category::NetworkStack: return "network_stack";
        case Category::CongestionControl: return "congestion_control";
        case Category::Monitoring: return "monitoring";
        case Category::Firewall: return "firewall";
        case Category::VirtualSwitch: return "virtual_switch";
        case Category::LoadBalancer: return "load_balancer";
        case Category::TransportProtocol: return "transport_protocol";
    }
    return "?";
}

std::int64_t ResourceDemand::amountFor(double totalKiloFlows,
                                       double totalGbps) const {
    const double amount =
        fixed + perKiloFlows * totalKiloFlows + perGbps * totalGbps;
    return static_cast<std::int64_t>(std::ceil(std::max(0.0, amount)));
}

bool System::solvesCapability(const std::string& capability) const {
    return std::find(solves.begin(), solves.end(), capability) != solves.end();
}

bool System::providesFact(const std::string& fact) const {
    return std::find(provides.begin(), provides.end(), fact) != provides.end();
}

} // namespace lar::kb
