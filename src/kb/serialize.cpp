#include "kb/serialize.hpp"

#include "json/parse.hpp"
#include "json/write.hpp"
#include "util/error.hpp"

namespace lar::kb {

namespace {

json::Value attrToJson(const AttrValue& v) {
    if (const auto* b = std::get_if<bool>(&v)) return json::Value(*b);
    if (const auto* i = std::get_if<std::int64_t>(&v)) return json::Value(*i);
    if (const auto* d = std::get_if<double>(&v)) return json::Value(*d);
    return json::Value(std::get<std::string>(v));
}

AttrValue attrFromJson(const json::Value& v) {
    switch (v.type()) {
        case json::Type::Bool: return v.asBool();
        case json::Type::Int: return v.asInt();
        case json::Type::Double: return v.asDouble();
        case json::Type::String: return v.asString();
        default: throw ParseError("kb: invalid attribute value type");
    }
}

HardwareClass hwClassFromString(const std::string& s) {
    if (s == "switch") return HardwareClass::Switch;
    if (s == "nic") return HardwareClass::Nic;
    if (s == "server") return HardwareClass::Server;
    throw ParseError("kb: unknown hardware class '" + s + "'");
}

Category categoryFromString(const std::string& s) {
    for (const Category c : kAllCategories)
        if (toString(c) == s) return c;
    throw ParseError("kb: unknown category '" + s + "'");
}

CmpOp cmpFromString(const std::string& s) {
    if (s == "<") return CmpOp::Lt;
    if (s == "<=") return CmpOp::Le;
    if (s == "==") return CmpOp::Eq;
    if (s == "!=") return CmpOp::Ne;
    if (s == ">=") return CmpOp::Ge;
    if (s == ">") return CmpOp::Gt;
    throw ParseError("kb: unknown comparison operator '" + s + "'");
}

json::Value stringArray(const std::vector<std::string>& items) {
    json::Array arr;
    for (const std::string& s : items) arr.emplace_back(s);
    return json::Value(std::move(arr));
}

std::vector<std::string> stringArrayFromJson(const json::Value& v) {
    std::vector<std::string> out;
    for (const json::Value& item : v.asArray()) out.push_back(item.asString());
    return out;
}

} // namespace

json::Value toJson(const Requirement& r) {
    json::Value v;
    using Kind = Requirement::Kind;
    switch (r.kind()) {
        case Kind::True: v["kind"] = "true"; break;
        case Kind::False: v["kind"] = "false"; break;
        case Kind::And:
        case Kind::Or:
        case Kind::Not: {
            v["kind"] = r.kind() == Kind::And ? "and"
                        : r.kind() == Kind::Or ? "or"
                                               : "not";
            json::Array kids;
            for (const Requirement& c : r.children()) kids.push_back(toJson(c));
            v["children"] = json::Value(std::move(kids));
            break;
        }
        case Kind::HardwareHas:
            v["kind"] = "hw_has";
            v["class"] = toString(r.hwClass());
            v["key"] = r.key();
            break;
        case Kind::HardwareCmp:
            v["kind"] = "hw_cmp";
            v["class"] = toString(r.hwClass());
            v["key"] = r.key();
            v["op"] = toString(r.op());
            v["value"] = r.value();
            break;
        case Kind::SystemPresent:
            v["kind"] = "system";
            v["name"] = r.key();
            break;
        case Kind::FactTrue:
            v["kind"] = "fact";
            v["name"] = r.key();
            break;
        case Kind::OptionTrue:
            v["kind"] = "option";
            v["name"] = r.key();
            break;
        case Kind::WorkloadHas:
            v["kind"] = "workload_has";
            v["name"] = r.key();
            break;
    }
    return v;
}

Requirement requirementFromJson(const json::Value& v) {
    const std::string kind = v.at("kind").asString();
    if (kind == "true") return Requirement::alwaysTrue();
    if (kind == "false") return Requirement::alwaysFalse();
    if (kind == "and" || kind == "or" || kind == "not") {
        std::vector<Requirement> kids;
        for (const json::Value& c : v.at("children").asArray())
            kids.push_back(requirementFromJson(c));
        if (kind == "and") return Requirement::allOf(std::move(kids));
        if (kind == "or") return Requirement::anyOf(std::move(kids));
        if (kids.size() != 1) throw ParseError("kb: 'not' needs one child");
        return Requirement::negate(std::move(kids[0]));
    }
    if (kind == "hw_has")
        return Requirement::hardwareHas(hwClassFromString(v.at("class").asString()),
                                        v.at("key").asString());
    if (kind == "hw_cmp")
        return Requirement::hardwareCmp(hwClassFromString(v.at("class").asString()),
                                        v.at("key").asString(),
                                        cmpFromString(v.at("op").asString()),
                                        v.at("value").asDouble());
    if (kind == "system") return Requirement::systemPresent(v.at("name").asString());
    if (kind == "fact") return Requirement::fact(v.at("name").asString());
    if (kind == "option") return Requirement::option(v.at("name").asString());
    if (kind == "workload_has")
        return Requirement::workloadHas(v.at("name").asString());
    throw ParseError("kb: unknown requirement kind '" + kind + "'");
}

json::Value toJson(const HardwareSpec& spec) {
    json::Value v;
    v["model"] = spec.model;
    v["vendor"] = spec.vendor;
    v["class"] = toString(spec.cls);
    v["unit_cost_usd"] = spec.unitCostUsd;
    v["max_power_w"] = spec.maxPowerW;
    json::Object attrs;
    for (const auto& [key, value] : spec.attrs) attrs[key] = attrToJson(value);
    v["attrs"] = json::Value(std::move(attrs));
    return v;
}

HardwareSpec hardwareFromJson(const json::Value& v) {
    HardwareSpec spec;
    spec.model = v.at("model").asString();
    spec.vendor = v.at("vendor").asString();
    spec.cls = hwClassFromString(v.at("class").asString());
    spec.unitCostUsd = v.at("unit_cost_usd").asDouble();
    spec.maxPowerW = v.at("max_power_w").asDouble();
    for (const auto& [key, value] : v.at("attrs").asObject().entries())
        spec.attrs.emplace(key, attrFromJson(value));
    return spec;
}

json::Value toJson(const System& s) {
    json::Value v;
    v["name"] = s.name;
    v["category"] = toString(s.category);
    v["solves"] = stringArray(s.solves);
    v["constraints"] = toJson(s.constraints);
    json::Array demands;
    for (const ResourceDemand& d : s.demands) {
        json::Value dv;
        dv["resource"] = d.resource;
        dv["fixed"] = d.fixed;
        dv["per_kflows"] = d.perKiloFlows;
        dv["per_gbps"] = d.perGbps;
        demands.push_back(std::move(dv));
    }
    v["resources"] = json::Value(std::move(demands));
    v["provides"] = stringArray(s.provides);
    v["conflicts"] = stringArray(s.conflicts);
    v["research_grade"] = s.researchGrade;
    v["source"] = s.source;
    return v;
}

System systemFromJson(const json::Value& v) {
    System s;
    s.name = v.at("name").asString();
    s.category = categoryFromString(v.at("category").asString());
    s.solves = stringArrayFromJson(v.at("solves"));
    s.constraints = requirementFromJson(v.at("constraints"));
    for (const json::Value& dv : v.at("resources").asArray()) {
        ResourceDemand d;
        d.resource = dv.at("resource").asString();
        d.fixed = dv.at("fixed").asDouble();
        d.perKiloFlows = dv.at("per_kflows").asDouble();
        d.perGbps = dv.at("per_gbps").asDouble();
        s.demands.push_back(std::move(d));
    }
    s.provides = stringArrayFromJson(v.at("provides"));
    s.conflicts = stringArrayFromJson(v.at("conflicts"));
    s.researchGrade = v.at("research_grade").asBool();
    s.source = v.at("source").asString();
    return s;
}

json::Value toJson(const Ordering& o) {
    json::Value v;
    v["better"] = o.better;
    v["worse"] = o.worse;
    v["objective"] = o.objective;
    v["condition"] = toJson(o.condition);
    v["source"] = o.source;
    if (!o.disputes.empty()) v["disputes"] = stringArray(o.disputes);
    return v;
}

Ordering orderingFromJson(const json::Value& v) {
    Ordering o;
    o.better = v.at("better").asString();
    o.worse = v.at("worse").asString();
    o.objective = v.at("objective").asString();
    o.condition = requirementFromJson(v.at("condition"));
    o.source = v.at("source").asString();
    if (v.asObject().contains("disputes"))
        o.disputes = stringArrayFromJson(v.at("disputes"));
    return o;
}

json::Value toJson(const Workload& w) {
    json::Value v;
    v["name"] = w.name;
    v["properties"] = stringArray(w.properties);
    json::Array racks;
    for (const int r : w.racks) racks.emplace_back(std::int64_t{r});
    v["deployed_at"] = json::Value(std::move(racks));
    v["peak_cores"] = w.peakCores;
    v["peak_bandwidth_gbps"] = w.peakBandwidthGbps;
    v["num_flows"] = w.numFlows;
    json::Array bounds;
    for (const PerformanceBound& b : w.bounds) {
        json::Value bv;
        bv["objective"] = b.objective;
        bv["better_than"] = b.betterThanSystem;
        bounds.push_back(std::move(bv));
    }
    v["performance_bounds"] = json::Value(std::move(bounds));
    return v;
}

Workload workloadFromJson(const json::Value& v) {
    Workload w;
    w.name = v.at("name").asString();
    w.properties = stringArrayFromJson(v.at("properties"));
    for (const json::Value& r : v.at("deployed_at").asArray())
        w.racks.push_back(static_cast<int>(r.asInt()));
    w.peakCores = v.at("peak_cores").asInt();
    w.peakBandwidthGbps = v.at("peak_bandwidth_gbps").asDouble();
    w.numFlows = v.at("num_flows").asInt();
    for (const json::Value& bv : v.at("performance_bounds").asArray())
        w.bounds.push_back(
            {bv.at("objective").asString(), bv.at("better_than").asString()});
    return w;
}

json::Value toJson(const KnowledgeBase& kb) {
    json::Value v;
    json::Array systems;
    for (const System& s : kb.systems()) systems.push_back(toJson(s));
    v["systems"] = json::Value(std::move(systems));
    json::Array hardware;
    for (const HardwareSpec& h : kb.hardwareSpecs()) hardware.push_back(toJson(h));
    v["hardware"] = json::Value(std::move(hardware));
    json::Array orderings;
    for (const Ordering& o : kb.orderings()) orderings.push_back(toJson(o));
    v["orderings"] = json::Value(std::move(orderings));
    return v;
}

KnowledgeBase kbFromJson(const json::Value& v) {
    KnowledgeBase kb;
    for (const json::Value& s : v.at("systems").asArray())
        kb.addSystem(systemFromJson(s));
    for (const json::Value& h : v.at("hardware").asArray())
        kb.addHardware(hardwareFromJson(h));
    for (const json::Value& o : v.at("orderings").asArray())
        kb.addOrdering(orderingFromJson(o));
    return kb;
}

std::string kbToText(const KnowledgeBase& kb) {
    return json::writePretty(toJson(kb));
}

KnowledgeBase kbFromText(const std::string& text) {
    return kbFromJson(json::parse(text));
}

} // namespace lar::kb
