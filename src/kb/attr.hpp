// Typed attribute values for hardware encodings (Listing 1 style).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace lar::kb {

/// A hardware attribute value: flag, count, measurement, or free text.
using AttrValue = std::variant<bool, std::int64_t, double, std::string>;

/// Numeric view of an attribute (ints and doubles); nullopt for bool/string.
[[nodiscard]] inline std::optional<double> attrAsNumber(const AttrValue& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
    if (const auto* d = std::get_if<double>(&v)) return *d;
    return std::nullopt;
}

/// Boolean view; nullopt for non-bool attributes.
[[nodiscard]] inline std::optional<bool> attrAsBool(const AttrValue& v) {
    if (const auto* b = std::get_if<bool>(&v)) return *b;
    return std::nullopt;
}

/// Human-readable rendering (used in reports and generated spec sheets).
[[nodiscard]] std::string attrToString(const AttrValue& v);

} // namespace lar::kb
