// The requirement DSL — the `constraints = And(...)` part of Listing 2.
//
// A Requirement is a small predicate tree over the *deployment environment*:
// attributes of the chosen hardware models, presence of other systems,
// derived facts (e.g. "flooding is in use"), free deployment options
// (e.g. "Pony enabled"), and workload properties. The reasoning layer
// compiles each node to a solver formula; Requirements themselves carry no
// solver state, so encodings stay declarative and serializable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kb/hardware.hpp"

namespace lar::kb {

enum class CmpOp { Lt, Le, Eq, Ne, Ge, Gt };

[[nodiscard]] std::string toString(CmpOp op);
[[nodiscard]] bool applyCmp(CmpOp op, double lhs, double rhs);

class Requirement {
public:
    enum class Kind {
        True,           ///< no requirement
        False,          ///< unconditionally violated (useful in tests)
        And,            ///< all children
        Or,             ///< any child
        Not,            ///< single child negated
        HardwareHas,    ///< chosen model of `hwClass` has bool attr `key` true
        HardwareCmp,    ///< chosen model's numeric attr `key` <op> `value`
        SystemPresent,  ///< system `name` is part of the design
        FactTrue,       ///< derived fact `name` holds (provided by a chosen
                        ///< system or pinned by the architect)
        OptionTrue,     ///< free deployment option `name` is switched on
        WorkloadHas     ///< some workload in the problem has property `name`
    };

    Requirement() : kind_(Kind::True) {}

    // -- factories -----------------------------------------------------------
    static Requirement alwaysTrue() { return Requirement(Kind::True); }
    static Requirement alwaysFalse() { return Requirement(Kind::False); }
    static Requirement allOf(std::vector<Requirement> children);
    static Requirement anyOf(std::vector<Requirement> children);
    static Requirement negate(Requirement child);
    static Requirement hardwareHas(HardwareClass cls, std::string key);
    static Requirement hardwareCmp(HardwareClass cls, std::string key, CmpOp op,
                                   double value);
    static Requirement systemPresent(std::string name);
    static Requirement systemAbsent(std::string name) {
        return negate(systemPresent(std::move(name)));
    }
    static Requirement fact(std::string name);
    static Requirement factAbsent(std::string name) {
        return negate(fact(std::move(name)));
    }
    static Requirement option(std::string name);
    static Requirement workloadHas(std::string property);

    // -- introspection (used by the compiler, serializer, and checker) -------
    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] const std::vector<Requirement>& children() const {
        return children_;
    }
    [[nodiscard]] const std::string& key() const { return key_; }
    [[nodiscard]] HardwareClass hwClass() const { return hwClass_; }
    [[nodiscard]] CmpOp op() const { return op_; }
    [[nodiscard]] double value() const { return value_; }

    /// True when the requirement is the trivial `True` node.
    [[nodiscard]] bool isTrivial() const { return kind_ == Kind::True; }

    /// Human-readable rendering used in explanations, e.g.
    /// "nic.has(nic_timestamps) & fact(flooding_absent)".
    [[nodiscard]] std::string toString() const;

    /// Collects the names referenced by SystemPresent nodes (validation).
    void collectSystemRefs(std::vector<std::string>& out) const;
    /// Collects fact names referenced by FactTrue nodes.
    void collectFactRefs(std::vector<std::string>& out) const;
    /// Collects option names referenced by OptionTrue nodes.
    void collectOptionRefs(std::vector<std::string>& out) const;
    /// Collects (class, key) pairs referenced by Hardware* nodes.
    void collectHardwareRefs(
        std::vector<std::pair<HardwareClass, std::string>>& out) const;

private:
    explicit Requirement(Kind kind) : kind_(kind) {}

    Kind kind_;
    std::vector<Requirement> children_;
    std::string key_;                            ///< attr key / name / property
    HardwareClass hwClass_ = HardwareClass::Switch;
    CmpOp op_ = CmpOp::Ge;
    double value_ = 0.0;
};

} // namespace lar::kb
