#include "kb/workload.hpp"

#include <algorithm>

namespace lar::kb {

bool Workload::hasProperty(const std::string& property) const {
    return std::find(properties.begin(), properties.end(), property) !=
           properties.end();
}

} // namespace lar::kb
