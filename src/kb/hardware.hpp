// Hardware encodings: switches, NICs, and servers as attribute maps.
//
// Mirrors the paper's Listing 1 (an auto-generated encoding of the Cisco
// Catalyst 9500-40X): a hardware spec is a flat, typed attribute map plus a
// unit cost and power figure used by the cost objective. Attribute keys are
// free-form strings; the constants below name the ones the built-in rules
// reference.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "kb/attr.hpp"

namespace lar::kb {

enum class HardwareClass { Switch, Nic, Server };

[[nodiscard]] std::string toString(HardwareClass c);

/// Well-known attribute keys (switches).
inline constexpr const char* kAttrPortBandwidthGbps = "port_bandwidth_gbps";
inline constexpr const char* kAttrNumPorts = "num_ports";
inline constexpr const char* kAttrMemoryGb = "memory_gb";
inline constexpr const char* kAttrP4Supported = "p4_supported";
inline constexpr const char* kAttrP4Stages = "p4_stages";
inline constexpr const char* kAttrEcnSupported = "ecn_supported";
inline constexpr const char* kAttrQcnSupported = "qcn_supported";
inline constexpr const char* kAttrIntSupported = "int_supported";
inline constexpr const char* kAttrMacTableSize = "mac_table_size";
inline constexpr const char* kAttrQosClasses = "qos_classes";
inline constexpr const char* kAttrPfcSupported = "pfc_supported";
inline constexpr const char* kAttrBufferMb = "buffer_mb";
inline constexpr const char* kAttrDeepBuffers = "deep_buffers";

/// Well-known attribute keys (NICs).
inline constexpr const char* kAttrNicTimestamps = "nic_timestamps";
inline constexpr const char* kAttrSmartNic = "smartnic";           // bool
inline constexpr const char* kAttrSmartNicKind = "smartnic_kind";  // "none"|"fpga"|"cpu"
inline constexpr const char* kAttrInterruptPolling = "interrupt_polling";
inline constexpr const char* kAttrReorderBufferKb = "reorder_buffer_kb";
inline constexpr const char* kAttrRdmaSupported = "rdma_supported";
inline constexpr const char* kAttrFpgaGatesK = "fpga_gates_k";
inline constexpr const char* kAttrNicCores = "nic_cores";
inline constexpr const char* kAttrSrIov = "sr_iov";

/// Well-known attribute keys (servers).
inline constexpr const char* kAttrCores = "cores";
inline constexpr const char* kAttrRamGb = "ram_gb";
inline constexpr const char* kAttrCxlSupported = "cxl_supported";
inline constexpr const char* kAttrNumaNodes = "numa_nodes";

/// A single hardware model's encoding.
struct HardwareSpec {
    std::string model;   ///< e.g. "Cisco Catalyst 9500-40X"
    std::string vendor;  ///< e.g. "Cisco"
    HardwareClass cls = HardwareClass::Switch;
    std::map<std::string, AttrValue> attrs;
    double unitCostUsd = 0.0;
    double maxPowerW = 0.0;

    /// Typed lookups; nullopt when absent or wrong type.
    [[nodiscard]] std::optional<bool> boolAttr(const std::string& key) const;
    [[nodiscard]] std::optional<double> numAttr(const std::string& key) const;
    [[nodiscard]] std::optional<std::string> strAttr(const std::string& key) const;
};

} // namespace lar::kb
