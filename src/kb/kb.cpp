#include "kb/kb.hpp"

#include <atomic>
#include <functional>
#include <set>

#include "util/error.hpp"

namespace lar::kb {

std::uint64_t KnowledgeBase::nextInstanceId() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

KnowledgeBase::KnowledgeBase(const KnowledgeBase& other)
    : systems_(other.systems_),
      hardware_(other.hardware_),
      orderings_(other.orderings_),
      systemIndex_(other.systemIndex_),
      hardwareIndex_(other.hardwareIndex_),
      instanceId_(nextInstanceId()) {}

KnowledgeBase& KnowledgeBase::operator=(const KnowledgeBase& other) {
    if (this == &other) return *this;
    systems_ = other.systems_;
    hardware_ = other.hardware_;
    orderings_ = other.orderings_;
    systemIndex_ = other.systemIndex_;
    hardwareIndex_ = other.hardwareIndex_;
    ++mutations_; // keep our instance id; the content changed
    return *this;
}

void KnowledgeBase::addSystem(System system) {
    if (systemIndex_.count(system.name) > 0)
        throw EncodingError("duplicate system encoding: " + system.name);
    systemIndex_.emplace(system.name, systems_.size());
    systems_.push_back(std::move(system));
    ++mutations_;
}

void KnowledgeBase::addHardware(HardwareSpec spec) {
    if (hardwareIndex_.count(spec.model) > 0)
        throw EncodingError("duplicate hardware encoding: " + spec.model);
    hardwareIndex_.emplace(spec.model, hardware_.size());
    hardware_.push_back(std::move(spec));
    ++mutations_;
}

void KnowledgeBase::addOrdering(Ordering ordering) {
    orderings_.push_back(std::move(ordering));
    ++mutations_;
}

void KnowledgeBase::replaceSystem(System system) {
    const auto it = systemIndex_.find(system.name);
    if (it == systemIndex_.end())
        throw EncodingError("replaceSystem: unknown system " + system.name);
    systems_[it->second] = std::move(system);
    ++mutations_;
}

std::size_t KnowledgeBase::removeSystem(const std::string& name) {
    const auto it = systemIndex_.find(name);
    if (it == systemIndex_.end())
        throw EncodingError("removeSystem: unknown system " + name);
    const std::size_t pos = it->second;
    systems_.erase(systems_.begin() + static_cast<std::ptrdiff_t>(pos));
    systemIndex_.erase(it);
    for (auto& [otherName, idx] : systemIndex_)
        if (idx > pos) --idx;
    const std::size_t before = orderings_.size();
    std::erase_if(orderings_, [&name](const Ordering& o) {
        return o.better == name || o.worse == name;
    });
    ++mutations_;
    return before - orderings_.size();
}

const System* KnowledgeBase::findSystem(const std::string& name) const {
    const auto it = systemIndex_.find(name);
    return it == systemIndex_.end() ? nullptr : &systems_[it->second];
}

const System& KnowledgeBase::system(const std::string& name) const {
    const System* s = findSystem(name);
    if (s == nullptr) throw EncodingError("unknown system: " + name);
    return *s;
}

const HardwareSpec* KnowledgeBase::findHardware(const std::string& model) const {
    const auto it = hardwareIndex_.find(model);
    return it == hardwareIndex_.end() ? nullptr : &hardware_[it->second];
}

const HardwareSpec& KnowledgeBase::hardware(const std::string& model) const {
    const HardwareSpec* h = findHardware(model);
    if (h == nullptr) throw EncodingError("unknown hardware model: " + model);
    return *h;
}

std::vector<const System*> KnowledgeBase::byCategory(Category category) const {
    std::vector<const System*> out;
    for (const System& s : systems_)
        if (s.category == category) out.push_back(&s);
    return out;
}

std::vector<const HardwareSpec*> KnowledgeBase::byClass(HardwareClass cls) const {
    std::vector<const HardwareSpec*> out;
    for (const HardwareSpec& h : hardware_)
        if (h.cls == cls) out.push_back(&h);
    return out;
}

std::vector<const System*> KnowledgeBase::solving(
    const std::string& capability) const {
    std::vector<const System*> out;
    for (const System& s : systems_)
        if (s.solvesCapability(capability)) out.push_back(&s);
    return out;
}

std::vector<const Ordering*> KnowledgeBase::orderingsFor(
    const std::string& objective) const {
    std::vector<const Ordering*> out;
    for (const Ordering& o : orderings_)
        if (o.objective == objective) out.push_back(&o);
    return out;
}

std::vector<ValidationIssue> KnowledgeBase::validate() const {
    std::vector<ValidationIssue> issues;
    const auto error = [&issues](std::string msg) {
        issues.push_back({ValidationIssue::Severity::Error, std::move(msg)});
    };
    const auto warning = [&issues](std::string msg) {
        issues.push_back({ValidationIssue::Severity::Warning, std::move(msg)});
    };

    // Referential integrity of requirements / conflicts / orderings.
    for (const System& s : systems_) {
        std::vector<std::string> refs;
        s.constraints.collectSystemRefs(refs);
        for (const std::string& ref : refs)
            if (findSystem(ref) == nullptr)
                error("system '" + s.name + "' requires unknown system '" + ref +
                      "'");
        for (const std::string& conflict : s.conflicts) {
            if (findSystem(conflict) == nullptr)
                error("system '" + s.name + "' conflicts with unknown system '" +
                      conflict + "'");
        }
        if (s.source.empty())
            warning("system '" + s.name + "' has no source citation");
    }
    for (const Ordering& o : orderings_) {
        if (findSystem(o.better) == nullptr)
            error("ordering references unknown system '" + o.better + "'");
        if (findSystem(o.worse) == nullptr)
            error("ordering references unknown system '" + o.worse + "'");
        if (o.better == o.worse)
            error("ordering compares '" + o.better + "' with itself");
        // Orderings only make sense within one category.
        const System* a = findSystem(o.better);
        const System* b = findSystem(o.worse);
        if (a != nullptr && b != nullptr && a->category != b->category)
            error("ordering on '" + o.objective + "' crosses categories: " +
                  o.better + " vs " + o.worse);
    }

    // Hardware attributes referenced by requirements should exist on at
    // least one spec of that class — otherwise the leaf can never hold,
    // which is almost always a typo in a crowd-sourced encoding.
    {
        std::map<HardwareClass, std::set<std::string>> knownAttrs;
        for (const HardwareSpec& h : hardware_)
            for (const auto& [key, value] : h.attrs) knownAttrs[h.cls].insert(key);
        const auto checkRefs = [&](const Requirement& r, const std::string& owner) {
            std::vector<std::pair<HardwareClass, std::string>> refs;
            r.collectHardwareRefs(refs);
            for (const auto& [cls, key] : refs) {
                if (knownAttrs.count(cls) > 0 && knownAttrs[cls].count(key) > 0)
                    continue;
                if (hardware_.empty()) continue; // nothing to check against
                warning(owner + " references attribute '" + key + "' that no " +
                        lar::kb::toString(cls) + " in the knowledge base has "
                        "(typo?)");
            }
        };
        for (const System& s : systems_)
            checkRefs(s.constraints, "system '" + s.name + "'");
        for (const Ordering& o : orderings_)
            checkRefs(o.condition,
                      "ordering " + o.better + " > " + o.worse);
    }

    // Facts referenced anywhere should be provided by some system (or be
    // well-known pinnable facts) — flag unprovided ones as warnings.
    std::set<std::string> provided;
    for (const System& s : systems_)
        for (const std::string& f : s.provides) provided.insert(f);
    for (const System& s : systems_) {
        std::vector<std::string> facts;
        s.constraints.collectFactRefs(facts);
        for (const std::string& f : facts)
            if (provided.count(f) == 0)
                warning("system '" + s.name + "' references fact '" + f +
                        "' that no system provides (must be pinned by the "
                        "architect)");
    }

    // Unconditional-preference cycles per objective (A > B > ... > A with all
    // conditions trivially true is contradictory knowledge).
    std::set<std::string> objectives;
    for (const Ordering& o : orderings_) objectives.insert(o.objective);
    for (const std::string& objective : objectives) {
        std::map<std::string, std::vector<std::string>> adj;
        for (const Ordering& o : orderings_)
            if (o.objective == objective && o.condition.isTrivial())
                adj[o.better].push_back(o.worse);
        // Iterative DFS cycle detection.
        std::map<std::string, int> state; // 0 unseen, 1 active, 2 done
        std::function<bool(const std::string&)> hasCycle =
            [&](const std::string& node) -> bool {
            state[node] = 1;
            for (const std::string& next : adj[node]) {
                if (state[next] == 1) return true;
                if (state[next] == 0 && hasCycle(next)) return true;
            }
            state[node] = 2;
            return false;
        };
        for (const auto& [node, edges] : adj) {
            if (state[node] == 0 && hasCycle(node)) {
                error("unconditional ordering cycle on objective '" + objective +
                      "' involving '" + node + "'");
                break;
            }
        }
    }
    return issues;
}

namespace {
std::size_t requirementSize(const Requirement& r) {
    std::size_t n = 1;
    for (const Requirement& c : r.children()) n += requirementSize(c);
    return n;
}
} // namespace

std::size_t KnowledgeBase::encodingLength() const {
    std::size_t total = 0;
    for (const System& s : systems_) {
        total += requirementSize(s.constraints);
        total += s.demands.size() + s.provides.size() + s.conflicts.size() +
                 s.solves.size() + 1;
    }
    for (const HardwareSpec& h : hardware_) total += h.attrs.size() + 1;
    for (const Ordering& o : orderings_) total += 1 + requirementSize(o.condition);
    return total;
}

} // namespace lar::kb
