// Knowledge-base diffing.
//
// The paper's §1/§3.3 workflow has the community crowd-source encodings
// into a shared compendium; reviewing a contribution means seeing exactly
// what changed. diffKnowledgeBases compares two KBs entity-by-entity
// (content-based, via the canonical JSON rendering), powering the larctl
// `diff` subcommand.
#pragma once

#include <string>
#include <vector>

#include "kb/kb.hpp"

namespace lar::kb {

struct KbDiff {
    std::vector<std::string> addedSystems;
    std::vector<std::string> removedSystems;
    std::vector<std::string> changedSystems;
    std::vector<std::string> addedHardware;
    std::vector<std::string> removedHardware;
    std::vector<std::string> changedHardware;
    std::vector<std::string> addedOrderings;   ///< rendered "A > B on obj"
    std::vector<std::string> removedOrderings;

    [[nodiscard]] bool empty() const;
    [[nodiscard]] std::size_t totalChanges() const;
    [[nodiscard]] std::string toString() const;
};

[[nodiscard]] KbDiff diffKnowledgeBases(const KnowledgeBase& before,
                                        const KnowledgeBase& after);

} // namespace lar::kb
