#include "kb/hardware.hpp"

#include "util/strings.hpp"

namespace lar::kb {

std::string toString(HardwareClass c) {
    switch (c) {
        case HardwareClass::Switch: return "switch";
        case HardwareClass::Nic: return "nic";
        case HardwareClass::Server: return "server";
    }
    return "?";
}

std::string attrToString(const AttrValue& v) {
    if (const auto* b = std::get_if<bool>(&v)) return *b ? "Yes" : "No";
    if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
    if (const auto* d = std::get_if<double>(&v)) return util::formatDouble(*d, 2);
    return std::get<std::string>(v);
}

std::optional<bool> HardwareSpec::boolAttr(const std::string& key) const {
    const auto it = attrs.find(key);
    if (it == attrs.end()) return std::nullopt;
    return attrAsBool(it->second);
}

std::optional<double> HardwareSpec::numAttr(const std::string& key) const {
    const auto it = attrs.find(key);
    if (it == attrs.end()) return std::nullopt;
    return attrAsNumber(it->second);
}

std::optional<std::string> HardwareSpec::strAttr(const std::string& key) const {
    const auto it = attrs.find(key);
    if (it == attrs.end()) return std::nullopt;
    if (const auto* s = std::get_if<std::string>(&it->second)) return *s;
    return std::nullopt;
}

} // namespace lar::kb
