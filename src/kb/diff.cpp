#include "kb/diff.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "json/write.hpp"
#include "kb/serialize.hpp"

namespace lar::kb {

namespace {

std::string renderOrdering(const Ordering& o) {
    std::string out = o.better + " > " + o.worse + " on " + o.objective;
    if (!o.condition.isTrivial()) out += " if " + o.condition.toString();
    return out;
}

/// Canonical content fingerprint of an entity via its JSON rendering.
template <typename Entity>
std::string fingerprint(const Entity& e) {
    return json::write(toJson(e));
}

} // namespace

bool KbDiff::empty() const { return totalChanges() == 0; }

std::size_t KbDiff::totalChanges() const {
    return addedSystems.size() + removedSystems.size() + changedSystems.size() +
           addedHardware.size() + removedHardware.size() +
           changedHardware.size() + addedOrderings.size() +
           removedOrderings.size();
}

std::string KbDiff::toString() const {
    std::ostringstream out;
    const auto section = [&out](const char* label,
                                const std::vector<std::string>& items,
                                char marker) {
        for (const std::string& item : items)
            out << marker << ' ' << label << ' ' << item << '\n';
    };
    section("system", addedSystems, '+');
    section("system", removedSystems, '-');
    section("system", changedSystems, '~');
    section("hardware", addedHardware, '+');
    section("hardware", removedHardware, '-');
    section("hardware", changedHardware, '~');
    section("ordering", addedOrderings, '+');
    section("ordering", removedOrderings, '-');
    if (empty()) out << "(no changes)\n";
    return out.str();
}

KbDiff diffKnowledgeBases(const KnowledgeBase& before, const KnowledgeBase& after) {
    KbDiff diff;

    // Systems, by name; content compared via canonical JSON.
    for (const System& s : after.systems()) {
        const System* old = before.findSystem(s.name);
        if (old == nullptr)
            diff.addedSystems.push_back(s.name);
        else if (fingerprint(*old) != fingerprint(s))
            diff.changedSystems.push_back(s.name);
    }
    for (const System& s : before.systems())
        if (after.findSystem(s.name) == nullptr)
            diff.removedSystems.push_back(s.name);

    // Hardware, by model name.
    for (const HardwareSpec& h : after.hardwareSpecs()) {
        const HardwareSpec* old = before.findHardware(h.model);
        if (old == nullptr)
            diff.addedHardware.push_back(h.model);
        else if (fingerprint(*old) != fingerprint(h))
            diff.changedHardware.push_back(h.model);
    }
    for (const HardwareSpec& h : before.hardwareSpecs())
        if (after.findHardware(h.model) == nullptr)
            diff.removedHardware.push_back(h.model);

    // Orderings have no identity: diff as multisets of fingerprints.
    std::multiset<std::string> beforeEdges;
    std::map<std::string, std::string> rendered;
    for (const Ordering& o : before.orderings()) {
        const std::string fp = fingerprint(o);
        beforeEdges.insert(fp);
        rendered.emplace(fp, renderOrdering(o));
    }
    std::multiset<std::string> afterEdges;
    for (const Ordering& o : after.orderings()) {
        const std::string fp = fingerprint(o);
        afterEdges.insert(fp);
        rendered.emplace(fp, renderOrdering(o));
    }
    for (const std::string& fp : afterEdges)
        if (afterEdges.count(fp) > beforeEdges.count(fp) &&
            diff.addedOrderings.end() ==
                std::find(diff.addedOrderings.begin(), diff.addedOrderings.end(),
                          rendered.at(fp)))
            diff.addedOrderings.push_back(rendered.at(fp));
    for (const std::string& fp : beforeEdges)
        if (beforeEdges.count(fp) > afterEdges.count(fp) &&
            diff.removedOrderings.end() ==
                std::find(diff.removedOrderings.begin(),
                          diff.removedOrderings.end(), rendered.at(fp)))
            diff.removedOrderings.push_back(rendered.at(fp));
    return diff;
}

} // namespace lar::kb
