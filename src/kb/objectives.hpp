// Objective names used across encodings.
//
// Objectives are open-ended strings (architects add their own); these
// constants name the ones the paper's examples use — the Figure-1 ordering
// dimensions, the Listing-3 optimization priorities, and the §5.1 query
// objectives.
#pragma once

namespace lar::kb {

inline constexpr const char* kObjThroughput = "throughput";
inline constexpr const char* kObjLatency = "latency";
inline constexpr const char* kObjIsolation = "isolation";
inline constexpr const char* kObjAppModification = "app_modification";
inline constexpr const char* kObjDeploymentEase = "deployment_ease";
inline constexpr const char* kObjLoadBalancing = "load_balancing";
inline constexpr const char* kObjMonitoring = "monitoring";
inline constexpr const char* kObjHardwareCost = "hardware_cost";
inline constexpr const char* kObjTailLatency = "tail_latency";
inline constexpr const char* kObjSecurity = "security";

} // namespace lar::kb
