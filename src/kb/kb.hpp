// The knowledge base: the machine-readable compendium the paper proposes.
//
// Holds every encoded system, hardware spec, and ordering rule-of-thumb,
// with lookup indices and a validator that rejects dangling references and
// contradictory unconditional preferences. Serializable to JSON (see
// kb/serialize.hpp) so encodings can be crowd-sourced, diffed, and checked.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/hardware.hpp"
#include "kb/system.hpp"
#include "kb/workload.hpp"

namespace lar::kb {

/// Validation findings; empty list means the KB is consistent.
struct ValidationIssue {
    enum class Severity { Error, Warning };
    Severity severity = Severity::Error;
    std::string message;
};

class KnowledgeBase {
public:
    KnowledgeBase() : instanceId_(nextInstanceId()) {}
    // Copies are distinct KBs: they get a fresh instance id so their
    // revision tokens never collide with the original's.
    KnowledgeBase(const KnowledgeBase& other);
    KnowledgeBase& operator=(const KnowledgeBase& other);
    KnowledgeBase(KnowledgeBase&&) = default;
    KnowledgeBase& operator=(KnowledgeBase&&) = default;

    /// Opaque change token: compares equal iff taken from the same KB object
    /// with no mutating call in between. The reason::Service mixes it into
    /// compilation-cache keys so any KB edit invalidates cached entries.
    struct Revision {
        std::uint64_t instance = 0;
        std::uint64_t mutations = 0;
        [[nodiscard]] bool operator==(const Revision&) const = default;
    };
    [[nodiscard]] Revision revision() const { return {instanceId_, mutations_}; }

    // -- population -----------------------------------------------------------
    /// Adds a system; throws EncodingError on duplicate names.
    void addSystem(System system);
    /// Adds a hardware spec; throws EncodingError on duplicate model names.
    void addHardware(HardwareSpec spec);
    /// Adds an ordering edge.
    void addOrdering(Ordering ordering);

    // -- modular evolution (§6 "proof modularity") ------------------------------
    /// Replaces the encoding of an existing system (matched by name) with a
    /// new version — no other encoding needs to change, because properties
    /// carry no cross-encoding semantics. Throws EncodingError when absent.
    void replaceSystem(System system);
    /// Removes a system and every ordering that references it. Throws
    /// EncodingError when absent; returns the number of orderings dropped.
    std::size_t removeSystem(const std::string& name);

    // -- lookup ---------------------------------------------------------------
    [[nodiscard]] const System* findSystem(const std::string& name) const;
    [[nodiscard]] const System& system(const std::string& name) const;
    [[nodiscard]] const HardwareSpec* findHardware(const std::string& model) const;
    [[nodiscard]] const HardwareSpec& hardware(const std::string& model) const;

    [[nodiscard]] const std::vector<System>& systems() const { return systems_; }
    [[nodiscard]] const std::vector<HardwareSpec>& hardwareSpecs() const {
        return hardware_;
    }
    [[nodiscard]] const std::vector<Ordering>& orderings() const {
        return orderings_;
    }
    /// Mutable access for annotation workflows (disputes, source updates).
    /// Conservatively counts as a mutation for revision() purposes.
    [[nodiscard]] std::vector<Ordering>& mutableOrderings() {
        ++mutations_;
        return orderings_;
    }

    /// Systems in a category, in insertion order.
    [[nodiscard]] std::vector<const System*> byCategory(Category category) const;
    /// Hardware models of a class, in insertion order.
    [[nodiscard]] std::vector<const HardwareSpec*> byClass(HardwareClass cls) const;
    /// Systems that solve `capability`.
    [[nodiscard]] std::vector<const System*> solving(
        const std::string& capability) const;
    /// Orderings on `objective`.
    [[nodiscard]] std::vector<const Ordering*> orderingsFor(
        const std::string& objective) const;

    // -- validation -----------------------------------------------------------
    /// Checks referential integrity and unconditional-preference acyclicity.
    [[nodiscard]] std::vector<ValidationIssue> validate() const;

    /// §3.1 success measure: total size of the encoding, counted as the
    /// number of requirement nodes + demands + orderings + attributes. Used
    /// by the scaling bench to show growth is linear in systems/hardware.
    [[nodiscard]] std::size_t encodingLength() const;

private:
    [[nodiscard]] static std::uint64_t nextInstanceId();

    std::vector<System> systems_;
    std::vector<HardwareSpec> hardware_;
    std::vector<Ordering> orderings_;
    std::map<std::string, std::size_t> systemIndex_;
    std::map<std::string, std::size_t> hardwareIndex_;
    std::uint64_t instanceId_ = 0;
    std::uint64_t mutations_ = 0;
};

} // namespace lar::kb
