// Workload encodings — the paper's Listing 3.
//
// A workload describes an application from the architect's point of view:
// qualitative properties ("dc_flows", "short_flows", "high_priority"),
// placement, aggregate resource peaks, and per-objective performance bounds
// expressed against the partial order ("load balancing must be strictly
// better than PacketSpray").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lar::kb {

/// Well-known workload properties.
inline constexpr const char* kPropDcFlows = "dc_flows";
inline constexpr const char* kPropWanFlows = "wan_flows";
inline constexpr const char* kPropShortFlows = "short_flows";
inline constexpr const char* kPropLongFlows = "long_flows";
inline constexpr const char* kPropHighPriority = "high_priority";
inline constexpr const char* kPropLatencySensitive = "latency_sensitive";
inline constexpr const char* kPropThroughputBound = "throughput_bound";
inline constexpr const char* kPropWanDcCompete = "wan_dc_traffic_compete";
inline constexpr const char* kPropMemoryIntensive = "memory_intensive";
inline constexpr const char* kPropUnmodifiableApp = "unmodifiable_app";
inline constexpr const char* kPropIncastHeavy = "incast_heavy";

/// `set_performance_bound(objective=…, better_than=…)` from Listing 3:
/// the chosen system serving `objective` must beat `betterThanSystem` in the
/// knowledge base's partial order under the current context.
struct PerformanceBound {
    std::string objective;
    std::string betterThanSystem;
};

struct Workload {
    std::string name;
    std::vector<std::string> properties;
    std::vector<int> racks;              ///< deployed_at rack indices
    std::int64_t peakCores = 0;
    double peakBandwidthGbps = 0.0;
    std::int64_t numFlows = 0;
    std::vector<PerformanceBound> bounds;

    [[nodiscard]] bool hasProperty(const std::string& property) const;
};

} // namespace lar::kb
