#include "kb/requirement.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace lar::kb {

std::string toString(CmpOp op) {
    switch (op) {
        case CmpOp::Lt: return "<";
        case CmpOp::Le: return "<=";
        case CmpOp::Eq: return "==";
        case CmpOp::Ne: return "!=";
        case CmpOp::Ge: return ">=";
        case CmpOp::Gt: return ">";
    }
    return "?";
}

bool applyCmp(CmpOp op, double lhs, double rhs) {
    switch (op) {
        case CmpOp::Lt: return lhs < rhs;
        case CmpOp::Le: return lhs <= rhs;
        case CmpOp::Eq: return lhs == rhs;
        case CmpOp::Ne: return lhs != rhs;
        case CmpOp::Ge: return lhs >= rhs;
        case CmpOp::Gt: return lhs > rhs;
    }
    return false;
}

Requirement Requirement::allOf(std::vector<Requirement> children) {
    Requirement r(Kind::And);
    r.children_ = std::move(children);
    return r;
}

Requirement Requirement::anyOf(std::vector<Requirement> children) {
    Requirement r(Kind::Or);
    r.children_ = std::move(children);
    return r;
}

Requirement Requirement::negate(Requirement child) {
    Requirement r(Kind::Not);
    r.children_.push_back(std::move(child));
    return r;
}

Requirement Requirement::hardwareHas(HardwareClass cls, std::string key) {
    Requirement r(Kind::HardwareHas);
    r.hwClass_ = cls;
    r.key_ = std::move(key);
    return r;
}

Requirement Requirement::hardwareCmp(HardwareClass cls, std::string key, CmpOp op,
                                     double value) {
    Requirement r(Kind::HardwareCmp);
    r.hwClass_ = cls;
    r.key_ = std::move(key);
    r.op_ = op;
    r.value_ = value;
    return r;
}

Requirement Requirement::systemPresent(std::string name) {
    Requirement r(Kind::SystemPresent);
    r.key_ = std::move(name);
    return r;
}

Requirement Requirement::fact(std::string name) {
    Requirement r(Kind::FactTrue);
    r.key_ = std::move(name);
    return r;
}

Requirement Requirement::option(std::string name) {
    Requirement r(Kind::OptionTrue);
    r.key_ = std::move(name);
    return r;
}

Requirement Requirement::workloadHas(std::string property) {
    Requirement r(Kind::WorkloadHas);
    r.key_ = std::move(property);
    return r;
}

std::string Requirement::toString() const {
    switch (kind_) {
        case Kind::True: return "true";
        case Kind::False: return "false";
        case Kind::Not: return "!" + children_[0].toString();
        case Kind::And:
        case Kind::Or: {
            std::string out = "(";
            const char* sep = kind_ == Kind::And ? " & " : " | ";
            for (std::size_t i = 0; i < children_.size(); ++i) {
                if (i > 0) out += sep;
                out += children_[i].toString();
            }
            return out + ")";
        }
        case Kind::HardwareHas:
            return lar::kb::toString(hwClass_) + ".has(" + key_ + ")";
        case Kind::HardwareCmp:
            return lar::kb::toString(hwClass_) + "." + key_ + " " +
                   lar::kb::toString(op_) + " " + util::formatDouble(value_, 0);
        case Kind::SystemPresent: return "system(" + key_ + ")";
        case Kind::FactTrue: return "fact(" + key_ + ")";
        case Kind::OptionTrue: return "option(" + key_ + ")";
        case Kind::WorkloadHas: return "workload.has(" + key_ + ")";
    }
    return "?";
}

void Requirement::collectSystemRefs(std::vector<std::string>& out) const {
    if (kind_ == Kind::SystemPresent) out.push_back(key_);
    for (const Requirement& c : children_) c.collectSystemRefs(out);
}

void Requirement::collectFactRefs(std::vector<std::string>& out) const {
    if (kind_ == Kind::FactTrue) out.push_back(key_);
    for (const Requirement& c : children_) c.collectFactRefs(out);
}

void Requirement::collectOptionRefs(std::vector<std::string>& out) const {
    if (kind_ == Kind::OptionTrue) out.push_back(key_);
    for (const Requirement& c : children_) c.collectOptionRefs(out);
}

void Requirement::collectHardwareRefs(
    std::vector<std::pair<HardwareClass, std::string>>& out) const {
    if (kind_ == Kind::HardwareHas || kind_ == Kind::HardwareCmp)
        out.emplace_back(hwClass_, key_);
    for (const Requirement& c : children_) c.collectHardwareRefs(out);
}

} // namespace lar::kb
