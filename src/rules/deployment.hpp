// Deployment checking as a Datalog program (§3.4).
//
// Re-expresses the knowledge base's *predicate-logic* rules — requirement
// trees, provided facts, conflicts, capability coverage — as a Datalog
// program evaluated against a concrete Design. This is the "rule-based
// systems" branch of the paper's §3.4 trade-off: forward chaining verifies
// a given design fast, but cannot search for one (that is what the SAT
// backends do), and quantities (resources, budgets) are beyond pure
// Datalog — those stay with reason::validateDesign.
#pragma once

#include <string>
#include <vector>

#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "rules/datalog.hpp"

namespace lar::rules {

struct DatalogCheck {
    bool compliant = false;
    std::vector<std::string> violations;
    std::size_t programFacts = 0;
    std::size_t programRules = 0;
};

/// Builds the checking program for (problem, design) without evaluating it
/// (exposed for tests and for inspecting the encoding).
[[nodiscard]] Program buildDeploymentProgram(const reason::Problem& problem,
                                             const reason::Design& design);

/// Evaluates the program and extracts violations.
[[nodiscard]] DatalogCheck checkDesignWithRules(const reason::Problem& problem,
                                                const reason::Design& design);

} // namespace lar::rules
