#include "rules/datalog.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace lar::rules {

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

void Database::insert(const std::string& predicate, Tuple tuple) {
    relations_[predicate].insert(std::move(tuple));
}

bool Database::contains(const std::string& predicate, const Tuple& tuple) const {
    const auto it = relations_.find(predicate);
    return it != relations_.end() && it->second.count(tuple) > 0;
}

const std::set<Database::Tuple>& Database::relation(
    const std::string& predicate) const {
    static const std::set<Tuple> kEmpty;
    const auto it = relations_.find(predicate);
    return it == relations_.end() ? kEmpty : it->second;
}

std::size_t Database::totalFacts() const {
    std::size_t n = 0;
    for (const auto& [predicate, tuples] : relations_) n += tuples.size();
    return n;
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

void Program::addFact(const std::string& predicate,
                      std::vector<std::string> constants) {
    facts_.insert(predicate, std::move(constants));
}

namespace {

void collectVariables(const Atom& atom, std::set<std::string>& out) {
    for (const Term& t : atom.terms)
        if (t.isVariable) out.insert(t.text);
}

} // namespace

void Program::addRule(Rule rule) {
    std::set<std::string> positive;
    for (const Atom& a : rule.body) collectVariables(a, positive);
    std::set<std::string> needed;
    collectVariables(rule.head, needed);
    for (const Atom& a : rule.negated) collectVariables(a, needed);
    for (const std::string& v : needed) {
        if (positive.count(v) == 0)
            throw EncodingError(
                "datalog: rule for '" + rule.head.predicate + "' is not range-"
                "restricted: variable " + v + " only occurs in the head or "
                "under negation");
    }
    rules_.push_back(std::move(rule));
}

std::vector<std::vector<const Rule*>> Program::stratify() const {
    // Iterative stratum assignment: positive dependencies keep the stratum,
    // negative dependencies force head above the negated predicate.
    std::map<std::string, int> stratum;
    const auto level = [&stratum](const std::string& p) {
        const auto it = stratum.find(p);
        return it == stratum.end() ? 0 : it->second;
    };
    const int limit = static_cast<int>(rules_.size()) + 2;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Rule& r : rules_) {
            int need = 0;
            for (const Atom& b : r.body) need = std::max(need, level(b.predicate));
            for (const Atom& n : r.negated)
                need = std::max(need, level(n.predicate) + 1);
            if (need > level(r.head.predicate)) {
                stratum[r.head.predicate] = need;
                if (need > limit)
                    throw EncodingError(
                        "datalog: program is not stratifiable (negation "
                        "through recursion at '" + r.head.predicate + "')");
                changed = true;
            }
        }
    }
    int maxStratum = 0;
    for (const auto& [predicate, s] : stratum) maxStratum = std::max(maxStratum, s);
    std::vector<std::vector<const Rule*>> strata(
        static_cast<std::size_t>(maxStratum) + 1);
    for (const Rule& r : rules_)
        strata[static_cast<std::size_t>(level(r.head.predicate))].push_back(&r);
    return strata;
}

namespace {

using Bindings = std::map<std::string, std::string>;

/// Unifies `atom` against every matching tuple in `db`, extending `env` and
/// invoking `emit` for each solution.
void matchAtom(const Database& db, const Atom& atom, Bindings& env,
               const std::function<void()>& emit) {
    for (const Database::Tuple& tuple : db.relation(atom.predicate)) {
        if (tuple.size() != atom.terms.size()) continue;
        std::vector<std::string> added;
        bool ok = true;
        for (std::size_t i = 0; i < tuple.size() && ok; ++i) {
            const Term& t = atom.terms[i];
            if (!t.isVariable) {
                ok = t.text == tuple[i];
                continue;
            }
            const auto it = env.find(t.text);
            if (it == env.end()) {
                env.emplace(t.text, tuple[i]);
                added.push_back(t.text);
            } else {
                ok = it->second == tuple[i];
            }
        }
        if (ok) emit();
        for (const std::string& v : added) env.erase(v);
    }
}

/// Grounds `atom` under a complete environment.
Database::Tuple ground(const Atom& atom, const Bindings& env) {
    Database::Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms)
        tuple.push_back(t.isVariable ? env.at(t.text) : t.text);
    return tuple;
}

/// Fires `rule` against `db`, inserting derived head tuples; returns true
/// when anything new appeared.
bool fireRule(const Rule& rule, Database& db) {
    bool derived = false;
    Bindings env;
    const std::function<void(std::size_t)> joinFrom = [&](std::size_t index) {
        if (index == rule.body.size()) {
            for (const Atom& n : rule.negated)
                if (db.contains(n.predicate, ground(n, env))) return;
            Database::Tuple head = ground(rule.head, env);
            if (!db.contains(rule.head.predicate, head)) {
                db.insert(rule.head.predicate, std::move(head));
                derived = true;
            }
            return;
        }
        matchAtom(db, rule.body[index], env, [&] { joinFrom(index + 1); });
    };
    joinFrom(0);
    return derived;
}

} // namespace

Database Program::evaluate() const {
    Database db = facts_;
    for (const std::vector<const Rule*>& stratum : stratify()) {
        // Fixpoint iteration within the stratum (naive evaluation — ample
        // at knowledge-base scale; strata below are already complete, so
        // negation is safe).
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Rule* rule : stratum)
                if (fireRule(*rule, db)) changed = true;
        }
    }
    return db;
}

} // namespace lar::rules
