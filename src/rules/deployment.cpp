#include "rules/deployment.hpp"

#include <algorithm>

#include "kb/kb.hpp"

namespace lar::rules {

namespace {

/// Emits holds(<nodeId>) rules/facts for a requirement tree; returns the
/// node id of the root. Quantitative leaves (HardwareCmp, WorkloadHas) are
/// evaluated against the design up front — arithmetic is extralogical for
/// Datalog — while structural leaves become genuine rules.
class RequirementEmitter {
public:
    RequirementEmitter(Program& program, const reason::Problem& problem,
                       const reason::Design& design)
        : program_(&program), problem_(&problem), design_(&design) {}

    std::string emit(const kb::Requirement& r) {
        const std::string node = "n" + std::to_string(counter_++);
        using Kind = kb::Requirement::Kind;
        switch (r.kind()) {
            case Kind::True:
                program_->addFact("holds_" + node, {});
                break;
            case Kind::False:
                break; // never holds
            case Kind::And: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                for (const kb::Requirement& c : r.children())
                    rule.body.push_back({"holds_" + emit(c), {}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::Or: {
                for (const kb::Requirement& c : r.children()) {
                    Rule rule;
                    rule.head = {"holds_" + node, {}};
                    rule.body.push_back({"holds_" + emit(c), {}});
                    program_->addRule(std::move(rule));
                }
                break;
            }
            case Kind::Not: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                rule.negated.push_back({"holds_" + emit(r.children()[0]), {}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::HardwareHas: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                rule.body.push_back(
                    {"hw_bool", {cst(toString(r.hwClass())), cst(r.key())}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::HardwareCmp: {
                // Arithmetic leaf: evaluate against the chosen model now.
                const auto it = design_->hardwareModel.find(r.hwClass());
                if (it == design_->hardwareModel.end()) break;
                const auto num =
                    problem_->kb->hardware(it->second).numAttr(r.key());
                if (num.has_value() && kb::applyCmp(r.op(), *num, r.value()))
                    program_->addFact("holds_" + node, {});
                break;
            }
            case Kind::SystemPresent: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                rule.body.push_back({"chosen", {cst(r.key())}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::FactTrue: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                rule.body.push_back({"env_fact", {cst(r.key())}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::OptionTrue: {
                Rule rule;
                rule.head = {"holds_" + node, {}};
                rule.body.push_back({"option_on", {cst(r.key())}});
                program_->addRule(std::move(rule));
                break;
            }
            case Kind::WorkloadHas: {
                const bool has = std::any_of(
                    problem_->workloads.begin(), problem_->workloads.end(),
                    [&r](const kb::Workload& w) { return w.hasProperty(r.key()); });
                if (has) program_->addFact("holds_" + node, {});
                break;
            }
        }
        return node;
    }

private:
    Program* program_;
    const reason::Problem* problem_;
    const reason::Design* design_;
    int counter_ = 0;
};

} // namespace

Program buildDeploymentProgram(const reason::Problem& problem,
                               const reason::Design& design) {
    const kb::KnowledgeBase& kb = *problem.kb;
    Program program;

    // --- extensional facts from the design and the KB -----------------------
    for (const auto& [category, name] : design.chosen)
        program.addFact("chosen", {name});
    for (const auto& [cls, model] : design.hardwareModel) {
        const kb::HardwareSpec& spec = kb.hardware(model);
        for (const auto& [key, value] : spec.attrs) {
            const auto b = kb::attrAsBool(value);
            if (b.has_value() && *b)
                program.addFact("hw_bool", {toString(cls), key});
        }
    }
    for (const std::string& option : design.enabledOptions)
        program.addFact("option_on", {option});
    for (const kb::System& s : kb.systems()) {
        for (const std::string& f : s.provides)
            program.addFact("provides", {s.name, f});
        for (const std::string& c : s.conflicts)
            program.addFact("conflicts_with", {s.name, c});
        for (const std::string& cap : s.solves)
            program.addFact("solves", {s.name, cap});
        if (s.researchGrade) program.addFact("research_grade", {s.name});
    }
    for (const auto& [fact, pinned] : problem.pinnedFacts)
        if (pinned) program.addFact("env_fact", {fact});
    for (const std::string& cap : problem.requiredCapabilities)
        program.addFact("needs_capability", {cap});

    // --- intensional rules ---------------------------------------------------
    // env_fact(F) :- chosen(S), provides(S, F).
    {
        Rule rule;
        rule.head = {"env_fact", {var("F")}};
        rule.body = {{"chosen", {var("S")}}, {"provides", {var("S"), var("F")}}};
        program.addRule(std::move(rule));
    }
    // requirement trees of chosen systems: violation(S) when root fails.
    RequirementEmitter emitter(program, problem, design);
    for (const auto& [category, name] : design.chosen) {
        const kb::System& s = kb.system(name);
        if (s.constraints.isTrivial()) continue;
        const std::string root = emitter.emit(s.constraints);
        Rule rule;
        rule.head = {"violation", {cst(name), cst("requirement")}};
        rule.body = {{"chosen", {cst(name)}}};
        rule.negated = {{"holds_" + root, {}}};
        program.addRule(std::move(rule));
    }
    // violation on conflicts: both directions.
    {
        Rule rule;
        rule.head = {"violation", {var("S"), cst("conflict")}};
        rule.body = {{"chosen", {var("S")}},
                     {"chosen", {var("T")}},
                     {"conflicts_with", {var("S"), var("T")}}};
        program.addRule(std::move(rule));
        Rule reverse;
        reverse.head = {"violation", {var("T"), cst("conflict")}};
        reverse.body = {{"chosen", {var("S")}},
                        {"chosen", {var("T")}},
                        {"conflicts_with", {var("S"), var("T")}}};
        program.addRule(std::move(reverse));
    }
    // capability coverage.
    {
        Rule covered;
        covered.head = {"covered", {var("C")}};
        covered.body = {{"chosen", {var("S")}}, {"solves", {var("S"), var("C")}}};
        program.addRule(std::move(covered));
        Rule missing;
        missing.head = {"violation", {var("C"), cst("capability")}};
        missing.body = {{"needs_capability", {var("C")}}};
        missing.negated = {{"covered", {var("C")}}};
        program.addRule(std::move(missing));
    }
    // research-grade exclusion under the deadline rule.
    if (problem.forbidResearchGrade) {
        Rule rule;
        rule.head = {"violation", {var("S"), cst("research_grade")}};
        rule.body = {{"chosen", {var("S")}}, {"research_grade", {var("S")}}};
        program.addRule(std::move(rule));
    }
    return program;
}

DatalogCheck checkDesignWithRules(const reason::Problem& problem,
                                  const reason::Design& design) {
    const Program program = buildDeploymentProgram(problem, design);
    DatalogCheck check;
    check.programFacts = program.factCount();
    check.programRules = program.ruleCount();
    const Database db = program.evaluate();
    for (const Database::Tuple& tuple : db.relation("violation"))
        check.violations.push_back(tuple[0] + " (" + tuple[1] + ")");
    check.compliant = check.violations.empty();
    return check;
}

} // namespace lar::rules
