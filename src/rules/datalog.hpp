// A small Datalog engine with stratified negation.
//
// §3.4 weighs "rule-based systems [Datalog, Prolog]" against SAT/SMT as the
// logic substrate for lightweight reasoning. This module makes that
// comparison concrete: a from-scratch semi-naive Datalog evaluator, used by
// rules/deployment.hpp to run the paper's predicate-logic rules (e.g. "PFC
// cannot be used with any flooding algorithm") as forward-chaining checks.
// Datalog handles *checking* a given design; the combinatorial *search* for
// a design is what the SAT backends provide — exactly the trade the paper
// describes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lar::rules {

/// A term: a variable (matched during joins) or a string constant.
struct Term {
    bool isVariable = false;
    std::string text;

    bool operator==(const Term&) const = default;
    auto operator<=>(const Term&) const = default;
};

[[nodiscard]] inline Term var(std::string name) { return {true, std::move(name)}; }
[[nodiscard]] inline Term cst(std::string value) {
    return {false, std::move(value)};
}

/// An atom: predicate applied to terms, e.g. chosen(S) or provides(S, "pfc").
struct Atom {
    std::string predicate;
    std::vector<Term> terms;
};

/// A Horn rule with optional stratified negation:
///   head :- body₁, …, bodyₙ, not neg₁, …, not negₘ.
/// Every variable in the head and in negated atoms must appear in some
/// positive body atom (range restriction; checked at addRule time).
struct Rule {
    Atom head;
    std::vector<Atom> body;
    std::vector<Atom> negated;
};

/// A set of ground tuples per predicate.
class Database {
public:
    using Tuple = std::vector<std::string>;

    void insert(const std::string& predicate, Tuple tuple);
    [[nodiscard]] bool contains(const std::string& predicate,
                                const Tuple& tuple) const;
    [[nodiscard]] const std::set<Tuple>& relation(const std::string& predicate) const;
    [[nodiscard]] std::size_t totalFacts() const;

private:
    std::map<std::string, std::set<Tuple>> relations_;
};

class Program {
public:
    /// Adds a ground fact.
    void addFact(const std::string& predicate, std::vector<std::string> constants);

    /// Adds a rule; throws EncodingError when it is not range-restricted.
    void addRule(Rule rule);

    /// Evaluates to fixpoint with semi-naive iteration per stratum.
    /// Throws EncodingError when the program cannot be stratified
    /// (negation through recursion).
    [[nodiscard]] Database evaluate() const;

    [[nodiscard]] std::size_t ruleCount() const { return rules_.size(); }
    [[nodiscard]] std::size_t factCount() const { return facts_.totalFacts(); }

private:
    [[nodiscard]] std::vector<std::vector<const Rule*>> stratify() const;

    Database facts_;
    std::vector<Rule> rules_;
};

} // namespace lar::rules
