#include "llmsim/greedy.hpp"

#include <algorithm>

#include "kb/objectives.hpp"
#include "order/poset.hpp"

namespace lar::llmsim {

std::int64_t GreedyReasoner::minCoresNeeded(
    const std::vector<std::string>& systems) const {
    // Straightforward aggregation — the kind of question §5.2 says LLMs get
    // right.
    const reason::WorkloadAggregates agg =
        reason::aggregateWorkloads(problem_->workloads);
    std::int64_t total = agg.totalPeakCores;
    for (const std::string& name : systems) {
        const kb::System* s = problem_->kb->findSystem(name);
        if (s == nullptr) continue;
        for (const kb::ResourceDemand& d : s->demands)
            if (d.resource == kb::kResCores)
                total += d.amountFor(agg.totalKiloFlows, agg.totalGbps);
    }
    return total;
}

reason::Design GreedyReasoner::proposeDesign() const {
    const kb::KnowledgeBase& kb = *problem_->kb;
    reason::Design design;

    // Hardware: "bigger is better" — pick the highest-bandwidth (or highest
    // core count) model per class, honoring pins but ignoring cost budgets.
    for (const auto& [cls, choice] : problem_->hardware) {
        if (choice.pinnedModel.has_value()) {
            design.hardwareModel[cls] = *choice.pinnedModel;
        } else {
            const kb::HardwareSpec* best = nullptr;
            double bestScore = -1;
            for (const kb::HardwareSpec* h : kb.byClass(cls)) {
                if (!choice.candidateModels.empty() &&
                    std::find(choice.candidateModels.begin(),
                              choice.candidateModels.end(),
                              h->model) == choice.candidateModels.end())
                    continue;
                const double score =
                    h->numAttr(kb::kAttrPortBandwidthGbps).value_or(0) +
                    h->numAttr(kb::kAttrCores).value_or(0);
                if (score > bestScore) {
                    bestScore = score;
                    best = h;
                }
            }
            if (best != nullptr) design.hardwareModel[cls] = best->model;
        }
        const kb::HardwareSpec& spec = kb.hardware(design.hardwareModel[cls]);
        design.hardwareCostUsd += spec.unitCostUsd * choice.count;
        design.powerW += spec.maxPowerW * choice.count;
    }

    // Evaluation context seen by the greedy picker: it knows the hardware it
    // just chose and the workload properties, but NOT the facts other
    // chosen systems introduce (it never revisits earlier choices).
    order::Context ctx;
    for (const auto& [cls, model] : design.hardwareModel)
        ctx.hardware[cls] = &kb.hardware(model);
    for (const kb::Workload& w : problem_->workloads)
        for (const std::string& p : w.properties) ctx.workloadProperties.insert(p);

    // Category choices: the preference-graph maximum for the first objective
    // that orders the category; hard requirements only checked against the
    // static context (no conflicts, no resource sums, no derived facts).
    const std::vector<std::string>& priorities = problem_->objectivePriority;
    for (const kb::Category category : kb::kAllCategories) {
        const bool required = problem_->requiredCategories.count(category) > 0;
        const bool optional = problem_->optionalCategories.count(category) > 0;
        if (!required && !optional) continue;

        std::vector<std::string> candidates;
        for (const kb::System* s : kb.byCategory(category)) {
            const auto pin = problem_->pinnedSystems.find(s->name);
            if (pin != problem_->pinnedSystems.end() && !pin->second) continue;
            candidates.push_back(s->name);
        }
        // Honor positive pins outright.
        std::string chosen;
        for (const auto& [name, include] : problem_->pinnedSystems)
            if (include && kb.findSystem(name) != nullptr &&
                kb.system(name).category == category)
                chosen = name;

        if (chosen.empty()) {
            for (const std::string& objective : priorities) {
                const order::PreferenceGraph graph(kb, objective);
                const auto maxima = graph.maximalElements(candidates, ctx);
                // The greedy reasoner takes the first maximal candidate that
                // superficially fits the hardware it picked.
                for (const std::string& name : maxima) {
                    if (maxima.size() == candidates.size()) break; // no signal
                    const kb::System& s = kb.system(name);
                    if (!ctx.evaluate(s.constraints)) continue; // shallow check
                    chosen = name;
                    break;
                }
                if (!chosen.empty()) break;
            }
        }
        if (chosen.empty() && required && !candidates.empty())
            chosen = candidates.front(); // "use the default"
        if (chosen.empty()) continue;
        design.chosen[category] = chosen;
        ctx.presentSystems.insert(chosen);
        // NOTE: provides-facts deliberately not propagated into ctx — this
        // is the blind spot that reproduces the §5.2 failures.
    }

    // Resource bookkeeping for the report (an LLM would also narrate this).
    const reason::WorkloadAggregates agg =
        reason::aggregateWorkloads(problem_->workloads);
    for (const auto& [category, name] : design.chosen)
        for (const kb::ResourceDemand& d : kb.system(name).demands)
            design.resourceUsage[d.resource] +=
                d.amountFor(agg.totalKiloFlows, agg.totalGbps);
    design.resourceUsage[kb::kResCores] += agg.totalPeakCores;
    return design;
}

} // namespace lar::llmsim
