// Simulated LLM-as-a-reasoner (§5.2).
//
// "While it accurately determined straightforward requirements such as the
//  minimum number of cores needed to deploy all the workloads and systems,
//  it failed to return correct results when faced with nuances …"
//
// The GreedyReasoner mimics that behaviour mechanistically rather than
// stochastically: it answers aggregate arithmetic questions by direct
// computation (correct), and proposes designs with locally-plausible greedy
// choices — picking the preference-graph maximum per category and beefy
// hardware — while ignoring exactly the cross-cutting structure LLMs miss:
// resource contention across systems, conflicts, derived facts (flooding),
// nuance applicability conditions, and budget interactions.
#pragma once

#include <cstdint>

#include "reason/design.hpp"
#include "reason/problem.hpp"

namespace lar::llmsim {

class GreedyReasoner {
public:
    explicit GreedyReasoner(const reason::Problem& problem)
        : problem_(&problem) {}

    /// Simple aggregate query — answered correctly (it is one addition):
    /// minimum cores to host the workloads plus the named systems' fixed
    /// demands.
    [[nodiscard]] std::int64_t minCoresNeeded(
        const std::vector<std::string>& systems) const;

    /// Greedy design proposal. Plausible per-category choices, but no
    /// global constraint propagation: the result frequently violates
    /// resource capacities, nuance conditions, and ripple-effect rules —
    /// validate with reason::validateDesign to score it.
    [[nodiscard]] reason::Design proposeDesign() const;

private:
    const reason::Problem* problem_;
};

} // namespace lar::llmsim
