#include "extract/disputes.hpp"

#include <algorithm>

namespace lar::extract {

std::vector<ComparativeClaim> renderClaimCorpus(const kb::KnowledgeBase& kb,
                                                double contrarianProb,
                                                util::Rng& rng) {
    static const char* kVenues[] = {"vendor blog",     "mailing-list thread",
                                    "conference eval", "operator bug report",
                                    "benchmark repo",  "datasheet footnote"};
    std::vector<ComparativeClaim> corpus;
    int counter = 0;
    for (const kb::Ordering& o : kb.orderings()) {
        const int supporting = 1 + static_cast<int>(rng.below(3));
        for (int i = 0; i < supporting; ++i) {
            corpus.push_back({o.better, o.worse, o.objective,
                              std::string(kVenues[rng.below(std::size(kVenues))]) +
                                  " #" + std::to_string(counter++)});
        }
        if (rng.chance(contrarianProb)) {
            // The contrarian source claims the opposite direction.
            corpus.push_back({o.worse, o.better, o.objective,
                              std::string(kVenues[rng.below(std::size(kVenues))]) +
                                  " #" + std::to_string(counter++)});
        }
    }
    return corpus;
}

std::size_t annotateDisputes(kb::KnowledgeBase& kb,
                             const std::vector<ComparativeClaim>& corpus) {
    std::size_t annotated = 0;
    for (kb::Ordering& o : kb.mutableOrderings()) {
        const std::size_t before = o.disputes.size();
        for (const ComparativeClaim& claim : corpus) {
            // A claim disputes the ordering when it asserts the reverse
            // direction on the same objective.
            if (claim.objective != o.objective || claim.better != o.worse ||
                claim.worse != o.better)
                continue;
            if (std::find(o.disputes.begin(), o.disputes.end(), claim.source) ==
                o.disputes.end())
                o.disputes.push_back(claim.source);
        }
        if (o.disputes.size() > before) ++annotated;
    }
    return annotated;
}

} // namespace lar::extract
