#include "extract/extractor.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace lar::extract {

void ExtractionStats::add(const ExtractionStats& other) {
    hardRequirementsTotal += other.hardRequirementsTotal;
    hardRequirementsFound += other.hardRequirementsFound;
    nuanceConditionsTotal += other.nuanceConditionsTotal;
    nuanceConditionsFound += other.nuanceConditionsFound;
    quantitiesTotal += other.quantitiesTotal;
    quantitiesFound += other.quantitiesFound;
    quantitiesCorrect += other.quantitiesCorrect;
    providesTotal += other.providesTotal;
    providesFound += other.providesFound;
    conflictsTotal += other.conflictsTotal;
    conflictsFound += other.conflictsFound;
}

// ---------------------------------------------------------------------------
// Spec-sheet parsing (real parser; 100 % accurate on well-formed sheets)
// ---------------------------------------------------------------------------

namespace {

struct FieldMapping {
    const char* label;
    const char* attrKey;
    enum class Type { Bool, Int, Double, String } type;
};

constexpr FieldMapping kFieldMappings[] = {
    {"Port Bandwidth", kb::kAttrPortBandwidthGbps, FieldMapping::Type::Int},
    {"Memory", kb::kAttrMemoryGb, FieldMapping::Type::Double},
    {"P4 Supported?", kb::kAttrP4Supported, FieldMapping::Type::Bool},
    {"# P4 Stages", kb::kAttrP4Stages, FieldMapping::Type::Int},
    {"ECN supported?", kb::kAttrEcnSupported, FieldMapping::Type::Bool},
    {"QCN supported?", kb::kAttrQcnSupported, FieldMapping::Type::Bool},
    {"INT supported?", kb::kAttrIntSupported, FieldMapping::Type::Bool},
    {"PFC supported?", kb::kAttrPfcSupported, FieldMapping::Type::Bool},
    {"Deep Buffers?", kb::kAttrDeepBuffers, FieldMapping::Type::Bool},
    {"MAC Address Table Size", kb::kAttrMacTableSize, FieldMapping::Type::Int},
    {"QoS Classes", kb::kAttrQosClasses, FieldMapping::Type::Int},
    {"Packet Buffer", kb::kAttrBufferMb, FieldMapping::Type::Double},
    {"Hardware Timestamps?", kb::kAttrNicTimestamps, FieldMapping::Type::Bool},
    {"RDMA Supported?", kb::kAttrRdmaSupported, FieldMapping::Type::Bool},
    {"SR-IOV?", kb::kAttrSrIov, FieldMapping::Type::Bool},
    {"Interrupt Polling?", kb::kAttrInterruptPolling, FieldMapping::Type::Bool},
    {"SmartNIC?", kb::kAttrSmartNic, FieldMapping::Type::Bool},
    {"SmartNIC Type", kb::kAttrSmartNicKind, FieldMapping::Type::String},
    {"NIC Cores", kb::kAttrNicCores, FieldMapping::Type::Int},
    {"FPGA Logic", kb::kAttrFpgaGatesK, FieldMapping::Type::Int},
    {"Reorder Buffer", kb::kAttrReorderBufferKb, FieldMapping::Type::Int},
    {"CPU Cores", kb::kAttrCores, FieldMapping::Type::Int},
    {"RAM", kb::kAttrRamGb, FieldMapping::Type::Double},
    {"CXL Supported?", kb::kAttrCxlSupported, FieldMapping::Type::Bool},
    {"NUMA Nodes", kb::kAttrNumaNodes, FieldMapping::Type::Int},
};

kb::HardwareClass classFromSheet(const std::string& value) {
    if (value == "switch") return kb::HardwareClass::Switch;
    if (value == "nic") return kb::HardwareClass::Nic;
    if (value == "server") return kb::HardwareClass::Server;
    throw ParseError("spec sheet: unknown device class '" + value + "'");
}

} // namespace

kb::HardwareSpec extractHardware(const std::string& sheetText) {
    kb::HardwareSpec spec;
    bool sawModel = false;
    for (const std::string& rawLine : util::split(sheetText, '\n')) {
        const std::string_view line = util::trim(rawLine);
        if (line.empty() || line == "{" || line == "}") continue;
        // Lines look like:  "Label": "value",
        const std::size_t firstQuote = line.find('"');
        const std::size_t labelEnd = line.find('"', firstQuote + 1);
        if (firstQuote == std::string_view::npos ||
            labelEnd == std::string_view::npos)
            throw ParseError("spec sheet: malformed line: " + rawLine);
        const std::string label(line.substr(firstQuote + 1, labelEnd - firstQuote - 1));
        const std::size_t valueStart = line.find('"', labelEnd + 1);
        const std::size_t valueEnd = line.find('"', valueStart + 1);
        if (valueStart == std::string_view::npos ||
            valueEnd == std::string_view::npos)
            throw ParseError("spec sheet: malformed value: " + rawLine);
        const std::string value(line.substr(valueStart + 1, valueEnd - valueStart - 1));

        if (label == "Model Name") {
            spec.model = value;
            sawModel = true;
            continue;
        }
        if (label == "Vendor") {
            spec.vendor = value;
            continue;
        }
        if (label == "Device Class") {
            spec.cls = classFromSheet(value);
            continue;
        }
        if (label == "Max Power Consumption") {
            long long watts = 0;
            if (util::parseFirstInt(value, watts))
                spec.maxPowerW = static_cast<double>(watts);
            continue;
        }
        if (label == "Unit Price") {
            long long usd = 0;
            if (util::parseFirstInt(value, usd))
                spec.unitCostUsd = static_cast<double>(usd);
            continue;
        }
        if (label == "Ports") {
            long long ports = 0;
            if (util::parseFirstInt(value, ports))
                spec.attrs[kb::kAttrNumPorts] = static_cast<std::int64_t>(ports);
            continue;
        }
        for (const FieldMapping& mapping : kFieldMappings) {
            if (label != mapping.label) continue;
            if (value == "N/A") break; // field absent in the sheet
            switch (mapping.type) {
                case FieldMapping::Type::Bool:
                    spec.attrs[mapping.attrKey] = (value == "Yes");
                    break;
                case FieldMapping::Type::Int: {
                    long long v = 0;
                    if (util::parseFirstInt(value, v))
                        spec.attrs[mapping.attrKey] = static_cast<std::int64_t>(v);
                    break;
                }
                case FieldMapping::Type::Double: {
                    long long v = 0;
                    if (util::parseFirstInt(value, v))
                        spec.attrs[mapping.attrKey] = static_cast<double>(v);
                    break;
                }
                case FieldMapping::Type::String:
                    spec.attrs[mapping.attrKey] = value;
                    break;
            }
            break;
        }
    }
    if (!sawModel) throw ParseError("spec sheet: missing Model Name");
    return spec;
}

FieldAccuracy compareHardware(const kb::HardwareSpec& extracted,
                              const kb::HardwareSpec& groundTruth) {
    FieldAccuracy acc;
    const auto tally = [&acc](bool ok) {
        ++acc.total;
        if (ok) ++acc.correct;
    };
    tally(extracted.model == groundTruth.model);
    tally(extracted.vendor == groundTruth.vendor);
    tally(extracted.cls == groundTruth.cls);
    tally(std::llround(extracted.maxPowerW) == std::llround(groundTruth.maxPowerW));
    tally(std::llround(extracted.unitCostUsd) ==
          std::llround(groundTruth.unitCostUsd));
    for (const auto& [key, value] : groundTruth.attrs) {
        const auto it = extracted.attrs.find(key);
        if (it == extracted.attrs.end()) {
            tally(false);
            continue;
        }
        // Numeric comparison tolerant to int/double representation drift.
        const auto a = kb::attrAsNumber(value);
        const auto b = kb::attrAsNumber(it->second);
        if (a.has_value() && b.has_value())
            tally(std::llround(*a) == std::llround(*b));
        else
            tally(value == it->second);
    }
    return acc;
}

// ---------------------------------------------------------------------------
// Simulated-LLM prose extraction
// ---------------------------------------------------------------------------

SystemExtraction extractSystem(const SystemDoc& doc, const NoiseModel& noise,
                               util::Rng& rng) {
    SystemExtraction result;
    result.encoding.name = doc.systemName;
    result.encoding.category = doc.category;
    result.encoding.researchGrade = doc.researchGrade;
    result.encoding.source = "auto-extracted";
    std::vector<kb::Requirement> requirements;

    for (const DocFact& fact : doc.facts) {
        switch (fact.kind) {
            case DocFact::Kind::Capability:
                // Capabilities are headline claims; always found.
                result.encoding.solves.push_back(fact.name);
                break;
            case DocFact::Kind::HardRequirement: {
                ++result.stats.hardRequirementsTotal;
                if (rng.chance(noise.rate(noise.missHardRequirement))) break;
                ++result.stats.hardRequirementsFound;
                requirements.push_back(fact.requirement);
                break;
            }
            case DocFact::Kind::NuanceCondition: {
                ++result.stats.nuanceConditionsTotal;
                if (rng.chance(noise.rate(noise.missNuanceCondition))) break;
                ++result.stats.nuanceConditionsFound;
                requirements.push_back(fact.requirement);
                break;
            }
            case DocFact::Kind::ResourceQuantity: {
                ++result.stats.quantitiesTotal;
                if (rng.chance(noise.rate(noise.missQuantity))) break;
                ++result.stats.quantitiesFound;
                kb::ResourceDemand demand = fact.demand;
                if (rng.chance(noise.rate(noise.wrongQuantity))) {
                    // Plausible-but-wrong number: off by a factor or rounded.
                    const double factor = rng.chance(0.5) ? 0.5 : 2.0;
                    demand.fixed = std::max(0.0, std::round(demand.fixed * factor));
                    demand.perKiloFlows = 0.0; // scaling rules get dropped
                } else {
                    ++result.stats.quantitiesCorrect;
                }
                result.encoding.demands.push_back(std::move(demand));
                break;
            }
            case DocFact::Kind::Provides: {
                ++result.stats.providesTotal;
                if (rng.chance(noise.rate(noise.missProvides))) break;
                ++result.stats.providesFound;
                result.encoding.provides.push_back(fact.name);
                break;
            }
            case DocFact::Kind::Conflict: {
                ++result.stats.conflictsTotal;
                if (rng.chance(noise.rate(noise.missConflict))) break;
                ++result.stats.conflictsFound;
                result.encoding.conflicts.push_back(fact.name);
                break;
            }
        }
    }
    if (requirements.empty()) {
        result.encoding.constraints = kb::Requirement::alwaysTrue();
    } else if (requirements.size() == 1) {
        result.encoding.constraints = std::move(requirements[0]);
    } else {
        result.encoding.constraints = kb::Requirement::allOf(std::move(requirements));
    }
    return result;
}

} // namespace lar::extract
