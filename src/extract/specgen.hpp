// Synthetic corpus generation: renders catalog entries into the document
// forms the §4 experiments extract from.
#pragma once

#include "extract/document.hpp"
#include "kb/kb.hpp"

namespace lar::extract {

/// Renders a hardware spec as a Listing-1-style vendor sheet ("Model Name",
/// "Port Bandwidth": "10 Gbps", "MAC Address Table Size": "64,000 entries",
/// ...). Fields absent from the spec are omitted, mirroring real sheets.
[[nodiscard]] SpecSheet renderSpecSheet(const kb::HardwareSpec& spec);

/// Renders a system encoding as paper-like prose with structured facts.
/// Hard requirements are stated prominently; nuance conditions are buried
/// in qualifying clauses (the kind §4.1 found LLMs miss).
[[nodiscard]] SystemDoc renderSystemDoc(const kb::System& system);

/// Whole-corpus helpers.
[[nodiscard]] std::vector<SpecSheet> renderHardwareCorpus(
    const kb::KnowledgeBase& kb);
[[nodiscard]] std::vector<SystemDoc> renderSystemCorpus(
    const kb::KnowledgeBase& kb);

} // namespace lar::extract
