// Simulated-LLM encoding checking (§4.2).
//
// "LLMs can check rules humans write for (1) completeness and (2)
//  objectivity. … LLMs could not always check for the correctness of a
//  condition (especially if it's loaded with numbers), but they did a
//  better job of checking for the existence of a condition."
//
// The checker compares a candidate encoding against the source document and
// reports findings; detection is noisy per the calibrated model — existence
// checks (a requirement missing outright, like Shenango's interrupt-polling
// NIC) are caught far more reliably than wrong numeric values (like an
// incorrect Sonata P4 stage count). It also separates objective facts from
// subjective comparisons for the §4.2 objectivity discussion.
#pragma once

#include "extract/document.hpp"
#include "kb/kb.hpp"
#include "util/rng.hpp"

namespace lar::extract {

struct CheckerModel {
    double detectMissingCondition = 0.92; ///< existence checks: strong
    double detectWrongValue = 0.55;       ///< numeric correctness: weak
    double falseAlarm = 0.02;             ///< flags a correct fact anyway
};

struct CheckFinding {
    enum class Type { MissingCondition, WrongValue, FalseAlarm };
    Type type = Type::MissingCondition;
    std::string description;
};

struct CheckStats {
    int missingTotal = 0;  ///< facts absent from the candidate
    int missingFlagged = 0;
    int wrongValueTotal = 0;
    int wrongValueFlagged = 0;
    int falseAlarms = 0;
};

struct CheckResult {
    std::vector<CheckFinding> findings;
    CheckStats stats;
};

/// Checks `candidate` against the document's ground-truth facts.
[[nodiscard]] CheckResult checkEncoding(const kb::System& candidate,
                                        const SystemDoc& referenceDoc,
                                        const CheckerModel& model,
                                        util::Rng& rng);

/// §4.2 objectivity classification: ordering rules are comparative and
/// therefore subjective ("everybody wants to believe their favorite design
/// is best"); requirement/dependency facts are objective.
enum class ClaimClass { ObjectiveFact, SubjectiveComparison };
[[nodiscard]] ClaimClass classifyOrdering(const kb::Ordering& ordering);
[[nodiscard]] ClaimClass classifyRequirement(const kb::Requirement& requirement);

} // namespace lar::extract
