// Source-document models for the §4 extraction experiments.
//
// Hardware knowledge arrives as highly structured vendor spec sheets
// (Listing 1's input); system knowledge arrives as paper-like prose whose
// facts vary in how explicitly they are stated. Each prose document keeps
// its facts in structured form alongside the rendered text, so extraction
// experiments can measure recall per fact kind against ground truth.
#pragma once

#include <string>
#include <vector>

#include "kb/system.hpp"

namespace lar::extract {

/// One fact stated by a system's source document.
struct DocFact {
    enum class Kind {
        HardRequirement,  ///< explicit hardware/system dependency
        NuanceCondition,  ///< applicability condition stated in passing
                          ///< (e.g. "only when WAN and DC traffic compete")
        ResourceQuantity, ///< how much of a resource is needed
        Provides,         ///< side effects on the environment
        Conflict,         ///< incompatibility with another system
        Capability        ///< what the system solves
    };
    Kind kind = Kind::HardRequirement;
    std::string sentence; ///< the rendered prose sentence

    // Machine-readable payload (exactly one is meaningful per kind).
    kb::Requirement requirement;
    kb::ResourceDemand demand;
    std::string name; ///< capability / fact / conflicting-system name
};

/// A paper-like description of one system.
struct SystemDoc {
    std::string systemName;
    kb::Category category = kb::Category::NetworkStack;
    bool researchGrade = false;
    std::vector<DocFact> facts;
    std::string prose; ///< all sentences joined, for display
};

/// A vendor spec sheet: rendered text plus the ground-truth spec.
struct SpecSheet {
    std::string text;
    kb::HardwareSpec groundTruth;
};

} // namespace lar::extract
