// Simulated-LLM encoding extraction (§4.1).
//
// The paper used GPT-4o to turn spec sheets and research papers into
// encodings. No LLM is available here, so we simulate one with the same
// observable behaviour the paper reports, driven by a seeded noise model:
//
//   * structured spec sheets extract with 100 % field accuracy
//     ("unless it was missing in the spec itself");
//   * prose extraction finds hardware requirements reliably, but
//     "occasionally missed nuances about how much of a resource is needed,
//      or under what conditions can a system not be deployed"
//     (e.g. that Annulus is only needed when WAN and DC traffic compete);
//   * prompting the model for "requirements without which the system
//     cannot work" (adversarial prompting) improves recall.
//
// The spec-sheet path is a real parser over the rendered text; the prose
// path consumes the document's structured facts through the noise filter.
#pragma once

#include "extract/document.hpp"
#include "kb/kb.hpp"
#include "util/rng.hpp"

namespace lar::extract {

/// Behavioural knobs of the simulated LLM, calibrated to §4.1's findings.
struct NoiseModel {
    double missNuanceCondition = 0.50; ///< nuance conditions silently dropped
    double missQuantity = 0.20;        ///< resource demand dropped entirely
    double wrongQuantity = 0.30;       ///< demand kept but the number is off
    double missHardRequirement = 0.05; ///< hardware requirements mostly found
    double missProvides = 0.15;
    double missConflict = 0.10;
    /// §4.1: asking for requirements "without which the paper cannot work"
    /// was more productive; halves every miss rate.
    bool adversarialPrompting = false;

    [[nodiscard]] double rate(double base) const {
        return adversarialPrompting ? base / 2.0 : base;
    }
};

/// Per-fact-kind extraction tallies.
struct ExtractionStats {
    int hardRequirementsTotal = 0;
    int hardRequirementsFound = 0;
    int nuanceConditionsTotal = 0;
    int nuanceConditionsFound = 0;
    int quantitiesTotal = 0;
    int quantitiesFound = 0;
    int quantitiesCorrect = 0;
    int providesTotal = 0;
    int providesFound = 0;
    int conflictsTotal = 0;
    int conflictsFound = 0;

    void add(const ExtractionStats& other);
};

struct SystemExtraction {
    kb::System encoding;
    ExtractionStats stats;
};

/// Parses a rendered vendor sheet back into a HardwareSpec. This is a real
/// text parser (field labels → attribute keys, "64,000 entries" → 64000).
/// Throws ParseError on malformed sheets.
[[nodiscard]] kb::HardwareSpec extractHardware(const std::string& sheetText);

/// Field-level accuracy of an extracted spec vs ground truth: fraction of
/// ground-truth attributes (plus model/class/cost/power) reproduced exactly.
struct FieldAccuracy {
    int total = 0;
    int correct = 0;
    [[nodiscard]] double ratio() const {
        return total == 0 ? 1.0 : static_cast<double>(correct) / total;
    }
};
[[nodiscard]] FieldAccuracy compareHardware(const kb::HardwareSpec& extracted,
                                            const kb::HardwareSpec& groundTruth);

/// Simulated-LLM extraction of a system encoding from its document.
[[nodiscard]] SystemExtraction extractSystem(const SystemDoc& doc,
                                             const NoiseModel& noise,
                                             util::Rng& rng);

} // namespace lar::extract
