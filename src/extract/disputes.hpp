// Dispute annotation (§4.2 objectivity).
//
// "Both humans and the literature are often biased … LLMs can read a broad
//  range of sources (papers, blog posts, bug reports, datasheets etc.) and
//  present any conflicting claim to humans."
//
// We simulate the source landscape: a corpus of comparative claims derived
// from the knowledge base, with a calibrated share of contrarian sources
// (the blog post insisting the underdog is faster). The annotator scans the
// corpus and attaches every claim that contradicts an encoded ordering to
// that ordering's `disputes` list — surfacing, not resolving, the
// controversy.
#pragma once

#include "kb/kb.hpp"
#include "util/rng.hpp"

namespace lar::extract {

/// One comparative claim found "in the wild".
struct ComparativeClaim {
    std::string better;
    std::string worse;
    std::string objective;
    std::string source; ///< e.g. "vendor blog", "NSDI '19 eval"
};

/// Generates a claim corpus from the KB's orderings: each ordering yields
/// 1–3 supporting claims, plus a contrarian (flipped) claim with probability
/// `contrarianProb`.
[[nodiscard]] std::vector<ComparativeClaim> renderClaimCorpus(
    const kb::KnowledgeBase& kb, double contrarianProb, util::Rng& rng);

/// Attaches every corpus claim contradicting an encoded ordering to that
/// ordering's `disputes` list. Returns the number of orderings that gained
/// at least one dispute. Idempotent per distinct source string.
std::size_t annotateDisputes(kb::KnowledgeBase& kb,
                             const std::vector<ComparativeClaim>& corpus);

} // namespace lar::extract
