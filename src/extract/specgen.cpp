#include "extract/specgen.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace lar::extract {

namespace {

std::string yesNo(bool v) { return v ? "Yes" : "No"; }

std::string withThousands(std::int64_t v) {
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0) out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    return out;
}

void field(std::string& text, const std::string& label, const std::string& value) {
    text += "  \"" + label + "\": \"" + value + "\",\n";
}

} // namespace

SpecSheet renderSpecSheet(const kb::HardwareSpec& spec) {
    // Field names follow Listing 1's display labels.
    std::string text = "{\n";
    field(text, "Model Name", spec.model);
    field(text, "Vendor", spec.vendor);
    field(text, "Device Class", toString(spec.cls));
    if (const auto bw = spec.numAttr(kb::kAttrPortBandwidthGbps))
        field(text, "Port Bandwidth",
              std::to_string(static_cast<long long>(*bw)) + " Gbps");
    field(text, "Max Power Consumption",
          std::to_string(static_cast<long long>(std::llround(spec.maxPowerW))) +
              "W");
    if (const auto ports = spec.numAttr(kb::kAttrNumPorts)) {
        const auto bw = spec.numAttr(kb::kAttrPortBandwidthGbps).value_or(0);
        field(text, "Ports",
              std::to_string(static_cast<long long>(*ports)) + "x " +
                  std::to_string(static_cast<long long>(bw)) +
                  " Gigabit Ethernet SFP+");
    }
    if (const auto mem = spec.numAttr(kb::kAttrMemoryGb))
        field(text, "Memory",
              std::to_string(static_cast<long long>(*mem)) + " GB");
    if (const auto p4 = spec.boolAttr(kb::kAttrP4Supported)) {
        field(text, "P4 Supported?", yesNo(*p4));
        if (*p4) {
            field(text, "# P4 Stages",
                  std::to_string(static_cast<long long>(
                      spec.numAttr(kb::kAttrP4Stages).value_or(0))));
        } else {
            field(text, "# P4 Stages", "N/A");
        }
    }
    if (const auto ecn = spec.boolAttr(kb::kAttrEcnSupported))
        field(text, "ECN supported?", yesNo(*ecn));
    if (const auto qcn = spec.boolAttr(kb::kAttrQcnSupported))
        field(text, "QCN supported?", yesNo(*qcn));
    if (const auto intSup = spec.boolAttr(kb::kAttrIntSupported))
        field(text, "INT supported?", yesNo(*intSup));
    if (const auto pfc = spec.boolAttr(kb::kAttrPfcSupported))
        field(text, "PFC supported?", yesNo(*pfc));
    if (const auto deep = spec.boolAttr(kb::kAttrDeepBuffers))
        field(text, "Deep Buffers?", yesNo(*deep));
    if (const auto mac = spec.numAttr(kb::kAttrMacTableSize))
        field(text, "MAC Address Table Size",
              withThousands(static_cast<std::int64_t>(*mac)) + " entries");
    if (const auto qos = spec.numAttr(kb::kAttrQosClasses))
        field(text, "QoS Classes",
              std::to_string(static_cast<long long>(*qos)));
    if (const auto buf = spec.numAttr(kb::kAttrBufferMb))
        field(text, "Packet Buffer",
              std::to_string(static_cast<long long>(*buf)) + " MB");
    if (const auto ts = spec.boolAttr(kb::kAttrNicTimestamps))
        field(text, "Hardware Timestamps?", yesNo(*ts));
    if (const auto rdma = spec.boolAttr(kb::kAttrRdmaSupported))
        field(text, "RDMA Supported?", yesNo(*rdma));
    if (const auto sriov = spec.boolAttr(kb::kAttrSrIov))
        field(text, "SR-IOV?", yesNo(*sriov));
    if (const auto poll = spec.boolAttr(kb::kAttrInterruptPolling))
        field(text, "Interrupt Polling?", yesNo(*poll));
    if (const auto smart = spec.boolAttr(kb::kAttrSmartNic))
        field(text, "SmartNIC?", yesNo(*smart));
    if (const auto kind = spec.strAttr(kb::kAttrSmartNicKind))
        field(text, "SmartNIC Type", *kind);
    if (const auto cores = spec.numAttr(kb::kAttrNicCores))
        field(text, "NIC Cores", std::to_string(static_cast<long long>(*cores)));
    if (const auto gates = spec.numAttr(kb::kAttrFpgaGatesK))
        field(text, "FPGA Logic",
              withThousands(static_cast<std::int64_t>(*gates)) + "K gates");
    if (const auto reorder = spec.numAttr(kb::kAttrReorderBufferKb))
        field(text, "Reorder Buffer",
              std::to_string(static_cast<long long>(*reorder)) + " KB");
    if (const auto cores = spec.numAttr(kb::kAttrCores))
        field(text, "CPU Cores", std::to_string(static_cast<long long>(*cores)));
    if (const auto ram = spec.numAttr(kb::kAttrRamGb))
        field(text, "RAM", std::to_string(static_cast<long long>(*ram)) + " GB");
    if (const auto cxl = spec.boolAttr(kb::kAttrCxlSupported))
        field(text, "CXL Supported?", yesNo(*cxl));
    if (const auto numa = spec.numAttr(kb::kAttrNumaNodes))
        field(text, "NUMA Nodes", std::to_string(static_cast<long long>(*numa)));
    field(text, "Unit Price",
          "$" + withThousands(static_cast<std::int64_t>(
                    std::llround(spec.unitCostUsd))));
    // Trim the trailing comma for tidy JSON-ish output.
    if (text.size() >= 2 && text[text.size() - 2] == ',')
        text.erase(text.size() - 2, 1);
    text += "}\n";
    return SpecSheet{std::move(text), spec};
}

namespace {

/// True for requirement nodes whose applicability depends on workload or
/// deployment context rather than hardware capability — the "nuances" §4.1
/// found LLMs miss.
bool isNuance(const kb::Requirement& r) {
    using Kind = kb::Requirement::Kind;
    switch (r.kind()) {
        case Kind::WorkloadHas:
        case Kind::OptionTrue: return true;
        case Kind::Not: return isNuance(r.children()[0]);
        case Kind::FactTrue: return true; // environment facts, e.g. flooding
        default: return false;
    }
}

std::string requirementSentence(const std::string& name,
                                const kb::Requirement& r, bool nuance) {
    if (nuance)
        return "Note that " + name + " applies only when " + r.toString() + ".";
    return name + " requires " + r.toString() + " to be deployed.";
}

void factsFromRequirement(const kb::System& s, const kb::Requirement& r,
                          std::vector<DocFact>& out) {
    // Split top-level conjunctions into individually-stated facts.
    if (r.kind() == kb::Requirement::Kind::And) {
        for (const kb::Requirement& c : r.children())
            factsFromRequirement(s, c, out);
        return;
    }
    if (r.isTrivial()) return;
    DocFact fact;
    fact.requirement = r;
    fact.kind = isNuance(r) ? DocFact::Kind::NuanceCondition
                            : DocFact::Kind::HardRequirement;
    fact.sentence = requirementSentence(
        s.name, r, fact.kind == DocFact::Kind::NuanceCondition);
    out.push_back(std::move(fact));
}

} // namespace

SystemDoc renderSystemDoc(const kb::System& system) {
    SystemDoc doc;
    doc.systemName = system.name;
    doc.category = system.category;
    doc.researchGrade = system.researchGrade;

    for (const std::string& capability : system.solves) {
        DocFact fact;
        fact.kind = DocFact::Kind::Capability;
        fact.name = capability;
        fact.sentence = system.name + " addresses the '" + capability +
                        "' objective for its deployments.";
        doc.facts.push_back(std::move(fact));
    }
    factsFromRequirement(system, system.constraints, doc.facts);
    for (const kb::ResourceDemand& demand : system.demands) {
        DocFact fact;
        fact.kind = DocFact::Kind::ResourceQuantity;
        fact.demand = demand;
        fact.sentence = system.name + " consumes " +
                        util::formatDouble(demand.fixed, 0) + " units of " +
                        demand.resource +
                        (demand.perKiloFlows > 0
                             ? " plus " + util::formatDouble(demand.perKiloFlows, 2) +
                                   " per thousand flows"
                             : "") +
                        (demand.perGbps > 0
                             ? " plus " + util::formatDouble(demand.perGbps, 2) +
                                   " per Gbps"
                             : "") +
                        ".";
        doc.facts.push_back(std::move(fact));
    }
    for (const std::string& provided : system.provides) {
        DocFact fact;
        fact.kind = DocFact::Kind::Provides;
        fact.name = provided;
        fact.sentence =
            "Deploying " + system.name + " introduces '" + provided +
            "' into the environment.";
        doc.facts.push_back(std::move(fact));
    }
    for (const std::string& conflict : system.conflicts) {
        DocFact fact;
        fact.kind = DocFact::Kind::Conflict;
        fact.name = conflict;
        fact.sentence = system.name + " cannot coexist with " + conflict + ".";
        doc.facts.push_back(std::move(fact));
    }

    doc.prose = system.name + " (" + toString(system.category) + "; " +
                system.source + ").";
    for (const DocFact& fact : doc.facts) doc.prose += " " + fact.sentence;
    return doc;
}

std::vector<SpecSheet> renderHardwareCorpus(const kb::KnowledgeBase& kb) {
    std::vector<SpecSheet> corpus;
    corpus.reserve(kb.hardwareSpecs().size());
    for (const kb::HardwareSpec& spec : kb.hardwareSpecs())
        corpus.push_back(renderSpecSheet(spec));
    return corpus;
}

std::vector<SystemDoc> renderSystemCorpus(const kb::KnowledgeBase& kb) {
    std::vector<SystemDoc> corpus;
    corpus.reserve(kb.systems().size());
    for (const kb::System& system : kb.systems())
        corpus.push_back(renderSystemDoc(system));
    return corpus;
}

} // namespace lar::extract
