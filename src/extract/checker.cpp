#include "extract/checker.hpp"

#include <algorithm>
#include <cmath>

namespace lar::extract {

namespace {

/// Flattens a requirement into its conjunct leaves for set comparison.
void flatten(const kb::Requirement& r, std::vector<kb::Requirement>& out) {
    if (r.kind() == kb::Requirement::Kind::And) {
        for (const kb::Requirement& c : r.children()) flatten(c, out);
        return;
    }
    if (!r.isTrivial()) out.push_back(r);
}

bool containsRequirement(const std::vector<kb::Requirement>& haystack,
                         const kb::Requirement& needle) {
    const std::string rendered = needle.toString();
    return std::any_of(haystack.begin(), haystack.end(),
                       [&rendered](const kb::Requirement& r) {
                           return r.toString() == rendered;
                       });
}

const kb::ResourceDemand* findDemand(const kb::System& candidate,
                                     const std::string& resource) {
    for (const kb::ResourceDemand& d : candidate.demands)
        if (d.resource == resource) return &d;
    return nullptr;
}

bool demandMatches(const kb::ResourceDemand& a, const kb::ResourceDemand& b) {
    return std::llround(a.fixed) == std::llround(b.fixed) &&
           std::abs(a.perKiloFlows - b.perKiloFlows) < 1e-9 &&
           std::abs(a.perGbps - b.perGbps) < 1e-9;
}

} // namespace

CheckResult checkEncoding(const kb::System& candidate,
                          const SystemDoc& referenceDoc,
                          const CheckerModel& model, util::Rng& rng) {
    CheckResult result;
    std::vector<kb::Requirement> candidateReqs;
    flatten(candidate.constraints, candidateReqs);

    for (const DocFact& fact : referenceDoc.facts) {
        switch (fact.kind) {
            case DocFact::Kind::HardRequirement:
            case DocFact::Kind::NuanceCondition: {
                if (containsRequirement(candidateReqs, fact.requirement)) {
                    if (rng.chance(model.falseAlarm)) {
                        ++result.stats.falseAlarms;
                        result.findings.push_back(
                            {CheckFinding::Type::FalseAlarm,
                             "questioned (correct) condition: " +
                                 fact.requirement.toString()});
                    }
                    break;
                }
                ++result.stats.missingTotal;
                if (rng.chance(model.detectMissingCondition)) {
                    ++result.stats.missingFlagged;
                    result.findings.push_back(
                        {CheckFinding::Type::MissingCondition,
                         candidate.name + " encoding is missing the condition: " +
                             fact.requirement.toString()});
                }
                break;
            }
            case DocFact::Kind::ResourceQuantity: {
                const kb::ResourceDemand* mine =
                    findDemand(candidate, fact.demand.resource);
                if (mine == nullptr) {
                    // Absent quantity = existence problem: strong detection.
                    ++result.stats.missingTotal;
                    if (rng.chance(model.detectMissingCondition)) {
                        ++result.stats.missingFlagged;
                        result.findings.push_back(
                            {CheckFinding::Type::MissingCondition,
                             candidate.name + " encoding omits its '" +
                                 fact.demand.resource + "' demand"});
                    }
                    break;
                }
                if (demandMatches(*mine, fact.demand)) break;
                // Present but wrong number: weak detection (§4.2).
                ++result.stats.wrongValueTotal;
                if (rng.chance(model.detectWrongValue)) {
                    ++result.stats.wrongValueFlagged;
                    result.findings.push_back(
                        {CheckFinding::Type::WrongValue,
                         candidate.name + " encodes the wrong amount of '" +
                             fact.demand.resource + "'"});
                }
                break;
            }
            case DocFact::Kind::Provides: {
                if (std::find(candidate.provides.begin(), candidate.provides.end(),
                              fact.name) != candidate.provides.end())
                    break;
                ++result.stats.missingTotal;
                if (rng.chance(model.detectMissingCondition)) {
                    ++result.stats.missingFlagged;
                    result.findings.push_back(
                        {CheckFinding::Type::MissingCondition,
                         candidate.name + " encoding omits provided fact '" +
                             fact.name + "'"});
                }
                break;
            }
            case DocFact::Kind::Conflict: {
                if (std::find(candidate.conflicts.begin(),
                              candidate.conflicts.end(),
                              fact.name) != candidate.conflicts.end())
                    break;
                ++result.stats.missingTotal;
                if (rng.chance(model.detectMissingCondition)) {
                    ++result.stats.missingFlagged;
                    result.findings.push_back(
                        {CheckFinding::Type::MissingCondition,
                         candidate.name + " encoding omits the conflict with " +
                             fact.name});
                }
                break;
            }
            case DocFact::Kind::Capability: break; // headline claims
        }
    }
    return result;
}

ClaimClass classifyOrdering(const kb::Ordering& ordering) {
    (void)ordering;
    // Any better-than claim is comparative and hence subjective (§4.2: "the
    // controversial questions were all about comparisons between systems").
    return ClaimClass::SubjectiveComparison;
}

ClaimClass classifyRequirement(const kb::Requirement& requirement) {
    (void)requirement;
    // Inter-dependencies between systems and hardware are objective.
    return ClaimClass::ObjectiveFact;
}

} // namespace lar::extract
