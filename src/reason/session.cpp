#include "reason/session.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lar::reason {

namespace {

/// Pre-interned lar_session_* handles (same pattern as ServiceMetrics).
struct SessionMetrics {
    obs::Counter& created;
    obs::Counter& closed;
    obs::Counter& expired;
    obs::Counter& shed;
    obs::Counter& asks;
    /// Shares the lar_warmstart_* family with ServiceMetrics (the registry
    /// interns by name): session creates import snapshots themselves, not
    /// through Service::run, so they account for their own clauses.
    obs::Counter& warmImported;
    obs::Gauge& active;
    obs::Histogram& askLatencyMs;

    static SessionMetrics& get() {
        static SessionMetrics m = [] {
            obs::Registry& reg = obs::Registry::global();
            return SessionMetrics{
                reg.counter("lar_session_created_total",
                            "What-if sessions opened"),
                reg.counter("lar_session_closed_total",
                            "What-if sessions closed by the client"),
                reg.counter("lar_session_expired_total",
                            "What-if sessions evicted on lease expiry"),
                reg.counter("lar_session_shed_total",
                            "Session creates refused by admission control"),
                reg.counter("lar_session_asks_total",
                            "Variations answered across all sessions"),
                reg.counter("lar_warmstart_clauses_imported_total",
                            "Learnt clauses integrated from warm-start "
                            "snapshots"),
                reg.gauge("lar_session_active", "Live what-if sessions"),
                reg.histogram("lar_session_ask_latency_ms",
                              "Per-ask latency inside SessionManager",
                              obs::latencyBucketsMs()),
            };
        }();
        return m;
    }
};

std::string makeSessionId(std::uint64_t seq) {
    // splitmix64 spreads the sequence number so ids don't look consecutive
    // (they are not a security boundary — the server binds to localhost by
    // default — just collision-free and unambiguous in logs).
    std::uint64_t state = seq;
    const std::uint64_t word = util::splitmix64(state);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "s-%016llx",
                  static_cast<unsigned long long>(word));
    return buf;
}

} // namespace

SessionManager::SessionManager(Service& service, const SessionOptions& options)
    : service_(service), options_(options) {
    sweeper_ = std::thread([this] { sweep(); });
}

SessionManager::~SessionManager() {
    {
        const std::lock_guard<std::mutex> lock(sweepMutex_);
        stopping_ = true;
    }
    sweepCv_.notify_all();
    sweeper_.join();
    drain();
}

SessionManager::CreateResult SessionManager::create(const Problem& problem) {
    SessionMetrics& metrics = SessionMetrics::get();
    CreateResult result;
    result.leaseTtlMs = options_.leaseTtl.count();

    if (service_.draining()) {
        result.shed = true;
        metrics.shed.inc();
        return result;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (options_.maxSessions > 0 &&
            sessions_.size() >= options_.maxSessions) {
            result.shed = true;
            metrics.shed.inc();
            return result;
        }
    }

    // Compile (or cache-hit) outside the session-map lock: compilation can
    // take milliseconds and must not block asks on other sessions.
    const std::shared_ptr<const Compilation> compilation =
        service_.compilationFor(problem, result.cacheHit, result.compileMs);

    auto session = std::make_shared<Session>();
    QueryOptions query = options_.query;
    query.cancelFlag = &session->cancel;
    query.warmStart = service_.snapshotFor(problem);
    session->whatIf = std::make_unique<WhatIfSession>(compilation, query);
    result.warmStarted = session->whatIf->warmStarted();
    result.warmStartClauses = session->whatIf->warmStartImported();
    if (result.warmStartClauses > 0) {
        metrics.warmImported.inc(result.warmStartClauses);
    }

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        // Re-check the shed conditions: compilation ran unlocked.
        if (service_.draining() ||
            (options_.maxSessions > 0 &&
             sessions_.size() >= options_.maxSessions)) {
            result.shed = true;
            metrics.shed.inc();
            return result;
        }
        session->id = makeSessionId(++nextId_);
        session->leaseExpiry = Clock::now() + options_.leaseTtl;
        sessions_.emplace(session->id, session);
        result.id = session->id;
        metrics.active.set(static_cast<double>(sessions_.size()));
    }
    metrics.created.inc();
    util::logLineJson(util::LogLevel::Info, "session_created",
                      {{"id", result.id},
                       {"warm_started", result.warmStarted},
                       {"warm_clauses",
                        static_cast<std::uint64_t>(result.warmStartClauses)}});
    return result;
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    const std::string& id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

std::optional<SessionManager::AskOutcome> SessionManager::ask(
    const std::string& id, const Variation& variation,
    const std::string& traceId, std::shared_ptr<obs::Trace> requestTrace) {
    const std::shared_ptr<Session> session = find(id);
    if (session == nullptr) return std::nullopt;

    SessionMetrics& metrics = SessionMetrics::get();
    std::optional<util::ScopedLogTraceId> logScope;
    if (!traceId.empty()) logScope.emplace(traceId);

    // Session asks share the Service's flight recorder and in-flight
    // registry with plain queries: one endpoint sees the whole process.
    // "queued" while waiting on the per-session ask serialization.
    const std::shared_ptr<InflightQuery> inflight =
        service_.flightRecorder().admit(id, traceId, /*sessionId=*/id,
                                        QueryKind::Feasibility);

    // Span collection mirrors Service::runTimed: join the request's trace
    // when the HTTP layer supplied one, otherwise a fresh collector.
    std::shared_ptr<obs::Trace> spanTrace = std::move(requestTrace);
    std::optional<obs::ScopedTrace> scopedTrace;
    std::optional<obs::Span> askSpan;
    if (obs::enabled()) {
        if (spanTrace == nullptr) spanTrace = std::make_shared<obs::Trace>();
        if (obs::currentContext().trace != spanTrace.get())
            scopedTrace.emplace(*spanTrace);
        askSpan.emplace("ask");
    }

    util::Stopwatch timer;
    AskOutcome outcome;
    std::uint64_t askIndex = 0;
    {
        // Per-session serialization: the backend is single-threaded.
        // Holding askMutex (not the manager mutex) keeps asks on *other*
        // sessions fully concurrent.
        const std::lock_guard<std::mutex> askLock(session->askMutex);
        inflight->phase.store(QueryPhase::Solve, std::memory_order_relaxed);
        askIndex = session->asks.fetch_add(1, std::memory_order_relaxed) + 1;
        outcome.answer = session->whatIf->ask(variation);
        outcome.trace.stats = session->whatIf->solveStats();
    }
    const double totalMs = timer.millis();
    askSpan.reset(); // close "ask" before the tree is exported
    scopedTrace.reset();
    service_.flightRecorder().finish(inflight);

    {
        // Renew the lease after the ask: a long solve must not expire its
        // own session. If the sweeper evicted it mid-solve, the session is
        // gone from the map and this renewal is a harmless no-op on the
        // (still-alive, shared) Session object.
        const std::lock_guard<std::mutex> lock(mutex_);
        session->leaseExpiry = Clock::now() + options_.leaseTtl;
    }

    outcome.trace.id = id + "#" + std::to_string(askIndex);
    outcome.trace.traceId = traceId;
    outcome.trace.kind = QueryKind::Feasibility;
    outcome.trace.backend = options_.query.backend;
    outcome.trace.cacheHit = true; // the session *is* the warm compilation
    outcome.trace.solveMs = totalMs;
    outcome.trace.totalMs = totalMs;
    outcome.trace.verdict = outcome.answer.verdict;
    outcome.trace.stopReason = outcome.answer.stopReason;
    outcome.trace.warmStartAttempted = session->whatIf->warmStarted();
    outcome.trace.warmStartClauses = session->whatIf->warmStartImported();
    outcome.trace.spans = spanTrace;
    service_.flightRecorder().record(outcome.trace);

    metrics.asks.inc();
    metrics.askLatencyMs.observe(totalMs);
    util::logLineJson(util::LogLevel::Info, "session_ask",
                      {{"id", id},
                       {"verdict", verdictName(outcome.answer.verdict)},
                       {"total_ms", totalMs}});
    return outcome;
}

bool SessionManager::renew(const std::string& id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    it->second->leaseExpiry = Clock::now() + options_.leaseTtl;
    return true;
}

void SessionManager::exportSnapshot(Session& session) {
    // Serialize against any in-flight ask: exportSnapshot reads solver
    // internals. Asks only add assumptions (never clauses), so the export
    // normally succeeds and the next session on this problem starts warm.
    const std::lock_guard<std::mutex> askLock(session.askMutex);
    sat::SolverSnapshot snap = session.whatIf->exportSnapshot();
    if (snap.empty()) return;
    service_.storeSnapshot(
        session.whatIf->compilation().problem(),
        std::make_shared<const sat::SolverSnapshot>(std::move(snap)));
}

bool SessionManager::close(const std::string& id) {
    std::shared_ptr<Session> session;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) return false;
        session = std::move(it->second);
        sessions_.erase(it);
        SessionMetrics::get().active.set(
            static_cast<double>(sessions_.size()));
    }
    exportSnapshot(*session);
    SessionMetrics::get().closed.inc();
    util::logLineJson(util::LogLevel::Info, "session_closed", {{"id", id}});
    return true;
}

void SessionManager::drain() {
    std::vector<std::shared_ptr<Session>> victims;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        victims.reserve(sessions_.size());
        for (auto& [id, session] : sessions_) {
            session->cancel.store(true, std::memory_order_release);
            victims.push_back(session);
        }
        sessions_.clear();
        SessionMetrics::get().active.set(0.0);
    }
    // Export after cancelling: the cancel flag makes in-flight asks return
    // quickly, then the askMutex in exportSnapshot waits for each to leave.
    for (const std::shared_ptr<Session>& session : victims)
        exportSnapshot(*session);
    if (!victims.empty())
        util::logLineJson(util::LogLevel::Info, "session_drain",
                          {{"evicted",
                            static_cast<std::uint64_t>(victims.size())}});
}

std::size_t SessionManager::activeSessions() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::vector<SessionManager::SessionInfo> SessionManager::list() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point now = Clock::now();
    std::vector<SessionInfo> out;
    out.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
        SessionInfo info;
        info.id = id;
        info.asks = session->asks.load(std::memory_order_relaxed);
        info.leaseRemainingMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                session->leaseExpiry - now)
                .count();
        info.warmStarted = session->whatIf->warmStarted();
        out.push_back(std::move(info));
    }
    return out;
}

void SessionManager::sweep() {
    std::unique_lock<std::mutex> sweepLock(sweepMutex_);
    while (!stopping_) {
        sweepCv_.wait_for(sweepLock, options_.sweepInterval,
                          [this] { return stopping_; });
        if (stopping_) break;
        std::vector<std::shared_ptr<Session>> expired;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const Clock::time_point now = Clock::now();
            for (auto it = sessions_.begin(); it != sessions_.end();) {
                if (it->second->leaseExpiry <= now) {
                    expired.push_back(it->second);
                    it = sessions_.erase(it);
                } else {
                    ++it;
                }
            }
            if (!expired.empty())
                SessionMetrics::get().active.set(
                    static_cast<double>(sessions_.size()));
        }
        for (const std::shared_ptr<Session>& session : expired) {
            exportSnapshot(*session);
            SessionMetrics::get().expired.inc();
            util::logLineJson(util::LogLevel::Info, "session_expired",
                              {{"id", session->id}});
        }
    }
}

} // namespace lar::reason
