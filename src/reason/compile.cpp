#include "reason/compile.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "kb/objectives.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace lar::reason {

namespace {

/// Capacity semantics for the built-in resources: which hardware class
/// provides them, from which attribute, and whether the capacity multiplies
/// by the unit count (pooled) or is per-unit (every unit runs everything).
struct ResourceRule {
    const char* resource;
    kb::HardwareClass cls;
    const char* attr;
    bool pooled; ///< capacity = count × attr (else capacity = attr)
};

constexpr ResourceRule kResourceRules[] = {
    {kb::kResCores, kb::HardwareClass::Server, kb::kAttrCores, true},
    {kb::kResP4Stages, kb::HardwareClass::Switch, kb::kAttrP4Stages, false},
    {kb::kResQosClasses, kb::HardwareClass::Switch, kb::kAttrQosClasses, false},
    {kb::kResSmartNicCores, kb::HardwareClass::Nic, kb::kAttrNicCores, false},
    {kb::kResFpgaGatesK, kb::HardwareClass::Nic, kb::kAttrFpgaGatesK, false},
    {kb::kResSwitchMemoryGb, kb::HardwareClass::Switch, kb::kAttrMemoryGb, false},
};

const ResourceRule* findResourceRule(const std::string& resource) {
    for (const ResourceRule& r : kResourceRules)
        if (resource == r.resource) return &r;
    return nullptr;
}

/// Objectives whose quality partially depends on a category being filled.
struct ObjectiveCategoryHint {
    const char* objective;
    kb::Category category;
    std::int64_t presenceWeight;
};

constexpr ObjectiveCategoryHint kObjectiveHints[] = {
    {kb::kObjMonitoring, kb::Category::Monitoring, 5},
    {kb::kObjLoadBalancing, kb::Category::LoadBalancer, 5},
    {kb::kObjSecurity, kb::Category::Firewall, 5},
};

} // namespace

Compilation::Compilation(const Problem& problem) : problem_(problem) {
    const obs::Span span("compile");
    expects(problem_.kb != nullptr, "Compilation: problem has no knowledge base");
    collectFactsAndOptions();
    buildHardwareVars();
    buildSystemVars();
    defineFacts();
    buildCategoryRules();
    buildSystemRules();
    buildCapabilityRules();
    buildResourceRules();
    buildBandwidthRules();
    buildPerformanceBounds();
    buildPins();
    buildBudgets();
    buildExtraConstraint();
    buildObjectives();
}

int Compilation::track(std::string description) {
    ruleDescriptions_.push_back(std::move(description));
    return static_cast<int>(ruleDescriptions_.size() - 1);
}

void Compilation::assertTracked(smt::NodeId formula, std::string description) {
    hards_.push_back({formula, track(std::move(description))});
}

void Compilation::assertUntracked(smt::NodeId formula) {
    hards_.push_back({formula, -1});
}

std::vector<std::string> Compilation::describeTracks(
    const std::vector<int>& tracks) const {
    std::vector<std::string> out;
    out.reserve(tracks.size());
    for (const int t : tracks)
        if (t >= 0 && static_cast<std::size_t>(t) < ruleDescriptions_.size())
            out.push_back(ruleDescriptions_[static_cast<std::size_t>(t)]);
    return out;
}

// ---------------------------------------------------------------------------
// Variables
// ---------------------------------------------------------------------------

void Compilation::collectFactsAndOptions() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    std::set<std::string> facts;
    std::set<std::string> options;
    for (const kb::System& s : kb.systems()) {
        for (const std::string& f : s.provides) facts.insert(f);
        std::vector<std::string> refs;
        s.constraints.collectFactRefs(refs);
        facts.insert(refs.begin(), refs.end());
        refs.clear();
        s.constraints.collectOptionRefs(refs);
        options.insert(refs.begin(), refs.end());
    }
    for (const kb::Ordering& o : kb.orderings()) {
        std::vector<std::string> refs;
        o.condition.collectFactRefs(refs);
        facts.insert(refs.begin(), refs.end());
        refs.clear();
        o.condition.collectOptionRefs(refs);
        options.insert(refs.begin(), refs.end());
    }
    for (const auto& [name, value] : problem_.pinnedFacts) facts.insert(name);
    for (const auto& [name, value] : problem_.pinnedOptions) options.insert(name);
    {
        std::vector<std::string> refs;
        problem_.extraConstraint.collectFactRefs(refs);
        facts.insert(refs.begin(), refs.end());
        refs.clear();
        problem_.extraConstraint.collectOptionRefs(refs);
        options.insert(refs.begin(), refs.end());
    }
    for (const std::string& f : facts) factVars_.emplace(f, store_.var("fact/" + f));
    for (const std::string& o : options)
        optionVars_.emplace(o, store_.var("opt/" + o));
}

void Compilation::buildHardwareVars() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    for (const auto& [cls, choice] : problem_.hardware) {
        std::vector<std::string> candidates = choice.candidateModels;
        if (candidates.empty())
            for (const kb::HardwareSpec* h : kb.byClass(cls))
                candidates.push_back(h->model);
        expects(!candidates.empty(),
                "Compilation: no candidate hardware for class " + toString(cls));
        std::vector<smt::NodeId> vars;
        for (const std::string& model : candidates) {
            expects(kb.findHardware(model) != nullptr,
                    "Compilation: unknown hardware model " + model);
            const smt::NodeId v = store_.var("hw/" + toString(cls) + "/" + model);
            hardwareVars_[cls][model] = v;
            vars.push_back(v);
        }
        assertTracked(store_.mkExactly(vars, 1),
                      "inventory: exactly one " + toString(cls) +
                          " model must be deployed");
        if (choice.pinnedModel.has_value()) {
            const smt::NodeId v = hardwareVar(cls, *choice.pinnedModel);
            expects(v != smt::kInvalidNode,
                    "Compilation: pinned model not among candidates: " +
                        *choice.pinnedModel);
            assertTracked(v, "pinned hardware: " + toString(cls) + " stays " +
                                 *choice.pinnedModel);
        }
    }
}

void Compilation::buildSystemVars() {
    for (const kb::System& s : problem_.kb->systems())
        systemVars_.emplace(s.name, store_.var("sys/" + s.name));
}

void Compilation::defineFacts() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    for (const auto& [fact, var] : factVars_) {
        std::vector<smt::NodeId> providers;
        for (const kb::System& s : kb.systems())
            if (s.providesFact(fact)) providers.push_back(systemVars_.at(s.name));
        const auto pin = problem_.pinnedFacts.find(fact);
        if (pin != problem_.pinnedFacts.end() && pin->second)
            providers.push_back(store_.constant(true));
        // fact ⇔ OR(providers): definitional, untracked.
        assertUntracked(store_.mkIff(var, store_.mkOr(std::move(providers))));
        if (pin != problem_.pinnedFacts.end() && !pin->second)
            assertTracked(store_.mkNot(var), "pinned fact: " + fact + " must not hold");
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void Compilation::buildCategoryRules() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    for (const kb::Category category : kb::kAllCategories) {
        std::vector<smt::NodeId> vars;
        for (const kb::System* s : kb.byCategory(category))
            vars.push_back(systemVars_.at(s->name));
        const bool required = problem_.requiredCategories.count(category) > 0 &&
                              problem_.commonSenseRules;
        const bool allowed = problem_.requiredCategories.count(category) > 0 ||
                             problem_.optionalCategories.count(category) > 0;
        if (vars.empty()) continue;
        if (!allowed) {
            for (const smt::NodeId v : vars)
                assertUntracked(store_.mkNot(v)); // untracked exclusion
            continue;
        }
        assertTracked(store_.mkAtMost(vars, 1),
                      "common-sense: at most one " + toString(category) +
                          " system can be deployed");
        if (required)
            assertTracked(store_.mkAtLeast(vars, 1),
                          "common-sense: every deployment needs a " +
                              toString(category) + " system");
    }
}

smt::NodeId Compilation::compileRequirement(const kb::Requirement& r) {
    using Kind = kb::Requirement::Kind;
    switch (r.kind()) {
        case Kind::True: return store_.constant(true);
        case Kind::False: return store_.constant(false);
        case Kind::And: {
            std::vector<smt::NodeId> kids;
            for (const kb::Requirement& c : r.children())
                kids.push_back(compileRequirement(c));
            return store_.mkAnd(std::move(kids));
        }
        case Kind::Or: {
            std::vector<smt::NodeId> kids;
            for (const kb::Requirement& c : r.children())
                kids.push_back(compileRequirement(c));
            return store_.mkOr(std::move(kids));
        }
        case Kind::Not: return store_.mkNot(compileRequirement(r.children()[0]));
        case Kind::HardwareHas:
        case Kind::HardwareCmp: {
            const auto clsIt = hardwareVars_.find(r.hwClass());
            if (clsIt == hardwareVars_.end()) return store_.constant(false);
            std::vector<smt::NodeId> satisfying;
            for (const auto& [model, var] : clsIt->second) {
                const kb::HardwareSpec& spec = problem_.kb->hardware(model);
                bool ok = false;
                if (r.kind() == Kind::HardwareHas) {
                    ok = spec.boolAttr(r.key()).value_or(false);
                } else {
                    const auto num = spec.numAttr(r.key());
                    ok = num.has_value() && kb::applyCmp(r.op(), *num, r.value());
                }
                if (ok) satisfying.push_back(var);
            }
            return store_.mkOr(std::move(satisfying));
        }
        case Kind::SystemPresent: {
            const auto it = systemVars_.find(r.key());
            if (it == systemVars_.end()) return store_.constant(false);
            return it->second;
        }
        case Kind::FactTrue: {
            const auto it = factVars_.find(r.key());
            if (it == factVars_.end()) return store_.constant(false);
            return it->second;
        }
        case Kind::OptionTrue: {
            const auto it = optionVars_.find(r.key());
            if (it == optionVars_.end()) return store_.constant(false);
            return it->second;
        }
        case Kind::WorkloadHas: {
            const bool has = std::any_of(
                problem_.workloads.begin(), problem_.workloads.end(),
                [&r](const kb::Workload& w) { return w.hasProperty(r.key()); });
            return store_.constant(has);
        }
    }
    return store_.constant(false);
}

void Compilation::buildSystemRules() {
    for (const kb::System& s : problem_.kb->systems()) {
        const smt::NodeId sysVar = systemVars_.at(s.name);
        if (!s.constraints.isTrivial()) {
            assertTracked(
                store_.mkImplies(sysVar, compileRequirement(s.constraints)),
                "requirement of " + s.name + ": " + s.constraints.toString());
        }
        for (const std::string& conflict : s.conflicts) {
            const auto other = systemVars_.find(conflict);
            if (other == systemVars_.end()) continue;
            // Only emit once per unordered pair.
            if (conflict < s.name &&
                problem_.kb->system(conflict).conflicts.end() !=
                    std::find(problem_.kb->system(conflict).conflicts.begin(),
                              problem_.kb->system(conflict).conflicts.end(),
                              s.name))
                continue;
            assertTracked(
                store_.mkOr(store_.mkNot(sysVar), store_.mkNot(other->second)),
                "conflict: " + s.name + " cannot coexist with " + conflict);
        }
        if (problem_.forbidResearchGrade && s.researchGrade) {
            assertTracked(store_.mkNot(sysVar),
                          "deadline rule: research prototype " + s.name +
                              " is not deployable");
        }
    }
}

void Compilation::buildCapabilityRules() {
    for (const std::string& capability : problem_.requiredCapabilities) {
        std::vector<smt::NodeId> providers;
        for (const kb::System* s : problem_.kb->solving(capability))
            providers.push_back(systemVars_.at(s->name));
        assertTracked(store_.mkOr(std::move(providers)),
                      "goal: some chosen system must solve '" + capability + "'");
    }
}

void Compilation::buildResourceRules() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    const WorkloadAggregates agg = aggregateWorkloads(problem_.workloads);

    // Which resources does any system demand?
    std::set<std::string> resources;
    for (const kb::System& s : kb.systems())
        for (const kb::ResourceDemand& d : s.demands) resources.insert(d.resource);
    // Workloads demand cores even when no system does.
    if (agg.totalPeakCores > 0) resources.insert(kb::kResCores);

    for (const std::string& resource : resources) {
        const ResourceRule* rule = findResourceRule(resource);
        if (rule == nullptr) {
            util::logAt(util::LogLevel::Warn,
                        "unknown resource '", resource, "' — demands ignored");
            continue;
        }
        const auto clsIt = hardwareVars_.find(rule->cls);
        if (clsIt == hardwareVars_.end()) continue;

        // Demand terms: one per system demanding this resource. Systems in
        // one category are at-most-one, so they share an exclusivity group.
        std::vector<smt::LinTerm> terms;
        for (const kb::System& s : kb.systems()) {
            std::int64_t amount = 0;
            for (const kb::ResourceDemand& d : s.demands)
                if (d.resource == resource)
                    amount += d.amountFor(agg.totalKiloFlows, agg.totalGbps);
            if (amount > 0)
                terms.push_back({amount, systemVars_.at(s.name), false,
                                 static_cast<int>(s.category)});
        }
        const std::int64_t workloadDemand =
            resource == kb::kResCores ? agg.totalPeakCores : 0;
        if (terms.empty() && workloadDemand == 0) continue;

        const auto hwChoice = problem_.hardware.find(rule->cls);
        const int count = hwChoice == problem_.hardware.end()
                              ? 1
                              : hwChoice->second.count;
        for (const auto& [model, hwVar] : clsIt->second) {
            const kb::HardwareSpec& spec = kb.hardware(model);
            const double attr = spec.numAttr(rule->attr).value_or(0.0);
            const std::int64_t capacity = static_cast<std::int64_t>(
                rule->pooled ? attr * count : attr);
            const std::int64_t bound = capacity - workloadDemand;
            const std::string description =
                "resource '" + resource + "': demands must fit " + model +
                " (capacity " + std::to_string(capacity) +
                (workloadDemand > 0
                     ? ", workloads use " + std::to_string(workloadDemand)
                     : "") +
                ")";
            if (bound < 0) {
                assertTracked(store_.mkNot(hwVar), description);
                continue;
            }
            if (terms.empty()) continue;
            assertTracked(
                store_.mkImplies(hwVar, store_.mkLinLeq(terms, bound)),
                description);
        }
    }
}

smt::NodeId Compilation::betterFormula(const std::string& objective,
                                       const std::string& from,
                                       const std::string& to) {
    // Enumerate simple paths from→to over the objective's orderings; the
    // per-category graphs are tiny (≤ ~12 nodes), so exhaustive DFS is fine.
    const kb::KnowledgeBase& kb = *problem_.kb;
    std::vector<const kb::Ordering*> edges = kb.orderingsFor(objective);

    std::vector<smt::NodeId> pathFormulas;
    std::vector<const kb::Ordering*> pathEdges;
    std::set<std::string> visited;

    const std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
            if (node == to) {
                std::vector<smt::NodeId> conds;
                for (const kb::Ordering* e : pathEdges)
                    conds.push_back(compileRequirement(e->condition));
                pathFormulas.push_back(store_.mkAnd(std::move(conds)));
                return;
            }
            visited.insert(node);
            for (const kb::Ordering* e : edges) {
                if (e->better != node || visited.count(e->worse) > 0) continue;
                pathEdges.push_back(e);
                dfs(e->worse);
                pathEdges.pop_back();
            }
            visited.erase(node);
        };
    dfs(from);
    return store_.mkOr(std::move(pathFormulas));
}

void Compilation::buildBandwidthRules() {
    if (!problem_.commonSenseRules) return;
    const kb::KnowledgeBase& kb = *problem_.kb;
    const WorkloadAggregates agg = aggregateWorkloads(problem_.workloads);

    // Aggregate NIC bandwidth must cover the workloads' peak bandwidth.
    const auto nicIt = hardwareVars_.find(kb::HardwareClass::Nic);
    if (nicIt != hardwareVars_.end() && agg.totalGbps > 0) {
        const auto hwChoice = problem_.hardware.find(kb::HardwareClass::Nic);
        const int count =
            hwChoice == problem_.hardware.end() ? 1 : hwChoice->second.count;
        for (const auto& [model, var] : nicIt->second) {
            const double bw =
                kb.hardware(model).numAttr(kb::kAttrPortBandwidthGbps).value_or(0);
            if (bw * count < agg.totalGbps)
                assertTracked(store_.mkNot(var),
                              "common-sense: " + std::to_string(count) + "x " +
                                  model + " cannot carry the workloads' " +
                                  std::to_string(static_cast<long long>(
                                      agg.totalGbps)) +
                                  " Gbps peak");
        }
    }

    // Switch ports must be at least as fast as the NICs they face.
    const auto swIt = hardwareVars_.find(kb::HardwareClass::Switch);
    if (nicIt != hardwareVars_.end() && swIt != hardwareVars_.end()) {
        for (const auto& [nicModel, nicVar] : nicIt->second) {
            const double nicBw = kb.hardware(nicModel)
                                     .numAttr(kb::kAttrPortBandwidthGbps)
                                     .value_or(0);
            std::vector<smt::NodeId> fastEnough;
            for (const auto& [swModel, swVar] : swIt->second) {
                const double swBw = kb.hardware(swModel)
                                        .numAttr(kb::kAttrPortBandwidthGbps)
                                        .value_or(0);
                if (swBw >= nicBw) fastEnough.push_back(swVar);
            }
            assertTracked(
                store_.mkImplies(nicVar, store_.mkOr(std::move(fastEnough))),
                "common-sense: switch ports must be at least as fast as " +
                    nicModel);
        }
    }
}

void Compilation::buildPerformanceBounds() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    for (const kb::Workload& w : problem_.workloads) {
        for (const kb::PerformanceBound& bound : w.bounds) {
            const kb::System* baseline = kb.findSystem(bound.betterThanSystem);
            if (baseline == nullptr) {
                util::logAt(util::LogLevel::Warn, "performance bound for '",
                            w.name, "' references unknown system '",
                            bound.betterThanSystem, "'");
                continue;
            }
            const kb::Category category = baseline->category;
            std::vector<smt::NodeId> categoryVars;
            for (const kb::System* s : kb.byCategory(category)) {
                const smt::NodeId sysVar = systemVars_.at(s->name);
                categoryVars.push_back(sysVar);
                if (s->name == baseline->name) {
                    assertTracked(store_.mkNot(sysVar),
                                  "performance bound (" + w.name + "): " +
                                      s->name + " itself is not better than " +
                                      baseline->name + " on " + bound.objective);
                    continue;
                }
                const smt::NodeId better =
                    betterFormula(bound.objective, s->name, baseline->name);
                const smt::NodeId worse =
                    betterFormula(bound.objective, baseline->name, s->name);
                assertTracked(
                    store_.mkImplies(sysVar,
                                     store_.mkAnd(better, store_.mkNot(worse))),
                    "performance bound (" + w.name + "): " + s->name +
                        " must beat " + baseline->name + " on " + bound.objective);
            }
            assertTracked(store_.mkOr(std::move(categoryVars)),
                          "performance bound (" + w.name + "): a " +
                              toString(category) + " system is required to beat " +
                              baseline->name + " on " + bound.objective);
        }
    }
}

void Compilation::buildPins() {
    for (const auto& [name, include] : problem_.pinnedSystems) {
        const auto it = systemVars_.find(name);
        expects(it != systemVars_.end(), "Compilation: pinned unknown system " + name);
        if (include)
            assertTracked(it->second, "pinned: " + name + " is already deployed");
        else
            assertTracked(store_.mkNot(it->second),
                          "pinned: " + name + " must not be deployed");
    }
    for (const auto& [name, enabled] : problem_.pinnedOptions) {
        const smt::NodeId v = optionVars_.at(name);
        assertTracked(enabled ? v : store_.mkNot(v),
                      std::string("pinned option: ") + name + " = " +
                          (enabled ? "on" : "off"));
    }
}

void Compilation::buildBudgets() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    const auto addBudget = [&](double limit, bool isCost) {
        // Models within a class are exactly-one: tag terms with the class as
        // their exclusivity group so the counting encoding stays linear.
        std::vector<smt::LinTerm> terms;
        for (const auto& [cls, models] : hardwareVars_) {
            const auto hwChoice = problem_.hardware.find(cls);
            const int count =
                hwChoice == problem_.hardware.end() ? 1 : hwChoice->second.count;
            for (const auto& [model, var] : models) {
                const kb::HardwareSpec& spec = kb.hardware(model);
                const double per = isCost ? spec.unitCostUsd : spec.maxPowerW;
                const auto amount =
                    static_cast<std::int64_t>(std::llround(per * count));
                if (amount > 0)
                    terms.push_back({amount, var, false, static_cast<int>(cls)});
            }
        }
        const auto bound = static_cast<std::int64_t>(std::llround(limit));
        assertTracked(store_.mkLinLeq(std::move(terms), bound),
                      std::string("budget: total hardware ") +
                          (isCost ? "cost" : "power") + " must not exceed " +
                          std::to_string(bound) + (isCost ? " USD" : " W"));
    };
    if (problem_.maxHardwareCostUsd.has_value())
        addBudget(*problem_.maxHardwareCostUsd, /*isCost=*/true);
    if (problem_.maxPowerW.has_value()) addBudget(*problem_.maxPowerW, false);
}

void Compilation::buildExtraConstraint() {
    if (problem_.extraConstraint.isTrivial()) return;
    assertTracked(compileRequirement(problem_.extraConstraint),
                  "architect rule: " + problem_.extraConstraint.toString());
}

void Compilation::buildObjectives() {
    const kb::KnowledgeBase& kb = *problem_.kb;
    for (const std::string& objective : problem_.objectivePriority) {
        smt::ObjectiveSpec spec;
        spec.name = objective;

        if (objective == kb::kObjHardwareCost) {
            // Prefer cheaper hardware: pay (total cost in $100 units) for the
            // chosen model of each class. Models within a class are mutually
            // exclusive (exactly-one), so the penalties share a group and the
            // objective counter stays linear in the model count.
            for (const auto& [cls, models] : hardwareVars_) {
                const auto hwChoice = problem_.hardware.find(cls);
                const int count = hwChoice == problem_.hardware.end()
                                      ? 1
                                      : hwChoice->second.count;
                for (const auto& [model, var] : models) {
                    const auto weight = static_cast<std::int64_t>(std::llround(
                        kb.hardware(model).unitCostUsd * count / 100.0));
                    if (weight > 0)
                        spec.softs.push_back({store_.mkNot(var), weight,
                                              static_cast<int>(cls)});
                }
            }
            objectives_.push_back(std::move(spec));
            continue;
        }

        // Ordering-derived softs: avoid deploying a system while an active
        // edge says something beats it ("don't pick a dominated system").
        for (const kb::Ordering* e : kb.orderingsFor(objective)) {
            const auto worseIt = systemVars_.find(e->worse);
            if (worseIt == systemVars_.end()) continue;
            const smt::NodeId cond = compileRequirement(e->condition);
            spec.softs.push_back(
                {store_.mkNot(store_.mkAnd(worseIt->second, cond)), 1});
        }
        // Category-presence hints (e.g. the monitoring objective wants some
        // monitoring system deployed at all).
        for (const ObjectiveCategoryHint& hint : kObjectiveHints) {
            if (objective != hint.objective) continue;
            std::vector<smt::NodeId> vars;
            for (const kb::System* s : kb.byCategory(hint.category))
                vars.push_back(systemVars_.at(s->name));
            if (!vars.empty())
                spec.softs.push_back(
                    {store_.mkOr(std::move(vars)), hint.presenceWeight});
        }
        // Capability hints: systems whose `solves` names the objective
        // directly improve it; prefer having one.
        std::vector<smt::NodeId> solvers;
        for (const kb::System* s : kb.solving(objective))
            solvers.push_back(systemVars_.at(s->name));
        if (!solvers.empty())
            spec.softs.push_back({store_.mkOr(std::move(solvers)), 3});

        objectives_.push_back(std::move(spec));
    }

    if (problem_.preferMinimalDesign) {
        // Implicit lowest-priority level: pay 1 per deployed system, so a
        // system only appears when a higher objective or a hard rule wants
        // it. Systems within a category are exactly-one-exclusive.
        smt::ObjectiveSpec spec;
        spec.name = "parsimony";
        for (const kb::System& s : kb.systems())
            spec.softs.push_back({store_.mkNot(systemVars_.at(s.name)), 1,
                                  1000 + static_cast<int>(s.category)});
        objectives_.push_back(std::move(spec));
    }
}

// ---------------------------------------------------------------------------
// Lookups and extraction
// ---------------------------------------------------------------------------

smt::NodeId Compilation::systemVar(const std::string& name) const {
    const auto it = systemVars_.find(name);
    return it == systemVars_.end() ? smt::kInvalidNode : it->second;
}

smt::NodeId Compilation::hardwareVar(kb::HardwareClass cls,
                                     const std::string& model) const {
    const auto clsIt = hardwareVars_.find(cls);
    if (clsIt == hardwareVars_.end()) return smt::kInvalidNode;
    const auto it = clsIt->second.find(model);
    return it == clsIt->second.end() ? smt::kInvalidNode : it->second;
}

smt::NodeId Compilation::optionVar(const std::string& name) const {
    const auto it = optionVars_.find(name);
    return it == optionVars_.end() ? smt::kInvalidNode : it->second;
}

Design Compilation::extractDesign(const smt::Backend& backend) const {
    const kb::KnowledgeBase& kb = *problem_.kb;
    Design design;
    for (const kb::System& s : kb.systems())
        if (backend.modelValue(systemVars_.at(s.name)))
            design.chosen[s.category] = s.name;
    for (const auto& [cls, models] : hardwareVars_) {
        for (const auto& [model, var] : models) {
            if (!backend.modelValue(var)) continue;
            design.hardwareModel[cls] = model;
            const auto hwChoice = problem_.hardware.find(cls);
            const int count =
                hwChoice == problem_.hardware.end() ? 1 : hwChoice->second.count;
            const kb::HardwareSpec& spec = kb.hardware(model);
            design.hardwareCostUsd += spec.unitCostUsd * count;
            design.powerW += spec.maxPowerW * count;
        }
    }
    for (const auto& [name, var] : optionVars_)
        if (backend.modelValue(var)) design.enabledOptions.insert(name);
    for (const auto& [name, var] : factVars_)
        if (backend.modelValue(var)) design.activeFacts.insert(name);

    // Resource accounting.
    const WorkloadAggregates agg = aggregateWorkloads(problem_.workloads);
    for (const kb::System& s : kb.systems()) {
        if (!design.uses(s.name)) continue;
        for (const kb::ResourceDemand& d : s.demands)
            design.resourceUsage[d.resource] +=
                d.amountFor(agg.totalKiloFlows, agg.totalGbps);
    }
    if (agg.totalPeakCores > 0)
        design.resourceUsage[kb::kResCores] += agg.totalPeakCores;
    for (const ResourceRule& rule : kResourceRules) {
        const auto modelIt = design.hardwareModel.find(rule.cls);
        if (modelIt == design.hardwareModel.end()) continue;
        const auto hwChoice = problem_.hardware.find(rule.cls);
        const int count =
            hwChoice == problem_.hardware.end() ? 1 : hwChoice->second.count;
        const double attr =
            kb.hardware(modelIt->second).numAttr(rule.attr).value_or(0.0);
        design.resourceCapacity[rule.resource] =
            static_cast<std::int64_t>(rule.pooled ? attr * count : attr);
    }
    return design;
}

smt::NodeId Compilation::blockingClause(const smt::Backend& backend,
                                        smt::FormulaStore& store) const {
    // Negate the projection of the current model onto systems + hardware.
    std::vector<smt::NodeId> flips;
    for (const auto& [name, var] : systemVars_)
        flips.push_back(backend.modelValue(var) ? store.mkNot(var) : var);
    for (const auto& [cls, models] : hardwareVars_)
        for (const auto& [model, var] : models)
            flips.push_back(backend.modelValue(var) ? store.mkNot(var) : var);
    return store.mkOr(std::move(flips));
}

// ---------------------------------------------------------------------------
// SolverSession
// ---------------------------------------------------------------------------

namespace {

/// Feeds one CDCL progress probe into the active obs span (a timestamped
/// sample under the backend's "check"/"optimize" span) and the global solver
/// histograms. Runs on the solving thread every progressEveryConflicts
/// conflicts, so it must stay allocation-light.
void recordSolverProgress(const sat::SolverProgress& p) {
    obs::sample("solver_progress",
                {{"conflicts", static_cast<double>(p.conflicts)},
                 {"propagations_per_sec", p.propagationsPerSec},
                 {"decision_level", static_cast<double>(p.decisionLevel)},
                 {"learnt_clauses", static_cast<double>(p.learntClauses)},
                 {"restarts", static_cast<double>(p.restarts)},
                 {"elapsed_ms", p.elapsedMs}});
    obs::Registry& reg = obs::Registry::global();
    static obs::Histogram& propRate = reg.histogram(
        "lar_solver_propagations_per_sec",
        "CDCL propagation rate sampled at progress probes",
        {1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8});
    static obs::Histogram& level = reg.histogram(
        "lar_solver_decision_level",
        "Decision level at progress probes",
        {5, 10, 20, 50, 100, 200, 500});
    static obs::Histogram& learnt = reg.histogram(
        "lar_solver_learnt_clauses",
        "Learnt-clause DB size at progress probes",
        {100, 300, 1000, 3000, 10000, 30000, 100000});
    propRate.observe(p.propagationsPerSec);
    level.observe(static_cast<double>(p.decisionLevel));
    learnt.observe(static_cast<double>(p.learntClauses));
}

} // namespace

SolverSession::SolverSession(std::shared_ptr<const Compilation> compilation,
                             const QueryOptions& options)
    : compilation_(std::move(compilation)), store_(compilation_->store()) {
    expects(compilation_ != nullptr, "SolverSession: null compilation");
    smt::BackendConfig config = options.backendConfig();
    if (config.progressEveryConflicts > 0) config.progressFn = &recordSolverProgress;
    backend_ = smt::makeBackend(options.backend, store_, config);
    const obs::Span span("encode");
    for (const Compilation::HardAssertion& hard : compilation_->hardAssertions())
        backend_->addHard(hard.formula, hard.track);
    // The replayed hard assertions are the snapshot baseline: state exported
    // now is sound in any other session over the same compilation.
    backend_->markSnapshotBaseline();
    if (options.warmStart != nullptr && !options.warmStart->empty()) {
        warmStartImported_ = backend_->importSnapshot(*options.warmStart);
        warmStarted_ = warmStartImported_ > 0;
    }
}

void SolverSession::blockCurrentDesign() {
    backend_->addHard(compilation_->blockingClause(*backend_, store_));
}

} // namespace lar::reason
