#include "reason/service_io.hpp"

#include <string>
#include <utility>

#include "reason/design.hpp"
#include "reason/problem_io.hpp"
#include "util/error.hpp"

namespace lar::reason {

QueryOptions queryOptionsFromJson(const json::Value& v,
                                  QueryOptions defaults) {
    const json::Object& obj = v.asObject();
    if (obj.contains("backend")) {
        const std::string& name = obj.at("backend").asString();
        if (name == "cdcl") defaults.backend = smt::BackendKind::Cdcl;
        else if (name == "z3") defaults.backend = smt::BackendKind::Z3;
        else throw ParseError("batch: unknown backend '" + name + "'");
    }
    if (obj.contains("seed"))
        defaults.seed = static_cast<std::uint64_t>(obj.at("seed").asInt());
    if (obj.contains("timeout_ms"))
        defaults.timeoutMs = static_cast<int>(obj.at("timeout_ms").asInt());
    if (obj.contains("conflict_budget"))
        defaults.conflictBudget = obj.at("conflict_budget").asInt();
    if (obj.contains("propagation_budget"))
        defaults.propagationBudget = obj.at("propagation_budget").asInt();
    if (obj.contains("memory_budget_mb"))
        defaults.memoryBudgetMb = obj.at("memory_budget_mb").asInt();
    if (obj.contains("trace")) defaults.collectTrace = obj.at("trace").asBool();
    if (obj.contains("progress_every_conflicts"))
        defaults.progressEveryConflicts =
            static_cast<int>(obj.at("progress_every_conflicts").asInt());
    if (obj.contains("portfolio_workers"))
        defaults.portfolioWorkers =
            static_cast<int>(obj.at("portfolio_workers").asInt());
    return defaults;
}

QueryRequest queryRequestFromJson(const json::Value& v,
                                  const kb::KnowledgeBase& kb,
                                  const QueryOptions& defaults,
                                  std::size_t index) {
    const json::Object& obj = v.asObject();
    QueryRequest request;
    request.id = obj.contains("id") ? v.at("id").asString()
                                    : std::to_string(index);
    request.kind = obj.contains("kind")
                       ? queryKindFromString(v.at("kind").asString())
                       : QueryKind::Optimize;
    request.problem = problemFromJson(v.at("problem"), kb);
    if (obj.contains("max_designs"))
        request.maxDesigns = static_cast<int>(v.at("max_designs").asInt());
    request.options = queryOptionsFromJson(v, defaults);
    return request;
}

std::vector<QueryRequest> batchRequestsFromJson(const json::Value& doc,
                                                const kb::KnowledgeBase& kb,
                                                ServiceOptions* serviceOptions) {
    QueryOptions defaults;
    const json::Array* queries = nullptr;
    if (doc.isArray()) {
        queries = &doc.asArray();
    } else {
        if (doc.asObject().contains("options"))
            defaults = queryOptionsFromJson(doc.at("options"), defaults);
        if (doc.asObject().contains("service")) {
            if (serviceOptions == nullptr)
                throw ParseError(
                    "batch: a \"service\" block cannot reconfigure a running "
                    "server (set admission control on larserved's command "
                    "line instead)");
            const json::Object& svc = doc.at("service").asObject();
            if (svc.contains("max_queue_depth"))
                serviceOptions->maxQueueDepth = static_cast<std::size_t>(
                    svc.at("max_queue_depth").asInt());
            if (svc.contains("shed_policy")) {
                const std::string& policy = svc.at("shed_policy").asString();
                if (policy == "reject_new")
                    serviceOptions->shedPolicy = ShedPolicy::RejectNew;
                else if (policy == "drop_oldest")
                    serviceOptions->shedPolicy = ShedPolicy::DropOldest;
                else
                    throw ParseError("batch: unknown shed_policy '" + policy +
                                     "' (want reject_new or drop_oldest)");
            }
            if (svc.contains("max_attempts"))
                serviceOptions->retry.maxAttempts =
                    static_cast<int>(svc.at("max_attempts").asInt());
        }
        queries = &doc.at("queries").asArray();
    }

    std::vector<QueryRequest> requests;
    requests.reserve(queries->size());
    for (std::size_t i = 0; i < queries->size(); ++i)
        requests.push_back(queryRequestFromJson((*queries)[i], kb, defaults, i));
    return requests;
}

json::Value resultToJson(const QueryResult& r, bool includeTrace) {
    json::Value v;
    v["id"] = r.id;
    v["kind"] = toString(r.kind);
    // The historic boolean wire fields are derived from the authoritative
    // verdict here; their names and semantics are unchanged on the wire.
    v["verdict"] = std::string(verdictName(r.verdict));
    v["feasible"] = r.verdict == Verdict::Sat;
    if (gaveUp(r.verdict)) v["timed_out"] = true;
    if (r.verdict == Verdict::Shed) v["shed"] = true;
    if (r.verdict == Verdict::Cancelled) v["cancelled"] = true;
    if (r.retries > 0) v["retries"] = static_cast<std::int64_t>(r.retries);
    if (r.backendFellBack) v["backend_fallback"] = true;
    if (r.verdict == Verdict::Error) {
        json::Value detail;
        detail["kind"] = r.error.errorKind;
        detail["message"] = r.error.message;
        v["error"] = std::move(detail);
    }
    if (r.design.has_value()) v["design"] = toJson(*r.design);
    if (!r.designs.empty()) {
        json::Array designs;
        for (const Design& d : r.designs) designs.push_back(toJson(d));
        v["designs"] = json::Value(std::move(designs));
    }
    if (!r.conflictingRules.empty()) {
        json::Array rules;
        for (const std::string& rule : r.conflictingRules)
            rules.emplace_back(rule);
        v["conflicting_rules"] = json::Value(std::move(rules));
    }
    if (includeTrace) v["trace"] = toJson(r.trace);
    return v;
}

json::Value batchReportToJson(const std::vector<QueryResult>& results,
                              const std::vector<QueryRequest>& requests,
                              const Service& service) {
    expects(results.size() == requests.size(),
            "batchReportToJson: results/requests size mismatch");
    json::Array out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        out.push_back(resultToJson(results[i], requests[i].options.collectTrace));

    const CacheStats cache = service.cacheStats();
    json::Value report;
    report["results"] = json::Value(std::move(out));
    json::Value cacheJson;
    cacheJson["hits"] = static_cast<std::int64_t>(cache.hits);
    cacheJson["misses"] = static_cast<std::int64_t>(cache.misses);
    cacheJson["entries"] = static_cast<std::int64_t>(cache.entries);
    report["cache"] = std::move(cacheJson);
    report["workers"] = static_cast<std::int64_t>(service.workerCount());
    return report;
}

bool anyFailedOrInfeasible(const std::vector<QueryResult>& results) {
    for (const QueryResult& r : results) {
        // Shed and cancelled queries are reported but do not fail the batch
        // — the caller opted into admission control / cancellation. That
        // leaves Error and Unsat as the failing verdicts (gaveUp covers
        // Cancelled alongside TimedOut/Unknown).
        if (r.verdict == Verdict::Error ||
            (r.verdict != Verdict::Sat && !gaveUp(r.verdict) &&
             r.verdict != Verdict::Shed))
            return true;
    }
    return false;
}

} // namespace lar::reason
