// Server-side what-if sessions with lease-based lifecycles.
//
// The paper's §5.1 workflow — change one pin, ask again — is answered
// in-process by WhatIfSession, but over HTTP every round-trip through
// /v1/query solved cold. SessionManager makes the session a first-class
// server resource: create() compiles (or cache-hits) the problem once and
// keeps a live WhatIfSession; ask() answers each variation through solver
// assumptions at incremental cost; close() (or lease expiry) tears it down.
//
// Lifecycle and safety:
//  * every session holds a lease; ask() and renew() extend it, and a sweep
//    thread evicts sessions whose lease expired (an abandoned client cannot
//    pin solver state forever);
//  * asks on one session serialize on a per-session mutex (the underlying
//    solver is single-threaded); asks on different sessions run freely in
//    parallel;
//  * an in-flight ask keeps its Session alive through a shared_ptr even if
//    the sweeper evicts it mid-solve — the ask completes normally, later
//    asks get "unknown session";
//  * create() respects admission control: it sheds when the Service is
//    draining or the session cap is reached;
//  * drain() flips every session's cancel flag (in-flight asks return
//    Verdict::Cancelled, never Error) and evicts everything.
//
// Warm-start coupling: create() seeds the session's solver from the
// Service's fingerprint-keyed snapshot cache, and close()/eviction exports
// the session's learnt state back into it — so the next session (or plain
// /v1/query) on the same problem starts warm.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "reason/service.hpp"
#include "reason/whatif.hpp"

namespace lar::reason {

struct SessionOptions {
    /// Lease granted at create() and re-granted by every ask()/renew().
    std::chrono::milliseconds leaseTtl{60'000};
    /// Idle-eviction sweep cadence.
    std::chrono::milliseconds sweepInterval{1'000};
    /// Max live sessions; create() sheds beyond this (0 = unbounded).
    std::size_t maxSessions = 64;
    /// Solver knobs for every session (backend, budgets, seed). The
    /// manager fills warmStart/cancelFlag itself.
    QueryOptions query;
};

class SessionManager {
public:
    /// Outcome of create(): `shed` set means no session was made (service
    /// draining or session cap hit) and `id` is empty.
    struct CreateResult {
        std::string id;
        bool shed = false;
        std::int64_t leaseTtlMs = 0;
        bool warmStarted = false;           ///< snapshot accepted at import
        std::size_t warmStartClauses = 0;   ///< clauses integrated from it
        double compileMs = 0.0;             ///< 0 ≈ compilation cache hit
        bool cacheHit = false;
    };

    /// Outcome of one ask (nullopt from ask() means unknown/expired id).
    struct AskOutcome {
        WhatIfAnswer answer;
        QueryTrace trace; ///< kind=Feasibility; stats cumulative per session
    };

    /// The Service provides the compilation cache, the warm-start snapshot
    /// cache, and the draining signal; it must outlive the manager.
    explicit SessionManager(Service& service,
                            const SessionOptions& options = {});
    ~SessionManager();

    SessionManager(const SessionManager&) = delete;
    SessionManager& operator=(const SessionManager&) = delete;

    /// Compiles (or cache-hits) `problem` and opens a session over it.
    /// The KB behind `problem` must outlive the session.
    [[nodiscard]] CreateResult create(const Problem& problem);

    /// Answers a variation on session `id`, renewing its lease. Returns
    /// nullopt when the id is unknown or already evicted. `traceId` is the
    /// request's end-to-end trace identity (stamped into the trace, the log
    /// lines, and the in-flight registry entry); `requestTrace` the HTTP
    /// layer's span collector for the ask's spans to join — both optional
    /// for direct library callers.
    [[nodiscard]] std::optional<AskOutcome> ask(
        const std::string& id, const Variation& variation,
        const std::string& traceId = "",
        std::shared_ptr<obs::Trace> requestTrace = nullptr);

    /// Extends the lease; false when the id is unknown.
    [[nodiscard]] bool renew(const std::string& id);

    /// Closes the session, exporting its learnt state into the Service's
    /// warm-start cache; false when the id is unknown.
    bool close(const std::string& id);

    /// Cancels in-flight asks and evicts every session (lease GC for
    /// server drain). Learnt state is still exported. Idempotent; the
    /// manager sheds creates once the Service drains.
    void drain();

    [[nodiscard]] std::size_t activeSessions() const;
    [[nodiscard]] const SessionOptions& options() const { return options_; }

    /// One row of GET /v1/debug/sessions: what an operator needs to tell a
    /// healthy session from a leaked one.
    struct SessionInfo {
        std::string id;
        std::uint64_t asks = 0;          ///< variations answered so far
        std::int64_t leaseRemainingMs = 0; ///< negative = past due, not swept yet
        bool warmStarted = false;
    };
    /// Live sessions, unspecified order.
    [[nodiscard]] std::vector<SessionInfo> list() const;

private:
    using Clock = std::chrono::steady_clock;

    struct Session {
        std::string id;
        std::unique_ptr<WhatIfSession> whatIf;
        std::mutex askMutex;             ///< serializes asks on this session
        std::atomic<bool> cancel{false}; ///< flipped by drain()
        Clock::time_point leaseExpiry;   ///< guarded by the manager mutex
        std::atomic<std::uint64_t> asks{0}; ///< answered so far (atomic: the
                                            ///< debug listing reads it without
                                            ///< taking askMutex)
    };

    [[nodiscard]] std::shared_ptr<Session> find(const std::string& id);
    /// Exports the session's solver state into the Service warm-start cache.
    void exportSnapshot(Session& session);
    void sweep();

    Service& service_;
    SessionOptions options_;

    mutable std::mutex mutex_; ///< guards sessions_, nextId_, lease expiries
    std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
    std::uint64_t nextId_ = 0;

    std::thread sweeper_;
    std::condition_variable sweepCv_;
    std::mutex sweepMutex_;
    bool stopping_ = false;
};

} // namespace lar::reason
