// The architect's design problem — what the reasoning engine solves.
//
// Bundles the knowledge base with the concrete question: available hardware
// (with pins for "I can't change my servers"), workloads (Listing 3),
// lexicographic objective priorities (Listing 3 line 10), required
// capabilities, pinned/forbidden systems ("I already deployed Sonata"),
// organization-specific extra rules, and budget caps.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kb/kb.hpp"
#include "kb/workload.hpp"

namespace lar::reason {

/// Hardware inventory for one class.
struct HardwareChoice {
    /// Candidate models (empty = every model of the class in the KB).
    std::vector<std::string> candidateModels;
    /// When set, the model is fixed (§5.1: "I can't change my servers").
    std::optional<std::string> pinnedModel;
    /// Units deployed (servers, switches, NICs).
    int count = 1;
};

struct Problem {
    const kb::KnowledgeBase* kb = nullptr;

    std::map<kb::HardwareClass, HardwareChoice> hardware;
    std::vector<kb::Workload> workloads;

    /// Lexicographic objective priority, most important first
    /// (e.g. {latency, hardware_cost, monitoring} per Listing 3).
    std::vector<std::string> objectivePriority;

    /// Capabilities some chosen system must provide (e.g. "capture_delays").
    std::vector<std::string> requiredCapabilities;

    /// Categories that must/may have a chosen system. Categories in neither
    /// set are excluded outright. Defaults set by makeDefaultProblem().
    std::set<kb::Category> requiredCategories;
    std::set<kb::Category> optionalCategories;

    /// Force-include (true) or forbid (false) specific systems.
    std::map<std::string, bool> pinnedSystems;
    /// Pin derived facts (e.g. environment already floods Ethernet frames).
    std::map<std::string, bool> pinnedFacts;
    /// Pin free deployment options (e.g. pony_enabled).
    std::map<std::string, bool> pinnedOptions;

    /// Organization-specific subjective rule (§3.1).
    kb::Requirement extraConstraint;

    std::optional<double> maxHardwareCostUsd;
    std::optional<double> maxPowerW;

    /// §3.4 common-sense rule pack (stack/CC mandatory, hardware everywhere,
    /// NIC bandwidth covers workload peaks, switch ports match NIC speeds).
    bool commonSenseRules = true;
    /// Append an implicit lowest-priority objective that minimizes the
    /// number of deployed systems, so optional categories are only filled
    /// when some higher objective wants them.
    bool preferMinimalDesign = true;
    /// §3.1 sharp-deadline rule: research prototypes are not deployable.
    bool forbidResearchGrade = false;
};

/// A problem with the usual defaults: all hardware classes available, the
/// common-sense category split (network stack + congestion control required;
/// monitoring, firewall, virtual switch, load balancer, transport optional).
[[nodiscard]] Problem makeDefaultProblem(const kb::KnowledgeBase& kb);

/// Aggregate workload figures used to scale resource demands.
struct WorkloadAggregates {
    double totalKiloFlows = 0.0;
    double totalGbps = 0.0;
    std::int64_t totalPeakCores = 0;
};

[[nodiscard]] WorkloadAggregates aggregateWorkloads(
    const std::vector<kb::Workload>& workloads);

} // namespace lar::reason
