// The reasoning engine — the paper's §5.1 prototype, as a library.
//
// An Engine owns one compiled problem instance and answers the architect's
// queries on it: feasibility with rule-level conflict explanations (§6
// "Explainability"), synthesis, lexicographic optimization (Listing 3 line
// 10), and equivalence-class enumeration. Queries mutate solver state
// monotonically (optimization locks bounds), so use one Engine per logical
// query, or the free helper functions below which do that for you.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reason/compile.hpp"
#include "reason/design.hpp"
#include "reason/problem.hpp"

namespace lar::reason {

struct FeasibilityReport {
    bool feasible = false;
    /// When infeasible: human-readable descriptions of the clashing rules
    /// (from the backend's unsat core).
    std::vector<std::string> conflictingRules;
};

class Engine {
public:
    explicit Engine(const Problem& problem,
                    smt::BackendKind kind = smt::BackendKind::Cdcl);

    /// Is any compliant design possible? On failure, names the conflict.
    [[nodiscard]] FeasibilityReport checkFeasible();

    /// Like checkFeasible(), but on failure shrinks the conflict to a
    /// locally-minimal rule set by deletion: every rule left in the report
    /// is necessary (dropping it alone makes the rest satisfiable). This is
    /// the §6 "which of your requirements are in conflict" answer.
    [[nodiscard]] FeasibilityReport explainMinimalConflict();

    /// Any compliant design (no optimization).
    [[nodiscard]] std::optional<Design> synthesize();

    /// Lexicographically optimal design per Problem::objectivePriority.
    /// objectiveCosts in the result carries the per-level violation costs.
    [[nodiscard]] std::optional<Design> optimize();

    /// Representatives of distinct designs (projected on chosen systems and
    /// hardware), up to `maxDesigns`. When `optimizeFirst` is set, only
    /// designs in the *optimal* equivalence class are enumerated — the §6
    /// goal of returning classes instead of an arbitrary model.
    [[nodiscard]] std::vector<Design> enumerateDesigns(int maxDesigns,
                                                       bool optimizeFirst = false);

    [[nodiscard]] const Compilation& compilation() const { return *compilation_; }
    [[nodiscard]] const Problem& problem() const { return problem_; }

private:
    Problem problem_;
    std::unique_ptr<Compilation> compilation_;
};

// -- §5.1-style query helpers (fresh engine per call) -------------------------

/// Compares the optimal designs of two scenarios (e.g. with/without CXL
/// servers, or before/after adding workloads).
struct ScenarioComparison {
    std::optional<Design> a;
    std::optional<Design> b;
    /// Ripple-effect change list (empty when either side is infeasible).
    std::vector<std::string> changes;
};
[[nodiscard]] ScenarioComparison compareScenarios(
    const Problem& a, const Problem& b,
    smt::BackendKind kind = smt::BackendKind::Cdcl);

/// §5.1 query 2 ("keep Sonata unless there are huge benefits"): optimal
/// design with `system` pinned vs left free, with per-objective cost deltas
/// (positive delta = keeping the system costs that much more).
struct RetentionReport {
    std::optional<Design> keeping;
    std::optional<Design> free_;
    std::vector<std::int64_t> extraCostPerObjective;
    double extraHardwareCostUsd = 0.0;
    /// True when switching away wins by more than `threshold` at some
    /// objective level (checked most-important first).
    [[nodiscard]] bool worthSwitching(std::int64_t threshold) const;
};
[[nodiscard]] RetentionReport analyzeRetention(
    const Problem& problem, const std::string& system,
    smt::BackendKind kind = smt::BackendKind::Cdcl);

/// §3.1 value-of-information: would learning how `systemA` compares to
/// `systemB` on `objective` change the optimal design? If not, the
/// measurement is not worth running.
struct InformationValue {
    std::optional<Design> ifABetter;
    std::optional<Design> ifBBetter;
    bool changesDesign = false;
};
[[nodiscard]] InformationValue valueOfInformation(
    const Problem& problem, const std::string& objective,
    const std::string& systemA, const std::string& systemB,
    smt::BackendKind kind = smt::BackendKind::Cdcl);

/// §6: when the problem is under-specified, several designs tie at the
/// optimum. Each suggestion names a category whose choice is not pinned
/// down by the current knowledge + goals, with the tied contenders — the
/// minimal-effort input (an ordering, a pin) the architect could provide to
/// make the solution unique.
struct DisambiguationSuggestion {
    kb::Category category = kb::Category::NetworkStack;
    std::vector<std::string> contenders;
    std::string suggestion; ///< human-readable next step
};
[[nodiscard]] std::vector<DisambiguationSuggestion> suggestDisambiguation(
    const Problem& problem, int sampleDesigns = 8,
    smt::BackendKind kind = smt::BackendKind::Cdcl);

/// §3.1 breadth-first granularity refinement: encode coarsely first, refine
/// only where it matters. A refinement hint names a system the optimal
/// design *relies on* whose encoding is thin — no requirements, no resource
/// demands, or no orderings comparing it — so the architect knows where
/// detail pays off next.
struct RefinementHint {
    std::string system;
    std::vector<std::string> gaps; ///< e.g. "no deployment requirements"
};
[[nodiscard]] std::vector<RefinementHint> suggestRefinements(
    const Problem& problem, const Design& design);

} // namespace lar::reason
