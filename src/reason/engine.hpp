// The reasoning engine — the paper's §5.1 prototype, as a library.
//
// An Engine binds a compiled problem instance (owned or shared, e.g. from
// the Service's compilation cache) and answers the architect's queries on
// it: feasibility with rule-level conflict explanations (§6
// "Explainability"), synthesis, lexicographic optimization (Listing 3 line
// 10), and equivalence-class enumeration.
//
// Reentrancy contract: every query method acquires a fresh SolverSession
// from the compilation, so queries are independent — optimize() followed by
// synthesize() on the same Engine no longer sees locked optimization
// bounds, and the same Engine can be reused for any number of queries. The
// Engine itself is not thread-safe (lastSolveStats() is per-engine mutable
// state); to run queries concurrently, give each thread its own Engine over
// the same shared Compilation — that is exactly what reason::Service does.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reason/compile.hpp"
#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "reason/query_options.hpp"

namespace lar::reason {

struct FeasibilityReport {
    bool feasible = false;
    /// The solver gave up (QueryOptions::timeoutMs exhausted) before
    /// reaching a verdict; `feasible` is false but means "unknown".
    bool timedOut = false;
    /// When infeasible: human-readable descriptions of the clashing rules
    /// (from the backend's unsat core).
    std::vector<std::string> conflictingRules;
};

class Engine {
public:
    /// Compiles `problem` and binds the engine to it.
    explicit Engine(const Problem& problem, const QueryOptions& options = {});

    /// Binds the engine to an already-compiled (possibly cached, possibly
    /// shared across engines) problem instance.
    explicit Engine(std::shared_ptr<const Compilation> compilation,
                    const QueryOptions& options = {});


    /// Is any compliant design possible? On failure, names the conflict.
    [[nodiscard]] FeasibilityReport checkFeasible();

    /// Like checkFeasible(), but on failure shrinks the conflict to a
    /// locally-minimal rule set by deletion: every rule left in the report
    /// is necessary (dropping it alone makes the rest satisfiable). This is
    /// the §6 "which of your requirements are in conflict" answer.
    [[nodiscard]] FeasibilityReport explainMinimalConflict();

    /// Any compliant design (no optimization).
    [[nodiscard]] std::optional<Design> synthesize();

    /// Lexicographically optimal design per Problem::objectivePriority.
    /// objectiveCosts in the result carries the per-level violation costs.
    [[nodiscard]] std::optional<Design> optimize();

    /// Representatives of distinct designs (projected on chosen systems and
    /// hardware), up to `maxDesigns`. When `optimizeFirst` is set, only
    /// designs in the *optimal* equivalence class are enumerated — the §6
    /// goal of returning classes instead of an arbitrary model.
    [[nodiscard]] std::vector<Design> enumerateDesigns(int maxDesigns,
                                                       bool optimizeFirst = false);

    /// Backend statistics accumulated by the most recent query method call
    /// (conflicts/decisions/propagations; exact for CDCL, best-effort for
    /// Z3). Zeroed stats before the first query.
    [[nodiscard]] const sat::SolverStats& lastSolveStats() const {
        return lastStats_;
    }

    /// True when the most recent query method returned without an answer
    /// because the solver gave up (deadline, conflict/propagation/memory
    /// budget, or cancellation) — i.e. "no design" meant Unknown, not a
    /// proven verdict. Results that did produce an answer (possibly
    /// best-effort, e.g. an interrupted optimize() that found a model)
    /// leave this false. The Service retry policy keys off this.
    [[nodiscard]] bool lastQueryUnknown() const { return lastUnknown_; }

    /// Portfolio race figures of the most recent query method call, when the
    /// query ran with QueryOptions::portfolioWorkers > 1 on the CDCL
    /// backend; std::nullopt for single-worker queries.
    [[nodiscard]] const std::optional<smt::PortfolioStats>& lastPortfolioStats()
        const {
        return lastPortfolio_;
    }

    /// Why the most recent query stopped without a definitive verdict
    /// (StopReason::None when lastQueryUnknown() is false): distinguishes
    /// deadline expiry from conflict/propagation/memory budgets and
    /// cancellation.
    [[nodiscard]] sat::StopReason lastStopReason() const {
        return lastStopReason_;
    }

    /// Warm-start snapshot exported from the most recent query's session —
    /// only when QueryOptions::captureSnapshot was set AND the session's
    /// clause DB still equalled the replay baseline (check/core queries
    /// qualify; optimize/enumerate grow clauses and refuse). nullptr
    /// otherwise.
    [[nodiscard]] const std::shared_ptr<const sat::SolverSnapshot>&
    lastSnapshot() const {
        return lastSnapshot_;
    }

    /// Clauses the most recent query's session integrated from
    /// QueryOptions::warmStart (0 = cold start or refused import).
    [[nodiscard]] std::size_t lastWarmStartImported() const {
        return lastWarmStartImported_;
    }

    [[nodiscard]] const QueryOptions& options() const { return options_; }
    [[nodiscard]] const Compilation& compilation() const { return *compilation_; }
    /// The compilation as a shareable handle (e.g. to seed another Engine).
    [[nodiscard]] std::shared_ptr<const Compilation> sharedCompilation() const {
        return compilation_;
    }
    [[nodiscard]] const Problem& problem() const {
        return compilation_->problem();
    }

private:
    [[nodiscard]] SolverSession newSession() const {
        return SolverSession(compilation_, options_);
    }
    /// Reads per-session telemetry (stop reason, warm-start figures, the
    /// optional exported snapshot) into the last* members. Called by every
    /// query method after its final backend call.
    void captureSessionTelemetry(const SolverSession& session);

    std::shared_ptr<const Compilation> compilation_;
    QueryOptions options_;
    sat::SolverStats lastStats_;
    bool lastUnknown_ = false;
    std::optional<smt::PortfolioStats> lastPortfolio_;
    sat::StopReason lastStopReason_ = sat::StopReason::None;
    std::shared_ptr<const sat::SolverSnapshot> lastSnapshot_;
    std::size_t lastWarmStartImported_ = 0;
};

// -- §5.1-style query helpers (compile + solve per call) ----------------------

/// Compares the optimal designs of two scenarios (e.g. with/without CXL
/// servers, or before/after adding workloads).
struct ScenarioComparison {
    std::optional<Design> a;
    std::optional<Design> b;
    /// Ripple-effect change list (empty when either side is infeasible).
    std::vector<std::string> changes;
};
[[nodiscard]] ScenarioComparison compareScenarios(const Problem& a,
                                                  const Problem& b,
                                                  const QueryOptions& options = {});
/// §5.1 query 2 ("keep Sonata unless there are huge benefits"): optimal
/// design with `system` pinned vs left unpinned, with per-objective cost
/// deltas (positive delta = keeping the system costs that much more).
struct RetentionReport {
    std::optional<Design> keeping;
    std::optional<Design> unpinned;
    std::vector<std::int64_t> extraCostPerObjective;
    double extraHardwareCostUsd = 0.0;
    /// True when switching away wins by more than `threshold` at some
    /// objective level (checked most-important first).
    [[nodiscard]] bool worthSwitching(std::int64_t threshold) const;
};
[[nodiscard]] RetentionReport analyzeRetention(const Problem& problem,
                                               const std::string& system,
                                               const QueryOptions& options = {});
/// §3.1 value-of-information: would learning how `systemA` compares to
/// `systemB` on `objective` change the optimal design? If not, the
/// measurement is not worth running.
struct InformationValue {
    std::optional<Design> ifABetter;
    std::optional<Design> ifBBetter;
    bool changesDesign = false;
};
[[nodiscard]] InformationValue valueOfInformation(
    const Problem& problem, const std::string& objective,
    const std::string& systemA, const std::string& systemB,
    const QueryOptions& options = {});
/// §6: when the problem is under-specified, several designs tie at the
/// optimum. Each suggestion names a category whose choice is not pinned
/// down by the current knowledge + goals, with the tied contenders — the
/// minimal-effort input (an ordering, a pin) the architect could provide to
/// make the solution unique.
struct DisambiguationSuggestion {
    kb::Category category = kb::Category::NetworkStack;
    std::vector<std::string> contenders;
    std::string suggestion; ///< human-readable next step
};
[[nodiscard]] std::vector<DisambiguationSuggestion> suggestDisambiguation(
    const Problem& problem, int sampleDesigns = 8,
    const QueryOptions& options = {});
/// §3.1 breadth-first granularity refinement: encode coarsely first, refine
/// only where it matters. A refinement hint names a system the optimal
/// design *relies on* whose encoding is thin — no requirements, no resource
/// demands, or no orderings comparing it — so the architect knows where
/// detail pays off next.
struct RefinementHint {
    std::string system;
    std::vector<std::string> gaps; ///< e.g. "no deployment requirements"
};
[[nodiscard]] std::vector<RefinementHint> suggestRefinements(
    const Problem& problem, const Design& design);

} // namespace lar::reason
