#include "reason/trace.hpp"

#include "util/error.hpp"

namespace lar::reason {

std::string toString(QueryKind kind) {
    switch (kind) {
        case QueryKind::Feasibility: return "feasible";
        case QueryKind::Explain: return "explain";
        case QueryKind::Synthesize: return "synthesize";
        case QueryKind::Optimize: return "optimize";
        case QueryKind::Enumerate: return "enumerate";
    }
    return "unknown";
}

QueryKind queryKindFromString(const std::string& s) {
    if (s == "feasible" || s == "feasibility") return QueryKind::Feasibility;
    if (s == "explain") return QueryKind::Explain;
    if (s == "synthesize") return QueryKind::Synthesize;
    if (s == "optimize") return QueryKind::Optimize;
    if (s == "enumerate") return QueryKind::Enumerate;
    throw ParseError("unknown query kind: '" + s + "'");
}

const char* verdictName(Verdict verdict) {
    switch (verdict) {
        case Verdict::Sat: return "sat";
        case Verdict::Unsat: return "unsat";
        case Verdict::Unknown: return "unknown";
        case Verdict::TimedOut: return "timed_out";
        case Verdict::Cancelled: return "cancelled";
        case Verdict::Shed: return "shed";
        case Verdict::Error: return "error";
    }
    return "unknown";
}

std::optional<Verdict> verdictFromName(std::string_view name) {
    if (name == "sat") return Verdict::Sat;
    if (name == "unsat") return Verdict::Unsat;
    if (name == "unknown") return Verdict::Unknown;
    if (name == "timed_out") return Verdict::TimedOut;
    if (name == "cancelled") return Verdict::Cancelled;
    if (name == "shed") return Verdict::Shed;
    if (name == "error") return Verdict::Error;
    return std::nullopt;
}

json::Value toJson(const QueryTrace& trace) {
    json::Value v;
    v["schema"] = static_cast<std::int64_t>(kQueryTraceSchemaVersion);
    v["id"] = trace.id;
    if (!trace.traceId.empty()) v["trace_id"] = trace.traceId;
    v["kind"] = toString(trace.kind);
    v["backend"] = trace.backend == smt::BackendKind::Z3 ? "z3" : "cdcl";
    v["cache_hit"] = trace.cacheHit;
    v["compile_ms"] = trace.compileMs;
    v["solve_ms"] = trace.solveMs;
    v["total_ms"] = trace.totalMs;
    v["verdict"] = std::string(verdictName(trace.verdict));
    if (!trace.verdictDetail.empty()) v["verdict_detail"] = trace.verdictDetail;
    // Legacy v3 booleans, derived from the verdict (kept for one release).
    v["timed_out"] = trace.verdict == Verdict::TimedOut ||
                     trace.verdict == Verdict::Unknown ||
                     trace.verdict == Verdict::Cancelled;
    v["queue_wait_ms"] = trace.queueWaitMs;
    v["shed"] = trace.verdict == Verdict::Shed;
    v["cancelled"] = trace.verdict == Verdict::Cancelled;
    v["retries"] = static_cast<std::int64_t>(trace.retries);
    v["backend_fallback"] = trace.backendFellBack;
    if (trace.stopReason != sat::StopReason::None)
        v["stop_reason"] = std::string(sat::toString(trace.stopReason));
    if (trace.warmStartAttempted) {
        json::Value warm;
        warm["used"] = trace.warmStartClauses > 0;
        warm["clauses"] = static_cast<std::int64_t>(trace.warmStartClauses);
        v["warm_start"] = std::move(warm);
    }
    if (trace.portfolioWorkers > 1) {
        json::Value portfolio;
        portfolio["workers"] = static_cast<std::int64_t>(trace.portfolioWorkers);
        portfolio["winner"] = trace.portfolioWinner;
        portfolio["shared"] = static_cast<std::int64_t>(trace.portfolioShared);
        portfolio["imported"] = static_cast<std::int64_t>(trace.portfolioImported);
        portfolio["lost"] = static_cast<std::int64_t>(trace.portfolioLost);
        portfolio["cancel_ms"] = trace.portfolioCancelMs;
        v["portfolio"] = std::move(portfolio);
    }
    if (!trace.errorKind.empty()) {
        json::Value error;
        error["kind"] = trace.errorKind;
        error["message"] = trace.errorMessage;
        v["error"] = std::move(error);
    }
    json::Value stats;
    stats["decisions"] = static_cast<std::int64_t>(trace.stats.decisions);
    stats["propagations"] = static_cast<std::int64_t>(trace.stats.propagations);
    stats["conflicts"] = static_cast<std::int64_t>(trace.stats.conflicts);
    stats["restarts"] = static_cast<std::int64_t>(trace.stats.restarts);
    stats["solves"] = static_cast<std::int64_t>(trace.stats.solves);
    stats["max_decision_level"] =
        static_cast<std::int64_t>(trace.stats.maxDecisionLevel);
    stats["binary_clauses"] = static_cast<std::int64_t>(trace.stats.binaryClauses);
    stats["lbd_sum"] = static_cast<std::int64_t>(trace.stats.lbdSum);
    v["stats"] = std::move(stats);
    if (trace.stats.simplifyRounds > 0) {
        json::Value simplify;
        simplify["rounds"] =
            static_cast<std::int64_t>(trace.stats.simplifyRounds);
        simplify["subsumed"] =
            static_cast<std::int64_t>(trace.stats.subsumedClauses);
        simplify["strengthened"] =
            static_cast<std::int64_t>(trace.stats.strengthenedClauses);
        simplify["vivified"] =
            static_cast<std::int64_t>(trace.stats.vivifiedClauses);
        simplify["probes"] =
            static_cast<std::int64_t>(trace.stats.probedLiterals);
        simplify["failed_literals"] =
            static_cast<std::int64_t>(trace.stats.failedLiterals);
        simplify["hyper_binaries"] =
            static_cast<std::int64_t>(trace.stats.hyperBinaries);
        simplify["equivalent_literals"] =
            static_cast<std::int64_t>(trace.stats.equivalentLiterals);
        simplify["eliminated_vars"] =
            static_cast<std::int64_t>(trace.stats.eliminatedVars);
        simplify["restored_vars"] =
            static_cast<std::int64_t>(trace.stats.restoredVars);
        simplify["time_ms"] = trace.stats.simplifyMs;
        if (trace.stats.lastSimplifyStop != sat::SimplifyStop::None)
            simplify["stop_reason"] =
                std::string(sat::toString(trace.stats.lastSimplifyStop));
        v["simplify"] = std::move(simplify);
    }
    if (trace.spans) {
        v["spans"] = trace.spans->toJson();
        if (trace.spans->truncated()) v["spans_truncated"] = true;
    }
    return v;
}

json::Value toJson(const std::vector<QueryTrace>& traces) {
    json::Array arr;
    arr.reserve(traces.size());
    for (const QueryTrace& t : traces) arr.push_back(toJson(t));
    return json::Value(std::move(arr));
}

} // namespace lar::reason
