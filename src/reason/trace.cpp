#include "reason/trace.hpp"

#include "util/error.hpp"

namespace lar::reason {

std::string toString(QueryKind kind) {
    switch (kind) {
        case QueryKind::Feasibility: return "feasible";
        case QueryKind::Explain: return "explain";
        case QueryKind::Synthesize: return "synthesize";
        case QueryKind::Optimize: return "optimize";
        case QueryKind::Enumerate: return "enumerate";
    }
    return "unknown";
}

QueryKind queryKindFromString(const std::string& s) {
    if (s == "feasible" || s == "feasibility") return QueryKind::Feasibility;
    if (s == "explain") return QueryKind::Explain;
    if (s == "synthesize") return QueryKind::Synthesize;
    if (s == "optimize") return QueryKind::Optimize;
    if (s == "enumerate") return QueryKind::Enumerate;
    throw ParseError("unknown query kind: '" + s + "'");
}

json::Value toJson(const QueryTrace& trace) {
    json::Value v;
    v["schema"] = static_cast<std::int64_t>(kQueryTraceSchemaVersion);
    v["id"] = trace.id;
    v["kind"] = toString(trace.kind);
    v["backend"] = trace.backend == smt::BackendKind::Z3 ? "z3" : "cdcl";
    v["cache_hit"] = trace.cacheHit;
    v["compile_ms"] = trace.compileMs;
    v["solve_ms"] = trace.solveMs;
    v["total_ms"] = trace.totalMs;
    v["verdict"] = trace.verdict;
    v["queue_wait_ms"] = trace.queueWaitMs;
    v["shed"] = trace.shed;
    v["cancelled"] = trace.cancelled;
    v["retries"] = static_cast<std::int64_t>(trace.retries);
    v["backend_fallback"] = trace.backendFellBack;
    if (!trace.errorKind.empty()) {
        json::Value error;
        error["kind"] = trace.errorKind;
        error["message"] = trace.errorMessage;
        v["error"] = std::move(error);
    }
    json::Value stats;
    stats["decisions"] = static_cast<std::int64_t>(trace.stats.decisions);
    stats["propagations"] = static_cast<std::int64_t>(trace.stats.propagations);
    stats["conflicts"] = static_cast<std::int64_t>(trace.stats.conflicts);
    stats["restarts"] = static_cast<std::int64_t>(trace.stats.restarts);
    stats["solves"] = static_cast<std::int64_t>(trace.stats.solves);
    stats["max_decision_level"] =
        static_cast<std::int64_t>(trace.stats.maxDecisionLevel);
    stats["binary_clauses"] = static_cast<std::int64_t>(trace.stats.binaryClauses);
    stats["lbd_sum"] = static_cast<std::int64_t>(trace.stats.lbdSum);
    v["stats"] = std::move(stats);
    if (trace.spans) v["spans"] = trace.spans->toJson();
    return v;
}

json::Value toJson(const std::vector<QueryTrace>& traces) {
    json::Array arr;
    arr.reserve(traces.size());
    for (const QueryTrace& t : traces) arr.push_back(toJson(t));
    return json::Value(std::move(arr));
}

} // namespace lar::reason
