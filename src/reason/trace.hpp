// Per-query observability records.
//
// Every query the Service answers produces a QueryTrace: what was asked,
// which backend answered, whether the compilation cache hit, how the time
// split between compile and solve, and the solver's search counters. Traces
// serialize to JSON so `larctl batch` output and bench logs can be fed to
// whatever dashboards a deployment already has.
#pragma once

#include <string>
#include <vector>

#include "json/value.hpp"
#include "sat/solver.hpp"
#include "smt/backend.hpp"

namespace lar::reason {

/// The query shapes the Service answers (Engine methods, by name).
enum class QueryKind { Feasibility, Explain, Synthesize, Optimize, Enumerate };

[[nodiscard]] std::string toString(QueryKind kind);
/// Parses "feasible"/"explain"/"synthesize"/"optimize"/"enumerate".
/// Throws ParseError on anything else.
[[nodiscard]] QueryKind queryKindFromString(const std::string& s);

struct QueryTrace {
    std::string id;                              ///< caller-supplied query id
    QueryKind kind = QueryKind::Optimize;
    smt::BackendKind backend = smt::BackendKind::Cdcl;
    bool cacheHit = false;  ///< compilation served from the Service cache
    double compileMs = 0.0; ///< problem → formulas (0 ≈ cache hit)
    double solveMs = 0.0;   ///< backend construction + search
    double totalMs = 0.0;
    std::string verdict; ///< "sat" / "unsat" / "unknown" / "N designs"
    sat::SolverStats stats; ///< search counters (exact CDCL, best-effort Z3)
};

[[nodiscard]] json::Value toJson(const QueryTrace& trace);
/// JSON array of toJson(trace) records.
[[nodiscard]] json::Value toJson(const std::vector<QueryTrace>& traces);

} // namespace lar::reason
