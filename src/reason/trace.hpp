// Per-query observability records.
//
// Every query the Service answers produces a QueryTrace: what was asked,
// which backend answered, whether the compilation cache hit, how the time
// split between compile and solve, and the solver's search counters. Traces
// serialize to JSON so `larctl batch` output and bench logs can be fed to
// whatever dashboards a deployment already has.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/value.hpp"
#include "obs/span.hpp"
#include "sat/solver.hpp"
#include "smt/backend.hpp"

namespace lar::reason {

/// Version of the toJson(QueryTrace) schema, emitted as "schema". Bump on
/// any incompatible change; additive fields keep the version. The full
/// schema is documented in DESIGN.md ("QueryTrace JSON schema").
/// v3 adds the robustness fields: queue_wait_ms, shed, cancelled, retries,
/// backend_fallback, and the error object.
/// v4 unifies the outcome into one "verdict" enum string (plus
/// "verdict_detail"), keeps the legacy booleans ("timed_out", "shed",
/// "cancelled") derived from it for one release, and adds the "portfolio"
/// object when the query raced more than one solver configuration.
/// v5 adds the "warm_start" object (present when a snapshot import was
/// attempted) and "stop_reason" (why a non-definitive query stopped).
/// v6 adds "trace_id" (the request's 128-bit end-to-end trace identity,
/// shared with the http_request/query_done log lines and the response
/// envelope) and "spans_truncated" (the span tree hit its per-trace cap
/// and dropped spans — present only when true).
/// v7 adds the "simplify" object (present when the solver ran at least one
/// inprocessing round): rounds, per-technique removed/strengthened counts
/// (subsumed, strengthened, vivified, probes, failed_literals,
/// hyper_binaries, equivalent_literals, eliminated_vars, restored_vars),
/// time_ms, and — when the latest round halted on its budget —
/// "stop_reason" ("ticks" or "memory").
inline constexpr int kQueryTraceSchemaVersion = 7;

/// The query shapes the Service answers (Engine methods, by name).
enum class QueryKind { Feasibility, Explain, Synthesize, Optimize, Enumerate };

[[nodiscard]] std::string toString(QueryKind kind);
/// Parses "feasible"/"explain"/"synthesize"/"optimize"/"enumerate".
/// Throws ParseError on anything else.
[[nodiscard]] QueryKind queryKindFromString(const std::string& s);

/// The single authoritative outcome of a query (QueryResult::verdict,
/// QueryTrace::verdict). Exactly one holds per query:
///  * Sat       — a model/design/optimum was found;
///  * Unsat     — proven infeasible (conflictingRules/cores may be filled);
///  * Unknown   — a non-deadline budget (conflicts/propagations/memory)
///                gave out, retries included;
///  * TimedOut  — the end-to-end deadline (QueryOptions::timeoutMs) expired;
///  * Cancelled — QueryOptions::cancelFlag was observed;
///  * Shed      — rejected/dropped by admission control, never solved;
///  * Error     — the query threw (see QueryError / trace error object).
enum class Verdict { Sat, Unsat, Unknown, TimedOut, Cancelled, Shed, Error };

/// Stable lowercase name: "sat", "unsat", "unknown", "timed_out",
/// "cancelled", "shed", "error".
[[nodiscard]] const char* verdictName(Verdict verdict);

/// True when the query gave up without a proven verdict: deadline expiry,
/// budget exhaustion, or cancellation. This is the exact meaning the historic
/// `timed_out` wire field carries (serializers still emit it under that
/// name), kept in one place instead of a three-way comparison at every site.
[[nodiscard]] constexpr bool gaveUp(Verdict verdict) {
    return verdict == Verdict::TimedOut || verdict == Verdict::Unknown ||
           verdict == Verdict::Cancelled;
}

/// Inverse of verdictName (the /v1/debug/traces?verdict= filter parses
/// with this); nullopt for anything that is not a verdict name.
[[nodiscard]] std::optional<Verdict> verdictFromName(std::string_view name);

struct QueryTrace {
    std::string id;                              ///< caller-supplied query id
    /// End-to-end request identity: minted by (or accepted from) the HTTP
    /// layer, identical across the access log, every log line the request
    /// emitted, this trace, and the response envelope. Empty for queries
    /// submitted without an ambient request (direct library use).
    std::string traceId;
    QueryKind kind = QueryKind::Optimize;
    smt::BackendKind backend = smt::BackendKind::Cdcl;
    bool cacheHit = false;  ///< compilation served from the Service cache
    double compileMs = 0.0; ///< problem → formulas (0 ≈ cache hit)
    double solveMs = 0.0;   ///< backend construction + search
    double totalMs = 0.0;
    Verdict verdict = Verdict::Unknown; ///< the authoritative outcome
    std::string verdictDetail; ///< human extra, e.g. "3 designs" ("" = none)
    double queueWaitMs = 0.0; ///< submit → worker pickup (batch queries)
    int retries = 0;          ///< reseeded re-solves after Unknown
    bool backendFellBack = false; ///< Z3 unavailable/faulted → CDCL answered
    std::string errorKind;    ///< empty when the query succeeded
    std::string errorMessage; ///< empty when the query succeeded
    sat::SolverStats stats; ///< search counters (exact CDCL, best-effort Z3)
    /// Portfolio figures (meaningful when portfolioWorkers > 1): how wide
    /// the race actually ran after Service thread budgeting, who won, and
    /// the clause-exchange volume.
    int portfolioWorkers = 1;
    std::string portfolioWinner;          ///< winning diversity profile ("")
    std::uint64_t portfolioShared = 0;    ///< clauses published for sharing
    std::uint64_t portfolioImported = 0;  ///< clause copies integrated
    std::uint64_t portfolioLost = 0;      ///< overwritten/over-long, dropped
    double portfolioCancelMs = 0.0;       ///< verdict → all workers stopped
    /// Why the solver stopped without a definitive verdict (None when the
    /// query was definitive). Distinguishes budget-interrupted (conflicts/
    /// propagations/memory) from deadline expiry and cancellation.
    sat::StopReason stopReason = sat::StopReason::None;
    /// Warm-start figures: whether a snapshot import was attempted for this
    /// query and how many clauses the solver integrated (0 = refused).
    bool warmStartAttempted = false;
    std::size_t warmStartClauses = 0;
    /// Hierarchical span tree for the query (query → compile/solve → backend
    /// checks, with solver progress samples). Null when span collection was
    /// off; shared so traces stay cheap to copy.
    std::shared_ptr<const obs::Trace> spans;
};

[[nodiscard]] json::Value toJson(const QueryTrace& trace);
/// JSON array of toJson(trace) records.
[[nodiscard]] json::Value toJson(const std::vector<QueryTrace>& traces);

} // namespace lar::reason
