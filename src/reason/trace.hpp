// Per-query observability records.
//
// Every query the Service answers produces a QueryTrace: what was asked,
// which backend answered, whether the compilation cache hit, how the time
// split between compile and solve, and the solver's search counters. Traces
// serialize to JSON so `larctl batch` output and bench logs can be fed to
// whatever dashboards a deployment already has.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "json/value.hpp"
#include "obs/span.hpp"
#include "sat/solver.hpp"
#include "smt/backend.hpp"

namespace lar::reason {

/// Version of the toJson(QueryTrace) schema, emitted as "schema". Bump on
/// any incompatible change; additive fields keep the version. The full
/// schema is documented in DESIGN.md ("QueryTrace JSON schema").
/// v3 adds the robustness fields: queue_wait_ms, shed, cancelled, retries,
/// backend_fallback, and the error object.
inline constexpr int kQueryTraceSchemaVersion = 3;

/// The query shapes the Service answers (Engine methods, by name).
enum class QueryKind { Feasibility, Explain, Synthesize, Optimize, Enumerate };

[[nodiscard]] std::string toString(QueryKind kind);
/// Parses "feasible"/"explain"/"synthesize"/"optimize"/"enumerate".
/// Throws ParseError on anything else.
[[nodiscard]] QueryKind queryKindFromString(const std::string& s);

struct QueryTrace {
    std::string id;                              ///< caller-supplied query id
    QueryKind kind = QueryKind::Optimize;
    smt::BackendKind backend = smt::BackendKind::Cdcl;
    bool cacheHit = false;  ///< compilation served from the Service cache
    double compileMs = 0.0; ///< problem → formulas (0 ≈ cache hit)
    double solveMs = 0.0;   ///< backend construction + search
    double totalMs = 0.0;
    std::string verdict; ///< "sat" / "unsat" / "unknown" / "cancelled" /
                         ///< "shed" / "error" / "N designs"
    double queueWaitMs = 0.0; ///< submit → worker pickup (batch queries)
    bool shed = false;        ///< rejected/dropped by admission control
    bool cancelled = false;   ///< cancellation flag observed mid-query
    int retries = 0;          ///< reseeded re-solves after Unknown
    bool backendFellBack = false; ///< Z3 unavailable/faulted → CDCL answered
    std::string errorKind;    ///< empty when the query succeeded
    std::string errorMessage; ///< empty when the query succeeded
    sat::SolverStats stats; ///< search counters (exact CDCL, best-effort Z3)
    /// Hierarchical span tree for the query (query → compile/solve → backend
    /// checks, with solver progress samples). Null when span collection was
    /// off; shared so traces stay cheap to copy.
    std::shared_ptr<const obs::Trace> spans;
};

[[nodiscard]] json::Value toJson(const QueryTrace& trace);
/// JSON array of toJson(trace) records.
[[nodiscard]] json::Value toJson(const std::vector<QueryTrace>& traces);

} // namespace lar::reason
