// Concurrent query service with compilation caching.
//
// The paper's workflow is interactive: an architect (or a fleet of CI jobs)
// fires bursts of queries, most of which share a problem — the same spec
// checked for feasibility, optimized, and enumerated; or many seeds of the
// same optimization. Service makes that burst cheap and concurrent:
//
//  * a fingerprint-keyed LRU cache of Compilation objects (hash of the
//    problem spec ⊕ the knowledge base's revision token), so repeated
//    queries skip the problem → formulas translation entirely;
//  * a fixed thread pool running batch queries concurrently — each query
//    gets its own Engine (own backend instance) over the shared immutable
//    Compilation, so backends stay single-threaded;
//  * a QueryTrace per query (compile/solve split, cache outcome, search
//    counters, hierarchical span tree) for observability.
//
// Every query also feeds the process-wide obs::Registry (cache hit/miss
// counters, per-kind query counts, latency/compile/queue-wait histograms —
// all `lar_`-prefixed) and emits a structured "query_done" log line at Info
// level (invisible under the default Warn threshold).
//
// Batch results are bit-identical to running the same requests
// sequentially: queries share nothing mutable, and every randomized aspect
// is governed by the request's QueryOptions::seed.
//
// Lifetime: cached Compilations reference the knowledge bases behind the
// problems they were compiled from (same rule as Engine). Keep every KB
// passed in alive for the Service's lifetime, or clearCache() after
// dropping one. Mutating a KB is safe — its revision token changes, so
// stale entries can never be served (they only age out of the LRU).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "reason/compile.hpp"
#include "reason/engine.hpp"
#include "reason/query_options.hpp"
#include "reason/trace.hpp"
#include "util/threadpool.hpp"

namespace lar::reason {

struct ServiceOptions {
    /// Max cached compilations; least-recently-used entries are evicted.
    std::size_t cacheCapacity = 32;
    /// Worker threads for runBatch(); 0 = hardware concurrency.
    unsigned workers = 0;
};

/// One query in a batch.
struct QueryRequest {
    std::string id; ///< echoed in the result/trace; "" → position index
    QueryKind kind = QueryKind::Optimize;
    Problem problem;
    int maxDesigns = 4; ///< QueryKind::Enumerate only
    QueryOptions options;
};

/// Outcome of one query; which fields are filled depends on the kind.
struct QueryResult {
    std::string id;
    QueryKind kind = QueryKind::Optimize;
    bool feasible = false;
    bool timedOut = false;
    std::optional<Design> design;              ///< Synthesize/Optimize
    std::vector<Design> designs;               ///< Enumerate
    std::vector<std::string> conflictingRules; ///< Feasibility/Explain
    /// Populated when the request's QueryOptions::collectTrace is set.
    QueryTrace trace;
};

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
};

class Service {
public:
    explicit Service(const ServiceOptions& options = {});

    /// Answers one query on the calling thread (cache shared with batches).
    [[nodiscard]] QueryResult run(const QueryRequest& request);

    /// Answers every request concurrently on the pool; results come back in
    /// request order and match a sequential run bit-for-bit.
    [[nodiscard]] std::vector<QueryResult> runBatch(
        const std::vector<QueryRequest>& requests);

    [[nodiscard]] CacheStats cacheStats() const;
    void clearCache();
    [[nodiscard]] unsigned workerCount() const { return pool_.workerCount(); }

    /// The compilation the cache would serve for `problem` (compiling and
    /// inserting on miss). Exposed so callers can pre-warm or share it with
    /// their own Engines/WhatIfSessions.
    [[nodiscard]] std::shared_ptr<const Compilation> compilationFor(
        const Problem& problem);

private:
    struct CacheKey {
        std::uint64_t problemHash = 0;
        std::uint64_t kbInstance = 0;
        std::uint64_t kbMutations = 0;
        [[nodiscard]] bool operator==(const CacheKey&) const = default;
    };
    struct CacheKeyHash {
        [[nodiscard]] std::size_t operator()(const CacheKey& k) const;
    };
    using LruList =
        std::list<std::pair<CacheKey, std::shared_ptr<const Compilation>>>;

    [[nodiscard]] static CacheKey fingerprint(const Problem& problem);
    [[nodiscard]] std::shared_ptr<const Compilation> obtain(
        const Problem& problem, bool& cacheHit, double& compileMs);
    /// run() with a known queue wait (runBatch measures submit → start).
    [[nodiscard]] QueryResult runTimed(const QueryRequest& request,
                                       double queueWaitMs);

    ServiceOptions options_;
    util::ThreadPool pool_;

    mutable std::mutex cacheMutex_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace lar::reason
