// Concurrent query service with compilation caching.
//
// The paper's workflow is interactive: an architect (or a fleet of CI jobs)
// fires bursts of queries, most of which share a problem — the same spec
// checked for feasibility, optimized, and enumerated; or many seeds of the
// same optimization. Service makes that burst cheap and concurrent:
//
//  * a fingerprint-keyed LRU cache of Compilation objects (hash of the
//    problem spec ⊕ the knowledge base's revision token), so repeated
//    queries skip the problem → formulas translation entirely;
//  * a fixed thread pool running batch queries concurrently — each query
//    gets its own Engine (own backend instance) over the shared immutable
//    Compilation, so backends stay single-threaded;
//  * a QueryTrace per query (compile/solve split, cache outcome, search
//    counters, hierarchical span tree) for observability.
//
// Every query also feeds the process-wide obs::Registry (cache hit/miss
// counters, per-kind query counts, latency/compile/queue-wait histograms —
// all `lar_`-prefixed) and emits a structured "query_done" log line at Info
// level (invisible under the default Warn threshold).
//
// Batch results are bit-identical to running the same requests
// sequentially: queries share nothing mutable, and every randomized aspect
// is governed by the request's QueryOptions::seed.
//
// Lifetime: cached Compilations reference the knowledge bases behind the
// problems they were compiled from (same rule as Engine). Keep every KB
// passed in alive for the Service's lifetime, or clearCache() after
// dropping one. Mutating a KB is safe — its revision token changes, so
// stale entries can never be served (they only age out of the LRU).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "reason/compile.hpp"
#include "reason/engine.hpp"
#include "reason/flight_recorder.hpp"
#include "reason/query_options.hpp"
#include "reason/trace.hpp"
#include "util/threadpool.hpp"

namespace lar::reason {

/// What to do with new work when the batch queue is full (see
/// ServiceOptions::maxQueueDepth).
enum class ShedPolicy {
    RejectNew,  ///< refuse the incoming request (it comes back `shed`)
    DropOldest, ///< drop the longest-queued not-yet-started request instead
};

/// Bounded retry/degradation policy applied per query by the Service.
struct RetryPolicy {
    /// Total solve attempts per query (1 = no retry). Further attempts run
    /// only when the previous one returned Unknown through a non-deadline
    /// budget — retrying after the end-to-end deadline or a cancellation
    /// would be pointless.
    int maxAttempts = 1;
    /// Re-solve Unknown verdicts with a derived (different) seed, the
    /// portfolio trick: another phase assignment often escapes the region
    /// that exhausted the budget.
    bool reseedOnUnknown = true;
    /// When the Z3 backend is unavailable or throws, answer with the
    /// built-in CDCL backend instead (QueryResult::backendFellBack is set).
    bool fallbackToCdcl = true;
};

struct ServiceOptions {
    /// Max cached compilations; least-recently-used entries are evicted.
    std::size_t cacheCapacity = 32;
    /// Worker threads for runBatch(); 0 = hardware concurrency. Also the
    /// budget for intra-query portfolio parallelism: a query asking for
    /// QueryOptions::portfolioWorkers > 1 is granted extra solver threads
    /// only while the concurrently-solving queries plus their extras stay
    /// within this count.
    unsigned workers = 0;
    /// Admission control for runBatch(): max requests waiting to start
    /// (0 = unbounded). The depth is counted service-wide, so concurrent
    /// runBatch() calls share one bound. At saturation `shedPolicy` decides
    /// who is shed (DropOldest picks its victim from the submitting batch);
    /// shed queries come back with QueryResult::shed set — never silently
    /// dropped.
    std::size_t maxQueueDepth = 0;
    ShedPolicy shedPolicy = ShedPolicy::RejectNew;
    RetryPolicy retry;
    /// Warm-start snapshot cache: max snapshots kept (LRU, keyed by the same
    /// compilation fingerprint as the compilation cache); 0 disables warm
    /// starting entirely (the default). When enabled, single-worker CDCL
    /// queries import the cached snapshot for their fingerprint (phases,
    /// activities, short learnt clauses) and export an updated one when they
    /// finish. Verdicts are provably unaffected (see sat::SolverSnapshot),
    /// but a warm query may find a *different equally-valid model* than a
    /// cold one — leave this off where bit-identical designs across service
    /// instances matter more than latency.
    std::size_t warmStartCapacity = 0;
    /// Flight-recorder ring: completed QueryTraces retained for
    /// GET /v1/debug/traces (biased retention — failures pinned, p95-slow
    /// kept, the healthy majority sampled). 0 disables retention; the
    /// in-flight registry works either way.
    std::size_t flightRecorderCapacity = 256;
};

/// One query in a batch.
struct QueryRequest {
    std::string id; ///< echoed in the result/trace; "" → position index
    /// End-to-end request trace identity (minted or propagated by the HTTP
    /// layer). Stamped into the QueryTrace and every log line this query
    /// emits; "" for direct library callers.
    std::string traceId;
    QueryKind kind = QueryKind::Optimize;
    Problem problem;
    int maxDesigns = 4; ///< QueryKind::Enumerate only
    QueryOptions options;
    /// When set, the query's spans join this externally-owned trace (the
    /// HTTP layer's, whose "http" span is already open on the calling
    /// thread) instead of a fresh per-query one — so one span tree covers
    /// server handling, queue/compile, and solver phases.
    std::shared_ptr<obs::Trace> requestTrace;
};

/// Per-query failure record. Queries never throw out of run()/runBatch():
/// any exception (organic or injected) is caught into this struct so one
/// poisoned problem cannot kill a batch. Filled exactly when the result's
/// verdict is Verdict::Error.
struct QueryError {
    std::string errorKind;   ///< "parse_error" / "encoding_error" /
                             ///< "logic_error" / "fault_injected" / ...
    std::string message;     ///< the exception's what()
};

/// Outcome of one query; which fields are filled depends on the kind.
/// `verdict` is the one authoritative outcome (see reason::Verdict). The
/// historic boolean views (`feasible()`/`timedOut()`/`ok()`/…) are gone;
/// the JSON wire fields of the same names are computed from the verdict at
/// serialization time (service_io.cpp), so the wire format is unchanged.
struct QueryResult {
    std::string id;
    QueryKind kind = QueryKind::Optimize;
    Verdict verdict = Verdict::Unknown; ///< the authoritative outcome
    /// Failure isolation: filled when verdict == Verdict::Error (the other
    /// payload fields are then meaningless).
    QueryError error;
    int retries = 0;        ///< reseeded re-solves performed after Unknown
    bool backendFellBack = false; ///< Z3 failed → CDCL answered instead
    std::optional<Design> design;              ///< Synthesize/Optimize
    std::vector<Design> designs;               ///< Enumerate
    std::vector<std::string> conflictingRules; ///< Feasibility/Explain
    /// Populated when the request's QueryOptions::collectTrace is set.
    QueryTrace trace;
};

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
};

class Service {
public:
    explicit Service(const ServiceOptions& options = {});

    /// Answers one query on the calling thread (cache shared with batches).
    [[nodiscard]] QueryResult run(const QueryRequest& request);

    /// Answers every request concurrently on the pool; results come back in
    /// request order and match a sequential run bit-for-bit.
    [[nodiscard]] std::vector<QueryResult> runBatch(
        const std::vector<QueryRequest>& requests);

    [[nodiscard]] CacheStats cacheStats() const;
    void clearCache();
    [[nodiscard]] unsigned workerCount() const { return pool_.workerCount(); }

    /// The flight recorder: every completed query lands here (bounded,
    /// biased retention) and every admitted query is listed while it runs.
    /// Session owners (reason::SessionManager) register their asks against
    /// the same recorder so one endpoint sees the whole process.
    [[nodiscard]] FlightRecorder& flightRecorder() { return recorder_; }
    [[nodiscard]] const FlightRecorder& flightRecorder() const {
        return recorder_;
    }

    // -- graceful drain (used by larserved on SIGTERM) ----------------------
    /// Stops admitting work: every request that has not started solving when
    /// this returns — new run()/runBatch() submissions and queued batch work
    /// alike — comes back Verdict::Shed. In-flight queries are left to
    /// finish; use cancelActive() to interrupt them. One-way; there is no
    /// un-drain (tear the Service down and build a new one instead).
    void beginDrain();
    [[nodiscard]] bool draining() const {
        return draining_.load(std::memory_order_acquire);
    }
    /// Flips the cancellation flag of every in-flight query (the caller's
    /// QueryOptions::cancelFlag when one was supplied, a per-query internal
    /// flag otherwise), so each returns Verdict::Cancelled — never Error —
    /// within a few solver polling intervals. Typically called when a drain
    /// grace period expires.
    void cancelActive();
    /// Queries currently between admission and completion (solving or
    /// compiling). Drain is complete when this reaches zero.
    [[nodiscard]] std::size_t activeQueries() const;

    /// The compilation the cache would serve for `problem` (compiling and
    /// inserting on miss). Exposed so callers can pre-warm or share it with
    /// their own Engines/WhatIfSessions.
    [[nodiscard]] std::shared_ptr<const Compilation> compilationFor(
        const Problem& problem);
    /// Like compilationFor(), reporting whether the cache hit and the
    /// compile time paid on a miss.
    [[nodiscard]] std::shared_ptr<const Compilation> compilationFor(
        const Problem& problem, bool& cacheHit, double& compileMs);

    /// The cached warm-start snapshot for `problem`'s fingerprint, or
    /// nullptr (miss / warm starting disabled). Exposed so session owners
    /// (reason::SessionManager) can seed their WhatIfSessions from the same
    /// cache the query path feeds.
    [[nodiscard]] std::shared_ptr<const sat::SolverSnapshot> snapshotFor(
        const Problem& problem);
    /// Stores/refreshes the snapshot for `problem`'s fingerprint (LRU,
    /// bounded by ServiceOptions::warmStartCapacity; no-op when disabled or
    /// `snapshot` is null/empty).
    void storeSnapshot(const Problem& problem,
                       std::shared_ptr<const sat::SolverSnapshot> snapshot);

private:
    struct CacheKey {
        std::uint64_t problemHash = 0;
        std::uint64_t kbInstance = 0;
        std::uint64_t kbMutations = 0;
        [[nodiscard]] bool operator==(const CacheKey&) const = default;
    };
    struct CacheKeyHash {
        [[nodiscard]] std::size_t operator()(const CacheKey& k) const;
    };
    using LruList =
        std::list<std::pair<CacheKey, std::shared_ptr<const Compilation>>>;

    using Clock = std::chrono::steady_clock;

    [[nodiscard]] static CacheKey fingerprint(const Problem& problem);
    [[nodiscard]] std::shared_ptr<const Compilation> obtain(
        const Problem& problem, bool& cacheHit, double& compileMs);
    /// run() with a known queue wait (runBatch measures submit → start) and
    /// the end-to-end deadline fixed at submission time. Never throws:
    /// exceptions land in QueryResult::error.
    [[nodiscard]] QueryResult runTimed(
        const QueryRequest& request, double queueWaitMs,
        std::optional<Clock::time_point> deadline,
        std::shared_ptr<InflightQuery> inflight = nullptr);
    /// The solve attempt loop: retries on Unknown per RetryPolicy, falls
    /// back Z3 → CDCL on backend failure. Fills result.verdict and the
    /// verdict-dependent fields (and trace.stats / trace portfolio fields);
    /// `detail` gets a human extra such as "3 designs" when one exists.
    /// `cancelFlag` (never null) overrides the request's own flag — it is
    /// the drain-registered flag runTimed chose. Throws on unrecoverable
    /// error.
    void solveWithPolicy(const QueryRequest& request,
                         std::shared_ptr<const Compilation> compilation,
                         const std::optional<Clock::time_point>& deadline,
                         std::atomic<bool>* cancelFlag, QueryResult& result,
                         std::string& detail, InflightQuery* inflight);
    /// Registers an in-flight query's cancellation flag so cancelActive()
    /// can reach it. Returns false when the service is already draining —
    /// the query must report Shed instead of starting.
    [[nodiscard]] bool registerActive(std::atomic<bool>* flag);
    void unregisterActive(std::atomic<bool>* flag);
    /// Claims solver threads for one query against the pool-wide budget:
    /// always the query's own thread, plus up to `requested - 1` portfolio
    /// extras while the budget (workerCount()) has headroom. Returns the
    /// total claimed (= the portfolio width to run with).
    [[nodiscard]] unsigned claimSolveThreads(int requested);
    void releaseSolveThreads(unsigned claimed);
    /// A `shed` result for a request rejected/dropped by admission control;
    /// counts, logs, records into the flight recorder, and fills the trace
    /// so shedding is never silent.
    [[nodiscard]] QueryResult makeShedResult(const QueryRequest& request);

    ServiceOptions options_;
    util::ThreadPool pool_;
    FlightRecorder recorder_;
    /// Set once by beginDrain(); guarded by drainMutex_ together with the
    /// active-flag list so a query either registers before the drain flips
    /// flags or observes draining_ and sheds — never neither.
    std::atomic<bool> draining_{false};
    mutable std::mutex drainMutex_;
    std::vector<std::atomic<bool>*> activeCancelFlags_;
    /// Requests submitted to the pool but not yet started. Service-wide so
    /// ServiceOptions::maxQueueDepth holds across concurrent runBatch calls.
    std::atomic<std::size_t> queuedDepth_{0};
    /// Solver threads currently in use (one per actively-solving query plus
    /// its granted portfolio extras). Intra-query parallelism and batch
    /// concurrency share the workerCount() budget through this counter.
    std::atomic<unsigned> threadsInUse_{0};

    mutable std::mutex cacheMutex_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    /// Warm-start snapshot LRU, same key space as the compilation cache and
    /// guarded by the same cacheMutex_ (both are touched once per query).
    using SnapList =
        std::list<std::pair<CacheKey, std::shared_ptr<const sat::SolverSnapshot>>>;
    SnapList snapLru_; ///< front = most recently used
    std::unordered_map<CacheKey, SnapList::iterator, CacheKeyHash> snapIndex_;
};

} // namespace lar::reason
