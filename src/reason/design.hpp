// The engine's output: a concrete architecture design.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "json/value.hpp"
#include "kb/hardware.hpp"
#include "kb/system.hpp"

namespace lar::reason {

struct Design {
    /// Chosen system per category; absent key = category left empty.
    std::map<kb::Category, std::string> chosen;
    /// Chosen hardware model per class.
    std::map<kb::HardwareClass, std::string> hardwareModel;
    /// Deployment options switched on by the solver (e.g. pony_enabled).
    std::set<std::string> enabledOptions;
    /// Facts that hold in this design (derived from chosen systems + pins).
    std::set<std::string> activeFacts;

    /// Resource accounting (systems + workloads vs hardware capacity).
    std::map<std::string, std::int64_t> resourceUsage;
    std::map<std::string, std::int64_t> resourceCapacity;

    double hardwareCostUsd = 0.0;
    double powerW = 0.0;

    /// Per-objective violation costs from lexicographic optimization (same
    /// order as Problem::objectivePriority); empty for plain synthesis.
    std::vector<std::int64_t> objectiveCosts;

    /// Names of all chosen systems.
    [[nodiscard]] std::set<std::string> systems() const;

    /// True when `name` is part of the design.
    [[nodiscard]] bool uses(const std::string& name) const;

    /// Human-readable change list between two designs — the "ripple effect"
    /// view of §2.3 (how one altered choice propagates).
    [[nodiscard]] std::vector<std::string> diff(const Design& other) const;

    /// Multi-line report.
    [[nodiscard]] std::string toString() const;
};

/// JSON view of a design (used by `larctl batch` and trace export).
[[nodiscard]] json::Value toJson(const Design& design);

} // namespace lar::reason
