#include "reason/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "order/poset.hpp"

namespace lar::reason {

namespace {

order::Context contextFor(const Problem& problem, const Design& design) {
    order::Context ctx;
    for (const auto& [cls, model] : design.hardwareModel)
        ctx.hardware[cls] = &problem.kb->hardware(model);
    for (const auto& [category, name] : design.chosen)
        ctx.presentSystems.insert(name);
    // Facts derive from chosen systems' provides + positive pins.
    for (const auto& [category, name] : design.chosen)
        for (const std::string& f : problem.kb->system(name).provides)
            ctx.facts.insert(f);
    for (const auto& [fact, value] : problem.pinnedFacts)
        if (value) ctx.facts.insert(fact);
    ctx.options = design.enabledOptions;
    for (const kb::Workload& w : problem.workloads)
        for (const std::string& p : w.properties) ctx.workloadProperties.insert(p);
    return ctx;
}

} // namespace

std::vector<std::string> validateDesign(const Problem& problem,
                                        const Design& design) {
    std::vector<std::string> violations;
    const kb::KnowledgeBase& kb = *problem.kb;
    const order::Context ctx = contextFor(problem, design);

    // Categories: required must be filled; excluded must be empty.
    for (const kb::Category category : kb::kAllCategories) {
        const bool filled = design.chosen.count(category) > 0;
        const bool required = problem.requiredCategories.count(category) > 0 &&
                              problem.commonSenseRules;
        const bool allowed = problem.requiredCategories.count(category) > 0 ||
                             problem.optionalCategories.count(category) > 0;
        if (required && !filled)
            violations.push_back("category " + toString(category) +
                                 " left empty");
        if (!allowed && filled)
            violations.push_back("category " + toString(category) +
                                 " is excluded but filled");
    }

    // Hardware: model for each inventory class, pins honored.
    for (const auto& [cls, choice] : problem.hardware) {
        const auto it = design.hardwareModel.find(cls);
        if (it == design.hardwareModel.end()) {
            violations.push_back("no " + toString(cls) + " model chosen");
            continue;
        }
        if (choice.pinnedModel.has_value() && *choice.pinnedModel != it->second)
            violations.push_back("pinned " + toString(cls) + " model changed to " +
                                 it->second);
        if (!choice.candidateModels.empty() &&
            std::find(choice.candidateModels.begin(), choice.candidateModels.end(),
                      it->second) == choice.candidateModels.end())
            violations.push_back(toString(cls) + " model " + it->second +
                                 " is not among the candidates");
    }

    // System constraints, conflicts, research-grade rule.
    for (const auto& [category, name] : design.chosen) {
        const kb::System& s = kb.system(name);
        if (!ctx.evaluate(s.constraints))
            violations.push_back("requirement of " + name + " violated: " +
                                 s.constraints.toString());
        for (const std::string& conflict : s.conflicts)
            if (ctx.presentSystems.count(conflict) > 0)
                violations.push_back(name + " conflicts with deployed " + conflict);
        if (problem.forbidResearchGrade && s.researchGrade)
            violations.push_back(name + " is research-grade (deadline rule)");
    }

    // Pinned systems.
    for (const auto& [name, include] : problem.pinnedSystems) {
        const bool present = ctx.presentSystems.count(name) > 0;
        if (include && !present)
            violations.push_back("pinned system " + name + " missing");
        if (!include && present)
            violations.push_back("forbidden system " + name + " deployed");
    }
    // Pinned options.
    for (const auto& [name, enabled] : problem.pinnedOptions) {
        const bool on = design.enabledOptions.count(name) > 0;
        if (enabled != on)
            violations.push_back("option " + name + " must be " +
                                 (enabled ? "on" : "off"));
    }

    // Required capabilities.
    for (const std::string& capability : problem.requiredCapabilities) {
        const bool covered = std::any_of(
            design.chosen.begin(), design.chosen.end(), [&](const auto& entry) {
                return kb.system(entry.second).solvesCapability(capability);
            });
        if (!covered)
            violations.push_back("no chosen system solves '" + capability + "'");
    }

    // Resource capacities.
    const WorkloadAggregates agg = aggregateWorkloads(problem.workloads);
    std::map<std::string, std::int64_t> usage;
    for (const auto& [category, name] : design.chosen)
        for (const kb::ResourceDemand& d : kb.system(name).demands)
            usage[d.resource] += d.amountFor(agg.totalKiloFlows, agg.totalGbps);
    usage[kb::kResCores] += agg.totalPeakCores;

    struct CapRule {
        const char* resource;
        kb::HardwareClass cls;
        const char* attr;
        bool pooled;
    };
    static constexpr CapRule rules[] = {
        {kb::kResCores, kb::HardwareClass::Server, kb::kAttrCores, true},
        {kb::kResP4Stages, kb::HardwareClass::Switch, kb::kAttrP4Stages, false},
        {kb::kResQosClasses, kb::HardwareClass::Switch, kb::kAttrQosClasses,
         false},
        {kb::kResSmartNicCores, kb::HardwareClass::Nic, kb::kAttrNicCores, false},
        {kb::kResFpgaGatesK, kb::HardwareClass::Nic, kb::kAttrFpgaGatesK, false},
        {kb::kResSwitchMemoryGb, kb::HardwareClass::Switch, kb::kAttrMemoryGb,
         false},
    };
    for (const auto& [resource, used] : usage) {
        if (used == 0) continue;
        const CapRule* rule = nullptr;
        for (const CapRule& r : rules)
            if (resource == r.resource) rule = &r;
        if (rule == nullptr) continue;
        const auto modelIt = design.hardwareModel.find(rule->cls);
        if (modelIt == design.hardwareModel.end()) {
            violations.push_back("resource '" + resource + "' demanded but no " +
                                 toString(rule->cls) + " chosen");
            continue;
        }
        const auto hwChoice = problem.hardware.find(rule->cls);
        const int count =
            hwChoice == problem.hardware.end() ? 1 : hwChoice->second.count;
        const double attr =
            kb.hardware(modelIt->second).numAttr(rule->attr).value_or(0.0);
        const auto capacity =
            static_cast<std::int64_t>(rule->pooled ? attr * count : attr);
        if (used > capacity)
            violations.push_back("resource '" + resource + "' over capacity: " +
                                 std::to_string(used) + " > " +
                                 std::to_string(capacity));
    }

    // Common-sense bandwidth rules.
    if (problem.commonSenseRules) {
        const auto nicIt = design.hardwareModel.find(kb::HardwareClass::Nic);
        if (nicIt != design.hardwareModel.end() && agg.totalGbps > 0) {
            const auto hwChoice = problem.hardware.find(kb::HardwareClass::Nic);
            const int count =
                hwChoice == problem.hardware.end() ? 1 : hwChoice->second.count;
            const double bw = kb.hardware(nicIt->second)
                                  .numAttr(kb::kAttrPortBandwidthGbps)
                                  .value_or(0);
            if (bw * count < agg.totalGbps)
                violations.push_back("NIC fleet bandwidth below workload peak");
        }
        const auto swIt = design.hardwareModel.find(kb::HardwareClass::Switch);
        if (nicIt != design.hardwareModel.end() &&
            swIt != design.hardwareModel.end()) {
            const double nicBw = kb.hardware(nicIt->second)
                                     .numAttr(kb::kAttrPortBandwidthGbps)
                                     .value_or(0);
            const double swBw = kb.hardware(swIt->second)
                                    .numAttr(kb::kAttrPortBandwidthGbps)
                                    .value_or(0);
            if (swBw < nicBw)
                violations.push_back("switch ports slower than NICs");
        }
    }

    // Budgets.
    if (problem.maxHardwareCostUsd.has_value() &&
        design.hardwareCostUsd > *problem.maxHardwareCostUsd + 0.5)
        violations.push_back("hardware cost exceeds budget");
    if (problem.maxPowerW.has_value() && design.powerW > *problem.maxPowerW + 0.5)
        violations.push_back("power exceeds budget");

    // Architect extra rule.
    if (!problem.extraConstraint.isTrivial() &&
        !ctx.evaluate(problem.extraConstraint))
        violations.push_back("architect rule violated: " +
                             problem.extraConstraint.toString());

    // Performance bounds via the partial order.
    for (const kb::Workload& w : problem.workloads) {
        for (const kb::PerformanceBound& bound : w.bounds) {
            const kb::System* baseline = kb.findSystem(bound.betterThanSystem);
            if (baseline == nullptr) continue;
            const auto chosen = design.chosen.find(baseline->category);
            if (chosen == design.chosen.end()) {
                violations.push_back("performance bound of " + w.name +
                                     " unmet: no " +
                                     toString(baseline->category) + " chosen");
                continue;
            }
            const order::PreferenceGraph graph(kb, bound.objective);
            if (!graph.strictlyBetter(chosen->second, baseline->name, ctx))
                violations.push_back("performance bound of " + w.name +
                                     " unmet: " + chosen->second +
                                     " does not beat " + baseline->name + " on " +
                                     bound.objective);
        }
    }

    return violations;
}

} // namespace lar::reason
