// JSON wire schema of the query service.
//
// One place defines how queries go in and results come out, shared by every
// front end: `larctl batch` (file in, stdout out) and `larserved`'s
// `POST /v1/query` / `POST /v1/batch` (HTTP in/out) speak byte-identical
// JSON because they call these functions. Keep additions backward
// compatible — the schema is what remote clients pin.
//
// Batch document: either a bare JSON array of query objects, or
//   {"options": {...defaults...}, "service": {...}, "queries": [...]}
// A query object:
//   {"id": "q1", "kind": "optimize", "problem": {...problem spec...},
//    "max_designs": 4, "backend": "cdcl", "seed": 7, "timeout_ms": 0,
//    "conflict_budget": -1, "propagation_budget": -1, "memory_budget_mb": -1,
//    "trace": true, "progress_every_conflicts": 256, "portfolio_workers": 1}
// A result object mirrors QueryResult: verdict + derived booleans, design
// payloads, the error object, and (per request) a QueryTrace v6.
#pragma once

#include <vector>

#include "json/value.hpp"
#include "kb/kb.hpp"
#include "reason/service.hpp"

namespace lar::reason {

/// Applies the option fields of one JSON object on top of `defaults`.
/// Throws ParseError on an unknown backend name; type mismatches surface as
/// LogicError from the JSON accessors.
[[nodiscard]] QueryOptions queryOptionsFromJson(const json::Value& v,
                                                QueryOptions defaults);

/// Builds one QueryRequest from a query object. A missing "id" becomes the
/// position `index`; a missing "kind" defaults to optimize. Throws
/// ParseError / EncodingError on malformed specs.
[[nodiscard]] QueryRequest queryRequestFromJson(const json::Value& v,
                                                const kb::KnowledgeBase& kb,
                                                const QueryOptions& defaults,
                                                std::size_t index);

/// Parses a whole batch document into requests. When `serviceOptions` is
/// non-null, a "service" block (max_queue_depth, shed_policy, max_attempts)
/// is applied to it; when null — the larserved case, where the Service is
/// long-lived and shared — a "service" block throws ParseError instead of
/// being silently ignored.
[[nodiscard]] std::vector<QueryRequest> batchRequestsFromJson(
    const json::Value& doc, const kb::KnowledgeBase& kb,
    ServiceOptions* serviceOptions);

/// Serializes one result to the batch entry schema. `includeTrace` should be
/// the request's QueryOptions::collectTrace.
[[nodiscard]] json::Value resultToJson(const QueryResult& result,
                                       bool includeTrace);

/// The full batch report: {"results": [...], "cache": {hits,misses,entries},
/// "workers": N}. `requests` supplies per-query trace inclusion; it must be
/// parallel to `results`.
[[nodiscard]] json::Value batchReportToJson(
    const std::vector<QueryResult>& results,
    const std::vector<QueryRequest>& requests, const Service& service);

/// The exit-code / HTTP-status policy both front ends share: true when any
/// query failed (error) or was proven infeasible — shed, cancelled, and
/// timed-out queries do not count, the caller opted into those outcomes.
[[nodiscard]] bool anyFailedOrInfeasible(const std::vector<QueryResult>& results);

} // namespace lar::reason
