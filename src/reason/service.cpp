#include "reason/service.hpp"

#include <utility>

#include "reason/problem_io.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace lar::reason {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

std::size_t Service::CacheKeyHash::operator()(const CacheKey& k) const {
    // splitmix64-style mix of the three words.
    std::uint64_t h = k.problemHash;
    for (const std::uint64_t w : {k.kbInstance, k.kbMutations}) {
        h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 31;
    }
    return static_cast<std::size_t>(h);
}

Service::CacheKey Service::fingerprint(const Problem& problem) {
    expects(problem.kb != nullptr, "Service: problem has no knowledge base");
    // problemToText covers every problem field; the KB contributes through
    // its revision token, not its content — cheaper than hashing the whole
    // catalog, and exact as long as mutation goes through the KB's API.
    const kb::KnowledgeBase::Revision rev = problem.kb->revision();
    return CacheKey{fnv1a64(problemToText(problem)), rev.instance,
                    rev.mutations};
}

Service::Service(const ServiceOptions& options)
    : options_(options), pool_(options.workers) {
    expects(options_.cacheCapacity > 0, "Service: cacheCapacity must be > 0");
}

std::shared_ptr<const Compilation> Service::obtain(const Problem& problem,
                                                   bool& cacheHit,
                                                   double& compileMs) {
    const CacheKey key = fingerprint(problem);
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second); // bump to front
            ++hits_;
            cacheHit = true;
            compileMs = 0.0;
            return it->second->second;
        }
        ++misses_;
    }
    // Compile outside the lock: concurrent misses on *different* problems
    // proceed in parallel. Two threads missing the same key both compile;
    // the loser adopts the winner's (identical) entry.
    util::Stopwatch compileTimer;
    auto compiled = std::make_shared<const Compilation>(problem);
    compileMs = compileTimer.millis();
    cacheHit = false;

    const std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second->second;
    lru_.emplace_front(key, std::move(compiled));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > options_.cacheCapacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
    return lru_.front().second;
}

std::shared_ptr<const Compilation> Service::compilationFor(
    const Problem& problem) {
    bool hit = false;
    double ms = 0.0;
    return obtain(problem, hit, ms);
}

QueryResult Service::run(const QueryRequest& request) {
    util::Stopwatch totalTimer;
    QueryResult result;
    result.id = request.id;
    result.kind = request.kind;

    bool cacheHit = false;
    double compileMs = 0.0;
    const std::shared_ptr<const Compilation> compilation =
        obtain(request.problem, cacheHit, compileMs);

    Engine engine(compilation, request.options);
    util::Stopwatch solveTimer;
    std::string verdict;
    switch (request.kind) {
        case QueryKind::Feasibility: {
            const FeasibilityReport report = engine.checkFeasible();
            result.feasible = report.feasible;
            result.timedOut = report.timedOut;
            result.conflictingRules = report.conflictingRules;
            verdict = report.timedOut ? "unknown"
                                      : (report.feasible ? "sat" : "unsat");
            break;
        }
        case QueryKind::Explain: {
            const FeasibilityReport report = engine.explainMinimalConflict();
            result.feasible = report.feasible;
            result.timedOut = report.timedOut;
            result.conflictingRules = report.conflictingRules;
            verdict = report.timedOut ? "unknown"
                                      : (report.feasible ? "sat" : "unsat");
            break;
        }
        case QueryKind::Synthesize: {
            result.design = engine.synthesize();
            result.feasible = result.design.has_value();
            verdict = result.feasible ? "sat" : "unsat";
            break;
        }
        case QueryKind::Optimize: {
            result.design = engine.optimize();
            result.feasible = result.design.has_value();
            verdict = result.feasible ? "sat" : "unsat";
            break;
        }
        case QueryKind::Enumerate: {
            result.designs =
                engine.enumerateDesigns(request.maxDesigns, /*optimizeFirst=*/true);
            result.feasible = !result.designs.empty();
            verdict = std::to_string(result.designs.size()) + " designs";
            break;
        }
    }
    const double solveMs = solveTimer.millis();

    if (request.options.collectTrace) {
        QueryTrace& trace = result.trace;
        trace.id = request.id;
        trace.kind = request.kind;
        trace.backend = request.options.backend;
        trace.cacheHit = cacheHit;
        trace.compileMs = compileMs;
        trace.solveMs = solveMs;
        trace.totalMs = totalTimer.millis();
        trace.verdict = std::move(verdict);
        trace.stats = engine.lastSolveStats();
    }
    return result;
}

std::vector<QueryResult> Service::runBatch(
    const std::vector<QueryRequest>& requests) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const QueryRequest& request = requests[i];
        futures.push_back(pool_.submit([this, &request]() { return run(request); }));
    }
    std::vector<QueryResult> results;
    results.reserve(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        results.push_back(futures[i].get());
        if (results.back().id.empty()) {
            results.back().id = std::to_string(i);
            results.back().trace.id = results.back().id;
        }
    }
    return results;
}

CacheStats Service::cacheStats() const {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    return CacheStats{hits_, misses_, lru_.size(), options_.cacheCapacity};
}

void Service::clearCache() {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    lru_.clear();
    index_.clear();
}

} // namespace lar::reason
