#include "reason/service.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "reason/problem_io.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace lar::reason {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Maps an exception to the QueryError::errorKind vocabulary. Order matters:
/// most-derived classes first (FaultInjectedError is a lar::Error).
const char* errorKindOf(const std::exception& e) {
    if (dynamic_cast<const util::FaultInjectedError*>(&e) != nullptr)
        return "fault_injected";
    if (dynamic_cast<const ParseError*>(&e) != nullptr) return "parse_error";
    if (dynamic_cast<const EncodingError*>(&e) != nullptr)
        return "encoding_error";
    if (dynamic_cast<const LogicError*>(&e) != nullptr) return "logic_error";
    if (dynamic_cast<const Error*>(&e) != nullptr) return "error";
    return "exception";
}

/// Pre-interned handles into the global registry: interning locks once at
/// first use, after which every query updates plain atomics.
struct ServiceMetrics {
    obs::Counter& cacheHits;
    obs::Counter& cacheMisses;
    obs::Counter& cacheEvictions;
    obs::Counter& shed;
    obs::Counter& cancelled;
    obs::Counter& failed;
    obs::Counter& retries;
    obs::Counter& fallbacks;
    obs::Counter& deadlineExpired;
    obs::Histogram& queryLatencyMs;
    obs::Histogram& compileMs;
    obs::Histogram& queueWaitMs;
    obs::Counter& portfolioQueries;
    obs::Counter& portfolioShared;
    obs::Counter& portfolioImported;
    obs::Counter& portfolioLost;
    obs::Histogram& portfolioCancelMs;
    obs::Histogram& portfolioWidth;
    obs::Counter& warmHits;
    obs::Counter& warmMisses;
    obs::Counter& warmImportedClauses;
    obs::Counter& warmStored;
    obs::Counter& warmEvictions;
    obs::Counter& satSubsumed;
    obs::Counter& satEliminatedVars;
    obs::Counter& satProbes;
    obs::Counter& satArenaGcs;
    obs::Gauge& satArenaWaste;
    obs::Counter* queriesByKind[5];

    [[nodiscard]] obs::Counter& queries(QueryKind kind) {
        return *queriesByKind[static_cast<int>(kind)];
    }

    /// Wins per diversity profile ("config" label). Interning locks only on
    /// a profile's first win; the handful of profile names keeps the series
    /// set tiny.
    [[nodiscard]] static obs::Counter& portfolioWins(const std::string& config) {
        return obs::Registry::global().counter(
            "lar_portfolio_wins_total", "Portfolio races won, by configuration",
            {{"config", config}});
    }

    static ServiceMetrics& get() {
        static ServiceMetrics m = [] {
            obs::Registry& reg = obs::Registry::global();
            const std::vector<double>& msBounds = obs::latencyBucketsMs();
            ServiceMetrics built{
                reg.counter("lar_cache_hits_total",
                            "Compilation cache hits in Service::obtain"),
                reg.counter("lar_cache_misses_total",
                            "Compilation cache misses in Service::obtain"),
                reg.counter("lar_service_cache_evictions_total",
                            "Compilations evicted from the Service LRU cache"),
                reg.counter("lar_queries_shed_total",
                            "Queries rejected or dropped by admission control"),
                reg.counter("lar_queries_cancelled_total",
                            "Queries stopped by their cancellation flag"),
                reg.counter("lar_queries_failed_total",
                            "Queries that ended with QueryResult::error"),
                reg.counter("lar_query_retries_total",
                            "Reseeded re-solves after an Unknown verdict"),
                reg.counter("lar_backend_fallbacks_total",
                            "Queries answered by CDCL after a Z3 failure"),
                reg.counter("lar_queries_deadline_expired_total",
                            "Queries whose end-to-end deadline expired before "
                            "solving"),
                reg.histogram("lar_query_latency_ms",
                              "End-to-end per-query latency in Service", msBounds),
                reg.histogram("lar_compile_ms",
                              "Problem compilation time on cache misses", msBounds),
                reg.histogram("lar_queue_wait_ms",
                              "Submit-to-start wait of batch queries", msBounds),
                reg.counter("lar_portfolio_queries_total",
                            "Queries solved by a portfolio race (width > 1)"),
                reg.counter("lar_portfolio_clauses_shared_total",
                            "Learnt clauses published into portfolio exchanges"),
                reg.counter("lar_portfolio_clauses_imported_total",
                            "Learnt-clause copies integrated by portfolio "
                            "workers"),
                reg.counter("lar_portfolio_clauses_lost_total",
                            "Exchange clauses overwritten or over-long, never "
                            "imported"),
                reg.histogram("lar_portfolio_cancel_latency_ms",
                              "Winner verdict to all-workers-stopped latency",
                              {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500}),
                reg.histogram("lar_portfolio_width",
                              "Portfolio width actually granted per query",
                              {1, 2, 4, 8, 16}),
                reg.counter("lar_warmstart_hits_total",
                            "Queries that found a warm-start snapshot for "
                            "their fingerprint"),
                reg.counter("lar_warmstart_misses_total",
                            "Warm-start-eligible queries with no cached "
                            "snapshot"),
                reg.counter("lar_warmstart_clauses_imported_total",
                            "Learnt clauses integrated from warm-start "
                            "snapshots"),
                reg.counter("lar_warmstart_snapshots_stored_total",
                            "Warm-start snapshots stored/refreshed in the "
                            "cache"),
                reg.counter("lar_warmstart_evictions_total",
                            "Warm-start snapshots evicted from the LRU"),
                reg.counter("lar_sat_subsumed",
                            "Clauses removed by inprocessing subsumption"),
                reg.counter("lar_sat_eliminated_vars",
                            "Variables removed by bounded variable "
                            "elimination"),
                reg.counter("lar_sat_probes",
                            "Literals probed by failed-literal probing"),
                reg.counter("lar_sat_arena_gcs",
                            "Clause-arena compactions in query solvers"),
                reg.gauge("lar_sat_arena_waste_bytes",
                          "Dead clause bytes awaiting arena compaction "
                          "(last query's solver)"),
                {}};
            for (const QueryKind kind :
                 {QueryKind::Feasibility, QueryKind::Explain, QueryKind::Synthesize,
                  QueryKind::Optimize, QueryKind::Enumerate})
                built.queriesByKind[static_cast<int>(kind)] =
                    &reg.counter("lar_queries_total", "Queries answered, by kind",
                                 {{"kind", toString(kind)}});
            return built;
        }();
        return m;
    }
};

/// Milliseconds from now until `deadline` (negative when already past).
double millisUntil(const std::chrono::steady_clock::time_point deadline) {
    return std::chrono::duration<double, std::milli>(
               deadline - std::chrono::steady_clock::now())
        .count();
}

bool cancelRequested(const QueryOptions& options) {
    return options.cancelFlag != nullptr &&
           options.cancelFlag->load(std::memory_order_relaxed);
}

/// Attempt `n` (2, 3, …) of a query gets a derived, necessarily different
/// seed so the re-solve explores another phase assignment.
std::uint64_t deriveSeed(std::uint64_t base, int attempt) {
    std::uint64_t state = base + static_cast<std::uint64_t>(attempt);
    const std::uint64_t derived = util::splitmix64(state);
    return derived == 0 ? 1 : derived;
}

} // namespace

std::size_t Service::CacheKeyHash::operator()(const CacheKey& k) const {
    // splitmix64-style mix of the three words.
    std::uint64_t h = k.problemHash;
    for (const std::uint64_t w : {k.kbInstance, k.kbMutations}) {
        h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 31;
    }
    return static_cast<std::size_t>(h);
}

Service::CacheKey Service::fingerprint(const Problem& problem) {
    expects(problem.kb != nullptr, "Service: problem has no knowledge base");
    // problemToText covers every problem field; the KB contributes through
    // its revision token, not its content — cheaper than hashing the whole
    // catalog, and exact as long as mutation goes through the KB's API.
    const kb::KnowledgeBase::Revision rev = problem.kb->revision();
    return CacheKey{fnv1a64(problemToText(problem)), rev.instance,
                    rev.mutations};
}

Service::Service(const ServiceOptions& options)
    : options_(options), pool_(options.workers),
      recorder_(options.flightRecorderCapacity) {
    expects(options_.cacheCapacity > 0, "Service: cacheCapacity must be > 0");
    expects(options_.retry.maxAttempts >= 1,
            "Service: retry.maxAttempts must be >= 1");
}

std::shared_ptr<const Compilation> Service::obtain(const Problem& problem,
                                                   bool& cacheHit,
                                                   double& compileMs) {
    const CacheKey key = fingerprint(problem);
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second); // bump to front
            ++hits_;
            ServiceMetrics::get().cacheHits.inc();
            cacheHit = true;
            compileMs = 0.0;
            return it->second->second;
        }
        ++misses_;
        ServiceMetrics::get().cacheMisses.inc();
    }
    // Compile outside the lock: concurrent misses on *different* problems
    // proceed in parallel. Two threads missing the same key both compile;
    // the loser adopts the winner's (identical) entry.
    util::FaultInjector::global().maybeFault("service.compile");
    util::Stopwatch compileTimer;
    auto compiled = std::make_shared<const Compilation>(problem);
    compileMs = compileTimer.millis();
    ServiceMetrics::get().compileMs.observe(compileMs);
    cacheHit = false;

    const std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second->second;
    util::FaultInjector::global().maybeFault("service.cache_insert");
    lru_.emplace_front(key, std::move(compiled));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > options_.cacheCapacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ServiceMetrics::get().cacheEvictions.inc();
    }
    return lru_.front().second;
}

std::shared_ptr<const Compilation> Service::compilationFor(
    const Problem& problem) {
    bool hit = false;
    double ms = 0.0;
    return obtain(problem, hit, ms);
}

std::shared_ptr<const Compilation> Service::compilationFor(
    const Problem& problem, bool& cacheHit, double& compileMs) {
    return obtain(problem, cacheHit, compileMs);
}

std::shared_ptr<const sat::SolverSnapshot> Service::snapshotFor(
    const Problem& problem) {
    if (options_.warmStartCapacity == 0) return nullptr;
    const CacheKey key = fingerprint(problem);
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = snapIndex_.find(key);
    if (it == snapIndex_.end()) {
        ServiceMetrics::get().warmMisses.inc();
        return nullptr;
    }
    snapLru_.splice(snapLru_.begin(), snapLru_, it->second); // bump to front
    ServiceMetrics::get().warmHits.inc();
    return it->second->second;
}

void Service::storeSnapshot(
    const Problem& problem,
    std::shared_ptr<const sat::SolverSnapshot> snapshot) {
    if (options_.warmStartCapacity == 0 || snapshot == nullptr ||
        snapshot->empty())
        return;
    const CacheKey key = fingerprint(problem);
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    ServiceMetrics::get().warmStored.inc();
    if (const auto it = snapIndex_.find(key); it != snapIndex_.end()) {
        it->second->second = std::move(snapshot); // refresh in place
        snapLru_.splice(snapLru_.begin(), snapLru_, it->second);
        return;
    }
    snapLru_.emplace_front(key, std::move(snapshot));
    snapIndex_.emplace(key, snapLru_.begin());
    while (snapLru_.size() > options_.warmStartCapacity) {
        snapIndex_.erase(snapLru_.back().first);
        snapLru_.pop_back();
        ServiceMetrics::get().warmEvictions.inc();
    }
}

QueryResult Service::run(const QueryRequest& request) {
    std::optional<Clock::time_point> deadline;
    if (request.options.timeoutMs > 0)
        deadline = Clock::now() +
                   std::chrono::milliseconds(request.options.timeoutMs);
    return runTimed(request, /*queueWaitMs=*/0.0, deadline);
}

QueryResult Service::makeShedResult(const QueryRequest& request) {
    QueryResult result;
    result.id = request.id;
    result.kind = request.kind;
    result.verdict = Verdict::Shed;
    ServiceMetrics::get().shed.inc();
    std::optional<util::ScopedLogTraceId> logScope;
    if (!request.traceId.empty()) logScope.emplace(request.traceId);
    util::logLineJson(util::LogLevel::Info, "query_done",
                      {{"id", result.id},
                       {"kind", toString(request.kind)},
                       {"verdict", "shed"}});
    result.trace.id = request.id;
    result.trace.traceId = request.traceId;
    result.trace.kind = request.kind;
    result.trace.backend = request.options.backend;
    result.trace.verdict = Verdict::Shed;
    // Shed queries are exactly what an overloaded operator greps for: they
    // land in the flight recorder (pinned class) like every other outcome.
    recorder_.record(result.trace);
    return result;
}

unsigned Service::claimSolveThreads(int requested) {
    unsigned claimed = 1; // the query's own thread always solves
    threadsInUse_.fetch_add(1, std::memory_order_acq_rel);
    if (requested > 1) {
        const unsigned budget = std::max(workerCount(), 1u);
        const unsigned want = static_cast<unsigned>(requested) - 1;
        unsigned current = threadsInUse_.load(std::memory_order_relaxed);
        while (true) {
            const unsigned avail = budget > current ? budget - current : 0;
            const unsigned grant = std::min(want, avail);
            if (grant == 0) break;
            if (threadsInUse_.compare_exchange_weak(current, current + grant,
                                                    std::memory_order_acq_rel)) {
                claimed += grant;
                break;
            }
        }
    }
    return claimed;
}

void Service::releaseSolveThreads(unsigned claimed) {
    threadsInUse_.fetch_sub(claimed, std::memory_order_acq_rel);
}

void Service::beginDrain() {
    const std::lock_guard<std::mutex> lock(drainMutex_);
    if (draining_.exchange(true, std::memory_order_acq_rel)) return;
    util::logLineJson(util::LogLevel::Info, "service_drain",
                      {{"active_queries",
                        static_cast<std::uint64_t>(activeCancelFlags_.size())}});
}

void Service::cancelActive() {
    const std::lock_guard<std::mutex> lock(drainMutex_);
    for (std::atomic<bool>* flag : activeCancelFlags_)
        flag->store(true, std::memory_order_release);
}

std::size_t Service::activeQueries() const {
    const std::lock_guard<std::mutex> lock(drainMutex_);
    return activeCancelFlags_.size();
}

bool Service::registerActive(std::atomic<bool>* flag) {
    const std::lock_guard<std::mutex> lock(drainMutex_);
    if (draining_.load(std::memory_order_relaxed)) return false;
    activeCancelFlags_.push_back(flag);
    return true;
}

void Service::unregisterActive(std::atomic<bool>* flag) {
    const std::lock_guard<std::mutex> lock(drainMutex_);
    // Erase one instance only: concurrent queries may legally share one
    // caller-owned flag.
    for (auto it = activeCancelFlags_.begin(); it != activeCancelFlags_.end();
         ++it) {
        if (*it == flag) {
            *it = activeCancelFlags_.back();
            activeCancelFlags_.pop_back();
            return;
        }
    }
}

void Service::solveWithPolicy(const QueryRequest& request,
                              std::shared_ptr<const Compilation> compilation,
                              const std::optional<Clock::time_point>& deadline,
                              std::atomic<bool>* cancelFlag,
                              QueryResult& result, std::string& detail,
                              InflightQuery* inflight) {
    ServiceMetrics& metrics = ServiceMetrics::get();
    QueryOptions effective = request.options;
    effective.cancelFlag = cancelFlag;

    // Budget intra-query parallelism against the pool: a portfolio request
    // only fans out while the concurrently-solving queries leave headroom.
    const bool portfolioRequested =
        effective.backend == smt::BackendKind::Cdcl &&
        effective.portfolioWorkers > 1;
    const unsigned claimed =
        claimSolveThreads(portfolioRequested ? effective.portfolioWorkers : 1);
    struct ThreadsRelease {
        Service& service;
        unsigned claimed;
        ~ThreadsRelease() { service.releaseSolveThreads(claimed); }
    } threadsRelease{*this, claimed};
    effective.portfolioWorkers = static_cast<int>(claimed);
    result.trace.portfolioWorkers = static_cast<int>(claimed);
    if (inflight != nullptr)
        inflight->workers.store(static_cast<int>(claimed),
                                std::memory_order_relaxed);
    if (portfolioRequested) metrics.portfolioWidth.observe(claimed);

    // Warm-start reuse: single-worker CDCL queries on a recently-seen
    // fingerprint start from that fingerprint's cached snapshot instead of
    // cold, and leave an updated snapshot behind. Portfolio races are
    // excluded (their workers diverge from the replay baseline) and the
    // request's own warmStart, if any, wins.
    if (options_.warmStartCapacity > 0 &&
        effective.backend == smt::BackendKind::Cdcl && claimed == 1) {
        if (effective.warmStart == nullptr)
            effective.warmStart = snapshotFor(request.problem);
        effective.captureSnapshot = true;
    }

    bool fellBack = false;
    int attempt = 0;
    while (true) {
        ++attempt;
        if (deadline.has_value()) {
            // timeoutMs is end-to-end: each attempt only gets what is left.
            const double left = millisUntil(*deadline);
            if (left <= 0.0) {
                result.verdict = Verdict::TimedOut;
                metrics.deadlineExpired.inc();
                return;
            }
            effective.timeoutMs =
                std::max(1, static_cast<int>(std::ceil(left)));
        }
        try {
            util::FaultInjector::global().maybeFault("service.solve");
            Engine engine(compilation, effective);
            switch (request.kind) {
                case QueryKind::Feasibility: {
                    const FeasibilityReport report = engine.checkFeasible();
                    result.conflictingRules = report.conflictingRules;
                    result.verdict =
                        report.feasible ? Verdict::Sat : Verdict::Unsat;
                    break;
                }
                case QueryKind::Explain: {
                    const FeasibilityReport report =
                        engine.explainMinimalConflict();
                    result.conflictingRules = report.conflictingRules;
                    result.verdict =
                        report.feasible ? Verdict::Sat : Verdict::Unsat;
                    break;
                }
                case QueryKind::Synthesize: {
                    result.design = engine.synthesize();
                    result.verdict =
                        result.design.has_value() ? Verdict::Sat : Verdict::Unsat;
                    break;
                }
                case QueryKind::Optimize: {
                    result.design = engine.optimize();
                    result.verdict =
                        result.design.has_value() ? Verdict::Sat : Verdict::Unsat;
                    break;
                }
                case QueryKind::Enumerate: {
                    result.designs = engine.enumerateDesigns(
                        request.maxDesigns, /*optimizeFirst=*/true);
                    result.verdict =
                        result.designs.empty() ? Verdict::Unsat : Verdict::Sat;
                    detail = std::to_string(result.designs.size()) + " designs";
                    break;
                }
            }
            result.trace.stats = engine.lastSolveStats();
            // The engine (and its stats) is per-attempt, so these are clean
            // per-query increments, not cumulative re-counts.
            metrics.satSubsumed.inc(result.trace.stats.subsumedClauses);
            metrics.satEliminatedVars.inc(result.trace.stats.eliminatedVars);
            metrics.satProbes.inc(result.trace.stats.probedLiterals);
            metrics.satArenaGcs.inc(result.trace.stats.arenaGcs);
            metrics.satArenaWaste.set(
                static_cast<double>(result.trace.stats.arenaWasteBytes));
            if (const std::optional<smt::PortfolioStats>& portfolio =
                    engine.lastPortfolioStats();
                portfolio.has_value()) {
                metrics.portfolioQueries.inc();
                metrics.portfolioShared.inc(portfolio->clausesShared);
                metrics.portfolioImported.inc(portfolio->clausesImported);
                metrics.portfolioLost.inc(portfolio->clausesLost);
                if (portfolio->winner >= 0) {
                    ServiceMetrics::portfolioWins(portfolio->winnerConfig).inc();
                    metrics.portfolioCancelMs.observe(portfolio->cancelLatencyMs);
                }
                result.trace.portfolioWinner = portfolio->winnerConfig;
                result.trace.portfolioShared = portfolio->clausesShared;
                result.trace.portfolioImported = portfolio->clausesImported;
                result.trace.portfolioLost = portfolio->clausesLost;
                result.trace.portfolioCancelMs = portfolio->cancelLatencyMs;
            }
            result.trace.stopReason = engine.lastStopReason();
            if (effective.captureSnapshot) {
                result.trace.warmStartAttempted =
                    effective.warmStart != nullptr;
                result.trace.warmStartClauses = engine.lastWarmStartImported();
                if (engine.lastWarmStartImported() > 0)
                    metrics.warmImportedClauses.inc(
                        engine.lastWarmStartImported());
                if (engine.lastSnapshot() != nullptr)
                    storeSnapshot(request.problem, engine.lastSnapshot());
            }
            if (!engine.lastQueryUnknown()) return;
            if (cancelRequested(effective)) {
                result.verdict = Verdict::Cancelled;
                metrics.cancelled.inc();
                return;
            }
            const bool deadlineSpent =
                deadline.has_value() && millisUntil(*deadline) <= 0.0;
            // The deadline expiring mid-solve is a timeout; any other budget
            // giving out (conflicts/propagations/memory, retries included)
            // stays Unknown.
            result.verdict = deadlineSpent ? Verdict::TimedOut : Verdict::Unknown;
            if (deadlineSpent)
                return; // the end-to-end budget is spent; no point retrying
            if (!options_.retry.reseedOnUnknown ||
                attempt >= options_.retry.maxAttempts)
                return;
            effective.seed = deriveSeed(request.options.seed, attempt);
            ++result.retries;
            metrics.retries.inc();
        } catch (const std::exception&) {
            // Graceful degradation: a Z3 query whose backend is unavailable
            // or faults is re-answered by the built-in CDCL stack, once.
            if (options_.retry.fallbackToCdcl &&
                effective.backend == smt::BackendKind::Z3 && !fellBack) {
                fellBack = true;
                result.backendFellBack = true;
                metrics.fallbacks.inc();
                effective.backend = smt::BackendKind::Cdcl;
                --attempt; // the fallback re-solve is not a retry attempt
                continue;
            }
            throw;
        }
    }
}

QueryResult Service::runTimed(const QueryRequest& request, double queueWaitMs,
                              std::optional<Clock::time_point> deadline,
                              std::shared_ptr<InflightQuery> inflight) {
    util::Stopwatch totalTimer;
    QueryResult result;
    result.id = request.id;
    result.kind = request.kind;

    // The request's trace id becomes this thread's ambient log identity for
    // the query's whole execution — query_done and every line below it join
    // the server's http_request line on one grep.
    std::optional<util::ScopedLogTraceId> logScope;
    if (!request.traceId.empty()) logScope.emplace(request.traceId);

    // In-flight registry: run() admits here; runBatch admits at submission
    // (so queue wait is visible as the "queued" phase) and passes the entry.
    if (inflight == nullptr)
        inflight = recorder_.admit(request.id, request.traceId,
                                   /*sessionId=*/"", request.kind);
    struct InflightGuard {
        FlightRecorder& recorder;
        const std::shared_ptr<InflightQuery>& entry;
        ~InflightGuard() { recorder.finish(entry); }
    } inflightGuard{recorder_, inflight};

    // Span collection per query: always-on while instrumentation is enabled
    // (the flight recorder wants spans whether or not the client asked for a
    // trace in its response). The query joins the request's externally-owned
    // trace when the HTTP layer supplied one — nesting under its open "http"
    // span when that context is already installed on this thread — and
    // otherwise installs a fresh Trace, so everything below — Compilation
    // ctor ("compile"), Engine ("solve"), backend checks and their progress
    // samples — nests under "query".
    std::shared_ptr<obs::Trace> spanTrace = request.requestTrace;
    std::optional<obs::ScopedTrace> scopedTrace;
    std::optional<obs::Span> querySpan;
    if (obs::enabled()) {
        if (spanTrace == nullptr) spanTrace = std::make_shared<obs::Trace>();
        if (obs::currentContext().trace != spanTrace.get())
            scopedTrace.emplace(*spanTrace);
        querySpan.emplace("query");
    }

    ServiceMetrics& metrics = ServiceMetrics::get();
    bool cacheHit = false;
    double compileMs = 0.0;
    double solveMs = 0.0;
    std::string detail;

    // Drain/cancel plumbing: every admitted query solves under a cancel
    // flag the Service can reach — the caller's when one was supplied, this
    // stack slot otherwise (safe: the query is synchronous on this thread).
    std::atomic<bool> localCancel{false};
    std::atomic<bool>* cancelFlag = request.options.cancelFlag != nullptr
                                        ? request.options.cancelFlag
                                        : &localCancel;

    try {
        if (cancelRequested(request.options)) {
            // Cancelled while queued: report without doing any work.
            result.verdict = Verdict::Cancelled;
            metrics.cancelled.inc();
        } else if (deadline.has_value() && millisUntil(*deadline) <= 0.0) {
            // Expired while queued: timed out without solving.
            result.verdict = Verdict::TimedOut;
            metrics.deadlineExpired.inc();
        } else if (!registerActive(cancelFlag)) {
            // The service began draining before this query started: shed,
            // exactly like admission control (the work was never attempted).
            result.verdict = Verdict::Shed;
            metrics.shed.inc();
        } else {
            struct ActiveGuard {
                Service& service;
                std::atomic<bool>* flag;
                ~ActiveGuard() { service.unregisterActive(flag); }
            } activeGuard{*this, cancelFlag};
            inflight->phase.store(QueryPhase::Compile,
                                  std::memory_order_relaxed);
            const std::shared_ptr<const Compilation> compilation =
                obtain(request.problem, cacheHit, compileMs);
            inflight->phase.store(QueryPhase::Solve, std::memory_order_relaxed);
            util::Stopwatch solveTimer;
            // solveWithPolicy re-checks the deadline, so compile time is
            // deducted from the solver's budget automatically.
            solveWithPolicy(request, compilation, deadline, cancelFlag, result,
                            detail, inflight.get());
            solveMs = solveTimer.millis();
        }
    } catch (const std::exception& e) {
        // Failure isolation: no query ever throws out of the Service.
        result.verdict = Verdict::Error;
        result.error.errorKind = errorKindOf(e);
        result.error.message = e.what();
        metrics.failed.inc();
    }

    querySpan.reset(); // close "query" before exporting the tree
    scopedTrace.reset();
    const double totalMs = totalTimer.millis();

    metrics.queries(request.kind).inc();
    metrics.queryLatencyMs.observe(totalMs);
    if (queueWaitMs > 0.0) metrics.queueWaitMs.observe(queueWaitMs);

    util::logLineJson(util::LogLevel::Info, "query_done",
                      {{"id", result.id},
                       {"kind", toString(request.kind)},
                       {"cache", cacheHit ? "hit" : "miss"},
                       {"verdict", verdictName(result.verdict)},
                       {"total_ms", totalMs},
                       {"queue_wait_ms", queueWaitMs},
                       {"retries", result.retries},
                       {"cancelled", result.verdict == Verdict::Cancelled},
                       {"backend_fallback", result.backendFellBack},
                       {"error", result.error.errorKind}});

    // The trace is filled whether or not the client asked for it in the
    // response: the flight recorder retains it either way. resultToJson
    // still gates the wire payload on the request's collectTrace.
    QueryTrace& trace = result.trace;
    trace.id = request.id;
    trace.traceId = request.traceId;
    trace.kind = request.kind;
    trace.backend = request.options.backend;
    trace.cacheHit = cacheHit;
    trace.compileMs = compileMs;
    trace.solveMs = solveMs;
    trace.totalMs = totalMs;
    trace.verdict = result.verdict;
    trace.verdictDetail = std::move(detail);
    trace.queueWaitMs = queueWaitMs;
    trace.retries = result.retries;
    trace.backendFellBack = result.backendFellBack;
    trace.errorKind = result.error.errorKind;
    trace.errorMessage = result.error.message;
    trace.spans = std::move(spanTrace);
    recorder_.record(trace);
    // The caller declined a trace in its result: hand back an empty one
    // (the recorder's copy above is the surviving record).
    if (!request.options.collectTrace) result.trace = QueryTrace{};
    return result;
}

std::vector<QueryResult> Service::runBatch(
    const std::vector<QueryRequest>& requests) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(requests.size());
    // Hand the submitter's obs context to the workers so task spans nest
    // under any span open here; capture submit time for queue-wait metrics
    // and for the per-request end-to-end deadlines.
    const obs::Context context = obs::currentContext();
    const auto submitted = Clock::now();

    // Admission control: one slot per request, claimed by the worker
    // (Queued → Running) or by the shedder (Queued → Shed). runBatch joins
    // every future before returning, so the worker lambdas may safely hold
    // references to these locals and to `requests`. The depth itself lives
    // in queuedDepth_ so maxQueueDepth bounds concurrent runBatch calls
    // together; DropOldest can only shed victims from this batch's slots.
    constexpr int kQueued = 0, kRunning = 1, kShed = 2;
    struct Slot {
        std::atomic<int> state{0};
    };
    std::vector<Slot> slots(requests.size());

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const QueryRequest& request = requests[i];
        std::optional<Clock::time_point> deadline;
        if (request.options.timeoutMs > 0)
            deadline = submitted +
                       std::chrono::milliseconds(request.options.timeoutMs);

        if (options_.maxQueueDepth > 0 &&
            queuedDepth_.load(std::memory_order_acquire) >= options_.maxQueueDepth) {
            if (options_.shedPolicy == ShedPolicy::RejectNew) {
                slots[i].state.store(kShed, std::memory_order_release);
                std::promise<QueryResult> ready;
                ready.set_value(makeShedResult(request));
                futures.push_back(ready.get_future());
                continue;
            }
            // DropOldest: shed the longest-queued request that has not
            // started yet; when everything already runs, admit anyway.
            for (std::size_t j = 0; j < i; ++j) {
                int expected = kQueued;
                if (slots[j].state.compare_exchange_strong(
                        expected, kShed, std::memory_order_acq_rel)) {
                    queuedDepth_.fetch_sub(1, std::memory_order_acq_rel);
                    break;
                }
            }
        }

        queuedDepth_.fetch_add(1, std::memory_order_acq_rel);
        // Join the in-flight registry at submission: queue wait is visible
        // to GET /v1/debug/inflight as the "queued" phase.
        std::shared_ptr<InflightQuery> inflight = recorder_.admit(
            request.id, request.traceId, /*sessionId=*/"", request.kind);
        futures.push_back(pool_.submit([this, &request, &slots, i,
                                        context, submitted, deadline,
                                        inflight]() {
            try {
                // Latency-injection point (tests saturate the queue with
                // it); fires while the task still counts as queued, so a
                // delayed task remains eligible for DropOldest shedding.
                util::FaultInjector::global().maybeFault("service.task_start");
                int expected = kQueued;
                if (!slots[i].state.compare_exchange_strong(
                        expected, kRunning, std::memory_order_acq_rel)) {
                    // Shed while waiting: report it, never drop silently.
                    recorder_.finish(inflight);
                    return makeShedResult(request);
                }
                queuedDepth_.fetch_sub(1, std::memory_order_acq_rel);
                const obs::ScopedContext scoped(context);
                const double waitMs =
                    std::chrono::duration<double, std::milli>(Clock::now() -
                                                              submitted)
                        .count();
                return runTimed(request, waitMs, deadline, inflight);
            } catch (const std::exception& e) {
                // Only pre-claim faults land here (runTimed never throws).
                recorder_.finish(inflight);
                int expected = kQueued;
                if (slots[i].state.compare_exchange_strong(
                        expected, kRunning, std::memory_order_acq_rel))
                    queuedDepth_.fetch_sub(1, std::memory_order_acq_rel);
                QueryResult result;
                result.id = request.id;
                result.kind = request.kind;
                result.verdict = Verdict::Error;
                result.error.errorKind = errorKindOf(e);
                result.error.message = e.what();
                ServiceMetrics::get().failed.inc();
                return result;
            }
        }));
    }
    std::vector<QueryResult> results;
    results.reserve(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        results.push_back(futures[i].get());
        if (results.back().id.empty()) {
            results.back().id = std::to_string(i);
            results.back().trace.id = results.back().id;
        }
    }
    return results;
}

CacheStats Service::cacheStats() const {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    return CacheStats{hits_, misses_, lru_.size(), options_.cacheCapacity};
}

void Service::clearCache() {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    lru_.clear();
    index_.clear();
}

} // namespace lar::reason
