#include "reason/service.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "reason/problem_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace lar::reason {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Pre-interned handles into the global registry: interning locks once at
/// first use, after which every query updates plain atomics.
struct ServiceMetrics {
    obs::Counter& cacheHits;
    obs::Counter& cacheMisses;
    obs::Histogram& queryLatencyMs;
    obs::Histogram& compileMs;
    obs::Histogram& queueWaitMs;
    obs::Counter* queriesByKind[5];

    [[nodiscard]] obs::Counter& queries(QueryKind kind) {
        return *queriesByKind[static_cast<int>(kind)];
    }

    static ServiceMetrics& get() {
        static ServiceMetrics m = [] {
            obs::Registry& reg = obs::Registry::global();
            const std::vector<double> msBounds = {0.5,  1,   2,   5,   10,  20,
                                                  50,  100, 200, 500, 1000, 5000};
            ServiceMetrics built{
                reg.counter("lar_cache_hits_total",
                            "Compilation cache hits in Service::obtain"),
                reg.counter("lar_cache_misses_total",
                            "Compilation cache misses in Service::obtain"),
                reg.histogram("lar_query_latency_ms",
                              "End-to-end per-query latency in Service", msBounds),
                reg.histogram("lar_compile_ms",
                              "Problem compilation time on cache misses", msBounds),
                reg.histogram("lar_queue_wait_ms",
                              "Submit-to-start wait of batch queries", msBounds),
                {}};
            for (const QueryKind kind :
                 {QueryKind::Feasibility, QueryKind::Explain, QueryKind::Synthesize,
                  QueryKind::Optimize, QueryKind::Enumerate})
                built.queriesByKind[static_cast<int>(kind)] =
                    &reg.counter("lar_queries_total", "Queries answered, by kind",
                                 {{"kind", toString(kind)}});
            return built;
        }();
        return m;
    }
};

} // namespace

std::size_t Service::CacheKeyHash::operator()(const CacheKey& k) const {
    // splitmix64-style mix of the three words.
    std::uint64_t h = k.problemHash;
    for (const std::uint64_t w : {k.kbInstance, k.kbMutations}) {
        h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 31;
    }
    return static_cast<std::size_t>(h);
}

Service::CacheKey Service::fingerprint(const Problem& problem) {
    expects(problem.kb != nullptr, "Service: problem has no knowledge base");
    // problemToText covers every problem field; the KB contributes through
    // its revision token, not its content — cheaper than hashing the whole
    // catalog, and exact as long as mutation goes through the KB's API.
    const kb::KnowledgeBase::Revision rev = problem.kb->revision();
    return CacheKey{fnv1a64(problemToText(problem)), rev.instance,
                    rev.mutations};
}

Service::Service(const ServiceOptions& options)
    : options_(options), pool_(options.workers) {
    expects(options_.cacheCapacity > 0, "Service: cacheCapacity must be > 0");
}

std::shared_ptr<const Compilation> Service::obtain(const Problem& problem,
                                                   bool& cacheHit,
                                                   double& compileMs) {
    const CacheKey key = fingerprint(problem);
    {
        const std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second); // bump to front
            ++hits_;
            ServiceMetrics::get().cacheHits.inc();
            cacheHit = true;
            compileMs = 0.0;
            return it->second->second;
        }
        ++misses_;
        ServiceMetrics::get().cacheMisses.inc();
    }
    // Compile outside the lock: concurrent misses on *different* problems
    // proceed in parallel. Two threads missing the same key both compile;
    // the loser adopts the winner's (identical) entry.
    util::Stopwatch compileTimer;
    auto compiled = std::make_shared<const Compilation>(problem);
    compileMs = compileTimer.millis();
    ServiceMetrics::get().compileMs.observe(compileMs);
    cacheHit = false;

    const std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second->second;
    lru_.emplace_front(key, std::move(compiled));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > options_.cacheCapacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
    return lru_.front().second;
}

std::shared_ptr<const Compilation> Service::compilationFor(
    const Problem& problem) {
    bool hit = false;
    double ms = 0.0;
    return obtain(problem, hit, ms);
}

QueryResult Service::run(const QueryRequest& request) {
    return runTimed(request, /*queueWaitMs=*/0.0);
}

QueryResult Service::runTimed(const QueryRequest& request, double queueWaitMs) {
    util::Stopwatch totalTimer;
    QueryResult result;
    result.id = request.id;
    result.kind = request.kind;

    // Span collection per query: install a fresh Trace on this thread so
    // everything below — Compilation ctor ("compile"), Engine ("solve"),
    // backend checks and their progress samples — nests under "query".
    std::shared_ptr<obs::Trace> spanTrace;
    std::optional<obs::ScopedTrace> scopedTrace;
    std::optional<obs::Span> querySpan;
    if (request.options.collectTrace && obs::enabled()) {
        spanTrace = std::make_shared<obs::Trace>();
        scopedTrace.emplace(*spanTrace);
        querySpan.emplace("query");
    }

    bool cacheHit = false;
    double compileMs = 0.0;
    const std::shared_ptr<const Compilation> compilation =
        obtain(request.problem, cacheHit, compileMs);

    Engine engine(compilation, request.options);
    util::Stopwatch solveTimer;
    std::string verdict;
    switch (request.kind) {
        case QueryKind::Feasibility: {
            const FeasibilityReport report = engine.checkFeasible();
            result.feasible = report.feasible;
            result.timedOut = report.timedOut;
            result.conflictingRules = report.conflictingRules;
            verdict = report.timedOut ? "unknown"
                                      : (report.feasible ? "sat" : "unsat");
            break;
        }
        case QueryKind::Explain: {
            const FeasibilityReport report = engine.explainMinimalConflict();
            result.feasible = report.feasible;
            result.timedOut = report.timedOut;
            result.conflictingRules = report.conflictingRules;
            verdict = report.timedOut ? "unknown"
                                      : (report.feasible ? "sat" : "unsat");
            break;
        }
        case QueryKind::Synthesize: {
            result.design = engine.synthesize();
            result.feasible = result.design.has_value();
            verdict = result.feasible ? "sat" : "unsat";
            break;
        }
        case QueryKind::Optimize: {
            result.design = engine.optimize();
            result.feasible = result.design.has_value();
            verdict = result.feasible ? "sat" : "unsat";
            break;
        }
        case QueryKind::Enumerate: {
            result.designs =
                engine.enumerateDesigns(request.maxDesigns, /*optimizeFirst=*/true);
            result.feasible = !result.designs.empty();
            verdict = std::to_string(result.designs.size()) + " designs";
            break;
        }
    }
    const double solveMs = solveTimer.millis();
    querySpan.reset(); // close "query" before exporting the tree
    scopedTrace.reset();
    const double totalMs = totalTimer.millis();

    ServiceMetrics& metrics = ServiceMetrics::get();
    metrics.queries(request.kind).inc();
    metrics.queryLatencyMs.observe(totalMs);
    if (queueWaitMs > 0.0) metrics.queueWaitMs.observe(queueWaitMs);

    util::logLineJson(util::LogLevel::Info, "query_done",
                      {{"id", result.id},
                       {"kind", toString(request.kind)},
                       {"cache", cacheHit ? "hit" : "miss"},
                       {"verdict", verdict},
                       {"total_ms", totalMs},
                       {"queue_wait_ms", queueWaitMs}});

    if (request.options.collectTrace) {
        QueryTrace& trace = result.trace;
        trace.id = request.id;
        trace.kind = request.kind;
        trace.backend = request.options.backend;
        trace.cacheHit = cacheHit;
        trace.compileMs = compileMs;
        trace.solveMs = solveMs;
        trace.totalMs = totalMs;
        trace.verdict = std::move(verdict);
        trace.stats = engine.lastSolveStats();
        trace.spans = std::move(spanTrace);
    }
    return result;
}

std::vector<QueryResult> Service::runBatch(
    const std::vector<QueryRequest>& requests) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(requests.size());
    // Hand the submitter's obs context to the workers so task spans nest
    // under any span open here; capture submit time for queue-wait metrics.
    const obs::Context context = obs::currentContext();
    const auto submitted = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const QueryRequest& request = requests[i];
        futures.push_back(pool_.submit([this, &request, context, submitted]() {
            const obs::ScopedContext scoped(context);
            const double waitMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - submitted)
                    .count();
            return runTimed(request, waitMs);
        }));
    }
    std::vector<QueryResult> results;
    results.reserve(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        results.push_back(futures[i].get());
        if (results.back().id.empty()) {
            results.back().id = std::to_string(i);
            results.back().trace.id = results.back().id;
        }
    }
    return results;
}

CacheStats Service::cacheStats() const {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    return CacheStats{hits_, misses_, lru_.size(), options_.cacheCapacity};
}

void Service::clearCache() {
    const std::lock_guard<std::mutex> lock(cacheMutex_);
    lru_.clear();
    index_.clear();
}

} // namespace lar::reason
