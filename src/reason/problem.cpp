#include "reason/problem.hpp"

namespace lar::reason {

Problem makeDefaultProblem(const kb::KnowledgeBase& kb) {
    Problem p;
    p.kb = &kb;
    p.hardware[kb::HardwareClass::Switch] = {};
    p.hardware[kb::HardwareClass::Nic] = {};
    p.hardware[kb::HardwareClass::Server] = {};
    p.requiredCategories = {kb::Category::NetworkStack,
                            kb::Category::CongestionControl};
    p.optionalCategories = {kb::Category::Monitoring, kb::Category::Firewall,
                            kb::Category::VirtualSwitch, kb::Category::LoadBalancer,
                            kb::Category::TransportProtocol};
    return p;
}

WorkloadAggregates aggregateWorkloads(const std::vector<kb::Workload>& workloads) {
    WorkloadAggregates agg;
    for (const kb::Workload& w : workloads) {
        agg.totalKiloFlows += static_cast<double>(w.numFlows) / 1000.0;
        agg.totalGbps += w.peakBandwidthGbps;
        agg.totalPeakCores += w.peakCores;
    }
    return agg;
}

} // namespace lar::reason
