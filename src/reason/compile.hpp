// Compilation of a design Problem into solver formulas.
//
// Variable map:
//   sys/<name>        — system <name> is part of the design
//   hw/<class>/<model> — <model> is the chosen model for <class>
//   fact/<name>       — derived fact holds (defined as OR of providers + pin)
//   opt/<name>        — free deployment option switched on
//
// A Compilation is built once per (Problem, KB revision) and is immutable
// afterwards: it owns the formula store, the recorded hard assertions, the
// objective stack, and the variable maps, but **no solver**. Queries bind a
// SolverSession to it, which copies the store (node ids are preserved, so
// the compilation's variable maps stay valid), replays the hard assertions
// into a fresh backend, and owns all mutable solve state. This is what lets
// the Service cache compilations and share one across concurrent queries.
//
// Every hard rule asserted into a backend carries a track id whose
// human-readable description is kept in trackedRules(); unsat cores map back
// through it to produce the §6-style explanations ("which of your
// requirements are in conflict").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "reason/query_options.hpp"
#include "smt/backend.hpp"

namespace lar::reason {

class Compilation {
public:
    /// Compiles `problem` into formulas. The problem is copied; the
    /// knowledge base it references must outlive the compilation.
    explicit Compilation(const Problem& problem);

    /// One recorded hard constraint; track < 0 means untracked
    /// (definitional — never part of an explanation).
    struct HardAssertion {
        smt::NodeId formula = smt::kInvalidNode;
        int track = -1;
    };

    [[nodiscard]] const smt::FormulaStore& store() const { return store_; }
    [[nodiscard]] const Problem& problem() const { return problem_; }
    [[nodiscard]] const std::vector<HardAssertion>& hardAssertions() const {
        return hards_;
    }

    /// Description of tracked rule `track` (index into trackedRules()).
    [[nodiscard]] const std::vector<std::string>& trackedRules() const {
        return ruleDescriptions_;
    }
    [[nodiscard]] std::vector<std::string> describeTracks(
        const std::vector<int>& tracks) const;

    /// Lexicographic objective stack built from Problem::objectivePriority.
    [[nodiscard]] const std::vector<smt::ObjectiveSpec>& objectives() const {
        return objectives_;
    }

    /// Variable lookups (kInvalidNode when the entity is unknown).
    [[nodiscard]] smt::NodeId systemVar(const std::string& name) const;
    [[nodiscard]] smt::NodeId hardwareVar(kb::HardwareClass cls,
                                          const std::string& model) const;
    [[nodiscard]] smt::NodeId optionVar(const std::string& name) const;

    /// Reads `backend`'s current model into a Design (resource accounting
    /// and cost computed from the chosen hardware).
    [[nodiscard]] Design extractDesign(const smt::Backend& backend) const;

    /// Builds (in `store` — a session's copy) the clause that blocks
    /// `backend`'s current projected design (chosen systems + hardware), so
    /// the next check produces a different equivalence-class representative.
    [[nodiscard]] smt::NodeId blockingClause(const smt::Backend& backend,
                                             smt::FormulaStore& store) const;

private:
    // -- construction passes --------------------------------------------------
    void collectFactsAndOptions();
    void buildHardwareVars();
    void buildSystemVars();
    void defineFacts();
    void buildCategoryRules();
    void buildSystemRules();
    void buildCapabilityRules();
    void buildResourceRules();
    void buildBandwidthRules();
    void buildPerformanceBounds();
    void buildPins();
    void buildBudgets();
    void buildExtraConstraint();
    void buildObjectives();

    [[nodiscard]] smt::NodeId compileRequirement(const kb::Requirement& r);
    /// OR over simple paths from `from` to `to` in the ordering graph of
    /// `objective`, with each path contributing AND(edge conditions).
    [[nodiscard]] smt::NodeId betterFormula(const std::string& objective,
                                            const std::string& from,
                                            const std::string& to);

    int track(std::string description);
    void assertTracked(smt::NodeId formula, std::string description);
    void assertUntracked(smt::NodeId formula);

    Problem problem_;
    smt::FormulaStore store_;
    std::vector<HardAssertion> hards_;

    std::map<std::string, smt::NodeId> systemVars_;
    std::map<kb::HardwareClass, std::map<std::string, smt::NodeId>> hardwareVars_;
    std::map<std::string, smt::NodeId> factVars_;
    std::map<std::string, smt::NodeId> optionVars_;

    std::vector<std::string> ruleDescriptions_;
    std::vector<smt::ObjectiveSpec> objectives_;
};

/// A query's mutable solver state over an immutable (possibly shared,
/// possibly cached) Compilation: a private copy of the formula store plus a
/// fresh backend with the hard assertions replayed. Everything a query
/// locks in — optimization bounds, blocking clauses, learned clauses —
/// stays inside the session and dies with it.
class SolverSession {
public:
    explicit SolverSession(std::shared_ptr<const Compilation> compilation,
                           const QueryOptions& options = {});

    // The backend holds a pointer to store_, so the session must stay put
    // (guaranteed copy elision still allows returning a prvalue).
    SolverSession(const SolverSession&) = delete;
    SolverSession& operator=(const SolverSession&) = delete;

    [[nodiscard]] smt::Backend& backend() { return *backend_; }
    [[nodiscard]] const smt::Backend& backend() const { return *backend_; }
    /// The session's private store copy (mutable: what-if assumptions and
    /// blocking clauses build new nodes here; compilation node ids are
    /// preserved by the copy).
    [[nodiscard]] smt::FormulaStore& store() { return store_; }
    [[nodiscard]] const Compilation& compilation() const { return *compilation_; }

    [[nodiscard]] Design extractDesign() const {
        return compilation_->extractDesign(*backend_);
    }
    /// Asserts the clause blocking the backend's current projected design.
    void blockCurrentDesign();

    /// Clauses integrated from QueryOptions::warmStart (0 = cold start or
    /// the backend refused the snapshot).
    [[nodiscard]] std::size_t warmStartImported() const {
        return warmStartImported_;
    }
    /// True when a warm-start snapshot was requested AND the backend
    /// accepted it.
    [[nodiscard]] bool warmStarted() const { return warmStarted_; }
    /// Exports the session's learnt heuristic state for a later session over
    /// the same compilation; empty when the backend doesn't support it or
    /// the clause DB grew past the replay baseline (optimization bounds,
    /// blocking clauses).
    [[nodiscard]] sat::SolverSnapshot exportSnapshot() const {
        return backend_->exportSnapshot();
    }

private:
    std::shared_ptr<const Compilation> compilation_;
    smt::FormulaStore store_;
    std::unique_ptr<smt::Backend> backend_;
    std::size_t warmStartImported_ = 0;
    bool warmStarted_ = false;
};

} // namespace lar::reason
