// Compilation of a design Problem into solver formulas.
//
// Variable map:
//   sys/<name>        — system <name> is part of the design
//   hw/<class>/<model> — <model> is the chosen model for <class>
//   fact/<name>       — derived fact holds (defined as OR of providers + pin)
//   opt/<name>        — free deployment option switched on
//
// Every hard rule asserted into the backend carries a track id whose
// human-readable description is kept in trackedRules(); unsat cores map back
// through it to produce the §6-style explanations ("which of your
// requirements are in conflict").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "smt/backend.hpp"

namespace lar::reason {

class Compilation {
public:
    Compilation(const Problem& problem, smt::BackendKind kind);

    [[nodiscard]] smt::Backend& backend() { return *backend_; }
    [[nodiscard]] smt::FormulaStore& store() { return store_; }
    [[nodiscard]] const Problem& problem() const { return *problem_; }

    /// Description of tracked rule `track` (index into trackedRules()).
    [[nodiscard]] const std::vector<std::string>& trackedRules() const {
        return ruleDescriptions_;
    }
    [[nodiscard]] std::vector<std::string> describeTracks(
        const std::vector<int>& tracks) const;

    /// Lexicographic objective stack built from Problem::objectivePriority.
    [[nodiscard]] const std::vector<smt::ObjectiveSpec>& objectives() const {
        return objectives_;
    }

    /// Variable lookups (kInvalidNode when the entity is unknown).
    [[nodiscard]] smt::NodeId systemVar(const std::string& name) const;
    [[nodiscard]] smt::NodeId hardwareVar(kb::HardwareClass cls,
                                          const std::string& model) const;
    [[nodiscard]] smt::NodeId optionVar(const std::string& name) const;

    /// Reads the backend's current model into a Design (resource accounting
    /// and cost computed from the chosen hardware).
    [[nodiscard]] Design extractDesign() const;

    /// Blocks the current projected design (chosen systems + hardware) so
    /// the next check produces a different equivalence-class representative.
    void blockCurrentDesign();

private:
    // -- construction passes --------------------------------------------------
    void collectFactsAndOptions();
    void buildHardwareVars();
    void buildSystemVars();
    void defineFacts();
    void buildCategoryRules();
    void buildSystemRules();
    void buildCapabilityRules();
    void buildResourceRules();
    void buildBandwidthRules();
    void buildPerformanceBounds();
    void buildPins();
    void buildBudgets();
    void buildExtraConstraint();
    void buildObjectives();

    [[nodiscard]] smt::NodeId compileRequirement(const kb::Requirement& r);
    /// OR over simple paths from `from` to `to` in the ordering graph of
    /// `objective`, with each path contributing AND(edge conditions).
    [[nodiscard]] smt::NodeId betterFormula(const std::string& objective,
                                            const std::string& from,
                                            const std::string& to);

    int track(std::string description);
    void assertTracked(smt::NodeId formula, std::string description);

    const Problem* problem_;
    smt::FormulaStore store_;
    std::unique_ptr<smt::Backend> backend_;

    std::map<std::string, smt::NodeId> systemVars_;
    std::map<kb::HardwareClass, std::map<std::string, smt::NodeId>> hardwareVars_;
    std::map<std::string, smt::NodeId> factVars_;
    std::map<std::string, smt::NodeId> optionVars_;

    std::vector<std::string> ruleDescriptions_;
    std::vector<smt::ObjectiveSpec> objectives_;
};

} // namespace lar::reason
