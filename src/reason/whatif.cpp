#include "reason/whatif.hpp"

#include "util/error.hpp"

namespace lar::reason {

WhatIfSession::WhatIfSession(const Problem& problem, smt::BackendKind kind)
    : problem_(problem) {
    compilation_ = std::make_unique<Compilation>(problem_, kind);
}

WhatIfAnswer WhatIfSession::ask(const Variation& variation) {
    ++queries_;
    smt::FormulaStore& store = compilation_->store();
    std::vector<smt::NodeId> assumptions;

    for (const auto& [name, include] : variation.systems) {
        const smt::NodeId var = compilation_->systemVar(name);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: unknown system " + name);
        assumptions.push_back(include ? var : store.mkNot(var));
    }
    for (const auto& [cls, model] : variation.hardwareModels) {
        const smt::NodeId var = compilation_->hardwareVar(cls, model);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: model " + model + " not a candidate for " +
                    toString(cls));
        assumptions.push_back(var);
    }
    for (const auto& [name, enabled] : variation.options) {
        const smt::NodeId var = compilation_->optionVar(name);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: unknown option " + name);
        assumptions.push_back(enabled ? var : store.mkNot(var));
    }

    WhatIfAnswer answer;
    switch (compilation_->backend().check(assumptions)) {
        case smt::CheckStatus::Sat:
            answer.feasible = true;
            answer.design = compilation_->extractDesign();
            break;
        case smt::CheckStatus::Unsat:
            answer.conflictingRules = compilation_->describeTracks(
                compilation_->backend().unsatCore().tracks);
            break;
        case smt::CheckStatus::Unknown:
            throw LogicError("WhatIfSession: solver returned unknown");
    }
    return answer;
}

} // namespace lar::reason
