#include "reason/whatif.hpp"

#include "util/error.hpp"

namespace lar::reason {

WhatIfSession::WhatIfSession(const Problem& problem, const QueryOptions& options)
    : session_(std::make_shared<const Compilation>(problem), options) {}

WhatIfSession::WhatIfSession(std::shared_ptr<const Compilation> compilation,
                             const QueryOptions& options)
    : session_(std::move(compilation), options) {}


WhatIfAnswer WhatIfSession::ask(const Variation& variation) {
    ++queries_;
    const Compilation& compilation = session_.compilation();
    smt::FormulaStore& store = session_.store();
    std::vector<smt::NodeId> assumptions;

    for (const auto& [name, include] : variation.systems) {
        const smt::NodeId var = compilation.systemVar(name);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: unknown system " + name);
        assumptions.push_back(include ? var : store.mkNot(var));
    }
    for (const auto& [cls, model] : variation.hardwareModels) {
        const smt::NodeId var = compilation.hardwareVar(cls, model);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: model " + model + " not a candidate for " +
                    toString(cls));
        assumptions.push_back(var);
    }
    for (const auto& [name, enabled] : variation.options) {
        const smt::NodeId var = compilation.optionVar(name);
        expects(var != smt::kInvalidNode,
                "WhatIfSession: unknown option " + name);
        assumptions.push_back(enabled ? var : store.mkNot(var));
    }

    WhatIfAnswer answer;
    switch (session_.backend().check(assumptions)) {
        case smt::CheckStatus::Sat:
            answer.feasible = true;
            answer.design = session_.extractDesign();
            break;
        case smt::CheckStatus::Unsat:
            answer.conflictingRules = compilation.describeTracks(
                session_.backend().unsatCore().tracks);
            break;
        case smt::CheckStatus::Unknown:
            answer.timedOut = true;
            break;
    }
    return answer;
}

} // namespace lar::reason
