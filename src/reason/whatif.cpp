#include "reason/whatif.hpp"

namespace lar::reason {

WhatIfSession::WhatIfSession(const Problem& problem, const QueryOptions& options)
    : session_(std::make_shared<const Compilation>(problem), options) {}

WhatIfSession::WhatIfSession(std::shared_ptr<const Compilation> compilation,
                             const QueryOptions& options)
    : session_(std::move(compilation), options) {}


WhatIfAnswer WhatIfSession::ask(const Variation& variation) {
    ++queries_;
    const Compilation& compilation = session_.compilation();
    smt::FormulaStore& store = session_.store();
    std::vector<smt::NodeId> assumptions;
    WhatIfAnswer answer;

    // Unknown names are a structured error, not an exception and not a
    // silent no-op: an assumption that maps to nothing would make the ask
    // vacuously feasible, which is the worst possible answer to a typo.
    for (const auto& [name, include] : variation.systems) {
        const smt::NodeId var = compilation.systemVar(name);
        if (var == smt::kInvalidNode) {
            answer.unknownNames.push_back("system/" + name);
            continue;
        }
        assumptions.push_back(include ? var : store.mkNot(var));
    }
    for (const auto& [cls, model] : variation.hardwareModels) {
        const smt::NodeId var = compilation.hardwareVar(cls, model);
        if (var == smt::kInvalidNode) {
            answer.unknownNames.push_back("hardware/" + toString(cls) + "/" +
                                          model);
            continue;
        }
        assumptions.push_back(var);
    }
    for (const auto& [name, enabled] : variation.options) {
        const smt::NodeId var = compilation.optionVar(name);
        if (var == smt::kInvalidNode) {
            answer.unknownNames.push_back("option/" + name);
            continue;
        }
        assumptions.push_back(enabled ? var : store.mkNot(var));
    }
    if (!answer.unknownNames.empty()) {
        answer.verdict = Verdict::Error;
        return answer;
    }

    switch (session_.backend().check(assumptions)) {
        case smt::CheckStatus::Sat:
            answer.verdict = Verdict::Sat;
            answer.design = session_.extractDesign();
            break;
        case smt::CheckStatus::Unsat:
            answer.verdict = Verdict::Unsat;
            answer.conflictingRules = compilation.describeTracks(
                session_.backend().unsatCore().tracks);
            break;
        case smt::CheckStatus::Unknown:
            answer.stopReason = session_.backend().lastStopReason();
            switch (answer.stopReason) {
                case sat::StopReason::Deadline:
                    answer.verdict = Verdict::TimedOut;
                    break;
                case sat::StopReason::Cancelled:
                    answer.verdict = Verdict::Cancelled;
                    break;
                default: answer.verdict = Verdict::Unknown; break;
            }
            break;
    }
    return answer;
}

} // namespace lar::reason
