// Incremental what-if sessions.
//
// An architect's exploration (§5.1) is a burst of small variations on one
// problem: pin this system, forbid that one, freeze a hardware model, try
// again. Engine answers each by recompiling; a WhatIfSession compiles once
// (or binds a cached Compilation) and answers every variation through
// solver assumptions, exploiting the CDCL backend's incrementality (learned
// clauses persist across queries).
//
// Only pin-style variations are expressible this way — anything that
// changes rules (new workloads, different budgets) needs a fresh Engine.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "reason/compile.hpp"
#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "reason/query_options.hpp"

namespace lar::reason {

/// One what-if variation: pins applied on top of the base problem.
struct Variation {
    /// System name → must be deployed (true) / must not (false).
    std::map<std::string, bool> systems;
    /// Hardware class → the model that must be used.
    std::map<kb::HardwareClass, std::string> hardwareModels;
    /// Option name → forced value.
    std::map<std::string, bool> options;
};

struct WhatIfAnswer {
    bool feasible = false;
    /// Solver gave up (QueryOptions::timeoutMs) before a verdict.
    bool timedOut = false;
    std::optional<Design> design;              ///< present when feasible
    std::vector<std::string> conflictingRules; ///< present when infeasible
};

class WhatIfSession {
public:
    explicit WhatIfSession(const Problem& problem,
                           const QueryOptions& options = {});

    /// Binds the session to an already-compiled (possibly cached) problem.
    explicit WhatIfSession(std::shared_ptr<const Compilation> compilation,
                           const QueryOptions& options = {});


    /// Answers a variation without recompiling. Repeated calls are
    /// independent: assumptions do not accumulate.
    [[nodiscard]] WhatIfAnswer ask(const Variation& variation);

    /// Number of variations answered so far (for reporting).
    [[nodiscard]] int queriesAnswered() const { return queries_; }

    [[nodiscard]] const Compilation& compilation() const {
        return session_.compilation();
    }

private:
    SolverSession session_;
    int queries_ = 0;
};

} // namespace lar::reason
