// Incremental what-if sessions.
//
// An architect's exploration (§5.1) is a burst of small variations on one
// problem: pin this system, forbid that one, freeze a hardware model, try
// again. Engine answers each by recompiling; a WhatIfSession compiles once
// (or binds a cached Compilation) and answers every variation through
// solver assumptions, exploiting the CDCL backend's incrementality (learned
// clauses persist across queries).
//
// Only pin-style variations are expressible this way — anything that
// changes rules (new workloads, different budgets) needs a fresh Engine.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "reason/compile.hpp"
#include "reason/design.hpp"
#include "reason/problem.hpp"
#include "reason/query_options.hpp"
#include "reason/trace.hpp"

namespace lar::reason {

/// One what-if variation: pins applied on top of the base problem.
struct Variation {
    /// System name → must be deployed (true) / must not (false).
    std::map<std::string, bool> systems;
    /// Hardware class → the model that must be used.
    std::map<kb::HardwareClass, std::string> hardwareModels;
    /// Option name → forced value.
    std::map<std::string, bool> options;
};

/// Answer to one variation, unified on the Verdict enum (the same
/// authoritative outcome QueryResult/QueryTrace carry):
///  * Sat       — feasible; `design` holds a witness;
///  * Unsat     — infeasible; `conflictingRules` explains why;
///  * TimedOut  — the deadline expired before a verdict;
///  * Cancelled — the cancel flag was observed;
///  * Unknown   — a non-deadline budget (conflicts/propagations/memory)
///                gave out (`stopReason` carries the exact one);
///  * Error     — the variation named entities the compilation doesn't know
///                (`unknownNames` lists them); nothing was solved.
struct WhatIfAnswer {
    Verdict verdict = Verdict::Unknown;
    /// Why a non-definitive ask stopped (None for Sat/Unsat/Error):
    /// distinguishes budget-interrupted from deadline expiry.
    sat::StopReason stopReason = sat::StopReason::None;
    std::optional<Design> design;              ///< present when verdict == Sat
    std::vector<std::string> conflictingRules; ///< present when verdict == Unsat
    /// Entities the variation named that don't exist in the compilation
    /// ("system/<name>", "hardware/<class>/<model>", "option/<name>");
    /// non-empty exactly when verdict == Error.
    std::vector<std::string> unknownNames;
};

class WhatIfSession {
public:
    explicit WhatIfSession(const Problem& problem,
                           const QueryOptions& options = {});

    /// Binds the session to an already-compiled (possibly cached) problem.
    explicit WhatIfSession(std::shared_ptr<const Compilation> compilation,
                           const QueryOptions& options = {});


    /// Answers a variation without recompiling. Repeated calls are
    /// independent: assumptions do not accumulate. A variation naming
    /// unknown systems/models/options returns Verdict::Error with the
    /// offending names listed — it never reaches the solver (an unknown
    /// name would otherwise map to no assumption and the ask would succeed
    /// vacuously).
    [[nodiscard]] WhatIfAnswer ask(const Variation& variation);

    /// Number of variations answered so far (for reporting).
    [[nodiscard]] int queriesAnswered() const { return queries_; }

    [[nodiscard]] const Compilation& compilation() const {
        return session_.compilation();
    }

    /// Cumulative search counters of the session's backend (asks share one
    /// backend instance, so these grow across asks).
    [[nodiscard]] sat::SolverStats solveStats() const {
        return session_.backend().stats();
    }

    /// True when the session started from an accepted warm-start snapshot.
    [[nodiscard]] bool warmStarted() const { return session_.warmStarted(); }
    /// Clauses integrated from the warm-start snapshot (0 = cold).
    [[nodiscard]] std::size_t warmStartImported() const {
        return session_.warmStartImported();
    }
    /// Exports the solver's learnt heuristic state for a later session over
    /// the same compilation fingerprint (empty when nothing exportable —
    /// asks only add assumptions, never clauses, so this normally succeeds).
    [[nodiscard]] sat::SolverSnapshot exportSnapshot() const {
        return session_.exportSnapshot();
    }

private:
    SolverSession session_;
    int queries_ = 0;
};

} // namespace lar::reason
