#include "reason/problem_io.hpp"

#include "json/parse.hpp"
#include "json/write.hpp"
#include "kb/serialize.hpp"
#include "util/error.hpp"

namespace lar::reason {

namespace {

json::Value categorySet(const std::set<kb::Category>& categories) {
    json::Array arr;
    for (const kb::Category c : categories) arr.emplace_back(toString(c));
    return json::Value(std::move(arr));
}

std::set<kb::Category> categorySetFromJson(const json::Value& v) {
    std::set<kb::Category> out;
    for (const json::Value& item : v.asArray()) {
        const std::string name = item.asString();
        bool found = false;
        for (const kb::Category c : kb::kAllCategories) {
            if (toString(c) == name) {
                out.insert(c);
                found = true;
                break;
            }
        }
        if (!found) throw ParseError("problem: unknown category '" + name + "'");
    }
    return out;
}

json::Value boolMap(const std::map<std::string, bool>& m) {
    json::Object obj;
    for (const auto& [key, value] : m) obj[key] = value;
    return json::Value(std::move(obj));
}

std::map<std::string, bool> boolMapFromJson(const json::Value& v) {
    std::map<std::string, bool> out;
    for (const auto& [key, value] : v.asObject().entries())
        out.emplace(key, value.asBool());
    return out;
}

} // namespace

json::Value toJson(const Problem& problem) {
    json::Value v;
    json::Object hardware;
    for (const auto& [cls, choice] : problem.hardware) {
        json::Value hv;
        hv["count"] = std::int64_t{choice.count};
        if (choice.pinnedModel.has_value())
            hv["pinned_model"] = *choice.pinnedModel;
        json::Array candidates;
        for (const std::string& m : choice.candidateModels)
            candidates.emplace_back(m);
        hv["candidates"] = json::Value(std::move(candidates));
        hardware[toString(cls)] = std::move(hv);
    }
    v["hardware"] = json::Value(std::move(hardware));

    json::Array workloads;
    for (const kb::Workload& w : problem.workloads) workloads.push_back(kb::toJson(w));
    v["workloads"] = json::Value(std::move(workloads));

    json::Array priority;
    for (const std::string& o : problem.objectivePriority) priority.emplace_back(o);
    v["objective_priority"] = json::Value(std::move(priority));

    json::Array capabilities;
    for (const std::string& c : problem.requiredCapabilities)
        capabilities.emplace_back(c);
    v["required_capabilities"] = json::Value(std::move(capabilities));

    v["required_categories"] = categorySet(problem.requiredCategories);
    v["optional_categories"] = categorySet(problem.optionalCategories);
    v["pinned_systems"] = boolMap(problem.pinnedSystems);
    v["pinned_facts"] = boolMap(problem.pinnedFacts);
    v["pinned_options"] = boolMap(problem.pinnedOptions);
    if (!problem.extraConstraint.isTrivial())
        v["extra_constraint"] = kb::toJson(problem.extraConstraint);
    if (problem.maxHardwareCostUsd.has_value())
        v["max_hardware_cost_usd"] = *problem.maxHardwareCostUsd;
    if (problem.maxPowerW.has_value()) v["max_power_w"] = *problem.maxPowerW;
    v["common_sense_rules"] = problem.commonSenseRules;
    v["prefer_minimal_design"] = problem.preferMinimalDesign;
    v["forbid_research_grade"] = problem.forbidResearchGrade;
    return v;
}

Problem problemFromJson(const json::Value& v, const kb::KnowledgeBase& kb) {
    Problem problem = makeDefaultProblem(kb);
    const json::Object& obj = v.asObject();

    if (obj.contains("hardware")) {
        problem.hardware.clear();
        for (const auto& [clsName, hv] : obj.at("hardware").asObject().entries()) {
            kb::HardwareClass cls = kb::HardwareClass::Switch;
            if (clsName == "switch") cls = kb::HardwareClass::Switch;
            else if (clsName == "nic") cls = kb::HardwareClass::Nic;
            else if (clsName == "server") cls = kb::HardwareClass::Server;
            else throw ParseError("problem: unknown hardware class '" + clsName + "'");
            HardwareChoice choice;
            const json::Object& ho = hv.asObject();
            if (ho.contains("count"))
                choice.count = static_cast<int>(ho.at("count").asInt());
            if (ho.contains("pinned_model")) {
                const std::string model = ho.at("pinned_model").asString();
                if (kb.findHardware(model) == nullptr)
                    throw EncodingError("problem: unknown pinned model " + model);
                choice.pinnedModel = model;
            }
            if (ho.contains("candidates")) {
                for (const json::Value& m : ho.at("candidates").asArray()) {
                    if (kb.findHardware(m.asString()) == nullptr)
                        throw EncodingError("problem: unknown candidate model " +
                                            m.asString());
                    choice.candidateModels.push_back(m.asString());
                }
            }
            problem.hardware[cls] = std::move(choice);
        }
    }
    if (obj.contains("workloads")) {
        for (const json::Value& w : obj.at("workloads").asArray())
            problem.workloads.push_back(kb::workloadFromJson(w));
    }
    if (obj.contains("objective_priority")) {
        for (const json::Value& o : obj.at("objective_priority").asArray())
            problem.objectivePriority.push_back(o.asString());
    }
    if (obj.contains("required_capabilities")) {
        for (const json::Value& c : obj.at("required_capabilities").asArray())
            problem.requiredCapabilities.push_back(c.asString());
    }
    if (obj.contains("required_categories"))
        problem.requiredCategories =
            categorySetFromJson(obj.at("required_categories"));
    if (obj.contains("optional_categories"))
        problem.optionalCategories =
            categorySetFromJson(obj.at("optional_categories"));
    if (obj.contains("pinned_systems")) {
        problem.pinnedSystems = boolMapFromJson(obj.at("pinned_systems"));
        for (const auto& [name, include] : problem.pinnedSystems)
            if (kb.findSystem(name) == nullptr)
                throw EncodingError("problem: pinned unknown system " + name);
    }
    if (obj.contains("pinned_facts"))
        problem.pinnedFacts = boolMapFromJson(obj.at("pinned_facts"));
    if (obj.contains("pinned_options"))
        problem.pinnedOptions = boolMapFromJson(obj.at("pinned_options"));
    if (obj.contains("extra_constraint"))
        problem.extraConstraint =
            kb::requirementFromJson(obj.at("extra_constraint"));
    if (obj.contains("max_hardware_cost_usd"))
        problem.maxHardwareCostUsd = obj.at("max_hardware_cost_usd").asDouble();
    if (obj.contains("max_power_w"))
        problem.maxPowerW = obj.at("max_power_w").asDouble();
    if (obj.contains("common_sense_rules"))
        problem.commonSenseRules = obj.at("common_sense_rules").asBool();
    if (obj.contains("prefer_minimal_design"))
        problem.preferMinimalDesign = obj.at("prefer_minimal_design").asBool();
    if (obj.contains("forbid_research_grade"))
        problem.forbidResearchGrade = obj.at("forbid_research_grade").asBool();
    return problem;
}

std::string problemToText(const Problem& problem) {
    return json::writePretty(toJson(problem));
}

Problem problemFromText(const std::string& text, const kb::KnowledgeBase& kb) {
    return problemFromJson(json::parse(text), kb);
}

} // namespace lar::reason
