#include "reason/flight_recorder.hpp"

#include <algorithm>

namespace lar::reason {

const char* queryPhaseName(QueryPhase phase) {
    switch (phase) {
        case QueryPhase::Queued: return "queued";
        case QueryPhase::Compile: return "compile";
        case QueryPhase::Solve: return "solve";
    }
    return "?";
}

double InflightQuery::elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - admitted)
        .count();
}

FlightRecorder::FlightRecorder(std::size_t capacity, int sampleEvery)
    : capacity_(capacity), sampleEvery_(sampleEvery < 1 ? 1 : sampleEvery) {
    entries_.reserve(capacity_);
}

// ---------------------------------------------------------------------------
// In-flight registry
// ---------------------------------------------------------------------------

std::shared_ptr<InflightQuery> FlightRecorder::admit(std::string id,
                                                     std::string traceId,
                                                     std::string sessionId,
                                                     QueryKind kind) {
    auto entry = std::make_shared<InflightQuery>();
    entry->id = std::move(id);
    entry->traceId = std::move(traceId);
    entry->sessionId = std::move(sessionId);
    entry->kind = kind;
    entry->admitted = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(inflightMutex_);
    inflight_.push_back(entry);
    return entry;
}

void FlightRecorder::finish(const std::shared_ptr<InflightQuery>& entry) {
    if (!entry) return;
    const std::lock_guard<std::mutex> lock(inflightMutex_);
    inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), entry),
                    inflight_.end());
}

std::vector<InflightSnapshot> FlightRecorder::inflight() const {
    const std::lock_guard<std::mutex> lock(inflightMutex_);
    std::vector<InflightSnapshot> out;
    out.reserve(inflight_.size());
    for (const auto& q : inflight_) {
        InflightSnapshot s;
        s.id = q->id;
        s.traceId = q->traceId;
        s.sessionId = q->sessionId;
        s.kind = q->kind;
        s.phase = q->phase.load(std::memory_order_relaxed);
        s.elapsedMs = q->elapsedMs();
        s.workers = q->workers.load(std::memory_order_relaxed);
        out.push_back(std::move(s));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Completed-trace retention
// ---------------------------------------------------------------------------

FlightRecorder::Class FlightRecorder::classify(const QueryTrace& trace) const {
    switch (trace.verdict) {
        case Verdict::Error:
        case Verdict::TimedOut:
        case Verdict::Cancelled:
        case Verdict::Shed: return Class::Pinned;
        default: break;
    }
    // The threshold only means something once the window has seen enough
    // healthy queries to rank against; before that everything is normal.
    // Strictly above: in a uniform workload (every query ~p95) nothing is
    // slow, rather than everything.
    if (durationCount_ >= 20 && trace.totalMs > p95Ms_) return Class::Slow;
    return Class::Normal;
}

double FlightRecorder::observeDuration(double totalMs) {
    durations_[durationNext_] = totalMs;
    durationNext_ = (durationNext_ + 1) % kDurationWindow;
    if (durationCount_ < kDurationWindow) ++durationCount_;
    double scratch[kDurationWindow];
    std::copy(durations_, durations_ + durationCount_, scratch);
    const std::size_t rank = (durationCount_ * 95) / 100;
    std::nth_element(scratch, scratch + rank, scratch + durationCount_);
    p95Ms_ = scratch[rank];
    return p95Ms_;
}

bool FlightRecorder::evictFor(Class incoming) {
    // Victim: lowest retention class present (never above the incoming
    // trace's own class), oldest within it — so failures displace samples,
    // never the other way round.
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (static_cast<int>(entries_[i].cls) > static_cast<int>(incoming))
            continue;
        if (victim == entries_.size() ||
            static_cast<int>(entries_[i].cls) <
                static_cast<int>(entries_[victim].cls) ||
            (entries_[i].cls == entries_[victim].cls &&
             entries_[i].seq < entries_[victim].seq))
            victim = i;
    }
    if (victim == entries_.size()) return false;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evicted_;
    return true;
}

void FlightRecorder::record(QueryTrace trace) {
    if (capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++recorded_;
    // Shed queries never ran, so their ~0ms "duration" would drag the p95
    // threshold toward zero during overload — exactly when it matters.
    if (trace.verdict != Verdict::Shed) observeDuration(trace.totalMs);
    const Class cls = classify(trace);
    if (entries_.size() >= capacity_) {
        if (cls == Class::Normal) {
            // The healthy majority is sampled once the ring is full: admit
            // one in sampleEvery_, drop the rest (they are the least
            // interesting and the most numerous).
            if (sampleCountdown_ > 0) {
                --sampleCountdown_;
                ++sampledOut_;
                return;
            }
            sampleCountdown_ = sampleEvery_ - 1;
        }
        if (!evictFor(cls)) return; // ring full of higher-class traces
    }
    Entry entry;
    entry.trace = std::move(trace);
    entry.cls = cls;
    entry.seq = nextSeq_++;
    entries_.push_back(std::move(entry));
}

std::optional<QueryTrace> FlightRecorder::find(std::string_view id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Entry* best = nullptr;
    for (const Entry& e : entries_) {
        const bool match = (!e.trace.traceId.empty() && e.trace.traceId == id) ||
                           e.trace.id == id;
        if (match && (best == nullptr || e.seq > best->seq)) best = &e;
    }
    if (best == nullptr) return std::nullopt;
    return best->trace;
}

std::vector<QueryTrace> FlightRecorder::traces(
    std::size_t limit, double minDurationMs,
    const std::optional<Verdict>& verdict) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const Entry& e : entries_) {
        if (e.trace.totalMs < minDurationMs) continue;
        if (verdict && e.trace.verdict != *verdict) continue;
        ordered.push_back(&e);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) { return a->seq > b->seq; });
    if (limit != 0 && ordered.size() > limit) ordered.resize(limit);
    std::vector<QueryTrace> out;
    out.reserve(ordered.size());
    for (const Entry* e : ordered) out.push_back(e->trace);
    return out;
}

std::size_t FlightRecorder::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

FlightRecorder::Stats FlightRecorder::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.recorded = recorded_;
    s.sampledOut = sampledOut_;
    s.evicted = evicted_;
    for (const Entry& e : entries_) {
        if (e.cls == Class::Pinned)
            ++s.pinned;
        else if (e.cls == Class::Slow)
            ++s.slow;
        else
            ++s.normal;
    }
    s.p95Ms = p95Ms_;
    return s;
}

} // namespace lar::reason
