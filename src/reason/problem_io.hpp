// JSON (de)serialization of design problems.
//
// A problem spec references a knowledge base loaded separately (problems
// are small and user-authored; knowledge bases are large and shared), so
// fromJson() takes the KB the problem should bind to. Used by the larctl
// CLI and by teams exchanging architecture questions (§1's cross-team
// planning use case).
#pragma once

#include "json/value.hpp"
#include "reason/problem.hpp"

namespace lar::reason {

[[nodiscard]] json::Value toJson(const Problem& problem);

/// Builds a Problem bound to `kb` from a spec. Missing optional fields get
/// makeDefaultProblem() defaults. Throws ParseError on malformed specs and
/// EncodingError on references to unknown systems/models.
[[nodiscard]] Problem problemFromJson(const json::Value& v,
                                      const kb::KnowledgeBase& kb);

/// Text conveniences.
[[nodiscard]] std::string problemToText(const Problem& problem);
[[nodiscard]] Problem problemFromText(const std::string& text,
                                      const kb::KnowledgeBase& kb);

} // namespace lar::reason
