#include "reason/engine.hpp"

#include <algorithm>
#include <set>

#include "obs/span.hpp"
#include "util/error.hpp"

namespace lar::reason {

Engine::Engine(const Problem& problem, const QueryOptions& options)
    : compilation_(std::make_shared<const Compilation>(problem)),
      options_(options) {}

Engine::Engine(std::shared_ptr<const Compilation> compilation,
               const QueryOptions& options)
    : compilation_(std::move(compilation)), options_(options) {
    expects(compilation_ != nullptr, "Engine: null compilation");
}



void Engine::captureSessionTelemetry(const SolverSession& session) {
    lastStopReason_ = session.backend().lastStopReason();
    lastWarmStartImported_ = session.warmStartImported();
    lastSnapshot_.reset();
    if (options_.captureSnapshot) {
        sat::SolverSnapshot snap = session.exportSnapshot();
        if (!snap.empty())
            lastSnapshot_ =
                std::make_shared<const sat::SolverSnapshot>(std::move(snap));
    }
}

FeasibilityReport Engine::checkFeasible() {
    const obs::Span span("solve");
    FeasibilityReport report;
    SolverSession session = newSession();
    const smt::CheckStatus status = session.backend().check();
    report.feasible = status == smt::CheckStatus::Sat;
    report.timedOut = status == smt::CheckStatus::Unknown;
    if (status == smt::CheckStatus::Unsat) {
        report.conflictingRules =
            compilation_->describeTracks(session.backend().unsatCore().tracks);
    }
    lastStats_ = session.backend().stats();
    lastPortfolio_ = session.backend().portfolioStats();
    lastUnknown_ = report.timedOut;
    captureSessionTelemetry(session);
    return report;
}

FeasibilityReport Engine::explainMinimalConflict() {
    const obs::Span span("solve");
    FeasibilityReport report;
    SolverSession session = newSession();
    smt::Backend& backend = session.backend();
    lastUnknown_ = false;
    const smt::CheckStatus first = backend.check();
    if (first == smt::CheckStatus::Sat) {
        report.feasible = true;
        lastStats_ = backend.stats();
        lastPortfolio_ = backend.portfolioStats();
        captureSessionTelemetry(session);
        return report;
    }
    if (first == smt::CheckStatus::Unknown) {
        report.timedOut = true;
        lastStats_ = backend.stats();
        lastPortfolio_ = backend.portfolioStats();
        lastUnknown_ = true;
        captureSessionTelemetry(session);
        return report;
    }
    std::vector<int> core = backend.unsatCore().tracks;
    // Deletion-based minimization: drop one rule at a time; keep the drop
    // whenever the remainder is still unsatisfiable (adopting the possibly
    // even smaller core the solver returns).
    std::size_t i = 0;
    while (i < core.size()) {
        std::vector<int> candidate = core;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        if (backend.checkWithTracks(candidate) == smt::CheckStatus::Unsat) {
            std::vector<int> shrunk = backend.unsatCore().tracks;
            core = shrunk.empty() ? candidate : std::move(shrunk);
            i = 0; // restart scan over the smaller core
        } else {
            ++i;
        }
    }
    report.conflictingRules = compilation_->describeTracks(core);
    lastStats_ = backend.stats();
    lastPortfolio_ = backend.portfolioStats();
    captureSessionTelemetry(session);
    return report;
}

std::optional<Design> Engine::synthesize() {
    const obs::Span span("solve");
    SolverSession session = newSession();
    const smt::CheckStatus status = session.backend().check();
    lastStats_ = session.backend().stats();
    lastPortfolio_ = session.backend().portfolioStats();
    lastUnknown_ = status == smt::CheckStatus::Unknown;
    captureSessionTelemetry(session);
    if (status != smt::CheckStatus::Sat) return std::nullopt;
    return session.extractDesign();
}

std::optional<Design> Engine::optimize() {
    const obs::Span span("solve");
    SolverSession session = newSession();
    const smt::OptimizeResult result =
        session.backend().optimize(compilation_->objectives());
    lastStats_ = session.backend().stats();
    lastPortfolio_ = session.backend().portfolioStats();
    // An interrupted optimize that still found a model returns that
    // best-effort design; only "interrupted with nothing" counts as unknown.
    lastUnknown_ = result.unknown && !result.feasible;
    captureSessionTelemetry(session);
    if (!result.feasible) return std::nullopt;
    Design design = session.extractDesign();
    design.objectiveCosts = result.costs;
    return design;
}

std::vector<Design> Engine::enumerateDesigns(int maxDesigns, bool optimizeFirst) {
    const obs::Span span("solve");
    std::vector<Design> designs;
    SolverSession session = newSession();
    if (optimizeFirst) {
        // Lock in the optimal objective costs, then enumerate within them.
        const smt::OptimizeResult result =
            session.backend().optimize(compilation_->objectives());
        if (!result.feasible) {
            lastStats_ = session.backend().stats();
            lastPortfolio_ = session.backend().portfolioStats();
            lastUnknown_ = result.unknown;
            captureSessionTelemetry(session);
            return designs;
        }
    }
    smt::CheckStatus status = smt::CheckStatus::Sat;
    while (static_cast<int>(designs.size()) < maxDesigns) {
        status = session.backend().check();
        if (status != smt::CheckStatus::Sat) break;
        designs.push_back(session.extractDesign());
        session.blockCurrentDesign();
    }
    lastStats_ = session.backend().stats();
    lastPortfolio_ = session.backend().portfolioStats();
    // A partial enumeration is still an answer; only "interrupted before
    // the first design" is unknown.
    lastUnknown_ = designs.empty() && status == smt::CheckStatus::Unknown;
    captureSessionTelemetry(session);
    return designs;
}

ScenarioComparison compareScenarios(const Problem& a, const Problem& b,
                                    const QueryOptions& options) {
    ScenarioComparison cmp;
    cmp.a = Engine(a, options).optimize();
    cmp.b = Engine(b, options).optimize();
    if (cmp.a.has_value() && cmp.b.has_value()) cmp.changes = cmp.a->diff(*cmp.b);
    return cmp;
}


RetentionReport analyzeRetention(const Problem& problem, const std::string& system,
                                 const QueryOptions& options) {
    RetentionReport report;
    Problem keeping = problem;
    keeping.pinnedSystems[system] = true;
    report.keeping = Engine(keeping, options).optimize();
    report.unpinned = Engine(problem, options).optimize();
    if (report.keeping.has_value() && report.unpinned.has_value()) {
        const auto& kc = report.keeping->objectiveCosts;
        const auto& fc = report.unpinned->objectiveCosts;
        for (std::size_t i = 0; i < kc.size() && i < fc.size(); ++i)
            report.extraCostPerObjective.push_back(kc[i] - fc[i]);
        report.extraHardwareCostUsd =
            report.keeping->hardwareCostUsd - report.unpinned->hardwareCostUsd;
    }
    return report;
}


bool RetentionReport::worthSwitching(std::int64_t threshold) const {
    if (!keeping.has_value()) return true; // cannot keep it at all
    if (!unpinned.has_value()) return false;
    for (const std::int64_t delta : extraCostPerObjective) {
        if (delta > threshold) return true; // keeping costs too much here
        if (delta < 0) return false;        // keeping actually wins earlier level
    }
    return false;
}

std::vector<DisambiguationSuggestion> suggestDisambiguation(
    const Problem& problem, int sampleDesigns, const QueryOptions& options) {
    Engine engine(problem, options);
    const std::vector<Design> designs =
        engine.enumerateDesigns(sampleDesigns, /*optimizeFirst=*/true);
    std::vector<DisambiguationSuggestion> suggestions;
    if (designs.size() <= 1) return suggestions; // already unique (or infeasible)

    for (const kb::Category category : kb::kAllCategories) {
        std::set<std::string> choices;
        for (const Design& d : designs) {
            const auto it = d.chosen.find(category);
            choices.insert(it == d.chosen.end() ? "(none)" : it->second);
        }
        if (choices.size() <= 1) continue;
        DisambiguationSuggestion s;
        s.category = category;
        s.contenders.assign(choices.begin(), choices.end());
        std::string names;
        for (const std::string& c : s.contenders) {
            if (!names.empty()) names += ", ";
            names += c;
        }
        const std::string topObjective =
            problem.objectivePriority.empty() ? "your top objective"
                                              : problem.objectivePriority.front();
        s.suggestion = "the " + toString(category) +
                       " choice is not pinned down (" + names +
                       " tie at the optimum); encode an ordering among them on "
                       "'" + topObjective + "' or pin one to make the design "
                       "unique";
        suggestions.push_back(std::move(s));
    }
    return suggestions;
}


std::vector<RefinementHint> suggestRefinements(const Problem& problem,
                                               const Design& design) {
    expects(problem.kb != nullptr, "suggestRefinements: problem has no KB");
    const kb::KnowledgeBase& kb = *problem.kb;
    std::vector<RefinementHint> hints;
    for (const auto& [category, name] : design.chosen) {
        const kb::System& s = kb.system(name);
        RefinementHint hint;
        hint.system = name;
        if (s.constraints.isTrivial())
            hint.gaps.push_back("no deployment requirements encoded");
        if (s.demands.empty())
            hint.gaps.push_back("no resource demands encoded");
        const bool compared = std::any_of(
            kb.orderings().begin(), kb.orderings().end(),
            [&name = name](const kb::Ordering& o) {
                return o.better == name || o.worse == name;
            });
        if (!compared)
            hint.gaps.push_back("no orderings compare it with alternatives");
        if (!hint.gaps.empty()) hints.push_back(std::move(hint));
    }
    return hints;
}

InformationValue valueOfInformation(const Problem& problem,
                                    const std::string& objective,
                                    const std::string& systemA,
                                    const std::string& systemB,
                                    const QueryOptions& options) {
    expects(problem.kb != nullptr, "valueOfInformation: problem has no KB");
    InformationValue result;

    kb::KnowledgeBase kbA = *problem.kb; // deep copy
    kbA.addOrdering({systemA, systemB, objective, kb::Requirement::alwaysTrue(),
                     "hypothetical measurement", {}});
    Problem pa = problem;
    pa.kb = &kbA;
    result.ifABetter = Engine(pa, options).optimize();

    kb::KnowledgeBase kbB = *problem.kb;
    kbB.addOrdering({systemB, systemA, objective, kb::Requirement::alwaysTrue(),
                     "hypothetical measurement", {}});
    Problem pb = problem;
    pb.kb = &kbB;
    result.ifBBetter = Engine(pb, options).optimize();

    if (result.ifABetter.has_value() != result.ifBBetter.has_value()) {
        result.changesDesign = true;
    } else if (result.ifABetter.has_value() && result.ifBBetter.has_value()) {
        result.changesDesign = !result.ifABetter->diff(*result.ifBBetter).empty();
    }
    return result;
}


} // namespace lar::reason
