// Query flight recorder: the last N interesting QueryTraces plus a live
// registry of in-flight queries.
//
// /metrics aggregates individuals away and spans used to die with the
// QueryResult that carried them; the flight recorder is the middle ground an
// operator actually debugs from. Every query the Service completes lands
// here (whether or not the client asked for a trace in its response), is
// retained under a biased policy — failures are always kept, slow queries
// are kept, the healthy majority is sampled — and is retrievable by trace ID
// through GET /v1/debug/traces/{id} until it ages out. While a query runs it
// is visible in the in-flight registry (GET /v1/debug/inflight, larctl top):
// elapsed, phase, session, portfolio width.
//
// Lock discipline: one mutex over the completed ring, one over the in-flight
// list, both held only for short bounded scans (capacity defaults to 256
// entries). Per-entry live fields (phase, workers) are atomics so workers
// never take a recorder lock mid-solve.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "reason/trace.hpp"

namespace lar::reason {

/// Where an in-flight query currently is. Coarse on purpose — the span tree
/// carries the fine structure; this is what `larctl top` shows per row.
enum class QueryPhase { Queued, Compile, Solve };

/// Stable lowercase name: "queued", "compile", "solve".
[[nodiscard]] const char* queryPhaseName(QueryPhase phase);

/// One live query. The registry and the executing worker share ownership;
/// the worker mutates `phase`/`workers` without locks as the query advances.
struct InflightQuery {
    std::string id;        ///< caller-supplied query id
    std::string traceId;   ///< request trace identity ("" when none)
    std::string sessionId; ///< owning what-if session ("" for plain queries)
    QueryKind kind = QueryKind::Optimize;
    std::chrono::steady_clock::time_point admitted;
    std::atomic<QueryPhase> phase{QueryPhase::Queued};
    std::atomic<int> workers{1}; ///< portfolio width actually granted

    [[nodiscard]] double elapsedMs() const;
};

/// Point-in-time copy of one in-flight entry (what the endpoints serialize).
struct InflightSnapshot {
    std::string id;
    std::string traceId;
    std::string sessionId;
    QueryKind kind = QueryKind::Optimize;
    QueryPhase phase = QueryPhase::Queued;
    double elapsedMs = 0.0;
    int workers = 1;
};

class FlightRecorder {
public:
    /// `capacity` bounds the completed-trace ring (0 disables retention but
    /// keeps the in-flight registry working). `sampleEvery` is the healthy-
    /// query admission rate once the ring is full: 1 keeps every normal
    /// trace (evicting the oldest normal), k keeps one in k.
    explicit FlightRecorder(std::size_t capacity = 256, int sampleEvery = 4);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    // -- in-flight registry ---------------------------------------------

    /// Registers a query at admission; the returned entry stays listed until
    /// finish(). Callers keep the pointer and update phase/workers directly.
    [[nodiscard]] std::shared_ptr<InflightQuery> admit(std::string id,
                                                       std::string traceId,
                                                       std::string sessionId,
                                                       QueryKind kind);
    /// Removes the entry from the registry (idempotent).
    void finish(const std::shared_ptr<InflightQuery>& entry);

    /// All currently in-flight queries, oldest first.
    [[nodiscard]] std::vector<InflightSnapshot> inflight() const;

    // -- completed-trace retention --------------------------------------

    /// Retains a completed trace under the biased policy. Failure verdicts
    /// (Error/TimedOut/Cancelled/Shed) are pinned — they evict only each
    /// other; traces strictly above the sliding p95 duration form the slow
    /// set; the rest are sampled. Total retained never exceeds capacity().
    void record(QueryTrace trace);

    /// The trace whose traceId — or, failing that, whose query id — equals
    /// `id`. Most-recent match wins when ids collide.
    [[nodiscard]] std::optional<QueryTrace> find(std::string_view id) const;

    /// Retained traces, newest first. `minDurationMs` and `verdict` filter;
    /// `limit` 0 means all.
    [[nodiscard]] std::vector<QueryTrace> traces(
        std::size_t limit = 0, double minDurationMs = 0.0,
        const std::optional<Verdict>& verdict = std::nullopt) const;

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t size() const;

    /// Counters for /statusz and tests.
    struct Stats {
        std::uint64_t recorded = 0;      ///< record() calls
        std::uint64_t sampledOut = 0;    ///< healthy traces dropped by sampling
        std::uint64_t evicted = 0;       ///< retained entries displaced
        std::size_t pinned = 0;          ///< failure traces currently held
        std::size_t slow = 0;            ///< p95-slow traces currently held
        std::size_t normal = 0;          ///< sampled healthy traces held
        double p95Ms = 0.0;              ///< current slow-set threshold
    };
    [[nodiscard]] Stats stats() const;

private:
    enum class Class { Normal = 0, Slow = 1, Pinned = 2 };

    [[nodiscard]] Class classify(const QueryTrace& trace) const;
    /// Updates the duration window and returns the fresh p95 threshold.
    double observeDuration(double totalMs);
    /// Evicts one entry of class ≤ `incoming`, preferring the lowest class,
    /// oldest first. Returns false when nothing evictable exists.
    bool evictFor(Class incoming);

    struct Entry {
        QueryTrace trace;
        Class cls = Class::Normal;
        std::uint64_t seq = 0;
    };

    const std::size_t capacity_;
    const int sampleEvery_;

    mutable std::mutex mutex_; ///< guards everything below
    std::vector<Entry> entries_;
    std::uint64_t nextSeq_ = 0;
    int sampleCountdown_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t sampledOut_ = 0;
    std::uint64_t evicted_ = 0;
    /// Sliding window of recent total_ms values feeding the p95 threshold.
    static constexpr std::size_t kDurationWindow = 256;
    double durations_[kDurationWindow] = {};
    std::size_t durationCount_ = 0;
    std::size_t durationNext_ = 0;
    double p95Ms_ = 0.0;

    mutable std::mutex inflightMutex_;
    std::vector<std::shared_ptr<InflightQuery>> inflight_;
};

} // namespace lar::reason
