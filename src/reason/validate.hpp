// Independent design validation.
//
// Re-checks a concrete Design against a Problem by direct evaluation — no
// solver involved. Serves two purposes: a property-test oracle (every
// design the engine emits must validate cleanly; the validator shares no
// code with the compiler's formula construction) and the §5.2 scorer that
// judges the simulated-LLM reasoner's proposals.
#pragma once

#include <string>
#include <vector>

#include "reason/design.hpp"
#include "reason/problem.hpp"

namespace lar::reason {

/// All rule violations of `design` under `problem`; empty = compliant.
[[nodiscard]] std::vector<std::string> validateDesign(const Problem& problem,
                                                      const Design& design);

} // namespace lar::reason
