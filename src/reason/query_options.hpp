// Unified per-query knobs for the reasoning layer.
//
// Every entry point that answers an architect query — Engine, WhatIfSession,
// the free §5.1 helpers, and the concurrent Service — takes a QueryOptions
// instead of a bare smt::BackendKind, so new knobs (seeds, timeouts, trace
// collection, portfolio width) reach the whole stack without another round
// of signature churn. QueryOptions is the sole entry point: the deprecated
// trailing-BackendKind shims of the first release have been removed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "smt/backend.hpp"

namespace lar::reason {

struct QueryOptions {
    /// Solver backend answering the query.
    smt::BackendKind backend = smt::BackendKind::Cdcl;
    /// Nonzero: seed for randomized search aspects (initial CDCL phases,
    /// Z3 random_seed). 0 keeps the deterministic default; either way a
    /// fixed seed reproduces the identical answer.
    std::uint64_t seed = 0;
    /// Wall-clock budget in milliseconds; 0 = unlimited. Under the Service
    /// this is an END-TO-END deadline measured from submission: queue wait
    /// and compilation are deducted before the solver starts, and a request
    /// that expires while still queued returns timedOut without solving.
    /// Used directly (Engine, WhatIfSession) it bounds each solver call.
    /// On exhaustion feasibility reports carry timedOut and optimization
    /// returns nullopt.
    int timeoutMs = 0;
    /// Conflict budget per solver call; -1 = unlimited. Exhaustion surfaces
    /// like a timeout (timedOut / nullopt), and under the Service retry
    /// policy triggers a reseeded re-solve.
    std::int64_t conflictBudget = -1;
    /// Propagation budget per solver call; -1 = unlimited (CDCL only).
    std::int64_t propagationBudget = -1;
    /// Learnt-clause arena cap in MiB; -1 = unlimited. The CDCL solver
    /// reduces its database first and only gives up when everything left is
    /// glue or locked; Z3 maps to max_memory where supported.
    std::int64_t memoryBudgetMb = -1;
    /// Cooperative cancellation: when non-null, flipping the flag (from any
    /// thread) makes the query return Unknown/timedOut within a few solver
    /// polling intervals. The flag is owned by the caller and must outlive
    /// the query. Cancelled Service queries carry QueryResult::cancelled.
    std::atomic<bool>* cancelFlag = nullptr;
    /// Collect a QueryTrace (times, solver statistics, cache outcome) for
    /// the query. Service honours this per request; Engine always keeps the
    /// cheap lastSolveStats() regardless.
    bool collectTrace = true;
    /// Sample CDCL search progress every this many conflicts (0 = never).
    /// Samples land on the active obs span and the global solver histograms;
    /// they cannot change verdicts. Z3 has no such hook and ignores this.
    int progressEveryConflicts = 256;
    /// Portfolio width: ≤ 1 solves single-threaded (the default); N > 1
    /// races N diverse CDCL configurations per solver call, first definitive
    /// verdict wins, the rest are cancelled, and short learnt clauses are
    /// shared between workers (see smt::PortfolioBackend). Z3 ignores this.
    /// Under the Service the width is budgeted against the worker pool, so a
    /// loaded batch may grant fewer workers than requested (the trace's
    /// portfolio.workers records the width actually used).
    int portfolioWorkers = 1;
    /// Warm-start snapshot imported into the session's solver right after
    /// the hard assertions are replayed (heuristic phases/activities plus
    /// short learnt clauses — see sat::SolverSnapshot for why this cannot
    /// change verdicts). Only sound when the snapshot was exported from a
    /// session over the IDENTICAL compilation (same fingerprint); the solver
    /// refuses on any shape mismatch. Honoured by the single-worker CDCL
    /// backend; Z3 and portfolio backends ignore it. nullptr = cold start.
    std::shared_ptr<const sat::SolverSnapshot> warmStart;
    /// Run CDCL inprocessing (subsumption, vivification, failed-literal
    /// probing, equivalent-literal substitution, bounded variable
    /// elimination) before search and at restart boundaries. Strictly
    /// verdict-preserving — models are reconstructed and unsat cores keep
    /// only real assumptions — so this is a performance knob, not a
    /// semantics knob. Z3 manages its own preprocessing and ignores it.
    bool simplify = true;
    /// Tick budget per inprocessing round (0 = solver default). Rounds that
    /// exhaust it stop cleanly and search continues; the trace's simplify
    /// block records the stop.
    std::int64_t simplifyTickBudget = 0;
    /// Export a warm-start snapshot from the query's solver session when the
    /// query ends (surfaced via Engine::lastSnapshot()). Off by default —
    /// exporting copies the short learnt clauses — and a no-op for queries
    /// whose session grew the clause DB (optimize bounds, enumeration
    /// blocking clauses) or for backends without snapshot support. The
    /// Service turns this on to feed its fingerprint-keyed warm-start cache.
    bool captureSnapshot = false;

    /// The smt-layer view of these options. Progress plumbing (the obs-layer
    /// callback) is attached by SolverSession, not here, to keep this header
    /// obs-free.
    [[nodiscard]] smt::BackendConfig backendConfig() const {
        smt::BackendConfig config;
        config.seed = seed;
        config.timeoutMs = timeoutMs;
        config.conflictBudget = conflictBudget;
        config.propagationBudget = propagationBudget;
        config.memoryBudgetMb = memoryBudgetMb;
        config.cancelFlag = cancelFlag;
        config.progressEveryConflicts = progressEveryConflicts;
        config.portfolioWorkers = portfolioWorkers;
        config.simplify = simplify;
        config.simplifyTickBudget = simplifyTickBudget;
        return config;
    }
};

/// Convenience: options for a specific backend, other knobs defaulted.
[[nodiscard]] inline QueryOptions withBackend(smt::BackendKind kind) {
    QueryOptions options;
    options.backend = kind;
    return options;
}

} // namespace lar::reason
