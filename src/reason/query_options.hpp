// Unified per-query knobs for the reasoning layer.
//
// Every entry point that answers an architect query — Engine, WhatIfSession,
// the free §5.1 helpers, and the concurrent Service — takes a QueryOptions
// instead of a bare smt::BackendKind, so new knobs (seeds, timeouts, trace
// collection) reach the whole stack without another round of signature
// churn. The old trailing-BackendKind overloads remain for one release as
// [[deprecated]] shims.
#pragma once

#include <cstdint>

#include "smt/backend.hpp"

namespace lar::reason {

struct QueryOptions {
    /// Solver backend answering the query.
    smt::BackendKind backend = smt::BackendKind::Cdcl;
    /// Nonzero: seed for randomized search aspects (initial CDCL phases,
    /// Z3 random_seed). 0 keeps the deterministic default; either way a
    /// fixed seed reproduces the identical answer.
    std::uint64_t seed = 0;
    /// Wall-clock budget per solver call in milliseconds; 0 = unlimited.
    /// On exhaustion feasibility reports carry timedOut and optimization
    /// returns nullopt.
    int timeoutMs = 0;
    /// Collect a QueryTrace (times, solver statistics, cache outcome) for
    /// the query. Service honours this per request; Engine always keeps the
    /// cheap lastSolveStats() regardless.
    bool collectTrace = true;
    /// Sample CDCL search progress every this many conflicts (0 = never).
    /// Samples land on the active obs span and the global solver histograms;
    /// they cannot change verdicts. Z3 has no such hook and ignores this.
    int progressEveryConflicts = 256;

    /// The smt-layer view of these options. Progress plumbing (the obs-layer
    /// callback) is attached by SolverSession, not here, to keep this header
    /// obs-free.
    [[nodiscard]] smt::BackendConfig backendConfig() const {
        smt::BackendConfig config;
        config.seed = seed;
        config.timeoutMs = timeoutMs;
        config.progressEveryConflicts = progressEveryConflicts;
        return config;
    }
};

/// Convenience: options for a specific backend, other knobs defaulted.
[[nodiscard]] inline QueryOptions withBackend(smt::BackendKind kind) {
    QueryOptions options;
    options.backend = kind;
    return options;
}

} // namespace lar::reason
