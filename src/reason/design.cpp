#include "reason/design.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace lar::reason {

std::set<std::string> Design::systems() const {
    std::set<std::string> out;
    for (const auto& [category, name] : chosen) out.insert(name);
    return out;
}

bool Design::uses(const std::string& name) const {
    for (const auto& [category, chosenName] : chosen)
        if (chosenName == name) return true;
    return false;
}

std::vector<std::string> Design::diff(const Design& other) const {
    std::vector<std::string> changes;
    for (const kb::Category c : kb::kAllCategories) {
        const auto mine = chosen.find(c);
        const auto theirs = other.chosen.find(c);
        const std::string a = mine == chosen.end() ? "(none)" : mine->second;
        const std::string b = theirs == other.chosen.end() ? "(none)" : theirs->second;
        if (a != b)
            changes.push_back(kb::toString(c) + ": " + a + " -> " + b);
    }
    for (const kb::HardwareClass hc :
         {kb::HardwareClass::Switch, kb::HardwareClass::Nic,
          kb::HardwareClass::Server}) {
        const auto mine = hardwareModel.find(hc);
        const auto theirs = other.hardwareModel.find(hc);
        const std::string a = mine == hardwareModel.end() ? "(none)" : mine->second;
        const std::string b =
            theirs == other.hardwareModel.end() ? "(none)" : theirs->second;
        if (a != b)
            changes.push_back(kb::toString(hc) + ": " + a + " -> " + b);
    }
    for (const std::string& opt : other.enabledOptions)
        if (enabledOptions.count(opt) == 0)
            changes.push_back("option enabled: " + opt);
    for (const std::string& opt : enabledOptions)
        if (other.enabledOptions.count(opt) == 0)
            changes.push_back("option disabled: " + opt);
    return changes;
}

std::string Design::toString() const {
    std::ostringstream out;
    out << "Design:\n";
    for (const auto& [category, name] : chosen)
        out << "  " << kb::toString(category) << ": " << name << "\n";
    for (const auto& [cls, model] : hardwareModel)
        out << "  " << kb::toString(cls) << ": " << model << "\n";
    if (!enabledOptions.empty()) {
        out << "  options:";
        for (const std::string& o : enabledOptions) out << ' ' << o;
        out << "\n";
    }
    if (!activeFacts.empty()) {
        out << "  facts:";
        for (const std::string& f : activeFacts) out << ' ' << f;
        out << "\n";
    }
    for (const auto& [resource, used] : resourceUsage) {
        out << "  " << resource << ": " << used;
        const auto cap = resourceCapacity.find(resource);
        if (cap != resourceCapacity.end()) out << " / " << cap->second;
        out << "\n";
    }
    out << "  hardware cost: $" << util::formatDouble(hardwareCostUsd, 0)
        << ", power: " << util::formatDouble(powerW, 0) << " W\n";
    if (!objectiveCosts.empty()) {
        out << "  objective costs:";
        for (const std::int64_t c : objectiveCosts) out << ' ' << c;
        out << "\n";
    }
    return out.str();
}

json::Value toJson(const Design& design) {
    json::Value v;
    json::Object systems;
    for (const auto& [category, name] : design.chosen)
        systems[kb::toString(category)] = name;
    v["systems"] = json::Value(std::move(systems));
    json::Object hardware;
    for (const auto& [cls, model] : design.hardwareModel)
        hardware[kb::toString(cls)] = model;
    v["hardware"] = json::Value(std::move(hardware));
    json::Array options;
    for (const std::string& o : design.enabledOptions) options.emplace_back(o);
    v["options"] = json::Value(std::move(options));
    json::Array facts;
    for (const std::string& f : design.activeFacts) facts.emplace_back(f);
    v["facts"] = json::Value(std::move(facts));
    v["hardware_cost_usd"] = design.hardwareCostUsd;
    v["power_w"] = design.powerW;
    json::Array costs;
    for (const std::int64_t c : design.objectiveCosts)
        costs.emplace_back(static_cast<std::int64_t>(c));
    v["objective_costs"] = json::Value(std::move(costs));
    return v;
}

} // namespace lar::reason
